//! Warm restarts: persist the plan cache across process lifetimes.
//!
//! ```sh
//! cargo run --release --example warm_restart
//! ```
//!
//! A service learns its inference regions during the day; after a restart
//! it should not pay hundreds of optimizer calls to re-learn them. This
//! example runs SCR over a workload, snapshots the cache (plans in the
//! Appendix B compact encoding + the instance 5-tuples), "restarts", and
//! shows the restored cache serving a second workload with almost no
//! optimizer calls — while still honouring the λ-optimality guarantee.

use std::sync::Arc;

use pqo::core::engine::QueryEngine;
use pqo::core::persist;
use pqo::core::runner::{run_sequence, GroundTruth};
use pqo::core::scr::{Scr, ScrConfig};
use pqo::workload::corpus::corpus;

fn main() {
    let spec = corpus()
        .iter()
        .find(|s| s.id == "tpcds_G_d3")
        .expect("corpus template");
    let lambda = 1.5;

    // --- Day one: learn the workload ---------------------------------------
    let day1 = spec.generate(1500, 1);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let gt1 = GroundTruth::compute(&engine, &day1);
    let mut scr = Scr::new(lambda).expect("valid λ");
    let r1 = run_sequence(&mut scr, &engine, &day1, &gt1);
    println!(
        "day 1: {} optimizer calls ({:.1}%), {} plans cached, MSO {:.3}",
        r1.num_opt,
        r1.num_opt_pct(),
        r1.num_plans,
        r1.mso()
    );

    // --- Snapshot ------------------------------------------------------------
    let mut snapshot = Vec::new();
    persist::save(&scr, &mut snapshot).expect("serialize cache");
    println!(
        "snapshot: {} bytes for {} plans + {} instance entries",
        snapshot.len(),
        scr.cache().num_plans(),
        scr.cache().num_instances()
    );
    drop(scr); // the process "exits"

    // --- Restart: restore and serve day two --------------------------------
    let mut warm = persist::restore(
        ScrConfig::new(lambda).expect("valid λ"),
        &mut snapshot.as_slice(),
    )
    .expect("restore cache");
    let day2 = spec.generate(1500, 2); // fresh instances, same distribution
    let gt2 = GroundTruth::compute(&engine, &day2);
    let r2 = run_sequence(&mut warm, &engine, &day2, &gt2);
    println!(
        "day 2 (warm): {} optimizer calls ({:.1}%), {} plans cached, MSO {:.3}",
        r2.num_opt,
        r2.num_opt_pct(),
        r2.num_plans,
        r2.mso()
    );

    // --- Contrast with a cold restart ---------------------------------------
    let mut cold = Scr::new(lambda).expect("valid λ");
    let r2c = run_sequence(&mut cold, &engine, &day2, &gt2);
    println!(
        "day 2 (cold): {} optimizer calls ({:.1}%)",
        r2c.num_opt,
        r2c.num_opt_pct()
    );

    assert!(
        r2.num_opt <= r2c.num_opt,
        "warm cache cannot need more optimizations"
    );
    assert!(
        r2.mso() <= lambda * 1.01,
        "restored cache must keep the guarantee"
    );
    println!(
        "\nwarm restart saved {} optimizer calls while keeping SO ≤ {lambda}",
        r2c.num_opt - r2.num_opt
    );
}
