//! An application-server scenario: a bounded plan cache under memory
//! pressure.
//!
//! ```sh
//! cargo run --release --example plan_cache_server
//! ```
//!
//! A multi-tenant server executes the same parameterized dashboard query
//! with tenant-specific parameters. Memory for cached plans is scarce, so
//! the operator enforces a hard budget of k plans (Section 6.3.1). SCR
//! keeps the λ-optimality guarantee while evicting least-frequently-used
//! plans; this example sweeps k and shows the cost: smaller budgets mean
//! more optimizer calls, never worse plan quality.

use std::sync::Arc;

use pqo::core::engine::QueryEngine;
use pqo::core::runner::{run_sequence, GroundTruth};
use pqo::core::scr::{Scr, ScrConfig};
use pqo::workload::corpus::corpus;

fn main() {
    let spec = corpus()
        .iter()
        .find(|s| s.id == "rd1_L_d3")
        .expect("corpus template");
    let m = 2000;
    println!(
        "tenant dashboard query: {} (d = {}), {} requests\n",
        spec.id, spec.dimensions, m
    );

    let instances = spec.generate(m, 1234);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let gt = GroundTruth::compute(&engine, &instances);
    println!(
        "distinct optimal plans the workload would need: {}\n",
        gt.distinct_plans()
    );

    println!(
        "{:<10} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "budget k", "plans", "numOpt", "opt%", "MSO", "TC"
    );
    for k in [None, Some(10), Some(5), Some(3), Some(2), Some(1)] {
        let mut cfg = ScrConfig::new(2.0).expect("valid λ");
        cfg.plan_budget = k;
        let mut scr = Scr::with_config(cfg).expect("valid config");
        let r = run_sequence(&mut scr, &engine, &instances, &gt);
        let label = k.map_or("unbounded".to_string(), |k| k.to_string());
        println!(
            "{:<10} {:>9} {:>9} {:>9.1}% {:>9.2} {:>10.4}",
            label,
            r.num_plans,
            r.num_opt,
            r.num_opt_pct(),
            r.mso(),
            r.total_cost_ratio()
        );
        assert!(
            r.mso() <= 2.0 * 1.01,
            "budget must never break λ-optimality"
        );
    }

    println!("\nShrinking the budget trades optimizer calls for memory;");
    println!("the λ = 2 sub-optimality guarantee holds at every budget because");
    println!("evicting a plan also evicts the instance entries that inferred with it.");
}
