//! Plan diagrams: visualize why PQO is hard (and why a single plan fails).
//!
//! ```sh
//! cargo run --release --example plan_diagram [template_id]
//! ```
//!
//! Renders the optimizer's plan choices over a 2-d selectivity grid
//! (reference [18] of the paper). Each letter is a distinct optimal plan;
//! the patchwork is exactly what an online PQO technique must cover with
//! few stored plans while staying λ-optimal.

use pqo::optimizer::cost::CostModel;
use pqo::optimizer::diagram::PlanDiagram;
use pqo::workload::corpus::corpus;

fn main() {
    let id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tpch_skew_B_d2".into());
    let spec = corpus()
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown template `{id}` (see `pqo templates`)"));
    assert!(spec.dimensions >= 2, "plan diagrams need d >= 2");

    let diagram = PlanDiagram::compute(&spec.template, &CostModel::default(), 32, 0.001, 1.0, 0.05);
    println!(
        "plan diagram of {} over selectivities 0.001..1.0 (log-spaced, dims 1-2, others pinned at 0.05)\n",
        spec.id
    );
    println!("{}", diagram.render_ascii());
    println!("distinct plans: {}", diagram.distinct_plans());
    println!("\ncoverage:");
    for (fp, frac) in diagram.coverage() {
        println!("  {fp}: {:5.1}%", frac * 100.0);
    }
    println!("\nplan density by cost decile (cheap → expensive):");
    println!("  {:?}", diagram.density_by_cost_decile());
    println!("\nReading the picture: Optimize-Once covers this whole patchwork with");
    println!("one letter; SCR covers it with a handful of plans, each proven λ-optimal");
    println!("inside its inferred region.");
}
