//! The Recost API and the λ-optimal region (paper Sections 4.2, 5.3,
//! Figure 4).
//!
//! ```sh
//! cargo run --release --example recost_api
//! ```
//!
//! 1. Measures the latency gap between a full optimizer call and a Recost
//!    call (the paper reports up to two orders of magnitude).
//! 2. Renders an ASCII map of the λ-optimal region around an optimized
//!    instance: where the selectivity check passes (`S`), where only the
//!    Recost-based cost check passes (`C`), and where a new optimization is
//!    needed (`.`) — the shapes of Figure 4.

use std::sync::Arc;
use std::time::Instant;

use pqo::core::engine::QueryEngine;
use pqo::optimizer::svector::{compute_svector, instance_for_target, SVector};
use pqo::optimizer::template::{RangeOp, TemplateBuilder};

fn main() {
    let catalog = pqo::catalog::schemas::tpch_skew();
    let mut b = TemplateBuilder::new("recost_demo");
    let c = b.relation(catalog.expect_table("customer"), "c");
    let o = b.relation(catalog.expect_table("orders"), "o");
    let l = b.relation(catalog.expect_table("lineitem"), "l");
    b.join((c, "customer_pk"), (o, "customer_fk"));
    b.join((o, "orders_pk"), (l, "orders_fk"));
    b.param(o, "o_totalprice", RangeOp::Le);
    b.param(l, "l_extendedprice", RangeOp::Le);
    b.aggregate(200.0);
    let template = b.build();
    let engine = QueryEngine::new(Arc::clone(&template));

    // --- 1. Latency: optimize vs recost -----------------------------------
    let qe = instance_for_target(&template, &[0.05, 0.05]);
    let sv_e = compute_svector(&template, &qe);
    let opt = engine.optimize(&sv_e);
    println!("optimal {}", opt.plan.display(&template));

    const N: u32 = 2000;
    let t0 = Instant::now();
    for _ in 0..N {
        let _ = engine.optimize(&sv_e);
    }
    let optimize_ns = t0.elapsed().as_nanos() / N as u128;
    let t1 = Instant::now();
    for _ in 0..N {
        let _ = engine.recost(&opt.plan, &sv_e);
    }
    let recost_ns = t1.elapsed().as_nanos() / N as u128;
    println!("optimizer call : {:>8} ns", optimize_ns);
    println!("recost call    : {:>8} ns", recost_ns);
    println!(
        "speedup        : {:>8.1}x  (paper: up to two orders of magnitude)\n",
        optimize_ns as f64 / recost_ns as f64
    );

    // --- 2. The λ-optimal region around qe ---------------------------------
    let lambda = 2.0;
    println!("λ-optimal region around qe = (0.05, 0.05) with λ = {lambda}:");
    println!(
        "S = selectivity check passes (G·L ≤ λ), C = cost check passes (R·L ≤ λ), . = optimize\n"
    );
    let grid = 24usize;
    println!("  (log-spaced selectivities 0.005 .. 0.5 on both axes)");
    for row in (0..grid).rev() {
        let s2 = 0.005 * (100f64).powf(row as f64 / (grid - 1) as f64);
        let mut line = String::new();
        for col in 0..grid {
            let s1 = 0.005 * (100f64).powf(col as f64 / (grid - 1) as f64);
            let sv_c = SVector(vec![s1, s2]);
            let (g, l) = sv_c.g_and_l(&sv_e);
            let ch = if g * l <= lambda {
                'S'
            } else {
                let r = engine.recost(&opt.plan, &sv_c) / opt.cost;
                if r * l <= lambda {
                    'C'
                } else {
                    '.'
                }
            };
            line.push(ch);
            line.push(' ');
        }
        println!("  {line}");
    }
    println!("\nThe S region is the closed G·L ≤ λ shape of Figure 4; the C region");
    println!("extends it wherever the plan's actual cost grows slower than the");
    println!("conservative bound — exactly why the cost check saves optimizer calls.");
}
