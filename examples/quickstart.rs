//! Quickstart: run SCR over a parameterized-query workload.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a TPC-H-style parameterized query, streams 500 instances through
//! SCR with λ = 1.5, and reports the three metrics of the paper: cost
//! sub-optimality, optimizer calls saved, and plans cached.

use std::sync::Arc;

use pqo::core::engine::QueryEngine;
use pqo::core::runner::{run_sequence, GroundTruth};
use pqo::core::scr::Scr;
use pqo::optimizer::template::{RangeOp, TemplateBuilder};
use pqo::workload::regions;

fn main() {
    // 1. A catalog: synthetic TPC-H with skewed data.
    let catalog = pqo::catalog::schemas::tpch_skew();

    // 2. A parameterized query: orders ⋈ lineitem with two parameterized
    //    range predicates (the query's "dimensions").
    let mut b = TemplateBuilder::new("quickstart");
    let o = b.relation(catalog.expect_table("orders"), "o");
    let l = b.relation(catalog.expect_table("lineitem"), "l");
    b.join((o, "orders_pk"), (l, "orders_fk"));
    b.param(o, "o_totalprice", RangeOp::Le);
    b.param(l, "l_shipdate", RangeOp::Le);
    b.aggregate(100.0);
    let template = b.build();

    // 3. A workload: 500 instances spanning the selectivity space.
    let instances = regions::generate(&template, 500, 42);

    // 4. The engine (optimizer + sVector + Recost APIs) and the oracle.
    let engine = QueryEngine::new(Arc::clone(&template));
    let gt = GroundTruth::compute(&engine, &instances);

    // 5. SCR with a 1.5x sub-optimality budget.
    let mut scr = Scr::new(1.5).expect("valid λ");
    let result = run_sequence(&mut scr, &engine, &instances, &gt);

    println!("instances processed : {}", result.num_instances);
    println!(
        "distinct optimal plans in workload: {}",
        result.distinct_optimal_plans
    );
    println!();
    println!(
        "optimizer calls     : {} ({:.1}% of instances)",
        result.num_opt,
        result.num_opt_pct()
    );
    println!("plans cached        : {}", result.num_plans);
    println!(
        "max sub-optimality  : {:.3} (guaranteed ≤ 1.5 under BCG)",
        result.mso()
    );
    println!("total cost ratio    : {:.4}", result.total_cost_ratio());
    println!();
    println!(
        "engine time — optimize: {:?}, recost: {:?} ({} calls)",
        result.optimize_time, result.recost_time, result.recost_calls
    );
    println!(
        "selectivity-check hits: {}, cost-check hits: {}",
        scr.stats().selectivity_hits,
        scr.stats().cost_hits
    );

    assert!(
        result.mso() <= 1.5 * 1.01,
        "λ-optimality violated beyond tolerance"
    );
}
