//! The paper's Figure 1 walk-through: a 2-dimensional query processed by
//! every online PQO technique, showing per-instance decisions.
//!
//! ```sh
//! cargo run --release --example paper_figure1
//! ```
//!
//! Thirteen instances arrive online. Each technique decides, per instance,
//! whether to reuse a cached plan or call the optimizer. SCR's selectivity
//! check (`G·L ≤ λ/S`) and cost check (`R·L ≤ λ/S`) let it skip most calls
//! while keeping every choice λ-optimal; the heuristics skip calls too but
//! can pick badly sub-optimal plans; PCM is safe but optimizes almost
//! everything.

use std::sync::Arc;

use pqo::core::baselines::{Density, Ellipse, OptimizeOnce, Pcm, Ranges};
use pqo::core::engine::QueryEngine;
use pqo::core::runner::GroundTruth;
use pqo::core::scr::Scr;
use pqo::core::OnlinePqo;
use pqo::optimizer::svector::instance_for_target;
use pqo::optimizer::template::{RangeOp, TemplateBuilder};

fn main() {
    let catalog = pqo::catalog::schemas::tpch_skew();
    let mut b = TemplateBuilder::new("figure1");
    let o = b.relation(catalog.expect_table("orders"), "o");
    let l = b.relation(catalog.expect_table("lineitem"), "l");
    b.join((o, "orders_pk"), (l, "orders_fk"));
    b.param(o, "o_totalprice", RangeOp::Le);
    b.param(l, "l_extendedprice", RangeOp::Le);
    let template = b.build();

    // The 13 instances, laid out like Figure 1: two clusters, two
    // excursions along one axis, and one far corner.
    let targets: [[f64; 2]; 13] = [
        [0.020, 0.030],
        [0.500, 0.500],
        [0.026, 0.036],
        [0.520, 0.480],
        [0.022, 0.028],
        [0.030, 0.024],
        [0.150, 0.020],
        [0.180, 0.025],
        [0.900, 0.900],
        [0.024, 0.033],
        [0.510, 0.520],
        [0.028, 0.030],
        [0.060, 0.015],
    ];
    let instances: Vec<_> = targets
        .iter()
        .map(|t| instance_for_target(&template, t))
        .collect();

    let engine = QueryEngine::new(Arc::clone(&template));
    let gt = GroundTruth::compute(&engine, &instances);

    println!(
        "workload: 13 instances, {} distinct optimal plans\n",
        gt.distinct_plans()
    );
    for (i, plan) in gt.opt_plans.iter().enumerate().take(3) {
        println!("q{} optimal {}", i + 1, plan.display(&template));
    }

    let mut techniques: Vec<Box<dyn OnlinePqo>> = vec![
        Box::new(Scr::new(2.0).expect("valid λ")),
        Box::new(Pcm::new(2.0)),
        Box::new(Ellipse::new(0.9)),
        Box::new(Density::new(0.1, 0.5)),
        Box::new(Ranges::new(0.01)),
        Box::new(OptimizeOnce::new()),
    ];

    println!(
        "{:<12} {:>7} {:>7} {:>7}   decisions (O = optimize, . = reuse)",
        "technique", "numOpt", "plans", "MSO"
    );
    for tech in &mut techniques {
        engine.reset_stats();
        let mut marks = String::new();
        let mut worst: f64 = 1.0;
        for (i, inst) in instances.iter().enumerate() {
            let sv = engine.compute_svector(inst);
            let choice = tech.get_plan(inst, &sv, &engine);
            marks.push(if choice.optimized { 'O' } else { '.' });
            let so = if choice.plan.fingerprint() == gt.opt_plans[i].fingerprint() {
                1.0
            } else {
                engine.recost_untracked(&choice.plan, &gt.svectors[i]) / gt.opt_costs[i]
            };
            worst = worst.max(so);
        }
        println!(
            "{:<12} {:>7} {:>7} {:>7.2}   {}",
            tech.name(),
            engine.stats().optimize_calls,
            tech.max_plans_cached(),
            worst,
            marks
        );
    }
    println!("\nSCR reuses through both checks while guaranteeing SO ≤ 2;");
    println!("heuristics reuse but can exceed the bound; PCM optimizes almost always.");
}
