//! Serving plans from many threads: the [`PqoService`] deployment surface.
//!
//! ```sh
//! cargo run --release --example concurrent_service
//! ```
//!
//! An application server hosts several parameterized dashboard queries and
//! answers `get_plan` requests from a thread pool. `PqoService` keeps one
//! SCR cache per registered template behind per-template locks, so requests
//! for different templates never contend and requests for the same template
//! share its cache. A global plan budget bounds total memory across all
//! templates (Section 6.3.1, applied fleet-wide); misuse surfaces as typed
//! [`PqoError`]s instead of panics.

use std::sync::Arc;

use pqo::core::scr::ScrConfig;
use pqo::workload::corpus::corpus;
use pqo::{PqoError, PqoService};

fn main() -> Result<(), PqoError> {
    let ids = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3", "rd1_L_d3"];
    let service = Arc::new(PqoService::with_global_budget(20)?);
    for id in ids {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        service.register(Arc::clone(&spec.template), ScrConfig::new(2.0)?)?;
    }
    println!("registered templates: {:?}", service.templates());

    // Typed errors, not panics: double registration and unknown lookups.
    let spec0 = corpus().iter().find(|s| s.id == ids[0]).unwrap();
    let dup = service.register(Arc::clone(&spec0.template), ScrConfig::new(2.0)?);
    println!("re-registering {:?}: {}", ids[0], dup.unwrap_err());
    let unknown = service.get_plan("no_such_template", &spec0.generate(1, 9)[0]);
    println!("unknown template lookup: {}\n", unknown.unwrap_err());

    // Eight worker threads, each streaming instances of "its" template —
    // two threads per template, so traffic mixes same-shard and cross-shard.
    let threads = 8;
    let per_thread = 400;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let spec = corpus()
                    .iter()
                    .find(|s| s.id == ids[t % ids.len()])
                    .unwrap();
                for inst in &spec.generate(per_thread, t as u64) {
                    service
                        .get_plan(&spec.template.name, inst)
                        .expect("registered template");
                }
            });
        }
    });

    println!(
        "served               : {} get_plan calls",
        threads * per_thread
    );
    println!("optimizer calls      : {}", service.total_optimizer_calls());
    println!(
        "plans cached (total) : {} (global budget 20)",
        service.total_plans()
    );
    println!("global evictions     : {}", service.global_evictions());
    for name in service.templates() {
        let stats = service.scr_stats(&name)?;
        println!(
            "  {name:<18} sel-hits {:>5}  cost-hits {:>4}  optimizer {:>4}",
            stats.selectivity_hits, stats.cost_hits, stats.optimizer_calls
        );
    }
    assert!(
        service.total_plans() <= 20,
        "global budget must hold after the storm"
    );
    Ok(())
}
