//! Head-to-head comparison of every online PQO technique on one template.
//!
//! ```sh
//! cargo run --release --example compare_techniques [m]
//! ```
//!
//! Runs the six techniques of the paper's Table 2 (plus Optimize-Always as
//! the oracle) over the same workload sequence and prints the three-metric
//! comparison of Section 2.1.

use std::sync::Arc;

use pqo::core::baselines::{Density, Ellipse, OptimizeAlways, OptimizeOnce, Pcm, Ranges};
use pqo::core::engine::QueryEngine;
use pqo::core::runner::{run_sequence, GroundTruth};
use pqo::core::scr::Scr;
use pqo::core::OnlinePqo;
use pqo::workload::corpus::corpus;

fn main() {
    let m: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1000);

    // A 3-dimensional TPC-DS-like template (store_sales ⋈ date_dim ⋈ item).
    let spec = corpus()
        .iter()
        .find(|s| s.id == "tpcds_G_d3")
        .expect("corpus template");
    println!("template: {} (d = {}), m = {m}\n", spec.id, spec.dimensions);

    let instances = spec.generate(m, 7);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let gt = GroundTruth::compute(&engine, &instances);
    println!(
        "distinct optimal plans across the workload: {}\n",
        gt.distinct_plans()
    );

    let mut techniques: Vec<Box<dyn OnlinePqo>> = vec![
        Box::new(OptimizeAlways::new()),
        Box::new(OptimizeOnce::new()),
        Box::new(Pcm::new(2.0)),
        Box::new(Ellipse::new(0.9)),
        Box::new(Density::new(0.1, 0.5)),
        Box::new(Ranges::new(0.01)),
        Box::new(Scr::new(2.0).expect("valid λ")),
        Box::new(Scr::new(1.1).expect("valid λ")),
    ];

    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>9} {:>9} {:>10}",
        "technique", "numOpt", "opt%", "plans", "MSO", "TC", "getPlan"
    );
    for tech in &mut techniques {
        let r = run_sequence(tech.as_mut(), &engine, &instances, &gt);
        println!(
            "{:<12} {:>8} {:>7.1}% {:>8} {:>9.2} {:>9.4} {:>9.1?}",
            r.technique,
            r.num_opt,
            r.num_opt_pct(),
            r.num_plans,
            r.mso(),
            r.total_cost_ratio(),
            r.getplan_time
        );
    }

    println!("\nReading the table:");
    println!("- OptAlways: perfect quality, pays an optimizer call per instance.");
    println!("- OptOnce: one call, unbounded sub-optimality.");
    println!("- PCM: bounded (MSO ≤ 2) but optimizes a large fraction and stores every plan.");
    println!("- Heuristics: few calls, but MSO is unbounded.");
    println!("- SCR: bounded MSO, few calls, and the smallest plan cache.");
}
