//! # pqo — online parametric query optimization with re-costing guarantees
//!
//! A from-scratch Rust reproduction of *"Leveraging Re-costing for Online
//! Optimization of Parameterized Queries with Guarantees"* (Dutt, Narasayya,
//! Chaudhuri — SIGMOD 2017).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`catalog`] — synthetic catalogs, histograms, column statistics.
//! * [`optimizer`] — the cost-based memo/DP query optimizer substrate, with
//!   the `sVector` and `Recost` engine APIs the paper requires (§4.2).
//! * [`core`] — the paper's contribution: the SCR technique (selectivity,
//!   cost, and redundancy checks), every baseline (Optimize-Always/Once,
//!   PCM, Ellipse, Density, Ranges), metrics, the sequence runner, and the
//!   concurrent [`PqoService`] serving layer.
//! * [`exec`] — the execution-time simulation behind the paper's Table 3.
//! * [`sql`] — the multi-dialect SQL template frontend: tokenizer, parser,
//!   dialect layer (postgres/mysql/duckdb) and the catalog-backed binder
//!   that lowers parameterized SQL text into the same `QueryTemplate`s the
//!   corpus hand-builds, plus the reverse hinted-SQL emitter.
//! * [`workload`] — the 90-template corpus, region-bucketized instance
//!   generation and the five orderings of §7.1.
//!
//! Misuse (bad λ, duplicate/unknown templates, corrupt snapshots) surfaces
//! as the typed [`PqoError`] instead of panicking.
//!
//! ## Quickstart
//!
//! ```
//! use pqo::core::{scr::Scr, OnlinePqo, engine::QueryEngine};
//! use pqo::workload::corpus;
//!
//! # fn main() -> Result<(), pqo::PqoError> {
//! // Pick a template from the corpus and generate a short workload.
//! let spec = &corpus::corpus()[0];
//! let workload = spec.generate(64, 7);
//! let engine = QueryEngine::new(spec.template.clone());
//!
//! // Run SCR with a 2x sub-optimality budget.
//! let mut scr = Scr::new(2.0)?;
//! for inst in &workload {
//!     let sv = engine.compute_svector(inst);
//!     // choice.plan is guaranteed λ-optimal for this instance (under BCG).
//!     let choice = scr.get_plan(inst, &sv, &engine);
//!     assert!(choice.plan.size() >= 1);
//! }
//! assert!(engine.stats().optimize_calls < 64);
//! # Ok(())
//! # }
//! ```
//!
//! ## Serving many templates from many threads
//!
//! [`PqoService`] is the `Send + Sync` deployment surface: one shared
//! handle, one SCR cache per registered template, concurrent `get_plan`.
//!
//! ```
//! use std::sync::Arc;
//! use pqo::{PqoService, core::scr::ScrConfig};
//! use pqo::workload::corpus;
//!
//! # fn main() -> Result<(), pqo::PqoError> {
//! let service = Arc::new(PqoService::new());
//! let spec = &corpus::corpus()[0];
//! service.register(spec.template.clone(), ScrConfig::new(2.0)?)?;
//!
//! let workload = spec.generate(32, 7);
//! std::thread::scope(|scope| {
//!     for chunk in workload.chunks(8) {
//!         let service = Arc::clone(&service);
//!         scope.spawn(move || {
//!             for inst in chunk {
//!                 service.get_plan(&spec.template.name, inst).expect("registered");
//!             }
//!         });
//!     }
//! });
//! assert!(service.total_plans() >= 1);
//! # Ok(())
//! # }
//! ```

pub use pqo_catalog as catalog;
pub use pqo_core as core;
pub use pqo_exec as exec;
pub use pqo_optimizer as optimizer;
pub use pqo_server as server;
pub use pqo_sql as sql;
pub use pqo_workload as workload;

pub use pqo_core::{PqoError, PqoService};
