-- pqo:catalog tpch_skew
-- pqo:dialect duckdb
-- Suppliers in a region band, parameterized on account balance.
SELECT s.supplier_pk
FROM supplier s
  JOIN nation n ON s.nation_fk = n.nation_pk
WHERE s.s_acctbal >= $1
  AND n.region_fk = 2
