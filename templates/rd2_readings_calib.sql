-- pqo:catalog rd2
-- pqo:dialect postgres
-- Sensor readings against calibration drift, three dimensions.
SELECT count(*)
FROM readings r
  JOIN sensors sn ON r.sensors_fk = sn.sensors_pk
  JOIN calib cb ON sn.sensors_pk = cb.sensors_fk
WHERE r.r_value <= $1
  AND sn.sn_range <= $2
  AND cb.cb_drift >= $3
GROUP BY sn.sn_precision
