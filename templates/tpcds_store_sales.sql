-- pqo:catalog tpcds
-- pqo:dialect postgres
-- Store sales sliced by date and item price, three dimensions.
SELECT count(*)
FROM store_sales ss
  JOIN date_dim d ON ss.date_dim_fk = d.date_dim_pk
  JOIN item i ON ss.item_fk = i.item_pk
WHERE ss.ss_sales_price <= $1
  AND i.i_current_price <= $2
  AND d.d_year >= $3
GROUP BY d.d_moy
