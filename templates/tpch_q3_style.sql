-- pqo:catalog tpch_skew
-- pqo:dialect postgres
-- TPC-H Q3 style: shipping priority for a market segment, three dimensions.
SELECT o.o_orderdate, o.o_shippriority
FROM customer c
  JOIN orders o ON c.customer_pk = o.customer_fk
  JOIN lineitem l ON o.orders_pk = l.orders_fk
WHERE c.c_acctbal <= $1
  AND o.o_orderdate <= $2
  AND l.l_shipdate >= $3
  AND c.c_mktsegment = 2
ORDER BY o.o_orderdate
