-- pqo:catalog tpch_skew
-- pqo:dialect postgres
-- Orders joined to their lineitems, parameterized on both price columns.
SELECT count(*)
FROM orders o
  JOIN lineitem l ON o.orders_pk = l.orders_fk
WHERE o.o_totalprice <= $1
  AND l.l_extendedprice <= $2
GROUP BY o.o_shippriority
