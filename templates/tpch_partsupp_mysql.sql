-- pqo:catalog tpch_skew
-- pqo:dialect mysql
-- Parts and their supply costs, anonymous placeholders, backtick quoting.
SELECT count(*)
FROM `part` p
  JOIN partsupp ps ON p.part_pk = ps.part_fk
WHERE p.p_retailprice <= ?
  AND ps.ps_supplycost <= ?
