-- pqo:catalog tpch_skew
-- pqo:dialect postgres
-- TPC-H Q1 style: pricing summary over recently shipped lineitems.
SELECT count(*)
FROM lineitem l
WHERE l.l_shipdate <= $1
GROUP BY l.l_quantity
