-- pqo:catalog tpcds
-- pqo:dialect duckdb
-- Promoted web sales in one item category.
SELECT count(*)
FROM web_sales ws
  JOIN item i ON ws.item_fk = i.item_pk
  JOIN promotion p ON ws.promotion_fk = p.promotion_pk
WHERE ws.ws_sales_price <= $1
  AND p.p_cost <= $2
  AND i.i_category = 5
GROUP BY i.i_brand
