-- pqo:catalog rd1
-- pqo:dialect postgres
-- Payments: transaction amount band against account balance and merchant rating.
SELECT count(*)
FROM transactions t
  JOIN accounts a ON t.accounts_fk = a.accounts_pk
  JOIN merchants m ON t.merchants_fk = m.merchants_pk
WHERE t.t_amount <= $1
  AND a.a_balance <= $2
  AND m.mrc_rating >= $3
