-- pqo:catalog tpcds
-- pqo:dialect mysql
-- Catalog sales joined out to customer geography.
SELECT cs.cs_quantity
FROM catalog_sales cs
  JOIN customer c ON cs.customer_fk = c.customer_pk
  JOIN customer_address ca ON c.customer_address_fk = ca.customer_address_pk
WHERE cs.cs_wholesale_cost <= ?
  AND c.c_birth_year >= ?
ORDER BY cs.cs_quantity
