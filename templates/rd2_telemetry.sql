-- pqo:catalog rd2
-- pqo:dialect duckdb
-- Telemetry for aging devices at high-elevation sites.
SELECT count(*)
FROM telemetry t
  JOIN devices d ON t.devices_fk = d.devices_pk
  JOIN sites s ON d.sites_fk = s.sites_pk
WHERE t.t_ts <= $1
  AND d.d_age_days <= $2
  AND s.st_elevation >= $3
