-- pqo:catalog rd1
-- pqo:dialect mysql
-- Younger users and their recently opened accounts.
SELECT count(*)
FROM users u
  JOIN accounts a ON u.users_pk = a.users_fk
WHERE u.u_score <= ?
  AND a.a_opened >= ?
  AND u.u_age <= 40
