#!/usr/bin/env bash
# Microbench regression gate.
#
# Runs the headline throughput benches in quick (smoke) mode — each closure
# executes once, so a full gate pass stays under a minute — takes the best
# elements/second over $PQO_BENCH_RUNS runs per metric, writes the results
# to BENCH_<date>.json, and fails if any headline metric lands below
# 75% of the committed baseline (scripts/bench_baseline.json).
#
# Usage:
#   scripts/bench_gate.sh                       gate against the baseline
#   PQO_BENCH_RUNS=5 scripts/bench_gate.sh      more runs, less noise
#   PQO_BENCH_WRITE_BASELINE=1 scripts/bench_gate.sh
#                                               refresh scripts/bench_baseline.json
#                                               from this machine's numbers
set -euo pipefail
cd "$(dirname "$0")/.."

runs="${PQO_BENCH_RUNS:-3}"
baseline="${PQO_BENCH_BASELINE:-scripts/bench_baseline.json}"
out="BENCH_$(date +%Y%m%d).json"

benches=(service_throughput batch_throughput net_throughput spatial_publish replication policy_throughput sql_parse)
# "<bench label>:<metric key>" — the headline metrics the gate tracks.
# publish_sharded_eps is snapshot publications per second on a 10k-point
# sharded spatial index (elements=1 per publish cycle).
# replica_apply_eps is generations applied per second through
# PqoService::apply_generation (decode + install + publish): the replica
# must apply faster than the primary publishes for lag to stay bounded.
# policy_scr_eps is warm-cache get_plan throughput under SCR through the
# enum-dispatched policy seam — the policy-layer refactor must not tax the
# hot reuse path.
# sql_parse_eps is full pqo-sql compiles (directives + parse + catalog
# bind) per second over the committed templates/ fixture corpus — the
# per-file cost the server pays at --templates-dir startup.
headline=(
    "service_throughput/get_plan_readmostly/8_threads:read_mostly_eps"
    "batch_throughput/get_plan_batch32/8_threads:batch_eps"
    "net_throughput/get_plan/8_threads:net_eps"
    "net_throughput/get_plan_batch32/8_threads:net_batch_eps"
    "spatial_publish/sharded/10k:publish_sharded_eps"
    "replication/replica_apply/delta_chain:replica_apply_eps"
    "policy_throughput/SCR2:policy_scr_eps"
    "sql_parse/compile/corpus:sql_parse_eps"
)

log="$(mktemp)"
trap 'rm -f "$log"' EXIT

echo "bench gate: ${runs} quick run(s) of: ${benches[*]}"
cargo build --release --offline -p pqo-bench --benches >/dev/null

for ((i = 1; i <= runs; i++)); do
    for b in "${benches[@]}"; do
        # `cargo test --bench` executes the harness=false binary with no
        # --bench flag, which selects the single-shot quick mode.
        cargo test --release -q --offline -p pqo-bench --bench "$b" >>"$log"
    done
done

json_metrics=""
fail=0
for entry in "${headline[@]}"; do
    label="${entry%%:*}"
    key="${entry##*:}"
    best="$(awk -v lbl="$label" '
        $1 == lbl { for (i = 2; i <= NF; i++) if ($i == "elem/s" && $(i-1) > best) best = $(i-1) }
        END { printf "%.0f", best }' "$log")"
    if [ -z "$best" ] || [ "$best" = "0" ]; then
        echo "bench gate: FAIL — no elem/s output for ${label}" >&2
        exit 1
    fi
    json_metrics="${json_metrics}    \"${key}\": ${best},\n"

    base=""
    if [ -f "$baseline" ]; then
        base="$(sed -n 's/.*"'"$key"'":[[:space:]]*\([0-9][0-9.]*\).*/\1/p' "$baseline" | head -n1)"
    fi
    if [ -n "${PQO_BENCH_WRITE_BASELINE:-}" ] || [ -z "$base" ]; then
        printf '%-52s %12s elem/s  (no baseline)\n' "$label" "$best"
        continue
    fi
    verdict="$(awk -v cur="$best" -v base="$base" \
        'BEGIN { print (cur + 0 < 0.75 * base) ? "REGRESSED" : "ok" }')"
    printf '%-52s %12s elem/s  vs baseline %12s  %s\n' "$label" "$best" "$base" "$verdict"
    if [ "$verdict" = "REGRESSED" ]; then
        fail=1
    fi
done

{
    echo "{"
    echo "  \"date\": \"$(date +%Y-%m-%d)\","
    echo "  \"mode\": \"quick\","
    echo "  \"runs\": ${runs},"
    echo "  \"metrics\": {"
    printf '%b' "$json_metrics" | sed '$s/,$//'
    echo "  }"
    echo "}"
} >"$out"
echo "bench gate: wrote ${out}"

if [ -n "${PQO_BENCH_WRITE_BASELINE:-}" ]; then
    {
        echo "{"
        printf '%b' "$json_metrics" | sed '$s/,$//' | sed 's/^    /  /'
        echo "}"
    } >"$baseline"
    echo "bench gate: refreshed baseline ${baseline}"
    exit 0
fi

if [ "$fail" -ne 0 ]; then
    echo "bench gate: FAIL — headline metric regressed more than 25% vs ${baseline}" >&2
    exit 1
fi
echo "bench gate: ok (all headline metrics within 25% of baseline)"
