#!/usr/bin/env bash
# Local CI gate: everything runs offline against the vendored workspace.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> microbench smoke (quick mode, includes service/batch throughput)"
# Running the harness=false bench binaries through `cargo test` omits the
# --bench flag, so each microbench executes once in quick smoke mode —
# catching bench bit-rot (and serving-layer wedges like a reader blocking
# behind the writer lock) without paying for full measurement.
cargo test -q --offline -p pqo-bench --benches

echo "==> network serving smoke (loopback server + client oracle diff)"
# End-to-end over a real socket: start the TCP server on an ephemeral
# port, replay a seeded workload through `pqo client --check true` (which
# diffs every wire decision against an in-process SCR oracle), then
# exercise graceful shutdown and verify the cache snapshot was flushed.
net_tmp="$(mktemp -d)"
trap 'rm -rf "$net_tmp"' EXIT
./target/release/pqo serve --listen 127.0.0.1:0 \
    --template tpch_skew_A_d2 --snapshot-dir "$net_tmp" \
    > "$net_tmp/server.log" 2>&1 &
net_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$net_tmp/server.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address"; cat "$net_tmp/server.log"; exit 1; }
./target/release/pqo client --connect "$addr" \
    --template tpch_skew_A_d2 --m 300 --batch 8 --check true \
    | grep "oracle check        : OK"
./target/release/pqo client --connect "$addr" --op shutdown
wait "$net_pid"
[ -s "$net_tmp/tpch_skew_A_d2.pqo-cache" ] \
    || { echo "graceful shutdown did not flush the cache snapshot"; exit 1; }
grep -q "snapshots flushed   : 1" "$net_tmp/server.log" \
    || { echo "server exit summary missing snapshot flush"; cat "$net_tmp/server.log"; exit 1; }

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
