#!/usr/bin/env bash
# Local CI gate: everything runs offline against the vendored workspace.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> microbench smoke (quick mode, includes service/batch throughput)"
# Running the harness=false bench binaries through `cargo test` omits the
# --bench flag, so each microbench executes once in quick smoke mode —
# catching bench bit-rot (and serving-layer wedges like a reader blocking
# behind the writer lock) without paying for full measurement.
cargo test -q --offline -p pqo-bench --benches

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
