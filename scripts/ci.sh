#!/usr/bin/env bash
# Local CI gate: everything runs offline against the vendored workspace.
# Usage: scripts/ci.sh
#   PQO_BENCH_GATE=1 scripts/ci.sh   additionally runs the bench regression
#                                    gate (scripts/bench_gate.sh)
set -euo pipefail
cd "$(dirname "$0")/.."

# Every background server/client pid is recorded here so the EXIT trap can
# reap it. Without this, a client panic between launch and `--op shutdown`
# would orphan the server and wedge the next CI run on the same port.
net_tmp=""
hc_tmp=""
repl_tmp=""
pol_tmp=""
sf_tmp=""
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        if [ -n "$pid" ]; then
            kill "$pid" 2>/dev/null || true
        fi
    done
    if [ -n "$net_tmp" ]; then rm -rf "$net_tmp"; fi
    if [ -n "$hc_tmp" ]; then rm -rf "$hc_tmp"; fi
    if [ -n "$repl_tmp" ]; then rm -rf "$repl_tmp"; fi
    if [ -n "$pol_tmp" ]; then rm -rf "$pol_tmp"; fi
    if [ -n "$sf_tmp" ]; then rm -rf "$sf_tmp"; fi
}
trap cleanup EXIT

echo "==> cargo build --release (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> spatial index oracle equivalence (sharded vs brute-force)"
# The sharded-index refactor's core invariant, run as its own stage so a
# divergence is named in CI output: within/nearest result streams must be
# bitwise identical to a linear-scan oracle on every index path.
cargo test -q --offline --test spatial_oracle

echo "==> microbench smoke (quick mode, includes service/batch throughput)"
# Running the harness=false bench binaries through `cargo test` omits the
# --bench flag, so each microbench executes once in quick smoke mode —
# catching bench bit-rot (and serving-layer wedges like a reader blocking
# behind the writer lock) without paying for full measurement.
cargo test -q --offline -p pqo-bench --benches

echo "==> network serving smoke (loopback server + client oracle diff)"
# End-to-end over a real socket: start the TCP server on an ephemeral
# port, replay a seeded workload through `pqo client --check true` (which
# diffs every wire decision against an in-process SCR oracle), then
# exercise graceful shutdown and verify the cache snapshot was flushed.
net_tmp="$(mktemp -d)"
./target/release/pqo serve --listen 127.0.0.1:0 \
    --template tpch_skew_A_d2 --snapshot-dir "$net_tmp" \
    > "$net_tmp/server.log" 2>&1 &
net_pid=$!
pids+=("$net_pid")
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$net_tmp/server.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "server never reported its address"; cat "$net_tmp/server.log"; exit 1; }
./target/release/pqo client --connect "$addr" \
    --template tpch_skew_A_d2 --m 300 --batch 8 --check true \
    | grep "oracle check        : OK"
./target/release/pqo client --connect "$addr" --op shutdown
wait "$net_pid"
[ -s "$net_tmp/tpch_skew_A_d2.pqo-cache" ] \
    || { echo "graceful shutdown did not flush the cache snapshot"; exit 1; }
grep -q "snapshots flushed   : 1" "$net_tmp/server.log" \
    || { echo "server exit summary missing snapshot flush"; cat "$net_tmp/server.log"; exit 1; }

echo "==> high-connection smoke (256 idle + 8 active checked clients)"
# The event-loop core must keep serving while hundreds of idle sockets sit
# in the readiness set: hold 256 raw idle connections, then run 8 oracle-
# checked clients (one per template) through the same server, and verify
# graceful shutdown still flushes every snapshot.
hc_tmp="$(mktemp -d)"
hc_ids="tpch_skew_A_d2,tpch_skew_B_d2,tpch_skew_C_d2,tpch_skew_D_d2,tpch_skew_F_d2,tpcds_V_d2,tpcds_G_d2,tpcds_G_d3"
./target/release/pqo serve --listen 127.0.0.1:0 \
    --template "$hc_ids" --snapshot-dir "$hc_tmp" \
    --max-conns 300 --workers 2 \
    > "$hc_tmp/server.log" 2>&1 &
hc_pid=$!
pids+=("$hc_pid")
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$hc_tmp/server.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "hc server never reported its address"; cat "$hc_tmp/server.log"; exit 1; }
./target/release/pqo client --connect "$addr" --op idle \
    --conns 256 --hold-ms 120000 > "$hc_tmp/idle.log" 2>&1 &
idle_pid=$!
pids+=("$idle_pid")
for _ in $(seq 1 100); do
    grep -q "holding 256 idle connections" "$hc_tmp/idle.log" && break
    sleep 0.1
done
grep -q "holding 256 idle connections" "$hc_tmp/idle.log" \
    || { echo "idle holder never connected"; cat "$hc_tmp/idle.log"; exit 1; }
for id in ${hc_ids//,/ }; do
    ./target/release/pqo client --connect "$addr" \
        --template "$id" --m 120 --batch 4 --check true \
        | grep "oracle check        : OK" \
        || { echo "oracle check failed for $id under idle load"; exit 1; }
done
./target/release/pqo client --connect "$addr" --op shutdown
wait "$hc_pid"
kill "$idle_pid" 2>/dev/null || true
for id in ${hc_ids//,/ }; do
    [ -s "$hc_tmp/$id.pqo-cache" ] \
        || { echo "snapshot missing for $id after graceful drain"; exit 1; }
done
grep -q "snapshots flushed   : 8" "$hc_tmp/server.log" \
    || { echo "hc exit summary missing snapshot flushes"; cat "$hc_tmp/server.log"; exit 1; }
hc_peak="$(sed -n 's/^peak connections    : //p' "$hc_tmp/server.log")"
[ -n "$hc_peak" ] && [ "$hc_peak" -ge 257 ] \
    || { echo "peak connections ${hc_peak:-?} < 257: idle sockets not held"; cat "$hc_tmp/server.log"; exit 1; }

echo "==> replication smoke (primary + replica, primary killed mid-run)"
# Two real processes over loopback: a primary and a replica subscribed to
# its generation log. The oracle-checked workload flows through the
# *replica* (hits served from its applied generation, misses forwarded),
# then the primary is killed hard and the replica must keep serving its
# last applied generation — same plan, no re-optimization, no crash.
repl_tmp="$(mktemp -d)"
repl_id="tpch_skew_B_d2"
./target/release/pqo serve --listen 127.0.0.1:0 --template "$repl_id" \
    --primary > "$repl_tmp/primary.log" 2>&1 &
repl_ppid=$!
pids+=("$repl_ppid")
paddr=""
for _ in $(seq 1 100); do
    paddr="$(sed -n 's/^listening on //p' "$repl_tmp/primary.log")"
    [ -n "$paddr" ] && break
    sleep 0.1
done
[ -n "$paddr" ] || { echo "primary never reported its address"; cat "$repl_tmp/primary.log"; exit 1; }
./target/release/pqo serve --listen 127.0.0.1:0 --template "$repl_id" \
    --replica-of "$paddr" > "$repl_tmp/replica.log" 2>&1 &
repl_rpid=$!
pids+=("$repl_rpid")
raddr=""
for _ in $(seq 1 100); do
    raddr="$(sed -n 's/^listening on //p' "$repl_tmp/replica.log")"
    [ -n "$raddr" ] && break
    sleep 0.1
done
[ -n "$raddr" ] || { echo "replica never reported its address"; cat "$repl_tmp/replica.log"; exit 1; }
grep -q "role: replica of" "$repl_tmp/replica.log" \
    || { echo "replica did not announce its role"; cat "$repl_tmp/replica.log"; exit 1; }
# The wire decision stream through the replica must equal the in-process
# oracle — the location-transparency guarantee, end to end over TCP.
./target/release/pqo client --connect "$raddr" \
    --template "$repl_id" --m 200 --batch 4 --check true \
    | grep "oracle check        : OK" \
    || { echo "oracle check through the replica failed"; exit 1; }
# Warm one specific instance through the replica (forwarded to the primary
# and applied locally before the reply), remembering the plan it got...
./target/release/pqo client --connect "$raddr" \
    --template "$repl_id" --op plan --sel 0.42,0.61 > "$repl_tmp/before.txt"
./target/release/pqo client --connect "$raddr" \
    --op follow-lag --template "$repl_id" --count 1 | grep -q " lag 0 " \
    || { echo "replica still lagging after checked workload"; exit 1; }
# ...then kill the primary hard: the replica must keep serving the same
# plan from its last applied generation, without re-optimizing.
kill -9 "$repl_ppid" 2>/dev/null || true
wait "$repl_ppid" 2>/dev/null || true
./target/release/pqo client --connect "$raddr" \
    --template "$repl_id" --op plan --sel 0.42,0.61 > "$repl_tmp/after.txt"
diff <(grep '^plan' "$repl_tmp/before.txt") <(grep '^plan' "$repl_tmp/after.txt") \
    || { echo "replica changed its plan after primary death"; cat "$repl_tmp/after.txt"; exit 1; }
grep -q "optimized : false" "$repl_tmp/after.txt" \
    || { echo "replica re-optimized a warm instance after primary death"; cat "$repl_tmp/after.txt"; exit 1; }
./target/release/pqo client --connect "$raddr" --op shutdown
wait "$repl_rpid"
grep -Eq "generations applied : [1-9]" "$repl_tmp/replica.log" \
    || { echo "replica exit summary shows no applied generations"; cat "$repl_tmp/replica.log"; exit 1; }

echo "==> policy matrix smoke (scr | lec | penalty served end-to-end)"
# Every serving policy must survive the same loopback drill: serve it,
# replay an oracle-checked workload (the in-process oracle runs the same
# --policy), and shut down cleanly. The server must announce the policy it
# serves so operators can tell the deployments apart.
pol_tmp="$(mktemp -d)"
pol_id="tpch_skew_B_d2"
for pol in scr lec penalty; do
    ./target/release/pqo serve --listen 127.0.0.1:0 --template "$pol_id" \
        --policy "$pol" > "$pol_tmp/$pol.log" 2>&1 &
    pol_pid=$!
    pids+=("$pol_pid")
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$pol_tmp/$pol.log")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "$pol server never reported its address"; cat "$pol_tmp/$pol.log"; exit 1; }
    grep -q "(policy: $pol)" "$pol_tmp/$pol.log" \
        || { echo "$pol server did not announce its policy"; cat "$pol_tmp/$pol.log"; exit 1; }
    ./target/release/pqo client --connect "$addr" \
        --template "$pol_id" --m 200 --batch 4 --check true --policy "$pol" \
        | grep "oracle check        : OK" \
        || { echo "oracle check failed under policy $pol"; exit 1; }
    ./target/release/pqo client --connect "$addr" --op shutdown
    wait "$pol_pid"
done
# One non-SCR policy through the replicated stack: an LEC primary feeding
# an LEC replica, oracle-checked through the replica.
./target/release/pqo serve --listen 127.0.0.1:0 --template "$pol_id" \
    --policy lec --primary > "$pol_tmp/lec_primary.log" 2>&1 &
pol_ppid=$!
pids+=("$pol_ppid")
paddr=""
for _ in $(seq 1 100); do
    paddr="$(sed -n 's/^listening on //p' "$pol_tmp/lec_primary.log")"
    [ -n "$paddr" ] && break
    sleep 0.1
done
[ -n "$paddr" ] || { echo "lec primary never reported its address"; cat "$pol_tmp/lec_primary.log"; exit 1; }
./target/release/pqo serve --listen 127.0.0.1:0 --template "$pol_id" \
    --policy lec --replica-of "$paddr" > "$pol_tmp/lec_replica.log" 2>&1 &
pol_rpid=$!
pids+=("$pol_rpid")
raddr=""
for _ in $(seq 1 100); do
    raddr="$(sed -n 's/^listening on //p' "$pol_tmp/lec_replica.log")"
    [ -n "$raddr" ] && break
    sleep 0.1
done
[ -n "$raddr" ] || { echo "lec replica never reported its address"; cat "$pol_tmp/lec_replica.log"; exit 1; }
grep -q "role: replica of" "$pol_tmp/lec_replica.log" \
    || { echo "lec replica did not announce its role"; cat "$pol_tmp/lec_replica.log"; exit 1; }
./target/release/pqo client --connect "$raddr" \
    --template "$pol_id" --m 200 --batch 4 --check true --policy lec \
    | grep "oracle check        : OK" \
    || { echo "oracle check through the lec replica failed"; exit 1; }
./target/release/pqo client --connect "$raddr" --op shutdown
wait "$pol_rpid"
./target/release/pqo client --connect "$paddr" --op shutdown
wait "$pol_ppid"
grep -Eq "generations applied : [1-9]" "$pol_tmp/lec_replica.log" \
    || { echo "lec replica exit summary shows no applied generations"; cat "$pol_tmp/lec_replica.log"; exit 1; }

echo "==> sql-frontend smoke (templates-dir serving across three dialects)"
# The SQL frontend end to end: serve every committed .sql fixture from
# templates/ (the corpus spans postgres, mysql and duckdb), replay an
# oracle-checked workload against one template per dialect (the client
# compiles the same .sql file into its in-process oracle), and round-trip
# one --op explain, verifying the reply carries dialect-tagged hinted SQL.
sf_tmp="$(mktemp -d)"
./target/release/pqo serve --listen 127.0.0.1:0 \
    --templates-dir templates > "$sf_tmp/server.log" 2>&1 &
sf_pid=$!
pids+=("$sf_pid")
addr=""
for _ in $(seq 1 600); do
    addr="$(sed -n 's/^listening on //p' "$sf_tmp/server.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "sql server never reported its address"; cat "$sf_tmp/server.log"; exit 1; }
sf_compiled="$(grep -c '^compiled ' "$sf_tmp/server.log")"
[ "$sf_compiled" -ge 10 ] \
    || { echo "expected >=10 compiled templates, got ${sf_compiled}"; cat "$sf_tmp/server.log"; exit 1; }
for d in postgres mysql duckdb; do
    grep -q "($d dialect" "$sf_tmp/server.log" \
        || { echo "no $d-dialect template compiled"; cat "$sf_tmp/server.log"; exit 1; }
done
# One oracle-checked client per dialect: the wire decision stream must be
# byte-identical to an in-process SCR fed the same compiled template.
for f in tpch_orders_lineitem tpch_partsupp_mysql rd2_telemetry; do
    ./target/release/pqo client --connect "$addr" \
        --sql-file "templates/$f.sql" --m 150 --batch 4 --check true \
        | grep "oracle check        : OK" \
        || { echo "oracle check failed for templates/$f.sql"; exit 1; }
done
./target/release/pqo client --connect "$addr" \
    --op explain --sql-file templates/tpch_orders_lineitem.sql \
    --sel 0.4,0.7 --dialect mysql > "$sf_tmp/explain.txt"
grep -q -- "-- dialect: mysql" "$sf_tmp/explain.txt" \
    || { echo "explain reply missing mysql dialect header"; cat "$sf_tmp/explain.txt"; exit 1; }
grep -q -- "-- plan: P" "$sf_tmp/explain.txt" \
    || { echo "explain reply missing plan fingerprint"; cat "$sf_tmp/explain.txt"; exit 1; }
grep -q "SELECT" "$sf_tmp/explain.txt" \
    || { echo "explain reply missing rendered SQL"; cat "$sf_tmp/explain.txt"; exit 1; }
./target/release/pqo client --connect "$addr" --op shutdown
wait "$sf_pid"

if [ -n "${PQO_BENCH_GATE:-}" ]; then
    echo "==> bench regression gate"
    scripts/bench_gate.sh
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
