#!/usr/bin/env bash
# Local CI gate: everything runs offline against the vendored workspace.
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release (all targets)"
cargo build --release --offline --workspace --all-targets

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all green"
