//! Selectivity vectors — the paper's `sVector`.
//!
//! The engine requirement of Section 4.2: *"Given a query instance qc,
//! efficiently compute and return sVector_c."* In a memoizing optimizer this
//! short-circuits the physical search phase and only runs predicate
//! selectivity derivation; here that is a histogram lookup per dimension.
//!
//! The inverse mapping ([`instance_for_target`]) is not an engine API — the
//! workload generator uses it to place instances at chosen points of the
//! selectivity space (Section 7.1's region bucketization).

use pqo_catalog::histogram::MIN_SELECTIVITY;

use crate::template::{QueryInstance, QueryTemplate, RangeOp};

/// The selectivity vector of a query instance: one selectivity per
/// parameterized predicate, each in `[MIN_SELECTIVITY, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SVector(pub Vec<f64>);

impl SVector {
    /// Dimensionality.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty (0-dimensional template).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Selectivity of dimension `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.0[i]
    }

    /// Per-dimension selectivity ratios `αi = si(qc) / si(qe)` of `self`
    /// (playing `qc`) relative to `other` (playing `qe`).
    pub fn ratios(&self, other: &SVector) -> Vec<f64> {
        debug_assert_eq!(self.len(), other.len());
        self.0.iter().zip(&other.0).map(|(c, e)| c / e).collect()
    }

    /// The paper's `G` and `L` factors (Section 5.3): `G = ∏_{αi>1} αi` is
    /// the net cost increment factor, `L = ∏_{αi<1} 1/αi` the net decrement
    /// factor, for `self` = qc relative to `other` = qe.
    ///
    /// ```
    /// use pqo_optimizer::svector::SVector;
    ///
    /// let qe = SVector(vec![0.10, 0.40]);
    /// let qc = SVector(vec![0.20, 0.10]); // α = (2.0, 0.25)
    /// let (g, l) = qc.g_and_l(&qe);
    /// assert_eq!(g, 2.0);
    /// assert_eq!(l, 4.0);
    /// // Theorem 1: SubOpt(Pe, qc) < G·L (= 8 here) under BCG.
    /// ```
    pub fn g_and_l(&self, other: &SVector) -> (f64, f64) {
        let mut g = 1.0;
        let mut l = 1.0;
        for (c, e) in self.0.iter().zip(&other.0) {
            let alpha = c / e;
            if alpha > 1.0 {
                g *= alpha;
            } else if alpha < 1.0 {
                l /= alpha;
            }
        }
        (g, l)
    }

    /// Whether `self` dominates `other` component-wise (every selectivity
    /// >= the other's). Used by the PCM baseline.
    pub fn dominates(&self, other: &SVector) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// Euclidean distance in selectivity space (used by Ellipse/Density).
    pub fn distance(&self, other: &SVector) -> f64 {
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Compute the selectivity vector of `instance` under `template`.
pub fn compute_svector(template: &QueryTemplate, instance: &QueryInstance) -> SVector {
    assert_eq!(
        instance.values.len(),
        template.dimensions(),
        "instance arity does not match template `{}`",
        template.name
    );
    let sels = template
        .param_preds
        .iter()
        .zip(&instance.values)
        .map(|(p, &v)| {
            let hist = &template.relations[p.relation].table.columns[p.column]
                .stats
                .histogram;
            match p.op {
                RangeOp::Le => hist.selectivity_le(v),
                RangeOp::Ge => hist.selectivity_ge(v),
            }
        })
        .collect();
    SVector(sels)
}

/// Construct an instance whose selectivity vector approximates `target`
/// (inverse of [`compute_svector`], up to histogram quantization).
///
/// Parameter values are snapped to the column's distinct-value grid: real
/// parameters can only take values the column actually contains, so columns
/// with few distinct values yield few distinct selectivities. This is what
/// makes repeated selectivities (and therefore plan reuse) realistic for
/// high-dimensional templates.
pub fn instance_for_target(template: &QueryTemplate, target: &[f64]) -> QueryInstance {
    assert_eq!(target.len(), template.dimensions());
    let values = template
        .param_preds
        .iter()
        .zip(target)
        .map(|(p, &s)| {
            let s = s.clamp(MIN_SELECTIVITY, 1.0);
            let col = &template.relations[p.relation].table.columns[p.column];
            let hist = &col.stats.histogram;
            let v = match p.op {
                RangeOp::Le => hist.quantile(s),
                RangeOp::Ge => hist.quantile(1.0 - s),
            };
            snap_to_value_grid(v, hist.min(), hist.max(), col.stats.ndv)
        })
        .collect();
    QueryInstance::new(values)
}

/// Round `v` to the nearest point of a uniform `ndv`-point grid over
/// `[min, max]` — the closest synthetic stand-in for "the column contains
/// only `ndv` distinct values".
fn snap_to_value_grid(v: f64, min: f64, max: f64, ndv: u64) -> f64 {
    if ndv == 0 || max <= min {
        return v;
    }
    let step = (max - min) / ndv as f64;
    (min + ((v - min) / step).round() * step).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::test_fixtures;
    use pqo_rand::rngs::StdRng;
    use pqo_rand::{Rng, SeedableRng};

    #[test]
    fn svector_roundtrip() {
        let t = test_fixtures::two_dim();
        let target = [0.1, 0.4];
        let inst = instance_for_target(&t, &target);
        let sv = compute_svector(&t, &inst);
        for (got, want) in sv.0.iter().zip(target) {
            assert!((got - want).abs() < 0.02, "got {got} want {want}");
        }
    }

    #[test]
    fn ge_predicates_invert_correctly() {
        let t = test_fixtures::three_dim(); // dim 2 is Ge on l_shipdate
        let inst = instance_for_target(&t, &[0.5, 0.5, 0.2]);
        let sv = compute_svector(&t, &inst);
        assert!((sv.get(2) - 0.2).abs() < 0.02, "ge sel {}", sv.get(2));
    }

    #[test]
    fn g_and_l_basic() {
        let a = SVector(vec![0.2, 0.1]);
        let b = SVector(vec![0.1, 0.2]);
        // relative to b: α = (2.0, 0.5) → G = 2, L = 2
        let (g, l) = a.g_and_l(&b);
        assert!((g - 2.0).abs() < 1e-12);
        assert!((l - 2.0).abs() < 1e-12);
        // identical vectors → G = L = 1
        let (g, l) = a.g_and_l(&a);
        assert_eq!((g, l), (1.0, 1.0));
    }

    #[test]
    fn dominates_and_distance() {
        let a = SVector(vec![0.5, 0.5]);
        let b = SVector(vec![0.4, 0.5]);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        assert!(a.dominates(&a));
        assert!((a.distance(&b) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let t = test_fixtures::two_dim();
        compute_svector(&t, &QueryInstance::new(vec![1.0]));
    }

    fn random_sv(rng: &mut StdRng, dims: usize) -> Vec<f64> {
        (0..dims).map(|_| rng.gen_range(0.001..1.0)).collect()
    }

    #[test]
    fn g_l_are_at_least_one_randomized() {
        let mut rng = StdRng::seed_from_u64(0x5ec7_0001);
        for _ in 0..256 {
            let a = random_sv(&mut rng, 4);
            let b = random_sv(&mut rng, 4);
            let (g, l) = SVector(a).g_and_l(&SVector(b));
            assert!(g >= 1.0);
            assert!(l >= 1.0);
        }
    }

    #[test]
    fn g_l_swap_roles_randomized() {
        // Swapping qc and qe swaps the roles of G and L.
        let mut rng = StdRng::seed_from_u64(0x5ec7_0002);
        for _ in 0..256 {
            let a = random_sv(&mut rng, 3);
            let b = random_sv(&mut rng, 3);
            let (g1, l1) = SVector(a.clone()).g_and_l(&SVector(b.clone()));
            let (g2, l2) = SVector(b).g_and_l(&SVector(a));
            assert!((g1 - l2).abs() < 1e-9 * g1.max(1.0));
            assert!((l1 - g2).abs() < 1e-9 * l1.max(1.0));
        }
    }

    #[test]
    fn computed_selectivities_in_unit_interval_randomized() {
        let t = test_fixtures::two_dim();
        let mut rng = StdRng::seed_from_u64(0x5ec7_0003);
        for _ in 0..64 {
            let raw: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..1.0)).collect();
            let inst = instance_for_target(&t, &raw);
            let sv = compute_svector(&t, &inst);
            for s in &sv.0 {
                assert!(*s > 0.0 && *s <= 1.0);
            }
        }
    }
}
