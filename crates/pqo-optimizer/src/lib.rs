//! A cost-based query optimizer substrate with the two engine APIs the paper
//! requires (Section 4.2): **selectivity-vector computation** and **plan
//! re-costing**.
//!
//! The paper's prototype extends the Microsoft SQL Server optimizer
//! (Cascades). No open-source optimizer exposes an efficient Recost API, so
//! this crate implements the substrate from scratch:
//!
//! * [`template`] — parameterized query templates: a join graph over catalog
//!   tables with `d` parameterized one-sided range predicates (the paper's
//!   "dimensions").
//! * [`svector`] — computing the selectivity vector of an instance from
//!   histograms, and the inverse (placing an instance at a target vector).
//! * [`cost`] — the cost model: per-operator formulas with I/O + CPU terms
//!   and memory-spill discontinuities (the realistic wrinkle behind the rare
//!   BCG violations of Section 7.2).
//! * [`plan`] — physical plan trees with structural fingerprints (plan
//!   identity across instances).
//! * [`optimizer`] — dynamic programming over connected join subsets with
//!   physical alternatives per group (the memo); returns the optimal plan.
//! * [`recost`] — the Recost API: re-derive cardinalities and cost of a
//!   frozen plan bottom-up for new selectivities, without plan search
//!   (the paper's `shrunkenMemo` re-derivation, Appendix B).
//! * [`compact`] — the Appendix B alternative: a byte-encoded plan
//!   representation re-costed by a stack machine (less memory, more time
//!   per Recost call).
//! * [`diagram`] — plan diagrams over the selectivity space (reference
//!   [18]), used to analyze plan density.
//! * [`engine`] — [`engine::QueryEngine`], the façade every PQO technique
//!   talks to, with call counters and latency accounting.
//! * [`error`] — [`error::PqoError`], the typed error returned by public
//!   entry points across the workspace instead of panicking on misuse.

pub mod compact;
pub mod cost;
pub mod diagram;
pub mod engine;
pub mod error;
pub mod optimizer;
pub mod plan;
pub mod recost;
pub mod svector;
pub mod template;

pub use engine::{EngineStats, QueryEngine};
pub use error::PqoError;
pub use plan::{Plan, PlanFingerprint, PlanNode, PlanOp};
pub use svector::SVector;
pub use template::{QueryInstance, QueryTemplate};
