//! The workspace-wide typed error for public serving APIs.
//!
//! Policy (see DESIGN.md "Serving layer"): *misuse of a public API returns a
//! typed error; panics are reserved for internal cache/memo invariants.*
//! [`PqoError`] lives in this crate — the lowest layer that both the
//! optimizer substrate and `pqo-core`'s serving stack can name — so one
//! error type flows unchanged from `TemplateBuilder::try_build` all the way
//! up through `PqoService::get_plan`.

/// Error returned by public entry points across `pqo-optimizer` and
/// `pqo-core` instead of panicking on misuse.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PqoError {
    /// `get_plan`/lookup named a template that was never registered.
    UnknownTemplate {
        /// The unregistered name.
        name: String,
    },
    /// `register` named a template that is already registered.
    DuplicateTemplate {
        /// The already-registered name.
        name: String,
    },
    /// A sub-optimality bound outside `[1, ∞)` (or non-finite).
    InvalidLambda {
        /// The rejected value.
        lambda: f64,
        /// Which knob was invalid (`"λ"`, `"λr"`, `"dynamic λ"`).
        what: &'static str,
    },
    /// A plan budget of zero (a cache must be allowed to hold one plan).
    InvalidBudget {
        /// The rejected budget.
        budget: usize,
    },
    /// A structurally invalid query template (disconnected join graph,
    /// unknown column, too many relations, ...).
    InvalidTemplate {
        /// Template name.
        name: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Loading or saving persisted cache state failed.
    Persist {
        /// Human-readable cause (I/O failure, bad header, corrupt section).
        message: String,
    },
    /// A snapshot or replication stream was produced under a different
    /// plan-selection policy than this service runs. Policies shape cache
    /// contents (which plans are admitted, which entries survive), so
    /// silently mixing them would poison the guarantee; the mismatch is a
    /// typed error the operator must resolve explicitly.
    PolicyMismatch {
        /// The policy this service is configured with.
        expected: String,
        /// The policy carried by the snapshot or stream.
        found: String,
    },
}

impl std::fmt::Display for PqoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PqoError::UnknownTemplate { name } => {
                write!(f, "template `{name}` is not registered")
            }
            PqoError::DuplicateTemplate { name } => {
                write!(f, "template `{name}` is already registered")
            }
            PqoError::InvalidLambda { lambda, what } => {
                write!(
                    f,
                    "invalid {what} = {lambda}: bounds must be finite and ≥ 1 (λr ≥ 0)"
                )
            }
            PqoError::InvalidBudget { budget } => {
                write!(f, "invalid plan budget {budget}: must be ≥ 1")
            }
            PqoError::InvalidTemplate { name, reason } => {
                write!(f, "invalid template `{name}`: {reason}")
            }
            PqoError::Persist { message } => write!(f, "persistence error: {message}"),
            PqoError::PolicyMismatch { expected, found } => write!(
                f,
                "policy mismatch: this service runs `{expected}` but the snapshot/stream carries `{found}`"
            ),
        }
    }
}

impl std::error::Error for PqoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offender() {
        let e = PqoError::UnknownTemplate { name: "q42".into() };
        assert!(e.to_string().contains("q42"));
        let e = PqoError::InvalidLambda {
            lambda: 0.5,
            what: "λ",
        };
        assert!(e.to_string().contains("0.5"));
        let e = PqoError::DuplicateTemplate {
            name: "dash".into(),
        };
        assert!(e.to_string().contains("already"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(PqoError::InvalidBudget { budget: 0 });
        assert!(e.to_string().contains("budget"));
    }

    /// Every variant (the wire layer maps each to a stable error code, so
    /// none may regress silently): `Display` names the offending input,
    /// and the message style is consistent — lowercase start, no trailing
    /// period, single line.
    #[test]
    fn every_variant_displays_consistently() {
        let variants: Vec<(PqoError, &str)> = vec![
            (PqoError::UnknownTemplate { name: "q7".into() }, "q7"),
            (PqoError::DuplicateTemplate { name: "q7".into() }, "q7"),
            (
                PqoError::InvalidLambda {
                    lambda: 0.25,
                    what: "λr",
                },
                "0.25",
            ),
            (PqoError::InvalidBudget { budget: 0 }, "0"),
            (
                PqoError::InvalidTemplate {
                    name: "bad".into(),
                    reason: "disconnected join graph".into(),
                },
                "disconnected join graph",
            ),
            (
                PqoError::Persist {
                    message: "bad magic".into(),
                },
                "bad magic",
            ),
            (
                PqoError::PolicyMismatch {
                    expected: "scr".into(),
                    found: "lec".into(),
                },
                "lec",
            ),
        ];
        for (e, offender) in variants {
            let msg = e.to_string();
            assert!(msg.contains(offender), "{e:?}: `{msg}` omits `{offender}`");
            assert!(
                msg.chars().next().is_some_and(char::is_lowercase),
                "{e:?}: `{msg}` should start lowercase"
            );
            assert!(!msg.ends_with('.'), "{e:?}: `{msg}` has a trailing period");
            assert!(!msg.contains('\n'), "{e:?}: `{msg}` spans lines");
            // The blanket Error impl has no source; the Display text is the
            // whole story, so it must not be empty after the prefix.
            let boxed: Box<dyn std::error::Error> = Box::new(e);
            assert!(boxed.source().is_none());
        }
    }
}
