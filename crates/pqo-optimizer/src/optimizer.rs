//! The cost-based optimizer: dynamic programming over connected join
//! subsets with physical alternatives per group and **interesting-order**
//! tracking.
//!
//! This plays the role of the paper's (Cascades-based) SQL Server optimizer.
//! The memo is the DP table: one group per connected subset of relations
//! and required physical property (unsorted, or sorted by one of the join
//! keys), each holding logical properties (cardinality) and the winning
//! physical expression. Physical alternatives considered:
//!
//! * scans: sequential scan, an index seek on any indexed parameterized
//!   column, or a full *sorted index scan* on an indexed join column
//!   (delivers an interesting order);
//! * joins, for every connected partition of the subset: hash join (either
//!   build side), index nested-loops when one side is a base relation with
//!   an index on its join column, and merge join per crossing edge —
//!   consuming children sorted on the edge's keys, with explicit `Sort`
//!   enforcers planned when no sorted alternative wins;
//! * on top of the full join: hash vs. stream aggregation, then a final
//!   sort for ORDER BY.
//!
//! The returned plan's cost is computed through [`crate::recost`] so that
//! `optimize(q).cost == recost(plan, q)` holds exactly — the invariant that
//! makes the paper's sub-optimality accounting consistent.

use crate::cost::CostModel;
use crate::plan::{Plan, PlanNode, PlanOp};
use crate::recost::{self, BaseDerivation};
use crate::svector::SVector;
use crate::template::QueryTemplate;

/// Result of one optimizer call.
#[derive(Debug, Clone)]
pub struct OptimizeResult {
    /// The optimal plan.
    pub plan: Plan,
    /// Its estimated cost at the optimized selectivities.
    pub cost: f64,
    /// Number of (subset × property) memo groups with a winner.
    pub groups_explored: usize,
    /// Number of physical alternatives costed during the search.
    pub alternatives_costed: usize,
}

/// Physical property index: 0 = no required order, `k + 1` = sorted by
/// join-key `k` (an entry of the template's distinct join-column list).
type Prop = usize;

/// The winning physical expression of one memo group.
#[derive(Debug, Clone)]
enum Choice {
    SeqScan {
        relation: usize,
    },
    IndexSeek {
        relation: usize,
        seek_pred: usize,
    },
    SortedIndexScan {
        relation: usize,
        column: usize,
    },
    /// Explicit sort enforcer over the subset's unordered winner.
    Enforce,
    HashJoin {
        left: u32,
        right: u32,
        build_left: bool,
        edges: Vec<usize>,
    },
    MergeJoin {
        left: u32,
        right: u32,
        left_prop: Prop,
        right_prop: Prop,
        merge_edge: usize,
        edges: Vec<usize>,
    },
    IndexNlj {
        outer: u32,
        inner: usize,
        seek_edge: usize,
        edges: Vec<usize>,
    },
}

#[derive(Debug, Clone)]
struct Group {
    cost: f64,
    choice: Choice,
}

/// Search-space description shared by the DP and plan extraction.
struct Search {
    /// Distinct join-key columns `(relation, column)`; index = key id.
    keys: Vec<(usize, usize)>,
    /// `groups[mask][prop]`.
    groups: Vec<Vec<Option<Group>>>,
}

impl Search {
    fn key_id(&self, rel: usize, col: usize) -> Option<usize> {
        self.keys.iter().position(|&(r, c)| (r, c) == (rel, col))
    }
}

/// Optimize `template` at the selectivities `sv`.
///
/// # Panics
/// Panics if the template has more than 16 relations or `sv` has the wrong
/// arity.
pub fn optimize(template: &QueryTemplate, model: &CostModel, sv: &SVector) -> OptimizeResult {
    let n = template.num_relations();
    assert!(n <= 16, "optimizer supports at most 16 relations");
    let base = BaseDerivation::new(template, sv);
    let full = template.full_relation_set();
    let mut alternatives = 0usize;

    // Distinct join-key columns define the interesting orders.
    let mut keys: Vec<(usize, usize)> = Vec::new();
    for e in &template.join_edges {
        for &(r, c) in &[e.left, e.right] {
            if !keys.contains(&(r, c)) {
                keys.push((r, c));
            }
        }
    }
    let nprops = keys.len() + 1;

    // Logical property: output cardinality per relation subset. A pure
    // product, so it factorizes identically over any join split.
    let mut rows = vec![0.0f64; (full as usize) + 1];
    for mask in 1..=full {
        let mut r = 1.0;
        for rel in 0..n {
            if mask & (1 << rel) != 0 {
                r *= base.base_rows[rel];
            }
        }
        for e in &template.join_edges {
            if mask & (1 << e.left.0) != 0 && mask & (1 << e.right.0) != 0 {
                r *= e.selectivity;
            }
        }
        rows[mask as usize] = r;
    }

    let mut search = Search {
        keys,
        groups: (0..=full as usize).map(|_| vec![None; nprops]).collect(),
    };

    // Helper: offer an alternative for (mask, prop).
    fn consider(
        groups: &mut [Vec<Option<Group>>],
        mask: u32,
        prop: Prop,
        cost: f64,
        choice: Choice,
    ) {
        let slot = &mut groups[mask as usize][prop];
        if slot.as_ref().is_none_or(|g| cost < g.cost) {
            *slot = Some(Group { cost, choice });
        }
    }

    // Singleton groups: scan alternatives.
    for rel in 0..n {
        let mask = 1u32 << rel;
        let t = &template.relations[rel].table;
        let trows = t.row_count as f64;
        let pages = t.page_count as f64;
        alternatives += 1;
        consider(
            &mut search.groups,
            mask,
            0,
            model.seq_scan(pages, trows, base.pred_count[rel]),
            Choice::SeqScan { relation: rel },
        );
        for p in template.param_preds_on(rel) {
            let col = template.param_preds[p].column;
            if t.columns[col].indexed {
                let fetch = trows * sv.get(p);
                alternatives += 1;
                consider(
                    &mut search.groups,
                    mask,
                    0,
                    model.index_seek(trows, fetch, base.pred_count[rel].saturating_sub(1)),
                    Choice::IndexSeek {
                        relation: rel,
                        seek_pred: p,
                    },
                );
            }
        }
        // Sorted scans on indexed join columns: interesting orders.
        for (k, &(kr, kc)) in search.keys.iter().enumerate() {
            if kr == rel && t.columns[kc].indexed {
                let cost = model.sorted_index_scan(pages, trows, base.pred_count[rel]);
                alternatives += 1;
                consider(
                    &mut search.groups,
                    mask,
                    k + 1,
                    cost,
                    Choice::SortedIndexScan {
                        relation: rel,
                        column: kc,
                    },
                );
                consider(
                    &mut search.groups,
                    mask,
                    0,
                    cost,
                    Choice::SortedIndexScan {
                        relation: rel,
                        column: kc,
                    },
                );
            }
        }
        close_with_enforcers(
            &mut search.groups,
            mask,
            nprops,
            rows[mask as usize],
            model,
            &mut alternatives,
        );
    }

    // Composite groups in increasing mask order (submasks are smaller).
    for mask in 1..=full {
        if mask.count_ones() < 2 || !template.is_connected(mask) {
            continue;
        }
        let low = mask & mask.wrapping_neg();
        let out = rows[mask as usize];

        // Enumerate unordered partitions once (s1 always contains `low`).
        let mut s1 = (mask - 1) & mask;
        while s1 > 0 {
            let s2 = mask ^ s1;
            if s1 & low != 0 {
                let have_children = search.groups[s1 as usize][0].is_some()
                    && search.groups[s2 as usize][0].is_some();
                if have_children {
                    let edges: Vec<usize> = template
                        .join_edges
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.crosses(s1, s2))
                        .map(|(i, _)| i)
                        .collect();
                    if !edges.is_empty() {
                        let (r1, r2) = (rows[s1 as usize], rows[s2 as usize]);
                        let c1 = search.groups[s1 as usize][0].as_ref().unwrap().cost;
                        let c2 = search.groups[s2 as usize][0].as_ref().unwrap().cost;

                        // Hash join, both build sides.
                        alternatives += 2;
                        consider(
                            &mut search.groups,
                            mask,
                            0,
                            c1 + c2 + model.hash_join(r1, r2, out),
                            Choice::HashJoin {
                                left: s1,
                                right: s2,
                                build_left: true,
                                edges: edges.clone(),
                            },
                        );
                        consider(
                            &mut search.groups,
                            mask,
                            0,
                            c1 + c2 + model.hash_join(r2, r1, out),
                            Choice::HashJoin {
                                left: s1,
                                right: s2,
                                build_left: false,
                                edges: edges.clone(),
                            },
                        );

                        // Merge join per crossing edge, consuming sorted
                        // children (sorted scans or enforcers).
                        for &e in &edges {
                            let edge = &template.join_edges[e];
                            let (l_side, r_side) = if s1 & (1 << edge.left.0) != 0 {
                                (edge.left, edge.right)
                            } else {
                                (edge.right, edge.left)
                            };
                            let (Some(kl), Some(kr)) = (
                                search.key_id(l_side.0, l_side.1),
                                search.key_id(r_side.0, r_side.1),
                            ) else {
                                continue;
                            };
                            let (Some(gl), Some(gr)) = (
                                search.groups[s1 as usize][kl + 1].as_ref(),
                                search.groups[s2 as usize][kr + 1].as_ref(),
                            ) else {
                                continue;
                            };
                            let cost = gl.cost + gr.cost + model.merge_join(r1, r2, out);
                            alternatives += 1;
                            let choice = Choice::MergeJoin {
                                left: s1,
                                right: s2,
                                left_prop: kl + 1,
                                right_prop: kr + 1,
                                merge_edge: e,
                                edges: edges.clone(),
                            };
                            // Output carries both (equal) join keys' orders.
                            consider(&mut search.groups, mask, 0, cost, choice.clone());
                            consider(&mut search.groups, mask, kl + 1, cost, choice.clone());
                            consider(&mut search.groups, mask, kr + 1, cost, choice);
                        }

                        // Index nested-loops with a singleton inner side.
                        for (inner_mask, outer_mask, outer_cost, outer_rows) in
                            [(s2, s1, c1, r1), (s1, s2, c2, r2)]
                        {
                            if inner_mask.count_ones() != 1 {
                                continue;
                            }
                            let inner = inner_mask.trailing_zeros() as usize;
                            let t = &template.relations[inner].table;
                            for &e in &edges {
                                let Some(col) = template.join_edges[e].column_on(inner) else {
                                    continue;
                                };
                                if !t.columns[col].indexed {
                                    continue;
                                }
                                let lookup =
                                    t.row_count as f64 * template.join_edges[e].selectivity;
                                let residual = base.pred_count[inner] + edges.len() - 1;
                                alternatives += 1;
                                consider(
                                    &mut search.groups,
                                    mask,
                                    0,
                                    outer_cost
                                        + model.index_nlj(
                                            outer_rows,
                                            t.row_count as f64,
                                            lookup,
                                            residual,
                                            out,
                                        ),
                                    Choice::IndexNlj {
                                        outer: outer_mask,
                                        inner,
                                        seek_edge: e,
                                        edges: edges.clone(),
                                    },
                                );
                            }
                        }
                    }
                }
            }
            s1 = (s1 - 1) & mask;
        }
        close_with_enforcers(
            &mut search.groups,
            mask,
            nprops,
            out,
            model,
            &mut alternatives,
        );
    }

    let join_group = search.groups[full as usize][0]
        .as_ref()
        .unwrap_or_else(|| panic!("no plan found for template `{}`", template.name));
    let groups_explored = search
        .groups
        .iter()
        .map(|props| props.iter().filter(|g| g.is_some()).count())
        .sum();

    // Assemble the full plan: join tree, then aggregate, then final sort.
    let mut dp_cost = join_group.cost;
    let mut root = extract(&search, full, 0);
    if let Some(agg) = &template.aggregate {
        let in_rows = rows[full as usize];
        let g = agg.groups.min(in_rows);
        let hash = model.hash_aggregate(in_rows, g);
        let stream = model.stream_aggregate(in_rows, g);
        alternatives += 2;
        if hash <= stream {
            root = PlanNode::internal(PlanOp::HashAggregate, vec![root]);
            dp_cost += hash;
        } else {
            root = PlanNode::internal(PlanOp::StreamAggregate, vec![root]);
            dp_cost += stream;
        }
    }
    if template.order_by {
        let out_rows = template
            .aggregate
            .as_ref()
            .map(|a| a.groups.min(rows[full as usize]))
            .unwrap_or(rows[full as usize]);
        root = PlanNode::internal(PlanOp::Sort { key: None }, vec![root]);
        dp_cost += model.sort(out_rows);
        alternatives += 1;
    }

    let plan = Plan::new(root);
    // Final cost goes through the Recost path so the two agree exactly.
    let cost = recost::recost(template, model, &plan, sv);
    debug_assert!(
        (cost - dp_cost).abs() <= 1e-6 * dp_cost.abs().max(1.0),
        "DP cost {dp_cost} disagrees with recost {cost} for `{}`",
        template.name
    );
    OptimizeResult {
        plan,
        cost,
        groups_explored,
        alternatives_costed: alternatives,
    }
}

/// Close a mask's property winners under the Sort enforcer: any required
/// order can be produced by sorting the unordered winner.
fn close_with_enforcers(
    groups: &mut [Vec<Option<Group>>],
    mask: u32,
    nprops: usize,
    rows: f64,
    model: &CostModel,
    alternatives: &mut usize,
) {
    let Some(base_cost) = groups[mask as usize][0].as_ref().map(|g| g.cost) else {
        return;
    };
    let enforced = base_cost + model.sort(rows);
    for slot in groups[mask as usize][1..nprops].iter_mut() {
        *alternatives += 1;
        if slot.as_ref().is_none_or(|g| enforced < g.cost) {
            *slot = Some(Group {
                cost: enforced,
                choice: Choice::Enforce,
            });
        }
    }
}

fn extract(search: &Search, mask: u32, prop: Prop) -> PlanNode {
    let g = search.groups[mask as usize][prop]
        .as_ref()
        .expect("group must exist during extraction");
    match &g.choice {
        Choice::SeqScan { relation } => PlanNode::leaf(PlanOp::SeqScan {
            relation: *relation,
        }),
        Choice::IndexSeek {
            relation,
            seek_pred,
        } => PlanNode::leaf(PlanOp::IndexSeek {
            relation: *relation,
            seek_pred: *seek_pred,
        }),
        Choice::SortedIndexScan { relation, column } => PlanNode::leaf(PlanOp::SortedIndexScan {
            relation: *relation,
            column: *column,
        }),
        Choice::Enforce => {
            let input = extract(search, mask, 0);
            let (r, c) = search.keys[prop - 1];
            PlanNode::internal(PlanOp::Sort { key: Some((r, c)) }, vec![input])
        }
        Choice::HashJoin {
            left,
            right,
            build_left,
            edges,
        } => {
            // Canonical form: the build side is always the left child, so
            // structurally identical joins fingerprint identically.
            let l = extract(search, *left, 0);
            let r = extract(search, *right, 0);
            let (build, probe) = if *build_left { (l, r) } else { (r, l) };
            PlanNode::internal(
                PlanOp::HashJoin {
                    build_left: true,
                    edges: edges.clone(),
                },
                vec![build, probe],
            )
        }
        Choice::MergeJoin {
            left,
            right,
            left_prop,
            right_prop,
            merge_edge,
            edges,
        } => {
            let l = extract(search, *left, *left_prop);
            let r = extract(search, *right, *right_prop);
            PlanNode::internal(
                PlanOp::MergeJoin {
                    merge_edge: *merge_edge,
                    edges: edges.clone(),
                },
                vec![l, r],
            )
        }
        Choice::IndexNlj {
            outer,
            inner,
            seek_edge,
            edges,
        } => {
            let o = extract(search, *outer, 0);
            PlanNode::internal(
                PlanOp::IndexNlj {
                    inner: *inner,
                    seek_edge: *seek_edge,
                    edges: edges.clone(),
                },
                vec![o],
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recost::recost;
    use crate::svector::{compute_svector, instance_for_target};
    use crate::template::test_fixtures;
    use std::collections::BTreeSet;

    fn sv_for(t: &QueryTemplate, target: &[f64]) -> SVector {
        compute_svector(t, &instance_for_target(t, target))
    }

    #[test]
    fn single_relation_picks_index_at_low_selectivity() {
        let t = test_fixtures::one_rel();
        let m = CostModel::default();
        let low = optimize(&t, &m, &SVector(vec![0.001]));
        let high = optimize(&t, &m, &SVector(vec![0.8]));
        assert!(
            matches!(low.plan.root_op(), PlanOp::IndexSeek { .. }),
            "low sel should seek"
        );
        assert!(
            matches!(high.plan.root_op(), PlanOp::SeqScan { .. }),
            "high sel should scan"
        );
        assert_ne!(low.plan.fingerprint(), high.plan.fingerprint());
    }

    #[test]
    fn optimizer_cost_equals_recost_of_winner() {
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        for target in [[0.01, 0.01, 0.01], [0.5, 0.5, 0.5], [0.9, 0.001, 0.3]] {
            let sv = sv_for(&t, &target);
            let r = optimize(&t, &m, &sv);
            let rc = recost(&t, &m, &r.plan, &sv);
            assert!(
                (r.cost - rc).abs() < 1e-9 * r.cost.max(1.0),
                "{} vs {}",
                r.cost,
                rc
            );
        }
    }

    #[test]
    fn optimal_plan_is_at_least_as_cheap_as_any_other_observed_plan() {
        // Cross-check optimality: the optimal plan at q1 recosted at q1 must
        // not exceed the recost of plans found optimal elsewhere.
        let t = test_fixtures::two_dim();
        let m = CostModel::default();
        let points: Vec<SVector> = [
            [0.001, 0.001],
            [0.9, 0.9],
            [0.001, 0.9],
            [0.9, 0.001],
            [0.1, 0.1],
        ]
        .iter()
        .map(|p| sv_for(&t, p))
        .collect();
        let results: Vec<_> = points.iter().map(|sv| optimize(&t, &m, sv)).collect();
        for (i, sv) in points.iter().enumerate() {
            for r in &results {
                let c = recost(&t, &m, &r.plan, sv);
                assert!(
                    results[i].cost <= c * (1.0 + 1e-9),
                    "plan {} beats 'optimal' at point {i}: {c} < {}",
                    r.plan.fingerprint(),
                    results[i].cost
                );
            }
        }
    }

    #[test]
    fn plan_diversity_across_selectivity_space() {
        // A PQO-worthy template must switch plans as selectivities move
        // (otherwise Optimize-Once would be perfect).
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        let mut plans = BTreeSet::new();
        for i in 0..8 {
            for j in 0..8 {
                let s = [0.001 * 8f64.powi(i), 0.001 * 8f64.powi(j), 0.05];
                let sv = sv_for(&t, &[s[0].min(1.0), s[1].min(1.0), s[2]]);
                plans.insert(optimize(&t, &m, &sv).plan.fingerprint());
            }
        }
        assert!(plans.len() >= 3, "only {} distinct plans", plans.len());
    }

    #[test]
    fn merge_join_appears_for_large_unselective_joins() {
        // Both inputs huge and unfiltered: sorted index scans + merge join
        // should beat a spilling hash join somewhere in the space.
        let t = test_fixtures::two_dim();
        let m = CostModel::default();
        let mut saw_merge = false;
        for s in [[0.9, 0.9], [1.0, 1.0], [0.7, 0.9]] {
            let r = optimize(&t, &m, &sv_for(&t, &s));
            fn has_merge(n: &PlanNode) -> bool {
                matches!(n.op, PlanOp::MergeJoin { .. }) || n.children.iter().any(has_merge)
            }
            saw_merge |= has_merge(&r.plan.to_tree());
        }
        assert!(saw_merge, "expected a merge join in the unselective region");
    }

    #[test]
    fn merge_join_children_deliver_order() {
        // Every MergeJoin child must be a sorted scan, a Sort, or another
        // MergeJoin (order-preserving) — the enforcer invariant.
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        for i in 0..6 {
            for j in 0..6 {
                let sv = sv_for(&t, &[0.15 * (i + 1) as f64, 0.15 * (j + 1) as f64, 0.5]);
                let r = optimize(&t, &m, &sv.clone());
                fn check(n: &PlanNode) {
                    if let PlanOp::MergeJoin { .. } = n.op {
                        for c in &n.children {
                            assert!(
                                matches!(
                                    c.op,
                                    PlanOp::SortedIndexScan { .. }
                                        | PlanOp::Sort { .. }
                                        | PlanOp::MergeJoin { .. }
                                ),
                                "merge-join child {:?} cannot deliver order",
                                c.op
                            );
                        }
                    }
                    n.children.iter().for_each(check);
                }
                check(&r.plan.to_tree());
            }
        }
    }

    #[test]
    fn optimal_cost_is_monotone_along_each_dimension() {
        // PCM at the level of optimal costs: min of monotone plan costs.
        let t = test_fixtures::two_dim();
        let m = CostModel::default();
        let mut prev = 0.0;
        for k in 1..=10 {
            let sv = SVector(vec![0.1 * k as f64, 0.3]);
            let c = optimize(&t, &m, &sv).cost;
            assert!(c >= prev, "optimal cost dropped: {prev} -> {c} at k={k}");
            prev = c;
        }
    }

    #[test]
    fn join_order_respects_connectivity() {
        // customer-lineitem have no direct edge: every join in the plan must
        // apply at least one edge, so no cross products appear.
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        let r = optimize(&t, &m, &sv_for(&t, &[0.2, 0.2, 0.2]));
        fn no_empty_edges(n: &PlanNode) {
            match &n.op {
                PlanOp::HashJoin { edges, .. }
                | PlanOp::MergeJoin { edges, .. }
                | PlanOp::IndexNlj { edges, .. } => assert!(!edges.is_empty()),
                _ => {}
            }
            n.children.iter().for_each(no_empty_edges);
        }
        no_empty_edges(&r.plan.to_tree());
        assert_eq!(r.plan.relation_set(), t.full_relation_set());
    }

    #[test]
    fn aggregate_and_order_by_are_planned() {
        let t = test_fixtures::two_dim(); // has aggregate(100)
        let m = CostModel::default();
        let r = optimize(&t, &m, &sv_for(&t, &[0.1, 0.1]));
        assert!(matches!(
            r.plan.root_op(),
            PlanOp::HashAggregate | PlanOp::StreamAggregate
        ));
    }

    #[test]
    fn memo_explores_subset_and_property_groups() {
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        let r = optimize(&t, &m, &sv_for(&t, &[0.1, 0.1, 0.1]));
        // At least the 6 connected-subset unordered groups of the c-o-l
        // chain, plus property winners from enforcer closure.
        assert!(r.groups_explored >= 6, "only {} groups", r.groups_explored);
        assert!(r.alternatives_costed > r.groups_explored);
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        let sv = sv_for(&t, &[0.3, 0.2, 0.1]);
        let a = optimize(&t, &m, &sv);
        let b = optimize(&t, &m, &sv);
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint());
        assert_eq!(a.cost, b.cost);
    }
}
