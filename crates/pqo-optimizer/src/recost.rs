//! The Recost API (paper Section 4.2 and Appendix B).
//!
//! *"Given a plan P and a query instance qc, efficiently compute and return
//! Cost(P, qc)."* The paper implements this over a `shrunkenMemo` — the memo
//! pruned down to the groups of the final plan — by substituting the new
//! parameters in the base groups and re-deriving cardinality and cost
//! bottom-up. Our [`PlanNode`] trees carry exactly those logical
//! annotations, so re-costing is a single bottom-up tree walk with no plan
//! search: one to two orders of magnitude cheaper than optimization
//! (measured in `pqo-bench`).
//!
//! The optimizer itself computes its final plan cost through this module, so
//! `recost(P, q) == Cost(P, q)` holds *by construction* whenever `P` was
//! produced for `q` — an invariant the integration tests rely on.

use crate::cost::CostModel;
use crate::plan::{Plan, PlanNode, PlanOp};
use crate::svector::SVector;
use crate::template::QueryTemplate;

/// Floor for derived cardinalities, guarding logs and divisions.
const MIN_ROWS: f64 = 1e-9;

/// Per-relation derived quantities for one selectivity vector.
#[derive(Debug, Clone)]
pub struct BaseDerivation {
    /// `base_sel[r]`: product of all (param + fixed) predicate selectivities
    /// on relation `r`.
    pub base_sel: Vec<f64>,
    /// `base_rows[r] = row_count(r) · base_sel[r]`.
    pub base_rows: Vec<f64>,
    /// Number of predicates (param + fixed) on relation `r`.
    pub pred_count: Vec<usize>,
}

impl BaseDerivation {
    /// Derive the base-relation quantities for `sv` under `template`.
    pub fn new(template: &QueryTemplate, sv: &SVector) -> Self {
        assert_eq!(sv.len(), template.dimensions(), "sVector arity mismatch");
        let n = template.num_relations();
        let mut base_sel = vec![1.0f64; n];
        let mut pred_count = vec![0usize; n];
        for (i, p) in template.param_preds.iter().enumerate() {
            base_sel[p.relation] *= sv.get(i);
            pred_count[p.relation] += 1;
        }
        for p in &template.fixed_preds {
            base_sel[p.relation] *= p.selectivity;
            pred_count[p.relation] += 1;
        }
        let base_rows = (0..n)
            .map(|r| (template.relations[r].table.row_count as f64 * base_sel[r]).max(MIN_ROWS))
            .collect();
        BaseDerivation {
            base_sel,
            base_rows,
            pred_count,
        }
    }
}

/// Re-derive `(output_rows, cost)` of `node` for the selectivities captured
/// in `base` / `sv`.
pub fn derive_node(
    template: &QueryTemplate,
    model: &CostModel,
    base: &BaseDerivation,
    sv: &SVector,
    node: &PlanNode,
) -> (f64, f64) {
    match &node.op {
        PlanOp::SeqScan { relation } => {
            let t = &template.relations[*relation].table;
            let cost = model.seq_scan(
                t.page_count as f64,
                t.row_count as f64,
                base.pred_count[*relation],
            );
            (base.base_rows[*relation], cost)
        }
        PlanOp::IndexSeek {
            relation,
            seek_pred,
        } => {
            let t = &template.relations[*relation].table;
            let fetch = (t.row_count as f64 * sv.get(*seek_pred)).max(MIN_ROWS);
            let residual = base.pred_count[*relation].saturating_sub(1);
            let cost = model.index_seek(t.row_count as f64, fetch, residual);
            (base.base_rows[*relation], cost)
        }
        PlanOp::SortedIndexScan { relation, .. } => {
            let t = &template.relations[*relation].table;
            let cost = model.sorted_index_scan(
                t.page_count as f64,
                t.row_count as f64,
                base.pred_count[*relation],
            );
            (base.base_rows[*relation], cost)
        }
        PlanOp::HashJoin { build_left, edges } => {
            let (lr, lc) = derive_node(template, model, base, sv, &node.children[0]);
            let (rr, rc) = derive_node(template, model, base, sv, &node.children[1]);
            let out = join_out_rows(template, lr, rr, edges);
            let (b, p) = if *build_left { (lr, rr) } else { (rr, lr) };
            (out, lc + rc + model.hash_join(b, p, out))
        }
        PlanOp::MergeJoin { edges, .. } => {
            let (lr, lc) = derive_node(template, model, base, sv, &node.children[0]);
            let (rr, rc) = derive_node(template, model, base, sv, &node.children[1]);
            let out = join_out_rows(template, lr, rr, edges);
            (out, lc + rc + model.merge_join(lr, rr, out))
        }
        PlanOp::IndexNlj {
            inner,
            seek_edge,
            edges,
        } => {
            let (or, oc) = derive_node(template, model, base, sv, &node.children[0]);
            let t = &template.relations[*inner].table;
            let n_inner = t.row_count as f64;
            let lookup = n_inner * template.join_edges[*seek_edge].selectivity;
            // Residuals: the inner relation's own predicates plus any
            // crossing edges other than the seek edge.
            let residual = base.pred_count[*inner] + edges.len().saturating_sub(1);
            let out = join_out_rows(template, or, base.base_rows[*inner], edges);
            (
                out,
                oc + model.index_nlj(or, n_inner, lookup, residual, out),
            )
        }
        PlanOp::HashAggregate => {
            let (ir, ic) = derive_node(template, model, base, sv, &node.children[0]);
            let groups = agg_groups(template, ir);
            (groups, ic + model.hash_aggregate(ir, groups))
        }
        PlanOp::StreamAggregate => {
            let (ir, ic) = derive_node(template, model, base, sv, &node.children[0]);
            let groups = agg_groups(template, ir);
            (groups, ic + model.stream_aggregate(ir, groups))
        }
        PlanOp::Sort { .. } => {
            let (ir, ic) = derive_node(template, model, base, sv, &node.children[0]);
            (ir, ic + model.sort(ir))
        }
    }
}

// Note: join and aggregate cardinalities are *not* floored — they must stay
// pure products so that the optimizer's subset cardinalities factorize
// identically over every join split (only base relations are floored).
fn join_out_rows(template: &QueryTemplate, left: f64, right: f64, edges: &[usize]) -> f64 {
    let sel: f64 = edges
        .iter()
        .map(|&e| template.join_edges[e].selectivity)
        .product();
    left * right * sel
}

fn agg_groups(template: &QueryTemplate, in_rows: f64) -> f64 {
    let g = template.aggregate.as_ref().map(|a| a.groups).unwrap_or(1.0);
    g.min(in_rows)
}

/// The Recost API: cost of the frozen `plan` at the selectivities `sv`.
pub fn recost(template: &QueryTemplate, model: &CostModel, plan: &Plan, sv: &SVector) -> f64 {
    let base = BaseDerivation::new(template, sv);
    derive_node(template, model, &base, sv, plan.root()).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, PlanNode, PlanOp};
    use crate::svector::{compute_svector, instance_for_target};
    use crate::template::test_fixtures;

    fn sv_for(template: &QueryTemplate, target: &[f64]) -> SVector {
        compute_svector(template, &instance_for_target(template, target))
    }

    #[test]
    fn base_derivation_multiplies_predicates() {
        let t = test_fixtures::two_dim();
        let sv = SVector(vec![0.1, 0.2]);
        let base = BaseDerivation::new(&t, &sv);
        assert!((base.base_sel[0] - 0.1).abs() < 1e-12);
        assert!((base.base_sel[1] - 0.2).abs() < 1e-12);
        assert!((base.base_rows[0] - 150_000.0).abs() < 1.0); // 1.5M * 0.1
        assert_eq!(base.pred_count, vec![1, 1]);
    }

    #[test]
    fn seq_scan_cost_is_selectivity_independent_but_rows_are_not() {
        let t = test_fixtures::one_rel();
        let model = CostModel::default();
        let plan = Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: 0 }));
        let lo = recost(&t, &model, &plan, &SVector(vec![0.01]));
        let hi = recost(&t, &model, &plan, &SVector(vec![0.9]));
        assert_eq!(lo, hi, "scan reads the whole table either way");
        let base_lo = BaseDerivation::new(&t, &SVector(vec![0.01]));
        let base_hi = BaseDerivation::new(&t, &SVector(vec![0.9]));
        assert!(base_hi.base_rows[0] > base_lo.base_rows[0]);
    }

    #[test]
    fn index_seek_cost_grows_linearly_with_seek_selectivity() {
        let t = test_fixtures::one_rel();
        let model = CostModel::default();
        let plan = Plan::new(PlanNode::leaf(PlanOp::IndexSeek {
            relation: 0,
            seek_pred: 0,
        }));
        let c1 = recost(&t, &model, &plan, &SVector(vec![0.01]));
        let c2 = recost(&t, &model, &plan, &SVector(vec![0.02]));
        let c4 = recost(&t, &model, &plan, &SVector(vec![0.04]));
        // Slope doubles (modulo the additive startup term).
        assert!(c2 < 2.0 * c1);
        assert!(c4 - c2 > (c2 - c1) * 1.9);
    }

    #[test]
    fn hash_join_plan_recosts_consistently() {
        let t = test_fixtures::two_dim();
        let model = CostModel::default();
        let join = PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        );
        let plan = Plan::new(PlanNode::internal(PlanOp::HashAggregate, vec![join]));
        let sv = sv_for(&t, &[0.1, 0.1]);
        let c = recost(&t, &model, &plan, &sv);
        assert!(c.is_finite() && c > 0.0);
        // Monotone in each dimension (PCM).
        let c_hi = recost(&t, &model, &plan, &sv_for(&t, &[0.5, 0.1]));
        assert!(c_hi >= c);
    }

    #[test]
    fn index_nlj_out_rows_match_hash_join_out_rows() {
        // Cardinality is a logical property: independent of the operator.
        let t = test_fixtures::two_dim();
        let model = CostModel::default();
        let sv = sv_for(&t, &[0.05, 0.2]);
        let base = BaseDerivation::new(&t, &sv);
        let hj = PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        );
        let nlj = PlanNode::internal(
            PlanOp::IndexNlj {
                inner: 1,
                seek_edge: 0,
                edges: vec![0],
            },
            vec![PlanNode::leaf(PlanOp::SeqScan { relation: 0 })],
        );
        let (hj_rows, _) = derive_node(&t, &model, &base, &sv, &hj);
        let (nlj_rows, _) = derive_node(&t, &model, &base, &sv, &nlj);
        assert!((hj_rows - nlj_rows).abs() / hj_rows < 1e-9);
    }

    #[test]
    fn aggregate_caps_groups_at_input() {
        let t = test_fixtures::two_dim(); // groups = 100
        let model = CostModel::default();
        let tiny = SVector(vec![1e-6, 1e-6]);
        let base = BaseDerivation::new(&t, &tiny);
        let join = PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        );
        let (join_rows, _) = derive_node(&t, &model, &base, &tiny, &join);
        let agg = PlanNode::internal(PlanOp::HashAggregate, vec![join]);
        let (agg_rows, _) = derive_node(&t, &model, &base, &tiny, &agg);
        assert!(agg_rows <= join_rows.max(MIN_ROWS) + 1e-12);
        assert!(agg_rows <= 100.0);
    }

    #[test]
    fn sort_node_preserves_rows() {
        let t = test_fixtures::one_rel();
        let model = CostModel::default();
        let sv = SVector(vec![0.3]);
        let base = BaseDerivation::new(&t, &sv);
        let scan = PlanNode::leaf(PlanOp::SeqScan { relation: 0 });
        let (scan_rows, scan_cost) = derive_node(&t, &model, &base, &sv, &scan);
        let sorted = PlanNode::internal(PlanOp::Sort { key: None }, vec![scan]);
        let (rows, cost) = derive_node(&t, &model, &base, &sv, &sorted);
        assert_eq!(rows, scan_rows);
        assert!(cost > scan_cost);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let t = test_fixtures::two_dim();
        BaseDerivation::new(&t, &SVector(vec![0.5]));
    }
}
