//! The Recost API (paper Section 4.2 and Appendix B).
//!
//! *"Given a plan P and a query instance qc, efficiently compute and return
//! Cost(P, qc)."* The paper implements this over a `shrunkenMemo` — the memo
//! pruned down to the groups of the final plan — by substituting the new
//! parameters in the base groups and re-deriving cardinality and cost
//! bottom-up. Our plans carry exactly those logical annotations, so
//! re-costing is a single bottom-up pass with no plan search: one to two
//! orders of magnitude cheaper than optimization (measured in `pqo-bench`).
//!
//! Three evaluation paths share one set of per-operator formulas:
//!
//! * [`recost`] — linear stack-machine pass over the plan's postorder arena
//!   (see [`crate::plan`]); allocates one value stack per call.
//! * [`recost_tree`] / [`derive_node`] — the legacy recursive walk over a
//!   boxed [`PlanNode`] tree, kept as the reference implementation for
//!   equivalence tests.
//! * [`recost_prepared`] — evaluates a [`PreparedRecost`], which caches
//!   every selectivity-*independent* quantity (scan costs, B-tree descent
//!   constants, join-edge selectivity products, static predicate counts) at
//!   plan-insert time, into a caller-owned [`RecostScratch`]: no allocation,
//!   no recursion, and an incremental [`BaseDerivation`] that is re-derived
//!   only for relations whose sVector dimensions actually changed.
//!
//! All three produce **bit-identical** results: the prepared constants are
//! folded with exactly the arithmetic (and associativity) the cost model
//! uses, so `recost(P, q) == Cost(P, q)` holds *by construction* whenever
//! `P` was produced for `q` — an invariant the integration tests rely on.

use crate::cost::{log2c, CostModel};
use crate::plan::{ArenaNode, Plan, PlanNode, PlanOp};
use crate::svector::SVector;
use crate::template::QueryTemplate;

/// Floor for derived cardinalities, guarding logs and divisions.
const MIN_ROWS: f64 = 1e-9;

/// Per-relation derived quantities for one selectivity vector.
#[derive(Debug, Clone, Default)]
pub struct BaseDerivation {
    /// `base_sel[r]`: product of all (param + fixed) predicate selectivities
    /// on relation `r`.
    pub base_sel: Vec<f64>,
    /// `base_rows[r] = row_count(r) · base_sel[r]`.
    pub base_rows: Vec<f64>,
    /// Number of predicates (param + fixed) on relation `r`.
    pub pred_count: Vec<usize>,
}

impl BaseDerivation {
    /// Derive the base-relation quantities for `sv` under `template`.
    pub fn new(template: &QueryTemplate, sv: &SVector) -> Self {
        assert_eq!(sv.len(), template.dimensions(), "sVector arity mismatch");
        let n = template.num_relations();
        let mut base_sel = vec![1.0f64; n];
        let mut pred_count = vec![0usize; n];
        for (i, p) in template.param_preds.iter().enumerate() {
            base_sel[p.relation] *= sv.get(i);
            pred_count[p.relation] += 1;
        }
        for p in &template.fixed_preds {
            base_sel[p.relation] *= p.selectivity;
            pred_count[p.relation] += 1;
        }
        let base_rows = (0..n)
            .map(|r| (template.relations[r].table.row_count as f64 * base_sel[r]).max(MIN_ROWS))
            .collect();
        BaseDerivation {
            base_sel,
            base_rows,
            pred_count,
        }
    }
}

/// Re-derive `(output_rows, cost)` of `node` for the selectivities captured
/// in `base` / `sv`.
pub fn derive_node(
    template: &QueryTemplate,
    model: &CostModel,
    base: &BaseDerivation,
    sv: &SVector,
    node: &PlanNode,
) -> (f64, f64) {
    match &node.op {
        PlanOp::SeqScan { relation } => {
            let t = &template.relations[*relation].table;
            let cost = model.seq_scan(
                t.page_count as f64,
                t.row_count as f64,
                base.pred_count[*relation],
            );
            (base.base_rows[*relation], cost)
        }
        PlanOp::IndexSeek {
            relation,
            seek_pred,
        } => {
            let t = &template.relations[*relation].table;
            let fetch = (t.row_count as f64 * sv.get(*seek_pred)).max(MIN_ROWS);
            let residual = base.pred_count[*relation].saturating_sub(1);
            let cost = model.index_seek(t.row_count as f64, fetch, residual);
            (base.base_rows[*relation], cost)
        }
        PlanOp::SortedIndexScan { relation, .. } => {
            let t = &template.relations[*relation].table;
            let cost = model.sorted_index_scan(
                t.page_count as f64,
                t.row_count as f64,
                base.pred_count[*relation],
            );
            (base.base_rows[*relation], cost)
        }
        PlanOp::HashJoin { build_left, edges } => {
            let (lr, lc) = derive_node(template, model, base, sv, &node.children[0]);
            let (rr, rc) = derive_node(template, model, base, sv, &node.children[1]);
            let out = join_out_rows(template, lr, rr, edges);
            let (b, p) = if *build_left { (lr, rr) } else { (rr, lr) };
            (out, lc + rc + model.hash_join(b, p, out))
        }
        PlanOp::MergeJoin { edges, .. } => {
            let (lr, lc) = derive_node(template, model, base, sv, &node.children[0]);
            let (rr, rc) = derive_node(template, model, base, sv, &node.children[1]);
            let out = join_out_rows(template, lr, rr, edges);
            (out, lc + rc + model.merge_join(lr, rr, out))
        }
        PlanOp::IndexNlj {
            inner,
            seek_edge,
            edges,
        } => {
            let (or, oc) = derive_node(template, model, base, sv, &node.children[0]);
            let t = &template.relations[*inner].table;
            let n_inner = t.row_count as f64;
            let lookup = n_inner * template.join_edges[*seek_edge].selectivity;
            // Residuals: the inner relation's own predicates plus any
            // crossing edges other than the seek edge.
            let residual = base.pred_count[*inner] + edges.len().saturating_sub(1);
            let out = join_out_rows(template, or, base.base_rows[*inner], edges);
            (
                out,
                oc + model.index_nlj(or, n_inner, lookup, residual, out),
            )
        }
        PlanOp::HashAggregate => {
            let (ir, ic) = derive_node(template, model, base, sv, &node.children[0]);
            let groups = agg_groups(template, ir);
            (groups, ic + model.hash_aggregate(ir, groups))
        }
        PlanOp::StreamAggregate => {
            let (ir, ic) = derive_node(template, model, base, sv, &node.children[0]);
            let groups = agg_groups(template, ir);
            (groups, ic + model.stream_aggregate(ir, groups))
        }
        PlanOp::Sort { .. } => {
            let (ir, ic) = derive_node(template, model, base, sv, &node.children[0]);
            (ir, ic + model.sort(ir))
        }
    }
}

// Note: join and aggregate cardinalities are *not* floored — they must stay
// pure products so that the optimizer's subset cardinalities factorize
// identically over every join split (only base relations are floored).
fn join_out_rows(template: &QueryTemplate, left: f64, right: f64, edges: &[usize]) -> f64 {
    let sel: f64 = edges
        .iter()
        .map(|&e| template.join_edges[e].selectivity)
        .product();
    left * right * sel
}

fn agg_groups(template: &QueryTemplate, in_rows: f64) -> f64 {
    let g = template.aggregate.as_ref().map(|a| a.groups).unwrap_or(1.0);
    g.min(in_rows)
}

/// The Recost API: cost of the frozen `plan` at the selectivities `sv`.
///
/// One linear pass over the plan's postorder arena. Performs the same
/// arithmetic in the same order as the recursive [`derive_node`] walk, so
/// the result is bit-identical to [`recost_tree`].
pub fn recost(template: &QueryTemplate, model: &CostModel, plan: &Plan, sv: &SVector) -> f64 {
    let base = BaseDerivation::new(template, sv);
    let mut stack: Vec<(f64, f64)> = Vec::with_capacity(plan.size());
    recost_arena(template, model, &base, sv, plan.nodes(), &mut stack)
}

/// Legacy reference: cost of a boxed plan tree at `sv`, via the recursive
/// walk. Kept for equivalence testing and benchmarking against [`recost`].
pub fn recost_tree(
    template: &QueryTemplate,
    model: &CostModel,
    root: &PlanNode,
    sv: &SVector,
) -> f64 {
    let base = BaseDerivation::new(template, sv);
    derive_node(template, model, &base, sv, root).1
}

/// Stack-machine evaluation of a postorder arena. Each node pops its
/// children's `(rows, cost)` pairs and pushes its own; the formulas (and
/// therefore the float results) are exactly those of [`derive_node`].
fn recost_arena(
    template: &QueryTemplate,
    model: &CostModel,
    base: &BaseDerivation,
    sv: &SVector,
    nodes: &[ArenaNode],
    stack: &mut Vec<(f64, f64)>,
) -> f64 {
    stack.clear();
    for node in nodes {
        let entry = match &node.op {
            PlanOp::SeqScan { relation } => {
                let t = &template.relations[*relation].table;
                let cost = model.seq_scan(
                    t.page_count as f64,
                    t.row_count as f64,
                    base.pred_count[*relation],
                );
                (base.base_rows[*relation], cost)
            }
            PlanOp::IndexSeek {
                relation,
                seek_pred,
            } => {
                let t = &template.relations[*relation].table;
                let fetch = (t.row_count as f64 * sv.get(*seek_pred)).max(MIN_ROWS);
                let residual = base.pred_count[*relation].saturating_sub(1);
                let cost = model.index_seek(t.row_count as f64, fetch, residual);
                (base.base_rows[*relation], cost)
            }
            PlanOp::SortedIndexScan { relation, .. } => {
                let t = &template.relations[*relation].table;
                let cost = model.sorted_index_scan(
                    t.page_count as f64,
                    t.row_count as f64,
                    base.pred_count[*relation],
                );
                (base.base_rows[*relation], cost)
            }
            PlanOp::HashJoin { build_left, edges } => {
                let (rr, rc) = stack.pop().expect("arena stack underflow");
                let (lr, lc) = stack.pop().expect("arena stack underflow");
                let out = join_out_rows(template, lr, rr, edges);
                let (b, p) = if *build_left { (lr, rr) } else { (rr, lr) };
                (out, lc + rc + model.hash_join(b, p, out))
            }
            PlanOp::MergeJoin { edges, .. } => {
                let (rr, rc) = stack.pop().expect("arena stack underflow");
                let (lr, lc) = stack.pop().expect("arena stack underflow");
                let out = join_out_rows(template, lr, rr, edges);
                (out, lc + rc + model.merge_join(lr, rr, out))
            }
            PlanOp::IndexNlj {
                inner,
                seek_edge,
                edges,
            } => {
                let (or, oc) = stack.pop().expect("arena stack underflow");
                let t = &template.relations[*inner].table;
                let n_inner = t.row_count as f64;
                let lookup = n_inner * template.join_edges[*seek_edge].selectivity;
                let residual = base.pred_count[*inner] + edges.len().saturating_sub(1);
                let out = join_out_rows(template, or, base.base_rows[*inner], edges);
                (
                    out,
                    oc + model.index_nlj(or, n_inner, lookup, residual, out),
                )
            }
            PlanOp::HashAggregate => {
                let (ir, ic) = stack.pop().expect("arena stack underflow");
                let groups = agg_groups(template, ir);
                (groups, ic + model.hash_aggregate(ir, groups))
            }
            PlanOp::StreamAggregate => {
                let (ir, ic) = stack.pop().expect("arena stack underflow");
                let groups = agg_groups(template, ir);
                (groups, ic + model.stream_aggregate(ir, groups))
            }
            PlanOp::Sort { .. } => {
                let (ir, ic) = stack.pop().expect("arena stack underflow");
                (ir, ic + model.sort(ir))
            }
        };
        stack.push(entry);
    }
    let (_, cost) = stack.pop().expect("arena encodes at least one node");
    debug_assert!(stack.is_empty(), "arena must encode exactly one tree");
    cost
}

/// Selectivity-independent base-relation constants of one template,
/// computed once and shared by every prepared recost of that template.
///
/// Holds everything [`BaseDerivation::new`] reads from the template, laid
/// out per relation so a delta update can re-derive exactly the relations
/// whose sVector dimensions changed — with the same multiplication order as
/// the full derivation, so results stay bit-identical.
#[derive(Debug, Clone)]
pub struct BaseConsts {
    /// Per relation: its param-predicate dimension indices, ascending (the
    /// order `BaseDerivation::new` multiplies them in).
    rel_dims: Vec<Vec<u32>>,
    /// Per relation: its fixed-predicate selectivities, in template order.
    rel_fixed: Vec<Vec<f64>>,
    /// Per relation: `row_count as f64`.
    row_count: Vec<f64>,
    /// Per relation: number of (param + fixed) predicates — static.
    pred_count: Vec<usize>,
    /// Per dimension: the relation its predicate filters.
    dim_rel: Vec<u32>,
}

impl BaseConsts {
    /// Extract the static quantities from `template`.
    pub fn new(template: &QueryTemplate) -> Self {
        let n = template.num_relations();
        let mut rel_dims = vec![Vec::new(); n];
        let mut rel_fixed = vec![Vec::new(); n];
        let mut pred_count = vec![0usize; n];
        let mut dim_rel = Vec::with_capacity(template.dimensions());
        for (i, p) in template.param_preds.iter().enumerate() {
            rel_dims[p.relation].push(i as u32);
            pred_count[p.relation] += 1;
            dim_rel.push(p.relation as u32);
        }
        for p in &template.fixed_preds {
            rel_fixed[p.relation].push(p.selectivity);
            pred_count[p.relation] += 1;
        }
        let row_count = template
            .relations
            .iter()
            .map(|r| r.table.row_count as f64)
            .collect();
        BaseConsts {
            rel_dims,
            rel_fixed,
            row_count,
            pred_count,
            dim_rel,
        }
    }

    /// Number of sVector dimensions.
    pub fn dimensions(&self) -> usize {
        self.dim_rel.len()
    }

    /// Re-derive relation `r` of `base` from scratch. Reproduces the exact
    /// per-relation multiplication sequence of [`BaseDerivation::new`]
    /// (param selectivities in ascending dimension order, then fixed
    /// selectivities in template order), so the result is bit-identical.
    fn derive_relation(&self, r: usize, sv: &SVector, base: &mut BaseDerivation) {
        let mut sel = 1.0f64;
        for &d in &self.rel_dims[r] {
            sel *= sv.get(d as usize);
        }
        for &f in &self.rel_fixed[r] {
            sel *= f;
        }
        base.base_sel[r] = sel;
        base.base_rows[r] = (self.row_count[r] * sel).max(MIN_ROWS);
    }

    /// Bring `scratch.base` up to date for `sv`, re-deriving as little as
    /// possible. Returns with `scratch.sv_key` holding `sv`'s bit pattern.
    ///
    /// * same bits as last call — nothing to do;
    /// * same arity, some dimensions changed — re-derive only the relations
    ///   those dimensions filter;
    /// * different arity (first use, or scratch shared across templates) —
    ///   full derivation.
    fn update_scratch(&self, sv: &SVector, scratch: &mut RecostScratch) {
        assert_eq!(sv.len(), self.dimensions(), "sVector arity mismatch");
        if scratch.sv_key.len() == sv.len() && scratch.base.base_sel.len() == self.row_count.len() {
            let mut dirty = 0u32;
            for (i, key) in scratch.sv_key.iter_mut().enumerate() {
                let bits = sv.get(i).to_bits();
                if *key != bits {
                    *key = bits;
                    dirty |= 1u32 << self.dim_rel[i];
                }
            }
            if dirty == 0 {
                return;
            }
            let mut rels = dirty;
            while rels != 0 {
                let r = rels.trailing_zeros() as usize;
                rels &= rels - 1;
                self.derive_relation(r, sv, &mut scratch.base);
            }
            return;
        }
        let n = self.row_count.len();
        scratch.base.base_sel.resize(n, 1.0);
        scratch.base.base_rows.resize(n, 0.0);
        scratch.base.pred_count.clear();
        scratch.base.pred_count.extend_from_slice(&self.pred_count);
        for r in 0..n {
            self.derive_relation(r, sv, &mut scratch.base);
        }
        scratch.sv_key.clear();
        scratch
            .sv_key
            .extend((0..sv.len()).map(|i| sv.get(i).to_bits()));
    }
}

/// Caller-owned reusable state for [`recost_prepared`]: the incrementally
/// maintained [`BaseDerivation`], the bit pattern of the sVector it was
/// derived for, and the operator value stack. Reusing one scratch across
/// calls makes the prepared path allocation-free and enables delta
/// re-derivation when consecutive sVectors share dimensions.
#[derive(Debug, Default)]
pub struct RecostScratch {
    base: BaseDerivation,
    sv_key: Vec<u64>,
    stack: Vec<(f64, f64)>,
}

impl RecostScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidate the cached base derivation (e.g. when the scratch is
    /// about to be reused against a different template).
    pub fn invalidate(&mut self) {
        self.sv_key.clear();
        self.base.base_sel.clear();
    }
}

/// One operator of a [`PreparedRecost`], with every selectivity-independent
/// quantity folded in. Constants are computed with exactly the arithmetic
/// (and associativity) of the corresponding [`CostModel`] formula, so
/// evaluation is bit-identical to the unprepared paths.
#[derive(Debug, Clone)]
enum PreparedNode {
    /// SeqScan / SortedIndexScan: cost is fully static; rows come from the
    /// base derivation.
    Scan {
        rel: u32,
        cost: f64,
    },
    /// IndexSeek: `cost = konst + fetch · per_fetch` with
    /// `fetch = (table_rows · sv[dim]).max(MIN_ROWS)`.
    IndexSeek {
        rel: u32,
        dim: u32,
        table_rows: f64,
        konst: f64,
        per_fetch: f64,
    },
    /// HashJoin: `edge_sel` is the precomputed product of its edges'
    /// selectivities; spill branch stays in the model call.
    HashJoin {
        build_left: bool,
        edge_sel: f64,
    },
    /// MergeJoin: as HashJoin, without a build side.
    MergeJoin {
        edge_sel: f64,
    },
    /// IndexNlj: `cost = op_startup + outer · per_outer + out · cpu_tuple`.
    IndexNlj {
        inner: u32,
        edge_sel: f64,
        per_outer: f64,
    },
    /// Aggregates: `groups` is the template's static group estimate
    /// (clamped by input rows at evaluation).
    HashAggregate {
        groups: f64,
    },
    StreamAggregate {
        groups: f64,
    },
    Sort,
}

/// A plan compiled for repeated re-costing: the postorder arena with all
/// selectivity-independent work hoisted out. Built once when a plan enters
/// the cache; evaluated with [`recost_prepared`].
#[derive(Debug, Clone)]
pub struct PreparedRecost {
    nodes: Vec<PreparedNode>,
}

impl PreparedRecost {
    /// Compile `plan` against `template` and `model`.
    pub fn new(template: &QueryTemplate, model: &CostModel, plan: &Plan) -> Self {
        // Static predicate counts, identical to `BaseDerivation::pred_count`.
        let n = template.num_relations();
        let mut pred_count = vec![0usize; n];
        for p in &template.param_preds {
            pred_count[p.relation] += 1;
        }
        for p in &template.fixed_preds {
            pred_count[p.relation] += 1;
        }
        let edge_sel = |edges: &[usize]| -> f64 {
            edges
                .iter()
                .map(|&e| template.join_edges[e].selectivity)
                .product()
        };
        let groups = template.aggregate.as_ref().map(|a| a.groups).unwrap_or(1.0);
        let nodes = plan
            .nodes()
            .iter()
            .map(|node| match &node.op {
                PlanOp::SeqScan { relation } => {
                    let t = &template.relations[*relation].table;
                    PreparedNode::Scan {
                        rel: *relation as u32,
                        cost: model.seq_scan(
                            t.page_count as f64,
                            t.row_count as f64,
                            pred_count[*relation],
                        ),
                    }
                }
                PlanOp::IndexSeek {
                    relation,
                    seek_pred,
                } => {
                    let t = &template.relations[*relation].table;
                    let table_rows = t.row_count as f64;
                    let residual = pred_count[*relation].saturating_sub(1);
                    // `index_seek` is `(op_startup + log2c(n)·btree) +
                    // fetch · ((io + tuple) + residual·pred)`; fold both
                    // parenthesised groups, leaving `fetch` free.
                    let konst = model.op_startup + log2c(table_rows) * model.cpu_btree_level;
                    let per_fetch =
                        model.index_fetch_io + model.cpu_tuple + residual as f64 * model.cpu_pred;
                    PreparedNode::IndexSeek {
                        rel: *relation as u32,
                        dim: *seek_pred as u32,
                        table_rows,
                        konst,
                        per_fetch,
                    }
                }
                PlanOp::SortedIndexScan { relation, .. } => {
                    let t = &template.relations[*relation].table;
                    PreparedNode::Scan {
                        rel: *relation as u32,
                        cost: model.sorted_index_scan(
                            t.page_count as f64,
                            t.row_count as f64,
                            pred_count[*relation],
                        ),
                    }
                }
                PlanOp::HashJoin { build_left, edges } => PreparedNode::HashJoin {
                    build_left: *build_left,
                    edge_sel: edge_sel(edges),
                },
                PlanOp::MergeJoin { edges, .. } => PreparedNode::MergeJoin {
                    edge_sel: edge_sel(edges),
                },
                PlanOp::IndexNlj {
                    inner,
                    seek_edge,
                    edges,
                } => {
                    let t = &template.relations[*inner].table;
                    let n_inner = t.row_count as f64;
                    let lookup = n_inner * template.join_edges[*seek_edge].selectivity;
                    let residual = pred_count[*inner] + edges.len().saturating_sub(1);
                    // `index_nlj`'s per-outer factor is fully static:
                    // `log2c(n)·btree + lookup · ((io + tuple) + res·pred)`.
                    let per_outer = log2c(n_inner) * model.cpu_btree_level
                        + lookup
                            * (model.index_fetch_io
                                + model.cpu_tuple
                                + residual as f64 * model.cpu_pred);
                    PreparedNode::IndexNlj {
                        inner: *inner as u32,
                        edge_sel: edge_sel(edges),
                        per_outer,
                    }
                }
                PlanOp::HashAggregate => PreparedNode::HashAggregate { groups },
                PlanOp::StreamAggregate => PreparedNode::StreamAggregate { groups },
                PlanOp::Sort { .. } => PreparedNode::Sort,
            })
            .collect();
        PreparedRecost { nodes }
    }

    /// Number of operators.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the prepared plan is empty (it never is for a valid plan).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rough heap footprint in bytes, for cache memory accounting.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.nodes.capacity() * std::mem::size_of::<PreparedNode>()
    }
}

/// Evaluate a prepared plan at `sv`, reusing `scratch` across calls.
///
/// The base derivation inside `scratch` is updated incrementally: only the
/// relations filtered by sVector dimensions whose value actually changed
/// since the last call are re-derived (the delta-recost path — free when
/// consecutive calls share the sVector, as in the cost check's candidate
/// loop). Results are bit-identical to [`recost`] and [`recost_tree`].
pub fn recost_prepared(
    consts: &BaseConsts,
    model: &CostModel,
    prepared: &PreparedRecost,
    sv: &SVector,
    scratch: &mut RecostScratch,
) -> f64 {
    consts.update_scratch(sv, scratch);
    let base = &scratch.base;
    let stack = &mut scratch.stack;
    stack.clear();
    for node in &prepared.nodes {
        let entry = match node {
            PreparedNode::Scan { rel, cost } => (base.base_rows[*rel as usize], *cost),
            PreparedNode::IndexSeek {
                rel,
                dim,
                table_rows,
                konst,
                per_fetch,
            } => {
                let fetch = (table_rows * sv.get(*dim as usize)).max(MIN_ROWS);
                (base.base_rows[*rel as usize], konst + fetch * per_fetch)
            }
            PreparedNode::HashJoin {
                build_left,
                edge_sel,
            } => {
                let (rr, rc) = stack.pop().expect("prepared stack underflow");
                let (lr, lc) = stack.pop().expect("prepared stack underflow");
                let out = lr * rr * edge_sel;
                let (b, p) = if *build_left { (lr, rr) } else { (rr, lr) };
                (out, lc + rc + model.hash_join(b, p, out))
            }
            PreparedNode::MergeJoin { edge_sel } => {
                let (rr, rc) = stack.pop().expect("prepared stack underflow");
                let (lr, lc) = stack.pop().expect("prepared stack underflow");
                let out = lr * rr * edge_sel;
                (out, lc + rc + model.merge_join(lr, rr, out))
            }
            PreparedNode::IndexNlj {
                inner,
                edge_sel,
                per_outer,
            } => {
                let (or, oc) = stack.pop().expect("prepared stack underflow");
                let out = or * base.base_rows[*inner as usize] * edge_sel;
                let cost = model.op_startup + or * per_outer + out * model.cpu_tuple;
                (out, oc + cost)
            }
            PreparedNode::HashAggregate { groups } => {
                let (ir, ic) = stack.pop().expect("prepared stack underflow");
                let g = groups.min(ir);
                (g, ic + model.hash_aggregate(ir, g))
            }
            PreparedNode::StreamAggregate { groups } => {
                let (ir, ic) = stack.pop().expect("prepared stack underflow");
                let g = groups.min(ir);
                (g, ic + model.stream_aggregate(ir, g))
            }
            PreparedNode::Sort => {
                let (ir, ic) = stack.pop().expect("prepared stack underflow");
                (ir, ic + model.sort(ir))
            }
        };
        stack.push(entry);
    }
    let (_, cost) = stack.pop().expect("prepared plan is non-empty");
    debug_assert!(stack.is_empty(), "prepared arena must encode one tree");
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, PlanNode, PlanOp};
    use crate::svector::{compute_svector, instance_for_target};
    use crate::template::test_fixtures;

    fn sv_for(template: &QueryTemplate, target: &[f64]) -> SVector {
        compute_svector(template, &instance_for_target(template, target))
    }

    #[test]
    fn base_derivation_multiplies_predicates() {
        let t = test_fixtures::two_dim();
        let sv = SVector(vec![0.1, 0.2]);
        let base = BaseDerivation::new(&t, &sv);
        assert!((base.base_sel[0] - 0.1).abs() < 1e-12);
        assert!((base.base_sel[1] - 0.2).abs() < 1e-12);
        assert!((base.base_rows[0] - 150_000.0).abs() < 1.0); // 1.5M * 0.1
        assert_eq!(base.pred_count, vec![1, 1]);
    }

    #[test]
    fn seq_scan_cost_is_selectivity_independent_but_rows_are_not() {
        let t = test_fixtures::one_rel();
        let model = CostModel::default();
        let plan = Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: 0 }));
        let lo = recost(&t, &model, &plan, &SVector(vec![0.01]));
        let hi = recost(&t, &model, &plan, &SVector(vec![0.9]));
        assert_eq!(lo, hi, "scan reads the whole table either way");
        let base_lo = BaseDerivation::new(&t, &SVector(vec![0.01]));
        let base_hi = BaseDerivation::new(&t, &SVector(vec![0.9]));
        assert!(base_hi.base_rows[0] > base_lo.base_rows[0]);
    }

    #[test]
    fn index_seek_cost_grows_linearly_with_seek_selectivity() {
        let t = test_fixtures::one_rel();
        let model = CostModel::default();
        let plan = Plan::new(PlanNode::leaf(PlanOp::IndexSeek {
            relation: 0,
            seek_pred: 0,
        }));
        let c1 = recost(&t, &model, &plan, &SVector(vec![0.01]));
        let c2 = recost(&t, &model, &plan, &SVector(vec![0.02]));
        let c4 = recost(&t, &model, &plan, &SVector(vec![0.04]));
        // Slope doubles (modulo the additive startup term).
        assert!(c2 < 2.0 * c1);
        assert!(c4 - c2 > (c2 - c1) * 1.9);
    }

    #[test]
    fn hash_join_plan_recosts_consistently() {
        let t = test_fixtures::two_dim();
        let model = CostModel::default();
        let join = PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        );
        let plan = Plan::new(PlanNode::internal(PlanOp::HashAggregate, vec![join]));
        let sv = sv_for(&t, &[0.1, 0.1]);
        let c = recost(&t, &model, &plan, &sv);
        assert!(c.is_finite() && c > 0.0);
        // Monotone in each dimension (PCM).
        let c_hi = recost(&t, &model, &plan, &sv_for(&t, &[0.5, 0.1]));
        assert!(c_hi >= c);
    }

    #[test]
    fn index_nlj_out_rows_match_hash_join_out_rows() {
        // Cardinality is a logical property: independent of the operator.
        let t = test_fixtures::two_dim();
        let model = CostModel::default();
        let sv = sv_for(&t, &[0.05, 0.2]);
        let base = BaseDerivation::new(&t, &sv);
        let hj = PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        );
        let nlj = PlanNode::internal(
            PlanOp::IndexNlj {
                inner: 1,
                seek_edge: 0,
                edges: vec![0],
            },
            vec![PlanNode::leaf(PlanOp::SeqScan { relation: 0 })],
        );
        let (hj_rows, _) = derive_node(&t, &model, &base, &sv, &hj);
        let (nlj_rows, _) = derive_node(&t, &model, &base, &sv, &nlj);
        assert!((hj_rows - nlj_rows).abs() / hj_rows < 1e-9);
    }

    #[test]
    fn aggregate_caps_groups_at_input() {
        let t = test_fixtures::two_dim(); // groups = 100
        let model = CostModel::default();
        let tiny = SVector(vec![1e-6, 1e-6]);
        let base = BaseDerivation::new(&t, &tiny);
        let join = PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        );
        let (join_rows, _) = derive_node(&t, &model, &base, &tiny, &join);
        let agg = PlanNode::internal(PlanOp::HashAggregate, vec![join]);
        let (agg_rows, _) = derive_node(&t, &model, &base, &tiny, &agg);
        assert!(agg_rows <= join_rows.max(MIN_ROWS) + 1e-12);
        assert!(agg_rows <= 100.0);
    }

    #[test]
    fn sort_node_preserves_rows() {
        let t = test_fixtures::one_rel();
        let model = CostModel::default();
        let sv = SVector(vec![0.3]);
        let base = BaseDerivation::new(&t, &sv);
        let scan = PlanNode::leaf(PlanOp::SeqScan { relation: 0 });
        let (scan_rows, scan_cost) = derive_node(&t, &model, &base, &sv, &scan);
        let sorted = PlanNode::internal(PlanOp::Sort { key: None }, vec![scan]);
        let (rows, cost) = derive_node(&t, &model, &base, &sv, &sorted);
        assert_eq!(rows, scan_rows);
        assert!(cost > scan_cost);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let t = test_fixtures::two_dim();
        BaseDerivation::new(&t, &SVector(vec![0.5]));
    }

    /// Plans exercising every operator over the two-dim fixture.
    fn fixture_plans() -> Vec<Plan> {
        let scan = |r: usize| PlanNode::leaf(PlanOp::SeqScan { relation: r });
        let seek = PlanNode::leaf(PlanOp::IndexSeek {
            relation: 1,
            seek_pred: 1,
        });
        let sorted = |r: usize, c: usize| {
            PlanNode::leaf(PlanOp::SortedIndexScan {
                relation: r,
                column: c,
            })
        };
        vec![
            Plan::new(PlanNode::internal(
                PlanOp::HashAggregate,
                vec![PlanNode::internal(
                    PlanOp::HashJoin {
                        build_left: true,
                        edges: vec![0],
                    },
                    vec![scan(0), seek.clone()],
                )],
            )),
            Plan::new(PlanNode::internal(
                PlanOp::StreamAggregate,
                vec![PlanNode::internal(
                    PlanOp::MergeJoin {
                        merge_edge: 0,
                        edges: vec![0],
                    },
                    vec![sorted(0, 0), sorted(1, 1)],
                )],
            )),
            Plan::new(PlanNode::internal(
                PlanOp::Sort { key: None },
                vec![PlanNode::internal(
                    PlanOp::IndexNlj {
                        inner: 1,
                        seek_edge: 0,
                        edges: vec![0],
                    },
                    vec![scan(0)],
                )],
            )),
        ]
    }

    #[test]
    fn arena_recost_is_bit_identical_to_tree_walk() {
        let t = test_fixtures::two_dim();
        let model = CostModel::default();
        for plan in fixture_plans() {
            let tree = plan.to_tree();
            for target in [[0.01, 0.9], [0.5, 0.5], [0.9, 0.02]] {
                let sv = sv_for(&t, &target);
                let arena = recost(&t, &model, &plan, &sv);
                let legacy = recost_tree(&t, &model, &tree, &sv);
                assert_eq!(arena.to_bits(), legacy.to_bits());
            }
        }
    }

    #[test]
    fn prepared_recost_is_bit_identical_and_delta_safe() {
        let t = test_fixtures::two_dim();
        let model = CostModel::default();
        let consts = BaseConsts::new(&t);
        let mut scratch = RecostScratch::new();
        for plan in fixture_plans() {
            let prepared = PreparedRecost::new(&t, &model, &plan);
            assert_eq!(prepared.len(), plan.size());
            // Walk a sequence of sVectors that exercises full derivation,
            // single-dimension deltas, and exact repeats — one shared
            // scratch throughout, as the serving layer uses it.
            let targets = [
                [0.3, 0.3],
                [0.3, 0.3], // repeat: zero relations re-derived
                [0.3, 0.7], // dim 1 only
                [0.9, 0.7], // dim 0 only
                [0.1, 0.2], // both
            ];
            for target in targets {
                let sv = sv_for(&t, &target);
                let fast = recost_prepared(&consts, &model, &prepared, &sv, &mut scratch);
                let slow = recost(&t, &model, &plan, &sv);
                assert_eq!(fast.to_bits(), slow.to_bits(), "at {target:?}");
            }
        }
    }

    #[test]
    fn scratch_invalidate_forces_full_rederive() {
        let t2 = test_fixtures::two_dim();
        let t3 = test_fixtures::three_dim();
        let model = CostModel::default();
        let mut scratch = RecostScratch::new();
        let plan2 = &fixture_plans()[0];
        let prepared2 = PreparedRecost::new(&t2, &model, plan2);
        let c2 = BaseConsts::new(&t2);
        let sv2 = sv_for(&t2, &[0.4, 0.4]);
        let a = recost_prepared(&c2, &model, &prepared2, &sv2, &mut scratch);
        // Different template, different arity: scratch re-derives fully.
        let c3 = BaseConsts::new(&t3);
        let plan3 = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![1],
            },
            vec![
                PlanNode::internal(
                    PlanOp::HashJoin {
                        build_left: false,
                        edges: vec![0],
                    },
                    vec![
                        PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                        PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
                    ],
                ),
                PlanNode::leaf(PlanOp::SeqScan { relation: 2 }),
            ],
        ));
        let prepared3 = PreparedRecost::new(&t3, &model, &plan3);
        let sv3 = sv_for(&t3, &[0.2, 0.5, 0.8]);
        scratch.invalidate();
        let b = recost_prepared(&c3, &model, &prepared3, &sv3, &mut scratch);
        assert_eq!(b.to_bits(), recost(&t3, &model, &plan3, &sv3).to_bits());
        // And going back still agrees.
        scratch.invalidate();
        let a2 = recost_prepared(&c2, &model, &prepared2, &sv2, &mut scratch);
        assert_eq!(a.to_bits(), a2.to_bits());
    }
}
