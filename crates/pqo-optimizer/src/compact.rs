//! Compact plan representation — the Appendix B trade-off.
//!
//! The paper stores a `shrunkenMemo` per cached plan to support Recost and
//! notes: *"there can be alternative implementations of Recost that require
//! lesser memory overheads at the cost of increased time overheads for each
//! Recost call."* This module is that alternative: a postfix byte encoding
//! of the plan tree (a few bytes per operator instead of a pointer-rich
//! tree) that can be re-costed by a single stack-machine pass over the
//! bytes, or decoded back into a [`Plan`] when the executor needs it.
//!
//! Invariant (tested across the corpus):
//! `recost_compact(encode(P), q) == recost(P, q)` exactly, and
//! `decode(encode(P)) == P` including the fingerprint.

use crate::cost::CostModel;
use crate::plan::{Plan, PlanNode, PlanOp};
use crate::recost::BaseDerivation;
use crate::svector::SVector;
use crate::template::QueryTemplate;

/// Operator tags of the byte encoding.
mod tag {
    pub const SEQ_SCAN: u8 = 0;
    pub const INDEX_SEEK: u8 = 1;
    pub const SORTED_INDEX_SCAN: u8 = 2;
    pub const HASH_JOIN: u8 = 3;
    pub const MERGE_JOIN: u8 = 4;
    pub const INDEX_NLJ: u8 = 5;
    pub const HASH_AGG: u8 = 6;
    pub const STREAM_AGG: u8 = 7;
    pub const SORT: u8 = 8;
}

/// A plan serialized as postfix bytes. A handful of bytes per operator —
/// compare [`Plan`]'s boxed tree (see [`CompactPlan::bytes_len`] vs
/// [`estimated_tree_bytes`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactPlan {
    bytes: Box<[u8]>,
}

/// Rough heap footprint of a plan's arena representation (what the plan
/// cache pays per plan, Section 6.1's "few hundred KBs per plan" in SQL
/// Server terms; far smaller here, but the ratio is what matters).
pub fn estimated_plan_bytes(plan: &Plan) -> usize {
    let nodes = plan.nodes();
    let edge_bytes: usize = nodes
        .iter()
        .map(|n| match &n.op {
            PlanOp::HashJoin { edges, .. }
            | PlanOp::MergeJoin { edges, .. }
            | PlanOp::IndexNlj { edges, .. } => edges.capacity() * std::mem::size_of::<usize>(),
            _ => 0,
        })
        .sum();
    std::mem::size_of::<Plan>() + std::mem::size_of_val(nodes) + edge_bytes
}

impl CompactPlan {
    /// Serialize a plan: the arena is already postorder, so encoding is one
    /// linear pass emitting each operator's bytes.
    pub fn encode(plan: &Plan) -> Self {
        let mut bytes = Vec::with_capacity(plan.size() * 4);
        for node in plan.nodes() {
            encode_op(&node.op, &mut bytes);
        }
        CompactPlan {
            bytes: bytes.into_boxed_slice(),
        }
    }

    /// Size of the encoding in bytes.
    pub fn bytes_len(&self) -> usize {
        self.bytes.len()
    }

    /// Decode back into a full [`Plan`] (identical fingerprint).
    ///
    /// # Panics
    /// Panics on a corrupt encoding (see [`CompactPlan::checked_decode`]
    /// for the fallible variant used by persistence).
    pub fn decode(&self) -> Plan {
        self.checked_decode()
            .unwrap_or_else(|e| panic!("corrupt compact plan: {e}"))
    }

    /// Raw encoded bytes (persistence writes these verbatim).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wrap raw bytes read back from storage (validated on decode).
    pub fn from_bytes(bytes: Box<[u8]>) -> Self {
        CompactPlan { bytes }
    }

    /// Fallible decode: every read is bounds-checked and arity-checked, so
    /// corrupt or truncated input produces an error instead of a panic.
    pub fn checked_decode(&self) -> Result<Plan, String> {
        let b = &self.bytes;
        let mut stack: Vec<PlanNode> = Vec::new();
        let mut i = 0usize;
        fn byte(b: &[u8], i: &mut usize) -> Result<u8, String> {
            let v = *b
                .get(*i)
                .ok_or_else(|| format!("truncated at offset {i}", i = *i))?;
            *i += 1;
            Ok(v)
        }
        fn edges(b: &[u8], i: &mut usize) -> Result<Vec<usize>, String> {
            let n = byte(b, i)? as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(byte(b, i)? as usize);
            }
            Ok(out)
        }
        fn pop(stack: &mut Vec<PlanNode>, what: &str) -> Result<PlanNode, String> {
            stack.pop().ok_or_else(|| format!("missing {what} operand"))
        }
        while i < b.len() {
            let t = byte(b, &mut i)?;
            match t {
                tag::SEQ_SCAN => {
                    let rel = byte(b, &mut i)? as usize;
                    stack.push(PlanNode::leaf(PlanOp::SeqScan { relation: rel }));
                }
                tag::INDEX_SEEK => {
                    let rel = byte(b, &mut i)? as usize;
                    let pred = byte(b, &mut i)? as usize;
                    stack.push(PlanNode::leaf(PlanOp::IndexSeek {
                        relation: rel,
                        seek_pred: pred,
                    }));
                }
                tag::SORTED_INDEX_SCAN => {
                    let rel = byte(b, &mut i)? as usize;
                    let col = byte(b, &mut i)? as usize;
                    stack.push(PlanNode::leaf(PlanOp::SortedIndexScan {
                        relation: rel,
                        column: col,
                    }));
                }
                tag::HASH_JOIN => {
                    let build_left = byte(b, &mut i)? != 0;
                    let edges = edges(b, &mut i)?;
                    let r = pop(&mut stack, "hash-join rhs")?;
                    let l = pop(&mut stack, "hash-join lhs")?;
                    stack.push(PlanNode::internal(
                        PlanOp::HashJoin { build_left, edges },
                        vec![l, r],
                    ));
                }
                tag::MERGE_JOIN => {
                    let merge_edge = byte(b, &mut i)? as usize;
                    let edges = edges(b, &mut i)?;
                    let r = pop(&mut stack, "merge-join rhs")?;
                    let l = pop(&mut stack, "merge-join lhs")?;
                    stack.push(PlanNode::internal(
                        PlanOp::MergeJoin { merge_edge, edges },
                        vec![l, r],
                    ));
                }
                tag::INDEX_NLJ => {
                    let inner = byte(b, &mut i)? as usize;
                    let seek_edge = byte(b, &mut i)? as usize;
                    let edges = edges(b, &mut i)?;
                    let outer = pop(&mut stack, "index-nlj outer")?;
                    stack.push(PlanNode::internal(
                        PlanOp::IndexNlj {
                            inner,
                            seek_edge,
                            edges,
                        },
                        vec![outer],
                    ));
                }
                tag::HASH_AGG | tag::STREAM_AGG => {
                    let child = pop(&mut stack, "aggregate input")?;
                    let op = if t == tag::HASH_AGG {
                        PlanOp::HashAggregate
                    } else {
                        PlanOp::StreamAggregate
                    };
                    stack.push(PlanNode::internal(op, vec![child]));
                }
                tag::SORT => {
                    let key = if byte(b, &mut i)? != 0 {
                        let r = byte(b, &mut i)? as usize;
                        let c = byte(b, &mut i)? as usize;
                        Some((r, c))
                    } else {
                        None
                    };
                    let child = pop(&mut stack, "sort input")?;
                    stack.push(PlanNode::internal(PlanOp::Sort { key }, vec![child]));
                }
                other => return Err(format!("unknown tag {other}")),
            }
        }
        if stack.len() != 1 {
            return Err(format!("{} roots after decode", stack.len()));
        }
        Ok(Plan::new(stack.pop().unwrap()))
    }
}

fn encode_op(op: &PlanOp, out: &mut Vec<u8>) {
    let push_edges = |edges: &[usize], out: &mut Vec<u8>| {
        out.push(u8::try_from(edges.len()).expect("≤255 edges"));
        for &e in edges {
            out.push(u8::try_from(e).expect("edge index fits u8"));
        }
    };
    match op {
        PlanOp::SeqScan { relation } => {
            out.push(tag::SEQ_SCAN);
            out.push(*relation as u8);
        }
        PlanOp::IndexSeek {
            relation,
            seek_pred,
        } => {
            out.push(tag::INDEX_SEEK);
            out.push(*relation as u8);
            out.push(*seek_pred as u8);
        }
        PlanOp::SortedIndexScan { relation, column } => {
            out.push(tag::SORTED_INDEX_SCAN);
            out.push(*relation as u8);
            out.push(u8::try_from(*column).expect("column index fits u8"));
        }
        PlanOp::HashJoin { build_left, edges } => {
            out.push(tag::HASH_JOIN);
            out.push(u8::from(*build_left));
            push_edges(edges, out);
        }
        PlanOp::MergeJoin { merge_edge, edges } => {
            out.push(tag::MERGE_JOIN);
            out.push(u8::try_from(*merge_edge).expect("edge index fits u8"));
            push_edges(edges, out);
        }
        PlanOp::IndexNlj {
            inner,
            seek_edge,
            edges,
        } => {
            out.push(tag::INDEX_NLJ);
            out.push(*inner as u8);
            out.push(u8::try_from(*seek_edge).expect("edge index fits u8"));
            push_edges(edges, out);
        }
        PlanOp::HashAggregate => out.push(tag::HASH_AGG),
        PlanOp::StreamAggregate => out.push(tag::STREAM_AGG),
        PlanOp::Sort { key } => {
            out.push(tag::SORT);
            match key {
                Some((r, c)) => {
                    out.push(1);
                    out.push(*r as u8);
                    out.push(u8::try_from(*c).expect("column fits u8"));
                }
                None => out.push(0),
            }
        }
    }
}

/// Re-cost a compact plan without materializing the tree: one pass over the
/// postfix bytes with a `(rows, cost)` stack. Same formulas as
/// [`crate::recost::recost`] — the two agree exactly.
pub fn recost_compact(
    template: &QueryTemplate,
    model: &CostModel,
    plan: &CompactPlan,
    sv: &SVector,
) -> f64 {
    let base = BaseDerivation::new(template, sv);
    let b = &plan.bytes;
    let mut stack: Vec<(f64, f64)> = Vec::with_capacity(8);
    let mut i = 0usize;
    let edge_sel = |i: &mut usize| -> (f64, usize) {
        let n = b[*i] as usize;
        *i += 1;
        let mut sel = 1.0;
        for k in 0..n {
            sel *= template.join_edges[b[*i + k] as usize].selectivity;
        }
        *i += n;
        (sel, n)
    };
    while i < b.len() {
        let t = b[i];
        i += 1;
        match t {
            tag::SEQ_SCAN => {
                let rel = b[i] as usize;
                i += 1;
                let tb = &template.relations[rel].table;
                stack.push((
                    base.base_rows[rel],
                    model.seq_scan(
                        tb.page_count as f64,
                        tb.row_count as f64,
                        base.pred_count[rel],
                    ),
                ));
            }
            tag::INDEX_SEEK => {
                let (rel, pred) = (b[i] as usize, b[i + 1] as usize);
                i += 2;
                let tb = &template.relations[rel].table;
                let fetch = (tb.row_count as f64 * sv.get(pred)).max(1e-9);
                stack.push((
                    base.base_rows[rel],
                    model.index_seek(
                        tb.row_count as f64,
                        fetch,
                        base.pred_count[rel].saturating_sub(1),
                    ),
                ));
            }
            tag::SORTED_INDEX_SCAN => {
                let rel = b[i] as usize;
                i += 2; // skip column: cost does not depend on which key
                let tb = &template.relations[rel].table;
                stack.push((
                    base.base_rows[rel],
                    model.sorted_index_scan(
                        tb.page_count as f64,
                        tb.row_count as f64,
                        base.pred_count[rel],
                    ),
                ));
            }
            tag::HASH_JOIN => {
                let build_left = b[i] != 0;
                i += 1;
                let (sel, _) = edge_sel(&mut i);
                let (rr, rc) = stack.pop().expect("rhs");
                let (lr, lc) = stack.pop().expect("lhs");
                let out = lr * rr * sel;
                let (bu, pr) = if build_left { (lr, rr) } else { (rr, lr) };
                stack.push((out, lc + rc + model.hash_join(bu, pr, out)));
            }
            tag::MERGE_JOIN => {
                i += 1; // merge edge: cost-irrelevant
                let (sel, _) = edge_sel(&mut i);
                let (rr, rc) = stack.pop().expect("rhs");
                let (lr, lc) = stack.pop().expect("lhs");
                let out = lr * rr * sel;
                stack.push((out, lc + rc + model.merge_join(lr, rr, out)));
            }
            tag::INDEX_NLJ => {
                let (inner, seek_edge) = (b[i] as usize, b[i + 1] as usize);
                i += 2;
                let (sel, n_edges) = edge_sel(&mut i);
                let (or, oc) = stack.pop().expect("outer");
                let tb = &template.relations[inner].table;
                let n_inner = tb.row_count as f64;
                let lookup = n_inner * template.join_edges[seek_edge].selectivity;
                let residual = base.pred_count[inner] + n_edges.saturating_sub(1);
                let out = or * base.base_rows[inner] * sel;
                stack.push((
                    out,
                    oc + model.index_nlj(or, n_inner, lookup, residual, out),
                ));
            }
            tag::HASH_AGG | tag::STREAM_AGG => {
                let (ir, ic) = stack.pop().expect("agg input");
                let g = template
                    .aggregate
                    .as_ref()
                    .map(|a| a.groups)
                    .unwrap_or(1.0)
                    .min(ir);
                let cost = if t == tag::HASH_AGG {
                    model.hash_aggregate(ir, g)
                } else {
                    model.stream_aggregate(ir, g)
                };
                stack.push((g, ic + cost));
            }
            tag::SORT => {
                i += if b[i] != 0 { 3 } else { 1 }; // key: cost-irrelevant
                let (ir, ic) = stack.pop().expect("sort input");
                stack.push((ir, ic + model.sort(ir)));
            }
            other => panic!("corrupt compact plan: tag {other}"),
        }
    }
    assert_eq!(stack.len(), 1, "corrupt compact plan");
    stack.pop().unwrap().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use crate::recost::recost;
    use crate::svector::{compute_svector, instance_for_target};
    use crate::template::test_fixtures;

    fn plan_at(t: &QueryTemplate, target: &[f64]) -> (Plan, SVector) {
        let sv = compute_svector(t, &instance_for_target(t, target));
        (optimize(t, &CostModel::default(), &sv).plan, sv)
    }

    #[test]
    fn roundtrip_preserves_fingerprint() {
        let t = test_fixtures::three_dim();
        for target in [[0.01, 0.01, 0.01], [0.6, 0.6, 0.6], [0.9, 0.01, 0.4]] {
            let (plan, _) = plan_at(&t, &target);
            let compact = CompactPlan::encode(&plan);
            assert_eq!(compact.decode().fingerprint(), plan.fingerprint());
        }
    }

    #[test]
    fn recost_compact_matches_tree_recost() {
        let t = test_fixtures::three_dim();
        let m = CostModel::default();
        let (plan, _) = plan_at(&t, &[0.1, 0.2, 0.05]);
        let compact = CompactPlan::encode(&plan);
        for target in [[0.01, 0.01, 0.01], [0.5, 0.5, 0.5], [0.9, 0.05, 0.3]] {
            let sv = compute_svector(&t, &instance_for_target(&t, &target));
            let a = recost(&t, &m, &plan, &sv);
            let b = recost_compact(&t, &m, &compact, &sv);
            assert!((a - b).abs() <= 1e-9 * a.max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn compact_is_much_smaller_than_arena() {
        let t = test_fixtures::three_dim();
        let (plan, _) = plan_at(&t, &[0.2, 0.2, 0.2]);
        let compact = CompactPlan::encode(&plan);
        let arena = estimated_plan_bytes(&plan);
        assert!(
            compact.bytes_len() * 4 < arena,
            "compact {} bytes should be ≲ 1/4 of arena {} bytes",
            compact.bytes_len(),
            arena
        );
    }

    #[test]
    fn single_relation_plans_roundtrip() {
        let t = test_fixtures::one_rel();
        for target in [[0.001], [0.9]] {
            let (plan, sv) = plan_at(&t, &target);
            let compact = CompactPlan::encode(&plan);
            assert_eq!(compact.decode().fingerprint(), plan.fingerprint());
            let m = CostModel::default();
            assert_eq!(
                recost(&t, &m, &plan, &sv),
                recost_compact(&t, &m, &compact, &sv)
            );
        }
    }

    #[test]
    #[should_panic(expected = "corrupt compact plan")]
    fn corrupt_bytes_panic() {
        let cp = CompactPlan {
            bytes: vec![99u8].into_boxed_slice(),
        };
        let _ = cp.decode();
    }
}
