//! The cost model.
//!
//! Operator formulas follow the classical System-R style: sequential and
//! random page I/O plus per-tuple CPU. Two properties matter for the paper:
//!
//! * **Plan Cost Monotonicity (PCM)** — every formula is non-decreasing in
//!   its input cardinalities, so plan costs grow with selectivity.
//! * **Bounded Cost Growth (BCG)** — with `fi(α) = α`: almost every term is
//!   linear (or sub-linear, thanks to additive startup constants) in each
//!   input cardinality. The deliberate exceptions are the `n·log n` sort
//!   term and the memory-spill steps in sort/hash operators, which can
//!   locally grow faster than `α`. Section 5.4/7.2 of the paper describe
//!   exactly this situation ("rare violations"), and the reproduction keeps
//!   it so that MSO > λ remains possible-but-rare.

/// Tunable constants of the cost model. Costs are in abstract optimizer
/// units (1.0 ≈ one sequential page read).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Cost of one sequential page read.
    pub seq_page_io: f64,
    /// Cost of one random page read.
    pub rand_page_io: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple: f64,
    /// CPU cost of evaluating one predicate on one tuple.
    pub cpu_pred: f64,
    /// CPU cost of inserting one tuple into a hash table.
    pub cpu_hash_build: f64,
    /// CPU cost of probing a hash table once.
    pub cpu_hash_probe: f64,
    /// CPU cost coefficient of sorting: `cpu_sort · n · log2(n)`.
    pub cpu_sort: f64,
    /// CPU cost of advancing a merge of sorted streams, per input tuple.
    pub cpu_merge: f64,
    /// Expected random-I/O cost per row fetched through a secondary index
    /// (fractional: some locality is assumed).
    pub index_fetch_io: f64,
    /// CPU cost of one B-tree descent per level.
    pub cpu_btree_level: f64,
    /// Rows that fit in working memory for hash tables / sorts before the
    /// operator spills. The source of cost-model discontinuities.
    pub mem_rows: f64,
    /// Extra I/O cost per row once an operator spills.
    pub spill_io_per_row: f64,
    /// Fixed startup cost charged once per operator (the `C4`-style constant
    /// of Appendix A).
    pub op_startup: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            seq_page_io: 1.0,
            rand_page_io: 4.0,
            cpu_tuple: 0.01,
            cpu_pred: 0.002,
            cpu_hash_build: 0.02,
            cpu_hash_probe: 0.01,
            cpu_sort: 0.012,
            cpu_merge: 0.006,
            index_fetch_io: 0.4,
            cpu_btree_level: 0.02,
            mem_rows: 400_000.0,
            spill_io_per_row: 0.02,
            op_startup: 5.0,
        }
    }
}

/// Clamped base-2 log used by the B-tree and sort terms. `pub(crate)` so the
/// prepared-recost path can fold `log2c(table_rows) * cpu_btree_level` into a
/// per-node constant with bit-identical arithmetic.
pub(crate) fn log2c(n: f64) -> f64 {
    n.max(2.0).log2()
}

impl CostModel {
    /// Full scan of a heap of `pages` pages and `rows` rows, evaluating
    /// `preds` predicates per row.
    pub fn seq_scan(&self, pages: f64, rows: f64, preds: usize) -> f64 {
        self.op_startup
            + pages * self.seq_page_io
            + rows * (self.cpu_tuple + preds as f64 * self.cpu_pred)
    }

    /// Secondary-index seek on a table of `table_rows` rows fetching
    /// `fetch_rows` matching rows, then evaluating `residual_preds` residual
    /// predicates on each fetched row.
    pub fn index_seek(&self, table_rows: f64, fetch_rows: f64, residual_preds: usize) -> f64 {
        self.op_startup
            + log2c(table_rows) * self.cpu_btree_level
            + fetch_rows
                * (self.index_fetch_io + self.cpu_tuple + residual_preds as f64 * self.cpu_pred)
    }

    /// Hash join: build on `build_rows`, probe with `probe_rows`, emit
    /// `out_rows`. Spills when the build side exceeds working memory.
    pub fn hash_join(&self, build_rows: f64, probe_rows: f64, out_rows: f64) -> f64 {
        let mut c = self.op_startup
            + build_rows * self.cpu_hash_build
            + probe_rows * self.cpu_hash_probe
            + out_rows * self.cpu_tuple;
        if build_rows > self.mem_rows {
            // Grace hash join: both inputs are partitioned to disk and re-read.
            c += (build_rows + probe_rows) * self.spill_io_per_row;
        }
        c
    }

    /// In-memory/external sort of `rows` rows.
    pub fn sort(&self, rows: f64) -> f64 {
        let mut c = self.op_startup + rows * log2c(rows) * self.cpu_sort;
        if rows > self.mem_rows {
            // One extra read+write pass per merge level over memory size.
            let passes = (rows / self.mem_rows).log2().ceil().max(1.0);
            c += rows * self.spill_io_per_row * passes;
        }
        c
    }

    /// Merge join of two *already sorted* inputs (pure merge). Sorting, when
    /// needed, is planned explicitly as enforcer [`sort`](Self::sort) nodes
    /// by the optimizer (interesting-orders planning), so the merge itself
    /// only pays the linear merge pass.
    pub fn merge_join(&self, left_rows: f64, right_rows: f64, out_rows: f64) -> f64 {
        self.op_startup + (left_rows + right_rows) * self.cpu_merge + out_rows * self.cpu_tuple
    }

    /// Full ordered scan through a B-tree index on a (mostly clustered)
    /// column: roughly a sequential leaf-page scan at a ~30% premium over
    /// the heap scan, delivering rows sorted by the indexed column. This is
    /// the access path that makes sort-free merge joins viable.
    pub fn sorted_index_scan(&self, pages: f64, table_rows: f64, preds: usize) -> f64 {
        self.op_startup
            + log2c(table_rows) * self.cpu_btree_level
            + pages * 1.3 * self.seq_page_io
            + table_rows * (self.cpu_tuple + preds as f64 * self.cpu_pred)
    }

    /// Index nested-loops join: for each of `outer_rows` rows, descend the
    /// inner index (`inner_table_rows` rows) and fetch `lookup_rows` matches,
    /// applying `residual_preds` residual predicates; emits `out_rows`.
    pub fn index_nlj(
        &self,
        outer_rows: f64,
        inner_table_rows: f64,
        lookup_rows: f64,
        residual_preds: usize,
        out_rows: f64,
    ) -> f64 {
        self.op_startup
            + outer_rows
                * (log2c(inner_table_rows) * self.cpu_btree_level
                    + lookup_rows
                        * (self.index_fetch_io
                            + self.cpu_tuple
                            + residual_preds as f64 * self.cpu_pred))
            + out_rows * self.cpu_tuple
    }

    /// Hash aggregation of `in_rows` into `groups` groups.
    pub fn hash_aggregate(&self, in_rows: f64, groups: f64) -> f64 {
        let mut c = self.op_startup + in_rows * self.cpu_hash_build + groups * self.cpu_tuple;
        if groups > self.mem_rows {
            c += (in_rows + groups) * self.spill_io_per_row;
        }
        c
    }

    /// Sort-based aggregation of `in_rows` into `groups` groups (includes
    /// the sort).
    pub fn stream_aggregate(&self, in_rows: f64, groups: f64) -> f64 {
        self.sort(in_rows) + self.op_startup + in_rows * self.cpu_tuple + groups * self.cpu_tuple
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_rand::rngs::StdRng;
    use pqo_rand::{Rng, SeedableRng};

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn index_seek_beats_scan_at_low_selectivity_only() {
        let m = m();
        let rows = 1_000_000.0;
        let pages = rows * 120.0 / 8192.0;
        let scan = m.seq_scan(pages, rows, 1);
        assert!(
            m.index_seek(rows, 0.001 * rows, 0) < scan,
            "low sel should prefer index"
        );
        assert!(
            m.index_seek(rows, 0.5 * rows, 0) > scan,
            "high sel should prefer scan"
        );
    }

    #[test]
    fn index_nlj_vs_hash_join_crossover() {
        let m = m();
        let inner = 6_000_000.0;
        // PK-FK join: one match per outer row.
        let nlj_small = m.index_nlj(1_000.0, inner, 1.0, 0, 1_000.0);
        let hj_small = m.hash_join(1_000.0, inner, 1_000.0);
        assert!(nlj_small < hj_small, "small outer should prefer index NLJ");
        let nlj_big = m.index_nlj(3_000_000.0, inner, 1.0, 0, 3_000_000.0);
        let hj_big = m.hash_join(3_000_000.0, inner, 3_000_000.0);
        assert!(nlj_big > hj_big, "large outer should prefer hash join");
    }

    #[test]
    fn hash_join_spill_discontinuity() {
        let m = m();
        let below = m.hash_join(m.mem_rows, 1_000_000.0, 1_000_000.0);
        let above = m.hash_join(m.mem_rows + 1.0, 1_000_000.0, 1_000_000.0);
        assert!(
            above > below * 1.2,
            "spill should cause a visible step: {below} -> {above}"
        );
    }

    #[test]
    fn sort_is_superlinear() {
        let m = m();
        // Doubling n more than doubles cost (the BCG-violating term).
        let c1 = m.sort(10_000.0) - m.op_startup;
        let c2 = m.sort(20_000.0) - m.op_startup;
        assert!(c2 > 2.0 * c1);
    }

    #[test]
    fn merge_join_is_linear_in_inputs() {
        let m = m();
        let mj = m.merge_join(1000.0, 2000.0, 500.0);
        // Pure merge: far cheaper than sorting the inputs.
        assert!(mj < m.sort(1000.0) + m.sort(2000.0));
        let mj2 = m.merge_join(2000.0, 4000.0, 1000.0);
        assert!((mj2 - m.op_startup) > 1.99 * (mj - m.op_startup));
        assert!((mj2 - m.op_startup) < 2.01 * (mj - m.op_startup));
    }

    #[test]
    fn sorted_index_scan_premium_over_seq_scan() {
        let m = m();
        let rows = 1_000_000.0;
        let pages = rows * 120.0 / 8192.0;
        let seq = m.seq_scan(pages, rows, 1);
        let sorted = m.sorted_index_scan(pages, rows, 1);
        assert!(
            sorted > seq,
            "ordered scan must cost more than the heap scan"
        );
        assert!(sorted < seq * 1.5, "but only a modest premium");
        // The premium beats an explicit sort for large inputs...
        assert!(sorted < seq + m.sort(rows));
        // ...while small inputs prefer scan + sort territory to stay open.
        let small = 10_000.0;
        let small_pages = small * 120.0 / 8192.0;
        let diff = m.sorted_index_scan(small_pages, small, 0) - m.seq_scan(small_pages, small, 0);
        assert!(
            diff < m.sort(small),
            "tiny inputs keep the trade-off interesting"
        );
    }

    #[test]
    fn stream_agg_costs_more_than_hash_agg_in_memory() {
        let m = m();
        let n = 100_000.0;
        assert!(m.stream_aggregate(n, 100.0) > m.hash_aggregate(n, 100.0));
    }

    #[test]
    fn hash_agg_spills_on_many_groups() {
        let m = m();
        let in_rows = 1_000_000.0;
        let small = m.hash_aggregate(in_rows, 1_000.0);
        let huge = m.hash_aggregate(in_rows, m.mem_rows * 2.0);
        assert!(huge > small * 1.5);
    }

    // PCM: every operator cost is monotone in each cardinality argument.
    #[test]
    fn seq_scan_monotone_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0001);
        for _ in 0..256 {
            let r1 = rng.gen_range(1.0..1e7);
            let r2 = rng.gen_range(1.0..1e7);
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            assert!(m.seq_scan(lo / 68.0, lo, 2) <= m.seq_scan(hi / 68.0, hi, 2));
        }
    }

    #[test]
    fn index_seek_monotone_in_fetch_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0002);
        for _ in 0..256 {
            let f1 = rng.gen_range(1.0..1e6);
            let f2 = rng.gen_range(1.0..1e6);
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            assert!(m.index_seek(1e7, lo, 1) <= m.index_seek(1e7, hi, 1));
        }
    }

    #[test]
    fn hash_join_monotone_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0003);
        for _ in 0..256 {
            let b = rng.gen_range(1.0..1e6);
            let p1 = rng.gen_range(1.0..1e7);
            let p2 = rng.gen_range(1.0..1e7);
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            assert!(m.hash_join(b, lo, lo * 0.1) <= m.hash_join(b, hi, hi * 0.1));
        }
    }

    #[test]
    fn sort_monotone_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0004);
        for _ in 0..256 {
            let n1 = rng.gen_range(1.0..1e7);
            let n2 = rng.gen_range(1.0..1e7);
            let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
            assert!(m.sort(lo) <= m.sort(hi));
        }
    }

    // BCG with fi(α)=α holds for the pure-linear operators: scaling the
    // driving cardinality by α ≥ 1 scales cost by at most α.
    #[test]
    fn bcg_holds_for_seq_scan_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0005);
        for _ in 0..256 {
            let rows = rng.gen_range(100.0..1e6);
            let alpha = rng.gen_range(1.0..20.0);
            let base = m.seq_scan(rows / 68.0, rows, 1);
            let grown = m.seq_scan(rows * alpha / 68.0, rows * alpha, 1);
            assert!(grown <= alpha * base * (1.0 + 1e-9));
        }
    }

    #[test]
    fn bcg_holds_for_index_seek_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0006);
        for _ in 0..256 {
            let f = rng.gen_range(1.0..1e5);
            let alpha = rng.gen_range(1.0..20.0);
            let base = m.index_seek(1e7, f, 1);
            let grown = m.index_seek(1e7, f * alpha, 1);
            assert!(grown <= alpha * base * (1.0 + 1e-9));
        }
    }

    // ... and is *violated* by sort for large enough inputs: this is the
    // deliberate super-linear term.
    #[test]
    fn bcg_violated_by_sort_eventually_randomized() {
        let m = m();
        let mut rng = StdRng::seed_from_u64(0xc057_0007);
        for _ in 0..256 {
            let n = rng.gen_range(1e4..1e6);
            let alpha = 2.0;
            let base = m.sort(n) - m.op_startup;
            let grown = m.sort(n * alpha) - m.op_startup;
            assert!(grown > alpha * base);
        }
    }
}
