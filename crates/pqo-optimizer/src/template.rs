//! Parameterized query templates.
//!
//! A template is a join graph over catalog tables, decorated with:
//!
//! * **parameterized predicates** — `d` one-sided range predicates
//!   `col <= ?` / `col >= ?` whose parameter changes per instance. These are
//!   the paper's *dimensions* (Section 2); the workload generator of
//!   Section 7.1 explicitly adds such predicates to benchmark queries.
//! * **fixed predicates** — constant-selectivity filters.
//! * **join edges** — equi-joins with a selectivity derived from column NDVs
//!   (held fixed across instances; paper assumption (b), Section 5.2).
//! * an optional **aggregate** and an optional final **order-by**.

use std::sync::Arc;

use pqo_catalog::table::TableDef;

/// Direction of a one-sided range predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeOp {
    /// `col <= ?`
    Le,
    /// `col >= ?`
    Ge,
}

/// One parameterized predicate — one dimension of the selectivity space.
#[derive(Debug, Clone)]
pub struct ParamPredicate {
    /// Index into [`QueryTemplate::relations`].
    pub relation: usize,
    /// Column index within that relation's table.
    pub column: usize,
    /// Predicate direction.
    pub op: RangeOp,
}

/// A constant-selectivity filter on one relation.
#[derive(Debug, Clone)]
pub struct FixedPredicate {
    /// Index into [`QueryTemplate::relations`].
    pub relation: usize,
    /// Selectivity in `(0, 1]`.
    pub selectivity: f64,
}

/// An equi-join edge between two relations.
#[derive(Debug, Clone)]
pub struct JoinEdge {
    /// `(relation index, column index)` of the left side.
    pub left: (usize, usize),
    /// `(relation index, column index)` of the right side.
    pub right: (usize, usize),
    /// Join selectivity: `|L ⋈ R| = |L| · |R| · selectivity`. Derived from
    /// `1 / max(ndv_left, ndv_right)` at template construction.
    pub selectivity: f64,
}

impl JoinEdge {
    /// The relation on this edge other than `rel`, with its column, if the
    /// edge touches `rel`.
    pub fn other_side(&self, rel: usize) -> Option<(usize, usize)> {
        if self.left.0 == rel {
            Some(self.right)
        } else if self.right.0 == rel {
            Some(self.left)
        } else {
            None
        }
    }

    /// Column used on relation `rel`'s side, if the edge touches `rel`.
    pub fn column_on(&self, rel: usize) -> Option<usize> {
        if self.left.0 == rel {
            Some(self.left.1)
        } else if self.right.0 == rel {
            Some(self.right.1)
        } else {
            None
        }
    }

    /// Whether the edge connects a relation in `a` with one in `b`
    /// (bitmask relation sets).
    pub fn crosses(&self, a: u32, b: u32) -> bool {
        let l = 1u32 << self.left.0;
        let r = 1u32 << self.right.0;
        (l & a != 0 && r & b != 0) || (l & b != 0 && r & a != 0)
    }
}

/// Aggregation on top of the join tree.
#[derive(Debug, Clone)]
pub struct AggregateSpec {
    /// Estimated number of distinct groups (capped by input cardinality).
    pub groups: f64,
}

/// A relation occurrence in the template (table + alias).
#[derive(Debug, Clone)]
pub struct RelationRef {
    /// The underlying table.
    pub table: Arc<TableDef>,
    /// Alias, unique within the template.
    pub alias: String,
}

/// A parameterized query template — the paper's `Q`.
#[derive(Debug, Clone)]
pub struct QueryTemplate {
    /// Template name, e.g. `"tpch_q3_d2"`.
    pub name: String,
    /// Relations in the FROM list (at most 16).
    pub relations: Vec<RelationRef>,
    /// Equi-join edges; the induced graph must be connected.
    pub join_edges: Vec<JoinEdge>,
    /// The `d` parameterized predicates, in dimension order.
    pub param_preds: Vec<ParamPredicate>,
    /// Constant-selectivity filters.
    pub fixed_preds: Vec<FixedPredicate>,
    /// Optional aggregate on top of the join tree.
    pub aggregate: Option<AggregateSpec>,
    /// Whether the final output must be sorted.
    pub order_by: bool,
}

/// One instance of a template: the parameter values, in dimension order.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    /// Parameter values; `values.len() == template.dimensions()`.
    pub values: Vec<f64>,
}

impl QueryInstance {
    /// Wrap raw parameter values.
    pub fn new(values: Vec<f64>) -> Self {
        QueryInstance { values }
    }
}

impl QueryTemplate {
    /// Number of parameterized predicates — the paper's `d`.
    pub fn dimensions(&self) -> usize {
        self.param_preds.len()
    }

    /// Number of relations in the join graph.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Bitmask with one bit per relation, all set.
    pub fn full_relation_set(&self) -> u32 {
        (1u32 << self.relations.len()) - 1
    }

    /// Validate structural invariants. Returns a human-readable error.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.relations.len();
        if n == 0 {
            return Err("template has no relations".into());
        }
        if n > 16 {
            return Err(format!("template has {n} relations; max 16"));
        }
        for (i, p) in self.param_preds.iter().enumerate() {
            if p.relation >= n {
                return Err(format!(
                    "param predicate {i} references relation {}",
                    p.relation
                ));
            }
            let t = &self.relations[p.relation].table;
            if p.column >= t.columns.len() {
                return Err(format!(
                    "param predicate {i} references column {} of {}",
                    p.column, t.name
                ));
            }
        }
        for (i, p) in self.fixed_preds.iter().enumerate() {
            if p.relation >= n {
                return Err(format!(
                    "fixed predicate {i} references relation {}",
                    p.relation
                ));
            }
            if !(p.selectivity > 0.0 && p.selectivity <= 1.0) {
                return Err(format!(
                    "fixed predicate {i} has selectivity {}",
                    p.selectivity
                ));
            }
        }
        for (i, e) in self.join_edges.iter().enumerate() {
            for &(r, c) in &[e.left, e.right] {
                if r >= n {
                    return Err(format!("join edge {i} references relation {r}"));
                }
                if c >= self.relations[r].table.columns.len() {
                    return Err(format!(
                        "join edge {i} references column {c} of relation {r}"
                    ));
                }
            }
            if e.left.0 == e.right.0 {
                return Err(format!("join edge {i} is a self-loop"));
            }
            if !(e.selectivity > 0.0 && e.selectivity <= 1.0) {
                return Err(format!("join edge {i} has selectivity {}", e.selectivity));
            }
        }
        if n > 1 && !self.is_connected(self.full_relation_set()) {
            return Err("join graph is not connected".into());
        }
        if let Some(agg) = &self.aggregate {
            if agg.groups.is_nan() || agg.groups < 1.0 {
                return Err(format!("aggregate groups {} < 1", agg.groups));
            }
        }
        Ok(())
    }

    /// Whether the relations in bitmask `set` form a connected subgraph.
    pub fn is_connected(&self, set: u32) -> bool {
        if set == 0 {
            return false;
        }
        let start = set.trailing_zeros();
        let mut reached = 1u32 << start;
        loop {
            let mut grew = false;
            for e in &self.join_edges {
                let l = 1u32 << e.left.0;
                let r = 1u32 << e.right.0;
                if l & set != 0 && r & set != 0 {
                    if reached & l != 0 && reached & r == 0 {
                        reached |= r;
                        grew = true;
                    } else if reached & r != 0 && reached & l == 0 {
                        reached |= l;
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        reached == set
    }

    /// Indices of param predicates on relation `rel`.
    pub fn param_preds_on(&self, rel: usize) -> impl Iterator<Item = usize> + '_ {
        self.param_preds
            .iter()
            .enumerate()
            .filter(move |(_, p)| p.relation == rel)
            .map(|(i, _)| i)
    }

    /// Product of fixed-predicate selectivities on relation `rel`.
    pub fn fixed_selectivity_on(&self, rel: usize) -> f64 {
        self.fixed_preds
            .iter()
            .filter(|p| p.relation == rel)
            .map(|p| p.selectivity)
            .product()
    }
}

/// Convenience builder for templates; derives join selectivities from NDVs.
pub struct TemplateBuilder {
    name: String,
    relations: Vec<RelationRef>,
    join_edges: Vec<JoinEdge>,
    param_preds: Vec<ParamPredicate>,
    fixed_preds: Vec<FixedPredicate>,
    aggregate: Option<AggregateSpec>,
    order_by: bool,
}

impl TemplateBuilder {
    /// Start a template.
    pub fn new(name: &str) -> Self {
        TemplateBuilder {
            name: name.to_string(),
            relations: Vec::new(),
            join_edges: Vec::new(),
            param_preds: Vec::new(),
            fixed_preds: Vec::new(),
            aggregate: None,
            order_by: false,
        }
    }

    /// Add a relation; returns its index.
    pub fn relation(&mut self, table: &Arc<TableDef>, alias: &str) -> usize {
        self.relations.push(RelationRef {
            table: Arc::clone(table),
            alias: alias.to_string(),
        });
        self.relations.len() - 1
    }

    /// Add an equi-join edge by column names. Selectivity is
    /// `1 / max(ndv_left, ndv_right)`.
    pub fn join(&mut self, left: (usize, &str), right: (usize, &str)) -> &mut Self {
        let lc = self.relations[left.0]
            .table
            .column_index(left.1)
            .unwrap_or_else(|| panic!("no column {} on {}", left.1, self.relations[left.0].alias));
        let rc = self.relations[right.0]
            .table
            .column_index(right.1)
            .unwrap_or_else(|| {
                panic!("no column {} on {}", right.1, self.relations[right.0].alias)
            });
        let ndv_l = self.relations[left.0].table.columns[lc].stats.ndv.max(1);
        let ndv_r = self.relations[right.0].table.columns[rc].stats.ndv.max(1);
        let selectivity = 1.0 / ndv_l.max(ndv_r) as f64;
        self.join_edges.push(JoinEdge {
            left: (left.0, lc),
            right: (right.0, rc),
            selectivity,
        });
        self
    }

    /// Add a parameterized one-sided range predicate (one dimension).
    pub fn param(&mut self, rel: usize, column: &str, op: RangeOp) -> &mut Self {
        let c = self.relations[rel]
            .table
            .column_index(column)
            .unwrap_or_else(|| panic!("no column {} on {}", column, self.relations[rel].alias));
        self.param_preds.push(ParamPredicate {
            relation: rel,
            column: c,
            op,
        });
        self
    }

    /// Add a fixed-selectivity filter.
    pub fn filter(&mut self, rel: usize, selectivity: f64) -> &mut Self {
        self.fixed_preds.push(FixedPredicate {
            relation: rel,
            selectivity,
        });
        self
    }

    /// Put a group-by aggregate on top.
    pub fn aggregate(&mut self, groups: f64) -> &mut Self {
        self.aggregate = Some(AggregateSpec { groups });
        self
    }

    /// Require sorted output.
    pub fn order_by(&mut self) -> &mut Self {
        self.order_by = true;
        self
    }

    /// Finish; panics if the template is invalid.
    pub fn build(self) -> Arc<QueryTemplate> {
        let t = QueryTemplate {
            name: self.name,
            relations: self.relations,
            join_edges: self.join_edges,
            param_preds: self.param_preds,
            fixed_preds: self.fixed_preds,
            aggregate: self.aggregate,
            order_by: self.order_by,
        };
        t.validate()
            .unwrap_or_else(|e| panic!("invalid template `{}`: {e}", t.name));
        Arc::new(t)
    }
}

#[cfg(test)]
pub(crate) mod test_fixtures {
    use super::*;
    use pqo_catalog::schemas;

    /// A 2-dimensional template over TPC-H: orders ⋈ lineitem with params on
    /// o_totalprice and l_extendedprice.
    pub fn two_dim() -> Arc<QueryTemplate> {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("fixture_2d");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        b.aggregate(100.0);
        b.build()
    }

    /// A 3-relation, 3-dimensional template: customer ⋈ orders ⋈ lineitem.
    pub fn three_dim() -> Arc<QueryTemplate> {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("fixture_3d");
        let c = b.relation(cat.expect_table("customer"), "c");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((c, "customer_pk"), (o, "customer_fk"));
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(c, "c_acctbal", RangeOp::Le);
        b.param(o, "o_orderdate", RangeOp::Le);
        b.param(l, "l_shipdate", RangeOp::Ge);
        b.build()
    }

    /// Single-relation, 1-dimensional template.
    pub fn one_rel() -> Arc<QueryTemplate> {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("fixture_1r");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.param(l, "l_shipdate", RangeOp::Le);
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::*;
    use super::*;
    use pqo_catalog::schemas;

    #[test]
    fn builder_produces_valid_template() {
        let t = two_dim();
        assert_eq!(t.dimensions(), 2);
        assert_eq!(t.num_relations(), 2);
        assert!(t.validate().is_ok());
        assert_eq!(t.full_relation_set(), 0b11);
    }

    #[test]
    fn join_selectivity_from_ndv() {
        let t = two_dim();
        // orders_pk has ndv = 1.5M; lineitem.orders_fk ndv = 1.5M.
        assert!((t.join_edges[0].selectivity - 1.0 / 1_500_000.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_detection() {
        let t = three_dim();
        assert!(t.is_connected(0b111));
        assert!(t.is_connected(0b011)); // customer-orders
        assert!(t.is_connected(0b110)); // orders-lineitem
        assert!(!t.is_connected(0b101)); // customer-lineitem: no direct edge
        assert!(t.is_connected(0b001));
        assert!(!t.is_connected(0));
    }

    #[test]
    fn edge_helpers() {
        let t = three_dim();
        let e = &t.join_edges[0]; // customer(0) - orders(1)
        assert_eq!(e.other_side(0).unwrap().0, 1);
        assert_eq!(e.other_side(1).unwrap().0, 0);
        assert!(e.other_side(2).is_none());
        assert!(e.column_on(0).is_some());
        assert!(e.column_on(2).is_none());
        assert!(e.crosses(0b001, 0b010));
        assert!(e.crosses(0b010, 0b001));
        assert!(!e.crosses(0b001, 0b100));
    }

    #[test]
    fn param_preds_on_relation() {
        let t = three_dim();
        assert_eq!(t.param_preds_on(0).collect::<Vec<_>>(), vec![0]);
        assert_eq!(t.param_preds_on(1).collect::<Vec<_>>(), vec![1]);
        assert_eq!(t.param_preds_on(2).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn fixed_selectivity_product() {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("t");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.param(l, "l_shipdate", RangeOp::Le);
        b.filter(l, 0.5);
        b.filter(l, 0.25);
        let t = b.build();
        assert!((t.fixed_selectivity_on(0) - 0.125).abs() < 1e-12);
        assert_eq!(t.fixed_selectivity_on(1), 1.0); // empty product
    }

    #[test]
    fn disconnected_graph_rejected() {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("bad");
        let o = b.relation(cat.expect_table("orders"), "o");
        let _l = b.relation(cat.expect_table("lineitem"), "l");
        b.param(o, "o_totalprice", RangeOp::Le);
        let t = QueryTemplate {
            name: "bad".into(),
            relations: b.relations.clone(),
            join_edges: vec![],
            param_preds: b.param_preds.clone(),
            fixed_preds: vec![],
            aggregate: None,
            order_by: false,
        };
        assert!(t.validate().unwrap_err().contains("not connected"));
    }

    #[test]
    fn bad_fixed_selectivity_rejected() {
        let t = one_rel();
        let mut bad = (*t).clone();
        bad.fixed_preds.push(FixedPredicate {
            relation: 0,
            selectivity: 0.0,
        });
        assert!(bad.validate().is_err());
        bad.fixed_preds[0].selectivity = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn self_loop_rejected() {
        let t = two_dim();
        let mut bad = (*t).clone();
        bad.join_edges.push(JoinEdge {
            left: (0, 0),
            right: (0, 0),
            selectivity: 0.5,
        });
        assert!(bad.validate().unwrap_err().contains("self-loop"));
    }
}
