//! The query-engine façade.
//!
//! Section 4.2 of the paper lists exactly two APIs a database engine must
//! add (beyond the traditional optimizer call) to support SCR:
//!
//! 1. *Compute selectivity vector* — [`QueryEngine::compute_svector`];
//! 2. *Recost plan* — [`QueryEngine::recost`].
//!
//! [`QueryEngine`] bundles those with the optimizer call, counts every
//! invocation and accumulates wall-clock time per API, which is what the
//! overhead experiments (Sections 7.3, Table 3) report. It also interns
//! plans by structural fingerprint so that repeated optimizations returning
//! the same plan share one allocation — mirroring a real plan cache's
//! handle semantics.
//!
//! Every entry point takes `&self`: the counters are atomics and the intern
//! table sits behind a `Mutex`, so a shared engine can serve concurrent
//! `get_plan` callers (the serving-layer requirement) and observers can read
//! [`QueryEngine::stats`] without blocking servers.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cost::CostModel;
use crate::optimizer::{self, OptimizeResult};
use crate::plan::{Plan, PlanFingerprint};
use crate::recost::{self, BaseConsts, PreparedRecost, RecostScratch};
use crate::svector::{self, SVector};
use crate::template::{QueryInstance, QueryTemplate};

/// Call counters and accumulated latencies for the three engine APIs.
///
/// This is a point-in-time *snapshot*, returned by value from
/// [`QueryEngine::stats`]; the live counters inside the engine are atomics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Number of full optimizer calls.
    pub optimize_calls: u64,
    /// Number of Recost calls.
    pub recost_calls: u64,
    /// Number of selectivity-vector computations.
    pub svector_calls: u64,
    /// Total wall time spent in the optimizer.
    pub optimize_time: Duration,
    /// Total wall time spent re-costing.
    pub recost_time: Duration,
    /// Total wall time spent computing selectivity vectors.
    pub svector_time: Duration,
}

impl EngineStats {
    /// Mean optimizer-call latency, if any call was made.
    pub fn mean_optimize(&self) -> Option<Duration> {
        (self.optimize_calls > 0).then(|| self.optimize_time / self.optimize_calls as u32)
    }

    /// Mean Recost latency, if any call was made.
    pub fn mean_recost(&self) -> Option<Duration> {
        (self.recost_calls > 0).then(|| self.recost_time / self.recost_calls as u32)
    }
}

/// Lock-free accumulator pair: call count + total elapsed nanoseconds.
///
/// Counters use `Relaxed` ordering throughout: each counter is independent
/// and observers only need eventually-consistent totals, never cross-counter
/// ordering.
#[derive(Debug, Default)]
struct ApiCounter {
    calls: AtomicU64,
    nanos: AtomicU64,
}

impl ApiCounter {
    fn record(&self, elapsed: Duration) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.nanos.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> (u64, Duration) {
        (
            self.calls.load(Ordering::Relaxed),
            Duration::from_nanos(self.nanos.load(Ordering::Relaxed)),
        )
    }
}

/// An optimized plan together with its estimated optimal cost.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The optimal plan (interned: equal structures share the `Arc`).
    pub plan: Arc<Plan>,
    /// `Cost(Popt(q), q)` at the optimized instance.
    pub cost: f64,
}

/// The engine a PQO technique talks to: one parameterized query template,
/// a cost model, and the three API entry points with accounting.
///
/// `QueryEngine` is `Sync`: all entry points take `&self`, so one engine can
/// be shared across serving threads without an outer lock.
#[derive(Debug)]
pub struct QueryEngine {
    template: Arc<QueryTemplate>,
    cost_model: CostModel,
    base_consts: BaseConsts,
    optimize_stat: ApiCounter,
    recost_stat: ApiCounter,
    svector_stat: ApiCounter,
    interned: Mutex<HashMap<PlanFingerprint, Arc<Plan>>>,
}

impl QueryEngine {
    /// Create an engine for `template` with the default cost model.
    pub fn new(template: Arc<QueryTemplate>) -> Self {
        QueryEngine::with_cost_model(template, CostModel::default())
    }

    /// Create an engine with a custom cost model.
    pub fn with_cost_model(template: Arc<QueryTemplate>, cost_model: CostModel) -> Self {
        QueryEngine {
            base_consts: BaseConsts::new(&template),
            template,
            cost_model,
            optimize_stat: ApiCounter::default(),
            recost_stat: ApiCounter::default(),
            svector_stat: ApiCounter::default(),
            interned: Mutex::new(HashMap::new()),
        }
    }

    /// The template this engine serves.
    pub fn template(&self) -> &Arc<QueryTemplate> {
        &self.template
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Point-in-time snapshot of the accumulated API statistics.
    ///
    /// Lock-free; never blocks a thread that is inside `optimize`/`recost`.
    pub fn stats(&self) -> EngineStats {
        let (optimize_calls, optimize_time) = self.optimize_stat.snapshot();
        let (recost_calls, recost_time) = self.recost_stat.snapshot();
        let (svector_calls, svector_time) = self.svector_stat.snapshot();
        EngineStats {
            optimize_calls,
            recost_calls,
            svector_calls,
            optimize_time,
            recost_time,
            svector_time,
        }
    }

    /// Reset counters (e.g. between workload sequences).
    pub fn reset_stats(&self) {
        self.optimize_stat.reset();
        self.recost_stat.reset();
        self.svector_stat.reset();
    }

    /// API 1 (Section 4.2): compute the selectivity vector of an instance.
    pub fn compute_svector(&self, instance: &QueryInstance) -> SVector {
        let start = Instant::now();
        let sv = svector::compute_svector(&self.template, instance);
        self.svector_stat.record(start.elapsed());
        sv
    }

    /// The traditional optimizer call: optimal plan + cost for `sv`.
    pub fn optimize(&self, sv: &SVector) -> OptimizedPlan {
        let start = Instant::now();
        let OptimizeResult { plan, cost, .. } =
            optimizer::optimize(&self.template, &self.cost_model, sv);
        self.optimize_stat.record(start.elapsed());
        let plan = self.intern(plan);
        OptimizedPlan { plan, cost }
    }

    /// API 2 (Section 4.2): re-cost a frozen plan at new selectivities.
    pub fn recost(&self, plan: &Plan, sv: &SVector) -> f64 {
        let start = Instant::now();
        let cost = recost::recost(&self.template, &self.cost_model, plan, sv);
        self.recost_stat.record(start.elapsed());
        cost
    }

    /// Re-cost without touching the counters. Evaluation harnesses use this
    /// to compute ground-truth sub-optimality; it must never pollute the
    /// overhead accounting of the technique under test.
    pub fn recost_untracked(&self, plan: &Plan, sv: &SVector) -> f64 {
        recost::recost(&self.template, &self.cost_model, plan, sv)
    }

    /// The template's selectivity-independent base constants (shared by
    /// every prepared recost of this engine).
    pub fn base_consts(&self) -> &BaseConsts {
        &self.base_consts
    }

    /// Compile `plan` for repeated re-costing: hoists every
    /// selectivity-independent quantity out of the per-call path. Done once
    /// when a plan enters a cache.
    pub fn prepare_recost(&self, plan: &Plan) -> PreparedRecost {
        PreparedRecost::new(&self.template, &self.cost_model, plan)
    }

    /// API 2, prepared form: re-cost a compiled plan at new selectivities
    /// using a caller-owned scratch. Allocation-free after the first call on
    /// a given scratch; bit-identical to [`QueryEngine::recost`]. Counted
    /// under the same Recost statistics.
    pub fn recost_prepared(
        &self,
        prepared: &PreparedRecost,
        sv: &SVector,
        scratch: &mut RecostScratch,
    ) -> f64 {
        let start = Instant::now();
        let cost =
            recost::recost_prepared(&self.base_consts, &self.cost_model, prepared, sv, scratch);
        self.recost_stat.record(start.elapsed());
        cost
    }

    /// Prepared re-cost without touching the counters (benchmarks).
    pub fn recost_prepared_untracked(
        &self,
        prepared: &PreparedRecost,
        sv: &SVector,
        scratch: &mut RecostScratch,
    ) -> f64 {
        recost::recost_prepared(&self.base_consts, &self.cost_model, prepared, sv, scratch)
    }

    /// Optimize without touching the counters (ground-truth oracle).
    pub fn optimize_untracked(&self, sv: &SVector) -> OptimizedPlan {
        let OptimizeResult { plan, cost, .. } =
            optimizer::optimize(&self.template, &self.cost_model, sv);
        let plan = self.intern(plan);
        OptimizedPlan { plan, cost }
    }

    fn intern(&self, plan: Plan) -> Arc<Plan> {
        let mut interned = self.interned.lock().expect("plan intern table poisoned");
        Arc::clone(
            interned
                .entry(plan.fingerprint())
                .or_insert_with(|| Arc::new(plan)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svector::instance_for_target;
    use crate::template::test_fixtures;

    #[test]
    fn counters_track_calls() {
        let t = test_fixtures::two_dim();
        let e = QueryEngine::new(t.clone());
        let inst = instance_for_target(&t, &[0.1, 0.2]);
        let sv = e.compute_svector(&inst);
        let opt = e.optimize(&sv);
        let _ = e.recost(&opt.plan, &sv);
        assert_eq!(e.stats().svector_calls, 1);
        assert_eq!(e.stats().optimize_calls, 1);
        assert_eq!(e.stats().recost_calls, 1);
        assert!(e.stats().mean_optimize().is_some());
    }

    #[test]
    fn untracked_calls_do_not_count() {
        let t = test_fixtures::two_dim();
        let e = QueryEngine::new(t.clone());
        let inst = instance_for_target(&t, &[0.1, 0.2]);
        let sv = svector::compute_svector(&t, &inst);
        let opt = e.optimize_untracked(&sv);
        let _ = e.recost_untracked(&opt.plan, &sv);
        assert_eq!(e.stats().optimize_calls, 0);
        assert_eq!(e.stats().recost_calls, 0);
    }

    #[test]
    fn plans_are_interned() {
        let t = test_fixtures::two_dim();
        let e = QueryEngine::new(t.clone());
        let a = e.optimize(&svector::compute_svector(
            &t,
            &instance_for_target(&t, &[0.10, 0.20]),
        ));
        let b = e.optimize(&svector::compute_svector(
            &t,
            &instance_for_target(&t, &[0.11, 0.21]),
        ));
        if a.plan.fingerprint() == b.plan.fingerprint() {
            assert!(
                Arc::ptr_eq(&a.plan, &b.plan),
                "same fingerprint must share the Arc"
            );
        }
    }

    #[test]
    fn recost_matches_optimize_cost_at_same_point() {
        let t = test_fixtures::three_dim();
        let e = QueryEngine::new(t.clone());
        let sv = svector::compute_svector(&t, &instance_for_target(&t, &[0.2, 0.1, 0.05]));
        let opt = e.optimize(&sv);
        let rc = e.recost(&opt.plan, &sv);
        assert!((opt.cost - rc).abs() < 1e-9 * opt.cost.max(1.0));
    }

    #[test]
    fn prepared_recost_agrees_with_recost_and_counts() {
        let t = test_fixtures::three_dim();
        let e = QueryEngine::new(t.clone());
        let sv = svector::compute_svector(&t, &instance_for_target(&t, &[0.2, 0.1, 0.05]));
        let opt = e.optimize(&sv);
        let prepared = e.prepare_recost(&opt.plan);
        let mut scratch = RecostScratch::new();
        let sv2 = svector::compute_svector(&t, &instance_for_target(&t, &[0.6, 0.1, 0.05]));
        for point in [&sv, &sv2, &sv] {
            let fast = e.recost_prepared(&prepared, point, &mut scratch);
            let slow = e.recost_untracked(&opt.plan, point);
            assert_eq!(fast.to_bits(), slow.to_bits());
        }
        assert_eq!(e.stats().recost_calls, 3);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let t = test_fixtures::two_dim();
        let e = QueryEngine::new(t.clone());
        let sv = svector::compute_svector(&t, &instance_for_target(&t, &[0.3, 0.3]));
        let _ = e.optimize(&sv);
        e.reset_stats();
        assert_eq!(e.stats().optimize_calls, 0);
        assert_eq!(e.stats().optimize_time, Duration::ZERO);
    }

    #[test]
    fn engine_is_sync_and_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryEngine>();

        let t = test_fixtures::two_dim();
        let e = QueryEngine::new(t.clone());
        std::thread::scope(|s| {
            for k in 0..4 {
                let e = &e;
                let t = &t;
                s.spawn(move || {
                    let target = [0.1 + 0.05 * k as f64, 0.2];
                    let sv = svector::compute_svector(t, &instance_for_target(t, &target));
                    let opt = e.optimize(&sv);
                    let _ = e.recost(&opt.plan, &sv);
                });
            }
        });
        assert_eq!(e.stats().optimize_calls, 4);
        assert_eq!(e.stats().recost_calls, 4);
    }
}
