//! Plan diagrams (Reddy & Haritsa, "Analyzing plan diagrams of database
//! query optimizers" — the paper's reference [18]).
//!
//! A plan diagram is the partition of the selectivity space into regions by
//! optimal plan choice. The PQO literature leans on its structure: the
//! paper cites [18] for the observation that *"low cost regions typically
//! have small selectivity regions and high plan density"* (the motivation
//! for dynamic λ, Appendix D). This module computes diagrams over a grid —
//! as an analysis/visualization tool and to quantify plan density for
//! tests and experiments.

use std::collections::BTreeMap;

use crate::cost::CostModel;
use crate::optimizer;
use crate::plan::PlanFingerprint;
use crate::svector::SVector;
use crate::template::QueryTemplate;

/// A computed plan diagram over a 2-d log-spaced selectivity grid (higher
/// dimensions are diagrammed over the first two dimensions with the rest
/// pinned).
#[derive(Debug)]
pub struct PlanDiagram {
    /// Grid resolution per axis.
    pub resolution: usize,
    /// Selectivity of each grid line (log-spaced), per axis.
    pub grid: Vec<f64>,
    /// `cells[y * resolution + x]` = optimal plan at `(grid[x], grid[y])`.
    pub cells: Vec<PlanFingerprint>,
    /// Optimal cost per cell, parallel to `cells`.
    pub costs: Vec<f64>,
}

impl PlanDiagram {
    /// Compute the diagram of `template` on a `resolution × resolution`
    /// grid spanning selectivities `[lo, hi]` (log-spaced) in the first two
    /// dimensions; remaining dimensions are pinned to `pin`.
    ///
    /// # Panics
    /// Panics if the template has fewer than 2 dimensions, or the bounds
    /// are not `0 < lo < hi <= 1`.
    pub fn compute(
        template: &QueryTemplate,
        model: &CostModel,
        resolution: usize,
        lo: f64,
        hi: f64,
        pin: f64,
    ) -> Self {
        assert!(template.dimensions() >= 2, "plan diagrams need d >= 2");
        assert!(resolution >= 2);
        assert!(lo > 0.0 && lo < hi && hi <= 1.0);
        let d = template.dimensions();
        let grid: Vec<f64> = (0..resolution)
            .map(|i| lo * (hi / lo).powf(i as f64 / (resolution - 1) as f64))
            .collect();
        let mut cells = Vec::with_capacity(resolution * resolution);
        let mut costs = Vec::with_capacity(resolution * resolution);
        for &s2 in &grid {
            for &s1 in &grid {
                let mut sels = vec![pin; d];
                sels[0] = s1;
                sels[1] = s2;
                let r = optimizer::optimize(template, model, &SVector(sels));
                cells.push(r.plan.fingerprint());
                costs.push(r.cost);
            }
        }
        PlanDiagram {
            resolution,
            grid,
            cells,
            costs,
        }
    }

    /// Number of distinct plans in the diagram — the paper's plan density.
    pub fn distinct_plans(&self) -> usize {
        let mut fps: Vec<_> = self.cells.clone();
        fps.sort();
        fps.dedup();
        fps.len()
    }

    /// Fraction of the grid covered by each plan, descending.
    pub fn coverage(&self) -> Vec<(PlanFingerprint, f64)> {
        let mut counts: BTreeMap<PlanFingerprint, usize> = BTreeMap::new();
        for &fp in &self.cells {
            *counts.entry(fp).or_insert(0) += 1;
        }
        let total = self.cells.len() as f64;
        let mut out: Vec<(PlanFingerprint, f64)> = counts
            .into_iter()
            .map(|(fp, c)| (fp, c as f64 / total))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Plan density per cost decile: for each of the 10 cost bands (by
    /// cell-cost quantile), the number of distinct plans whose region
    /// intersects the band. Reference [18]'s observation predicts density
    /// skewed towards the low-cost bands.
    pub fn density_by_cost_decile(&self) -> Vec<usize> {
        let mut sorted = self.costs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let bound =
            |q: f64| sorted[((q * (sorted.len() - 1) as f64) as usize).min(sorted.len() - 1)];
        (0..10)
            .map(|dec| {
                let (lo, hi) = (bound(dec as f64 / 10.0), bound((dec + 1) as f64 / 10.0));
                let mut fps: Vec<_> = self
                    .cells
                    .iter()
                    .zip(&self.costs)
                    .filter(|(_, &c)| c >= lo && c <= hi)
                    .map(|(&fp, _)| fp)
                    .collect();
                fps.sort();
                fps.dedup();
                fps.len()
            })
            .collect()
    }

    /// ASCII rendering: each distinct plan gets a letter, cells are printed
    /// row-major with selectivity increasing rightwards/upwards.
    pub fn render_ascii(&self) -> String {
        let coverage = self.coverage();
        let letter = |fp: PlanFingerprint| -> char {
            let idx = coverage.iter().position(|&(f, _)| f == fp).unwrap_or(0);
            if idx < 26 {
                (b'A' + idx as u8) as char
            } else {
                '#'
            }
        };
        let mut out = String::new();
        for y in (0..self.resolution).rev() {
            for x in 0..self.resolution {
                out.push(letter(self.cells[y * self.resolution + x]));
                out.push(' ');
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::test_fixtures;

    fn diagram(res: usize) -> PlanDiagram {
        let t = test_fixtures::two_dim();
        PlanDiagram::compute(&t, &CostModel::default(), res, 0.001, 1.0, 0.05)
    }

    #[test]
    fn diagram_has_full_grid() {
        let d = diagram(12);
        assert_eq!(d.cells.len(), 144);
        assert_eq!(d.costs.len(), 144);
        assert_eq!(d.grid.len(), 12);
        assert!(
            d.grid.windows(2).all(|w| w[0] < w[1]),
            "grid must be increasing"
        );
    }

    #[test]
    fn multiple_plan_regions_exist() {
        let d = diagram(16);
        assert!(d.distinct_plans() >= 3, "only {} plans", d.distinct_plans());
        let cov = d.coverage();
        let total: f64 = cov.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(
            cov[0].1 >= cov[cov.len() - 1].1,
            "coverage must be sorted descending"
        );
    }

    #[test]
    fn density_deciles_cover_every_plan() {
        // Structural sanity of the density profile (whether density skews
        // low-cost, as reference [18] observes for SQL Server, depends on
        // the cost surface; our fixture is roughly balanced). Every decile
        // is non-empty and every plan intersects at least one decile.
        let d = diagram(24);
        let dens = d.density_by_cost_decile();
        assert_eq!(dens.len(), 10);
        assert!(dens.iter().all(|&n| n >= 1), "{dens:?}");
        let max_band = dens.iter().copied().max().unwrap();
        assert!(max_band <= d.distinct_plans());
        let total: usize = dens.iter().sum();
        assert!(
            total >= d.distinct_plans(),
            "each plan must appear in some decile"
        );
    }

    #[test]
    fn ascii_rendering_shape() {
        let d = diagram(8);
        let s = d.render_ascii();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 16));
        assert!(s.contains('A'), "most common plan must appear");
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn one_dimensional_template_rejected() {
        let t = test_fixtures::one_rel();
        let _ = PlanDiagram::compute(&t, &CostModel::default(), 4, 0.01, 1.0, 0.1);
    }
}
