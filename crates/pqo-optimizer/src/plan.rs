//! Physical plans and structural plan identity.
//!
//! A [`Plan`] is what the plan cache stores. Two optimizer calls at different
//! query instances frequently return *structurally identical* plans; PQO
//! techniques must recognise that (the paper counts distinct plans, reuses
//! cached plans, and merges inference regions of the same plan), so every
//! plan carries a [`PlanFingerprint`] — a structural hash over operators,
//! relation indices and join order, ignoring per-instance cardinalities.
//!
//! Plans are *built* as [`PlanNode`] trees (the optimizer's extract step and
//! tests construct those naturally) but *stored* in flat arena form: a
//! postorder `Vec<ArenaNode>` whose children are index ranges. Recost — the
//! hot path — is then one linear pass over a contiguous slice instead of a
//! pointer chase through heap-boxed children. Each operator carries the
//! logical annotations the Recost API needs (which relations it covers,
//! which join edges it applies), mirroring the paper's `shrunkenMemo`: just
//! enough of the memo to re-derive cardinality and cost bottom-up, with the
//! search space pruned away.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::template::QueryTemplate;

/// Structural identity of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanFingerprint(pub u64);

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:08x}", self.0 >> 32 ^ self.0 & 0xffff_ffff)
    }
}

/// A physical operator. Indices reference the owning [`QueryTemplate`]:
/// `relation` into `template.relations`, `seek_pred` into
/// `template.param_preds`, edge indices into `template.join_edges`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PlanOp {
    /// Full scan of a base relation, applying all its predicates.
    SeqScan { relation: usize },
    /// Index seek on the column of parameterized predicate `seek_pred`,
    /// applying the relation's remaining predicates as residuals.
    IndexSeek { relation: usize, seek_pred: usize },
    /// Full ordered scan through the index on `column`, delivering rows
    /// sorted by that column (feeds sort-free merge joins).
    SortedIndexScan { relation: usize, column: usize },
    /// Hash join of the two children; `build_left` selects the build side.
    /// `edges` are the join edges this node applies.
    HashJoin { build_left: bool, edges: Vec<usize> },
    /// Merge join of the two children, which must already deliver rows
    /// sorted on the key of `merge_edge` (via sorted scans or explicit Sort
    /// enforcers planted by the optimizer). Remaining `edges` are applied
    /// as residual equality filters.
    MergeJoin {
        merge_edge: usize,
        edges: Vec<usize>,
    },
    /// Index nested-loops join: the single child is the outer; the inner is
    /// base relation `inner`, reached through the index on its side of
    /// `seek_edge`. Remaining crossing `edges` are applied as residuals.
    IndexNlj {
        inner: usize,
        seek_edge: usize,
        edges: Vec<usize>,
    },
    /// Hash aggregation (groups come from the template's aggregate spec).
    HashAggregate,
    /// Sort-based aggregation (includes its sort).
    StreamAggregate,
    /// Explicit sort: an interesting-order enforcer when `key` names a
    /// `(relation, column)`, or the final ORDER BY sort when `key` is
    /// `None`.
    Sort { key: Option<(usize, usize)> },
}

impl PlanOp {
    /// Number of children this operator takes (0 for scans, 1 for
    /// IndexNLJ/Sort/aggregates, 2 for hash/merge joins).
    pub fn arity(&self) -> usize {
        match self {
            PlanOp::SeqScan { .. } | PlanOp::IndexSeek { .. } | PlanOp::SortedIndexScan { .. } => 0,
            PlanOp::HashJoin { .. } | PlanOp::MergeJoin { .. } => 2,
            PlanOp::IndexNlj { .. }
            | PlanOp::HashAggregate
            | PlanOp::StreamAggregate
            | PlanOp::Sort { .. } => 1,
        }
    }

    /// Short operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            PlanOp::SeqScan { .. } => "SeqScan",
            PlanOp::IndexSeek { .. } => "IndexSeek",
            PlanOp::SortedIndexScan { .. } => "SortedIndexScan",
            PlanOp::HashJoin { .. } => "HashJoin",
            PlanOp::MergeJoin { .. } => "MergeJoin",
            PlanOp::IndexNlj { .. } => "IndexNLJ",
            PlanOp::HashAggregate => "HashAgg",
            PlanOp::StreamAggregate => "StreamAgg",
            PlanOp::Sort { .. } => "Sort",
        }
    }
}

/// A node of a physical plan tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanNode {
    /// The operator.
    pub op: PlanOp,
    /// Child plans (0 for scans, 1 for IndexNLJ/Sort/aggregates, 2 for
    /// hash/merge joins).
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Leaf constructor.
    pub fn leaf(op: PlanOp) -> Self {
        PlanNode {
            op,
            children: Vec::new(),
        }
    }

    /// Internal-node constructor.
    pub fn internal(op: PlanOp, children: Vec<PlanNode>) -> Self {
        PlanNode { op, children }
    }

    /// Total number of operators in the subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(PlanNode::size).sum::<usize>()
    }

    /// Bitmask of relations covered by this subtree.
    pub fn relation_set(&self) -> u32 {
        let own = match self.op {
            PlanOp::SeqScan { relation }
            | PlanOp::IndexSeek { relation, .. }
            | PlanOp::SortedIndexScan { relation, .. } => 1u32 << relation,
            PlanOp::IndexNlj { inner, .. } => 1u32 << inner,
            _ => 0,
        };
        own | self
            .children
            .iter()
            .map(PlanNode::relation_set)
            .fold(0, |a, b| a | b)
    }
}

/// One operator in a [`Plan`]'s flat arena.
///
/// Nodes are stored in postorder: every node's children precede it, and the
/// subtree rooted at node `i` occupies exactly the contiguous index range
/// `[subtree_start, i]`. The root is the last node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaNode {
    /// The operator.
    pub op: PlanOp,
    /// Index of the first node of this node's subtree. Equal to the node's
    /// own index for leaves.
    pub subtree_start: u32,
}

/// Indices of the direct children of arena node `i`, in left-to-right order.
/// At most 2 entries; empty for leaves.
pub fn arena_children(nodes: &[ArenaNode], i: usize) -> Vec<usize> {
    let start = nodes[i].subtree_start as usize;
    let mut kids = Vec::with_capacity(nodes[i].op.arity());
    let mut end = i; // exclusive end of the remaining children region
    while end > start {
        let child = end - 1; // root of the rightmost remaining child subtree
        kids.push(child);
        end = nodes[child].subtree_start as usize;
    }
    kids.reverse();
    kids
}

/// An immutable physical plan with a structural fingerprint, stored as a
/// flat postorder arena.
#[derive(Debug, Clone)]
pub struct Plan {
    nodes: Vec<ArenaNode>,
    fingerprint: PlanFingerprint,
}

impl Plan {
    /// Flatten a plan tree into arena form, computing its fingerprint.
    ///
    /// The fingerprint hashes the *tree* (exactly as previous versions did),
    /// so plan identity — and the on-disk persist format — is unchanged by
    /// the arena representation.
    pub fn new(root: PlanNode) -> Self {
        let mut h = Fnv64::new();
        root.hash(&mut h);
        let fingerprint = PlanFingerprint(h.finish());
        let mut nodes = Vec::with_capacity(root.size());
        flatten(root, &mut nodes);
        Plan { nodes, fingerprint }
    }

    /// The postorder operator arena. The root is the last node.
    pub fn nodes(&self) -> &[ArenaNode] {
        &self.nodes
    }

    /// The root operator (last node of the postorder arena).
    pub fn root_op(&self) -> &PlanOp {
        &self.nodes.last().expect("plan is non-empty").op
    }

    /// Reconstruct the boxed tree form (for the executor and for callers
    /// that want recursive traversal; the arena stays the stored form).
    pub fn to_tree(&self) -> PlanNode {
        let mut stack: Vec<PlanNode> = Vec::new();
        for n in &self.nodes {
            let children = stack.split_off(stack.len() - n.op.arity());
            stack.push(PlanNode {
                op: n.op.clone(),
                children,
            });
        }
        debug_assert_eq!(stack.len(), 1, "arena must encode exactly one tree");
        stack.pop().expect("plan is non-empty")
    }

    /// Structural fingerprint.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.fingerprint
    }

    /// Number of operators.
    pub fn size(&self) -> usize {
        self.nodes.len()
    }

    /// Bitmask of relations covered by the plan.
    pub fn relation_set(&self) -> u32 {
        self.nodes.iter().fold(0, |acc, n| {
            acc | match n.op {
                PlanOp::SeqScan { relation }
                | PlanOp::IndexSeek { relation, .. }
                | PlanOp::SortedIndexScan { relation, .. } => 1u32 << relation,
                PlanOp::IndexNlj { inner, .. } => 1u32 << inner,
                _ => 0,
            }
        })
    }

    /// Render the plan as an indented operator tree, resolving relation
    /// aliases through `template`.
    pub fn display<'a>(&'a self, template: &'a QueryTemplate) -> PlanDisplay<'a> {
        PlanDisplay {
            plan: self,
            template,
        }
    }
}

/// Postorder flatten by move: children first, then the node itself.
fn flatten(node: PlanNode, out: &mut Vec<ArenaNode>) {
    let start = out.len() as u32;
    for c in node.children {
        flatten(c, out);
    }
    out.push(ArenaNode {
        op: node.op,
        subtree_start: start,
    });
}

impl PartialEq for Plan {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
    }
}
impl Eq for Plan {}

/// Helper returned by [`Plan::display`].
pub struct PlanDisplay<'a> {
    plan: &'a Plan,
    template: &'a QueryTemplate,
}

impl fmt::Display for PlanDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn walk(
            nodes: &[ArenaNode],
            i: usize,
            template: &QueryTemplate,
            depth: usize,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            let pad = "  ".repeat(depth);
            let alias = |r: usize| template.relations[r].alias.clone();
            match &nodes[i].op {
                PlanOp::SeqScan { relation } => writeln!(f, "{pad}SeqScan({})", alias(*relation))?,
                PlanOp::IndexSeek {
                    relation,
                    seek_pred,
                } => {
                    let p = &template.param_preds[*seek_pred];
                    let col = &template.relations[p.relation].table.columns[p.column].name;
                    writeln!(f, "{pad}IndexSeek({} on {})", alias(*relation), col)?;
                }
                PlanOp::SortedIndexScan { relation, column } => {
                    let col = &template.relations[*relation].table.columns[*column].name;
                    writeln!(f, "{pad}SortedIndexScan({} by {})", alias(*relation), col)?;
                }
                PlanOp::HashJoin { build_left, .. } => writeln!(
                    f,
                    "{pad}HashJoin(build={})",
                    if *build_left { "left" } else { "right" }
                )?,
                PlanOp::MergeJoin { merge_edge, .. } => {
                    let e = &template.join_edges[*merge_edge];
                    let col = &template.relations[e.left.0].table.columns[e.left.1].name;
                    writeln!(
                        f,
                        "{pad}MergeJoin(on {}.{})",
                        template.relations[e.left.0].alias, col
                    )?;
                }
                PlanOp::IndexNlj { inner, .. } => {
                    writeln!(f, "{pad}IndexNLJ(inner={})", alias(*inner))?
                }
                PlanOp::HashAggregate => writeln!(f, "{pad}HashAgg")?,
                PlanOp::StreamAggregate => writeln!(f, "{pad}StreamAgg")?,
                PlanOp::Sort { key: None } => writeln!(f, "{pad}Sort(order by)")?,
                PlanOp::Sort { key: Some((r, c)) } => {
                    let col = &template.relations[*r].table.columns[*c].name;
                    writeln!(f, "{pad}Sort({}.{})", alias(*r), col)?;
                }
            }
            for c in arena_children(nodes, i) {
                walk(nodes, c, template, depth + 1, f)?;
            }
            Ok(())
        }
        writeln!(f, "plan {}:", self.plan.fingerprint())?;
        let nodes = self.plan.nodes();
        walk(nodes, nodes.len() - 1, self.template, 1, f)
    }
}

/// Minimal FNV-1a hasher, so fingerprints are stable across runs and
/// platforms (std's `DefaultHasher` makes no such promise).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(r: usize) -> PlanNode {
        PlanNode::leaf(PlanOp::SeqScan { relation: r })
    }

    #[test]
    fn identical_structures_share_fingerprints() {
        let a = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![scan(0), scan(1)],
        ));
        let b = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![scan(0), scan(1)],
        ));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a, b);
    }

    #[test]
    fn different_structures_differ() {
        let a = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![scan(0), scan(1)],
        ));
        let b = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: false,
                edges: vec![0],
            },
            vec![scan(0), scan(1)],
        ));
        let c = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![scan(1), scan(0)],
        ));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn scan_choice_changes_fingerprint() {
        let a = Plan::new(scan(0));
        let b = Plan::new(PlanNode::leaf(PlanOp::IndexSeek {
            relation: 0,
            seek_pred: 0,
        }));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn size_and_relation_set() {
        let p = PlanNode::internal(
            PlanOp::IndexNlj {
                inner: 2,
                seek_edge: 1,
                edges: vec![1],
            },
            vec![PlanNode::internal(
                PlanOp::HashJoin {
                    build_left: true,
                    edges: vec![0],
                },
                vec![scan(0), scan(1)],
            )],
        );
        assert_eq!(p.size(), 4);
        assert_eq!(p.relation_set(), 0b111);
    }

    #[test]
    fn fingerprint_is_stable() {
        // Guards against accidental changes to the hash: the fingerprint of
        // this fixed tree must never change across runs or refactors that
        // do not intend to change plan identity.
        let p = Plan::new(PlanNode::internal(
            PlanOp::MergeJoin {
                merge_edge: 0,
                edges: vec![0, 1],
            },
            vec![scan(0), scan(3)],
        ));
        let again = Plan::new(PlanNode::internal(
            PlanOp::MergeJoin {
                merge_edge: 0,
                edges: vec![0, 1],
            },
            vec![scan(0), scan(3)],
        ));
        assert_eq!(p.fingerprint(), again.fingerprint());
    }

    #[test]
    fn arena_is_postorder_with_contiguous_subtrees() {
        let tree = PlanNode::internal(
            PlanOp::IndexNlj {
                inner: 2,
                seek_edge: 1,
                edges: vec![1],
            },
            vec![PlanNode::internal(
                PlanOp::HashJoin {
                    build_left: true,
                    edges: vec![0],
                },
                vec![scan(0), scan(1)],
            )],
        );
        let p = Plan::new(tree);
        let nodes = p.nodes();
        // Postorder: scan(0), scan(1), HashJoin, IndexNlj.
        assert_eq!(nodes.len(), 4);
        assert!(matches!(nodes[0].op, PlanOp::SeqScan { relation: 0 }));
        assert!(matches!(nodes[1].op, PlanOp::SeqScan { relation: 1 }));
        assert!(matches!(nodes[2].op, PlanOp::HashJoin { .. }));
        assert!(matches!(nodes[3].op, PlanOp::IndexNlj { .. }));
        // Subtree ranges: leaves start at themselves; internal nodes cover
        // their children.
        assert_eq!(nodes[0].subtree_start, 0);
        assert_eq!(nodes[1].subtree_start, 1);
        assert_eq!(nodes[2].subtree_start, 0);
        assert_eq!(nodes[3].subtree_start, 0);
        // Child recovery walks the ranges backwards and reverses.
        assert_eq!(arena_children(nodes, 3), vec![2]);
        assert_eq!(arena_children(nodes, 2), vec![0, 1]);
        assert_eq!(arena_children(nodes, 0), Vec::<usize>::new());
        assert_eq!(p.relation_set(), 0b111);
        assert_eq!(p.size(), 4);
    }

    #[test]
    fn to_tree_round_trips() {
        let tree = PlanNode::internal(
            PlanOp::HashAggregate,
            vec![PlanNode::internal(
                PlanOp::MergeJoin {
                    merge_edge: 0,
                    edges: vec![0, 1],
                },
                vec![
                    PlanNode::internal(PlanOp::Sort { key: Some((0, 1)) }, vec![scan(0)]),
                    PlanNode::leaf(PlanOp::SortedIndexScan {
                        relation: 1,
                        column: 1,
                    }),
                ],
            )],
        );
        let p = Plan::new(tree.clone());
        let back = p.to_tree();
        assert_eq!(back, tree);
        // Re-flattening the reconstructed tree preserves identity.
        assert_eq!(Plan::new(back).fingerprint(), p.fingerprint());
    }

    #[test]
    fn display_renders_tree() {
        use crate::template::test_fixtures;
        let t = test_fixtures::two_dim();
        let p = Plan::new(PlanNode::internal(
            PlanOp::HashAggregate,
            vec![PlanNode::internal(
                PlanOp::HashJoin {
                    build_left: true,
                    edges: vec![0],
                },
                vec![scan(0), scan(1)],
            )],
        ));
        let s = format!("{}", p.display(&t));
        assert!(s.contains("HashAgg"));
        assert!(s.contains("SeqScan(o)"));
        assert!(s.contains("SeqScan(l)"));
    }
}
