//! Textual template fixtures: render corpus templates back out as `.sql`.
//!
//! This is the workload side of the SQL frontend (`pqo-sql`): where the
//! frontend lowers SQL text *into* `QueryTemplate`, this module emits a
//! `QueryTemplate` *as* a TPC-H-style textual fixture — directive header
//! (`-- pqo:catalog`, `-- pqo:dialect`), canonical projection, FROM/JOIN
//! chain and parameterized WHERE — in any supported dialect. Re-compiling
//! an emitted fixture through `pqo_sql::compile` reproduces the original
//! template, which the unit tests assert for the whole expressible corpus.
//!
//! Not every corpus template is expressible as SQL: fixed predicates carry
//! only a selectivity (the literal that produced it is gone), and an
//! aggregate's group count only round-trips when some column's NDV matches
//! it exactly (the binder derives groups from the GROUP BY columns'
//! NDVs). [`render_template`] reports such templates as errors and
//! [`fixtures`] skips them.

use pqo_optimizer::template::{QueryTemplate, RangeOp};
use pqo_sql::DialectKind;

use crate::corpus;

/// One emitted fixture.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// Template name (the corpus id); also the intended file stem.
    pub name: String,
    /// Catalog the fixture binds against.
    pub catalog: String,
    /// Dialect it is written in.
    pub dialect: DialectKind,
    /// The `.sql` file contents.
    pub sql: String,
}

/// Render `template` as a `.sql` fixture in `dialect`, or explain why it
/// cannot be expressed as SQL.
pub fn render_template(
    template: &QueryTemplate,
    catalog: &str,
    dialect: DialectKind,
) -> Result<String, String> {
    if !template.fixed_preds.is_empty() {
        return Err(format!(
            "template `{}` has fixed predicates; their literals are not recoverable",
            template.name
        ));
    }

    // An aggregate's group count must be derivable from one column's NDV
    // (or be the bare-aggregate count of 1).
    let mut group_col: Option<(usize, usize)> = None;
    if let Some(agg) = &template.aggregate {
        if agg.groups != 1.0 {
            'search: for (ri, r) in template.relations.iter().enumerate() {
                for (ci, c) in r.table.columns.iter().enumerate() {
                    if c.stats.ndv.max(1) as f64 == agg.groups {
                        group_col = Some((ri, ci));
                        break 'search;
                    }
                }
            }
            if group_col.is_none() {
                return Err(format!(
                    "template `{}` aggregates into {} groups, which no column NDV matches",
                    template.name, agg.groups
                ));
            }
        }
    }

    let col_sql = |rel: usize, col: usize| {
        let r = &template.relations[rel];
        let name = r
            .table
            .columns
            .get(col)
            .map(|c| c.name.as_str())
            .unwrap_or("?col");
        format!("{}.{}", dialect.ident(&r.alias), dialect.ident(name))
    };
    let rel_sql = |i: usize| {
        let r = &template.relations[i];
        if r.table.name == r.alias {
            dialect.ident(&r.table.name)
        } else {
            format!(
                "{} AS {}",
                dialect.ident(&r.table.name),
                dialect.ident(&r.alias)
            )
        }
    };

    let mut out = String::new();
    out.push_str(&format!("-- pqo:catalog {catalog}\n"));
    out.push_str(&format!("-- pqo:dialect {}\n", dialect.name()));
    out.push_str(&format!(
        "-- generated from corpus template `{}`\n",
        template.name
    ));

    out.push_str("SELECT ");
    if template.aggregate.is_some() {
        out.push_str("count(*)");
    } else if let Some(p) = template.param_preds.first() {
        out.push_str(&col_sql(p.relation, p.column));
    } else {
        out.push('*');
    }
    out.push('\n');

    // JOINs must follow relation order so the re-bound template numbers
    // relations (and therefore edges and params) identically: relation `i`
    // joins via an edge to some relation `< i`.
    out.push_str(&format!("FROM {}\n", rel_sql(0)));
    let n = template.relations.len();
    let mut edge_used = vec![false; template.join_edges.len()];
    for i in 1..n {
        let Some(ei) = template.join_edges.iter().enumerate().position(|(ei, e)| {
            !edge_used[ei] && ((e.left.0 == i && e.right.0 < i) || (e.right.0 == i && e.left.0 < i))
        }) else {
            return Err(format!(
                "template `{}`: relation {i} has no join edge to an earlier relation; \
                 not expressible as an ordered JOIN chain",
                template.name
            ));
        };
        edge_used[ei] = true;
        let e = &template.join_edges[ei];
        out.push_str(&format!(
            "  JOIN {} ON {} = {}\n",
            rel_sql(i),
            col_sql(e.left.0, e.left.1),
            col_sql(e.right.0, e.right.1)
        ));
    }
    if edge_used.iter().any(|u| !u) {
        // A validated template is connected, so a leftover edge closes a
        // cycle — not expressible as a plain JOIN chain.
        return Err(format!(
            "template `{}` has a cyclic join graph; not expressible as a JOIN chain",
            template.name
        ));
    }

    for (k, p) in template.param_preds.iter().enumerate() {
        out.push_str(if k == 0 { "WHERE " } else { "  AND " });
        let op = match p.op {
            RangeOp::Le => "<=",
            RangeOp::Ge => ">=",
        };
        out.push_str(&format!(
            "{} {op} {}\n",
            col_sql(p.relation, p.column),
            dialect.placeholder(k + 1)
        ));
    }

    if let Some((ri, ci)) = group_col {
        out.push_str(&format!("GROUP BY {}\n", col_sql(ri, ci)));
    }
    if template.order_by {
        let (ri, ci) = template
            .param_preds
            .first()
            .map(|p| (p.relation, p.column))
            .unwrap_or((0, 0));
        out.push_str(&format!("ORDER BY {}\n", col_sql(ri, ci)));
    }
    Ok(out)
}

/// Emit every expressible corpus template as a fixture in `dialect`.
pub fn fixtures(dialect: DialectKind) -> Vec<Fixture> {
    corpus::corpus()
        .iter()
        .filter_map(|spec| {
            render_template(&spec.template, spec.catalog, dialect)
                .ok()
                .map(|sql| Fixture {
                    name: spec.id.clone(),
                    catalog: spec.catalog.to_string(),
                    dialect,
                    sql,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_catalog::schemas;

    fn catalog_by_name(name: &str) -> pqo_catalog::Catalog {
        match name {
            "tpch_skew" => schemas::tpch_skew(),
            "tpcds" => schemas::tpcds(),
            "rd1" => schemas::rd1(),
            "rd2" => schemas::rd2(),
            other => panic!("unknown catalog {other}"),
        }
    }

    #[test]
    fn corpus_emits_a_substantial_fixture_set() {
        let fx = fixtures(DialectKind::Postgres);
        assert!(
            fx.len() >= 40,
            "expected most of the corpus to be expressible, got {}",
            fx.len()
        );
    }

    #[test]
    fn emitted_fixtures_recompile_to_the_same_template() {
        for dialect in DialectKind::ALL {
            let mut checked = 0;
            let mut cat_cache: std::collections::BTreeMap<String, pqo_catalog::Catalog> =
                Default::default();
            for f in fixtures(*dialect) {
                let cat = cat_cache
                    .entry(f.catalog.clone())
                    .or_insert_with(|| catalog_by_name(&f.catalog));
                let compiled = pqo_sql::compile(&f.name, &f.sql, cat)
                    .unwrap_or_else(|e| panic!("{}:\n{}\n{}", f.name, f.sql, e.render(&f.sql)));
                let orig = &corpus::corpus()
                    .iter()
                    .find(|s| s.id == f.name)
                    .unwrap()
                    .template;
                let t = &compiled.template;
                assert_eq!(t.relations.len(), orig.relations.len(), "{}", f.name);
                for (a, b) in t.relations.iter().zip(orig.relations.iter()) {
                    assert_eq!(a.table.name, b.table.name, "{}", f.name);
                    assert_eq!(a.alias, b.alias, "{}", f.name);
                }
                assert_eq!(t.param_preds.len(), orig.param_preds.len(), "{}", f.name);
                for (a, b) in t.param_preds.iter().zip(orig.param_preds.iter()) {
                    assert_eq!(
                        (a.relation, a.column, a.op),
                        (b.relation, b.column, b.op),
                        "{}",
                        f.name
                    );
                }
                assert_eq!(t.join_edges.len(), orig.join_edges.len(), "{}", f.name);
                for (a, b) in t.join_edges.iter().zip(orig.join_edges.iter()) {
                    assert_eq!(
                        (a.left, a.right, a.selectivity),
                        (b.left, b.right, b.selectivity),
                        "{}",
                        f.name
                    );
                }
                assert_eq!(
                    t.aggregate.as_ref().map(|a| a.groups),
                    orig.aggregate.as_ref().map(|a| a.groups),
                    "{}",
                    f.name
                );
                assert_eq!(t.order_by, orig.order_by, "{}", f.name);
                checked += 1;
            }
            assert!(checked >= 40, "{dialect}: only {checked} fixtures checked");
        }
    }
}
