//! Workload construction (paper Section 7.1 and Appendix H.1).
//!
//! * [`regions`] — instances are drawn from a bucketized selectivity space:
//!   `Region0` (all parameterized predicates selective), `Region1` (all
//!   non-selective) and one `Region_di` per dimension (only dimension `i`
//!   non-selective), with `m/(d+2)` instances per region.
//! * [`corpus`] — the 90-template corpus over the four catalogs, with
//!   dimensions 1..=10 (a third of the templates have `d ≥ 4`; `d ≥ 5` only
//!   on RD2, mirroring the paper).
//! * [`orderings`] — the five sequence orderings: random, decreasing
//!   optimal cost, round-robin across plan-optimality groups, inside-out
//!   and outside-in.
//! * [`sqlgen`] — renders corpus templates back out as textual `.sql`
//!   fixtures (directive header + dialected SQL) that `pqo-sql` can
//!   re-compile to the identical template.

pub mod corpus;
pub mod orderings;
pub mod regions;
pub mod sqlgen;

pub use corpus::{corpus, TemplateSpec};
pub use orderings::Ordering;
