//! The 90-template corpus (paper Section 7.1).
//!
//! The paper evaluates on 90 parameterized queries over TPC-H (skewed),
//! TPC-DS, RD1 and RD2, built by adding one-sided range predicates so that
//! selectivities can be controlled over wide ranges, with up to 10
//! parameters and roughly a third of the templates having `d ≥ 4`
//! (high-dimensional templates only on RD2).
//!
//! We define 20 join *shapes* across the four catalogs; each shape carries
//! an ordered list of candidate parameterized predicates, and a template is
//! a `(shape, d)` pair using the first `d` candidates. Some `(shape, d)`
//! pairs additionally appear as a *variant* with the aggregate/order-by
//! decoration toggled, which changes the plan space. The result is exactly
//! 90 templates with the paper's dimension profile:
//! `d = 1..=10` with counts `[12, 20, 28, 10, 5, 5, 3, 3, 2, 2]`.

use std::sync::{Arc, OnceLock};

use pqo_catalog::Catalog;
use pqo_optimizer::template::{QueryTemplate, RangeOp, TemplateBuilder};

use crate::regions;

/// Which of the four catalogs a shape lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cat {
    TpchSkew,
    Tpcds,
    Rd1,
    Rd2,
}

impl Cat {
    fn name(self) -> &'static str {
        match self {
            Cat::TpchSkew => "tpch_skew",
            Cat::Tpcds => "tpcds",
            Cat::Rd1 => "rd1",
            Cat::Rd2 => "rd2",
        }
    }
}

use RangeOp::{Ge, Le};

/// One side of a static join edge: `(relation index, column name)`.
type JoinSide = (usize, &'static str);

/// A join shape: tables, join edges, candidate parameter columns and
/// decoration.
struct ShapeDef {
    id: &'static str,
    catalog: Cat,
    /// `(table, alias)` in relation order.
    tables: &'static [(&'static str, &'static str)],
    /// `((rel, col), (rel, col))` equi-join edges.
    joins: &'static [(JoinSide, JoinSide)],
    /// Candidate parameterized predicates, in dimension order.
    params: &'static [(usize, &'static str, RangeOp)],
    /// Aggregate group count, if the shape aggregates.
    agg: Option<f64>,
    /// Whether the shape sorts its output.
    order_by: bool,
}

const SHAPES: &[ShapeDef] = &[
    // ---- TPC-H (skewed) -------------------------------------------------
    ShapeDef {
        id: "A",
        catalog: Cat::TpchSkew,
        tables: &[("lineitem", "l")],
        joins: &[],
        params: &[
            (0, "l_shipdate", Le),
            (0, "l_extendedprice", Le),
            (0, "l_quantity", Le),
            (0, "l_receiptdate", Ge),
            (0, "l_discount", Le),
        ],
        agg: None,
        order_by: false,
    },
    ShapeDef {
        id: "B",
        catalog: Cat::TpchSkew,
        tables: &[("orders", "o"), ("lineitem", "l")],
        joins: &[((0, "orders_pk"), (1, "orders_fk"))],
        params: &[
            (0, "o_totalprice", Le),
            (1, "l_extendedprice", Le),
            (0, "o_orderdate", Le),
            (1, "l_shipdate", Ge),
            (1, "l_quantity", Le),
        ],
        agg: Some(100.0),
        order_by: false,
    },
    ShapeDef {
        id: "C",
        catalog: Cat::TpchSkew,
        tables: &[("customer", "c"), ("orders", "o")],
        joins: &[((0, "customer_pk"), (1, "customer_fk"))],
        params: &[
            (0, "c_acctbal", Le),
            (1, "o_totalprice", Le),
            (1, "o_orderdate", Ge),
        ],
        agg: None,
        order_by: true,
    },
    ShapeDef {
        id: "D",
        catalog: Cat::TpchSkew,
        tables: &[("customer", "c"), ("orders", "o"), ("lineitem", "l")],
        joins: &[
            ((0, "customer_pk"), (1, "customer_fk")),
            ((1, "orders_pk"), (2, "orders_fk")),
        ],
        params: &[
            (0, "c_acctbal", Le),
            (1, "o_orderdate", Le),
            (2, "l_shipdate", Le),
            (2, "l_extendedprice", Le),
        ],
        agg: Some(500.0),
        order_by: false,
    },
    ShapeDef {
        id: "E",
        catalog: Cat::TpchSkew,
        tables: &[("part", "p"), ("partsupp", "ps"), ("supplier", "s")],
        joins: &[
            ((0, "part_pk"), (1, "part_fk")),
            ((1, "supplier_fk"), (2, "supplier_pk")),
        ],
        params: &[
            (0, "p_size", Le),
            (1, "ps_supplycost", Le),
            (2, "s_acctbal", Ge),
            (0, "p_retailprice", Le),
        ],
        agg: None,
        order_by: false,
    },
    ShapeDef {
        id: "F",
        catalog: Cat::TpchSkew,
        tables: &[("orders", "o")],
        joins: &[],
        params: &[(0, "o_totalprice", Le), (0, "o_orderdate", Le)],
        agg: Some(50.0),
        order_by: false,
    },
    // ---- TPC-DS ---------------------------------------------------------
    ShapeDef {
        id: "G",
        catalog: Cat::Tpcds,
        tables: &[("store_sales", "ss"), ("date_dim", "dd"), ("item", "it")],
        joins: &[
            ((0, "date_dim_fk"), (1, "date_dim_pk")),
            ((0, "item_fk"), (2, "item_pk")),
        ],
        params: &[
            (0, "ss_sales_price", Le),
            (2, "i_current_price", Le),
            (1, "d_year", Le),
            (0, "ss_quantity", Le),
            (0, "ss_net_profit", Ge),
        ],
        agg: Some(200.0),
        order_by: false,
    },
    ShapeDef {
        id: "H",
        catalog: Cat::Tpcds,
        tables: &[
            ("catalog_sales", "cs"),
            ("customer", "c"),
            ("customer_address", "ca"),
        ],
        joins: &[
            ((0, "customer_fk"), (1, "customer_pk")),
            ((1, "customer_address_fk"), (2, "customer_address_pk")),
        ],
        params: &[
            (0, "cs_wholesale_cost", Le),
            (1, "c_birth_year", Le),
            (0, "cs_quantity", Le),
            (2, "ca_gmt_offset", Le),
        ],
        agg: None,
        order_by: false,
    },
    ShapeDef {
        id: "I",
        catalog: Cat::Tpcds,
        tables: &[("web_sales", "ws"), ("item", "it"), ("promotion", "pr")],
        joins: &[
            ((0, "item_fk"), (1, "item_pk")),
            ((0, "promotion_fk"), (2, "promotion_pk")),
        ],
        params: &[
            (0, "ws_sales_price", Le),
            (1, "i_current_price", Ge),
            (2, "p_cost", Le),
            (0, "m1", Le),
        ],
        agg: None,
        order_by: true,
    },
    ShapeDef {
        id: "J",
        catalog: Cat::Tpcds,
        tables: &[("inventory", "inv"), ("item", "it"), ("warehouse", "w")],
        joins: &[
            ((0, "item_fk"), (1, "item_pk")),
            ((0, "warehouse_fk"), (2, "warehouse_pk")),
        ],
        params: &[
            (0, "inv_quantity_on_hand", Le),
            (1, "i_current_price", Le),
            (1, "i_brand", Le),
        ],
        agg: Some(80.0),
        order_by: false,
    },
    ShapeDef {
        id: "K",
        catalog: Cat::Tpcds,
        tables: &[("store_sales", "ss"), ("customer", "c")],
        joins: &[((0, "customer_fk"), (1, "customer_pk"))],
        params: &[
            (0, "ss_net_profit", Le),
            (1, "c_birth_year", Le),
            (0, "ss_sales_price", Ge),
            (0, "m2", Le),
        ],
        agg: None,
        order_by: true,
    },
    // ---- RD1 ------------------------------------------------------------
    ShapeDef {
        id: "L",
        catalog: Cat::Rd1,
        tables: &[
            ("transactions", "t"),
            ("accounts", "a"),
            ("merchants", "mr"),
        ],
        joins: &[
            ((0, "accounts_fk"), (1, "accounts_pk")),
            ((0, "merchants_fk"), (2, "merchants_pk")),
        ],
        params: &[
            (0, "t_amount", Le),
            (1, "a_balance", Le),
            (2, "mrc_rating", Le),
            (0, "t_ts", Ge),
        ],
        agg: Some(300.0),
        order_by: false,
    },
    ShapeDef {
        id: "M",
        catalog: Cat::Rd1,
        tables: &[("sessions", "s"), ("users", "u")],
        joins: &[((0, "users_fk"), (1, "users_pk"))],
        params: &[
            (0, "s_duration", Le),
            (1, "u_score", Le),
            (1, "u_age", Le),
            (0, "s_ts", Ge),
        ],
        agg: None,
        order_by: false,
    },
    ShapeDef {
        id: "N",
        catalog: Cat::Rd1,
        tables: &[("orders_r", "or"), ("order_items", "oi"), ("products", "p")],
        joins: &[
            ((0, "orders_r_pk"), (1, "orders_r_fk")),
            ((1, "products_fk"), (2, "products_pk")),
        ],
        params: &[
            (0, "or_total", Le),
            (1, "oi_price", Le),
            (2, "p_price", Le),
            (1, "oi_qty", Le),
        ],
        agg: Some(100.0),
        order_by: false,
    },
    ShapeDef {
        id: "O",
        catalog: Cat::Rd1,
        tables: &[("logs", "lg"), ("users", "u")],
        joins: &[((0, "users_fk"), (1, "users_pk"))],
        params: &[(0, "l_severity", Ge), (1, "u_score", Le), (0, "l_ts", Le)],
        agg: None,
        order_by: false,
    },
    // ---- RD2 (high-dimensional) ------------------------------------------
    ShapeDef {
        id: "P",
        catalog: Cat::Rd2,
        tables: &[("telemetry", "t"), ("devices", "d")],
        joins: &[((0, "devices_fk"), (1, "devices_pk"))],
        params: &[
            (0, "t_ts", Le),
            (0, "t_battery", Le),
            (0, "t_signal", Le),
            (1, "d_age_days", Le),
            (0, "m1", Le),
            (0, "m2", Le),
            (0, "m3", Le),
            (0, "m4", Ge),
            (0, "m5", Le),
            (0, "m6", Le),
        ],
        agg: Some(400.0),
        order_by: false,
    },
    ShapeDef {
        id: "Q",
        catalog: Cat::Rd2,
        tables: &[("readings", "r"), ("sensors", "sn")],
        joins: &[((0, "sensors_fk"), (1, "sensors_pk"))],
        params: &[
            (0, "r_ts", Le),
            (0, "r_value", Le),
            (1, "sn_precision", Le),
            (1, "sn_range", Le),
            (0, "m1", Le),
            (0, "m2", Le),
            (0, "m3", Ge),
            (0, "m4", Le),
            (0, "m5", Le),
        ],
        agg: None,
        order_by: false,
    },
    ShapeDef {
        id: "R",
        catalog: Cat::Rd2,
        tables: &[("alerts", "al"), ("devices", "d"), ("firmware", "f")],
        joins: &[
            ((0, "devices_fk"), (1, "devices_pk")),
            ((1, "firmware_fk"), (2, "firmware_pk")),
        ],
        params: &[
            (0, "al_severity", Ge),
            (0, "al_ts", Le),
            (0, "m1", Le),
            (0, "m2", Le),
            (0, "m3", Le),
            (0, "m4", Ge),
            (1, "m1", Le),
            (1, "m2", Le),
        ],
        agg: Some(100.0),
        order_by: false,
    },
    ShapeDef {
        id: "S",
        catalog: Cat::Rd2,
        tables: &[("maintenance", "mt"), ("devices", "d"), ("sites", "st")],
        joins: &[
            ((0, "devices_fk"), (1, "devices_pk")),
            ((1, "sites_fk"), (2, "sites_pk")),
        ],
        params: &[
            (0, "mt_cost", Le),
            (0, "mt_duration", Le),
            (1, "d_age_days", Le),
            (2, "st_elevation", Le),
            (1, "m1", Le),
            (1, "m2", Le),
            (1, "m3", Ge),
            (1, "m4", Le),
        ],
        agg: None,
        order_by: true,
    },
    ShapeDef {
        id: "T",
        catalog: Cat::Rd2,
        tables: &[("telemetry", "t"), ("devices", "d"), ("sites", "st")],
        joins: &[
            ((0, "devices_fk"), (1, "devices_pk")),
            ((1, "sites_fk"), (2, "sites_pk")),
        ],
        params: &[
            (0, "t_signal", Le),
            (0, "t_battery", Le),
            (1, "d_age_days", Le),
            (2, "st_elevation", Le),
            (0, "m1", Le),
            (0, "m2", Le),
            (0, "m3", Le),
            (0, "m4", Ge),
            (0, "m5", Le),
            (0, "m6", Le),
        ],
        agg: Some(250.0),
        order_by: false,
    },
    // ---- Wide multi-relation shapes (the paper's real-world queries are
    // multi-block statements over many relations, Section 7.1) -------------
    ShapeDef {
        id: "U",
        catalog: Cat::TpchSkew,
        tables: &[
            ("customer", "c"),
            ("orders", "o"),
            ("lineitem", "l"),
            ("part", "p"),
            ("supplier", "s"),
        ],
        joins: &[
            ((0, "customer_pk"), (1, "customer_fk")),
            ((1, "orders_pk"), (2, "orders_fk")),
            ((2, "part_fk"), (3, "part_pk")),
            ((2, "supplier_fk"), (4, "supplier_pk")),
        ],
        params: &[
            (0, "c_acctbal", Le),
            (1, "o_totalprice", Le),
            (2, "l_shipdate", Le),
            (3, "p_retailprice", Le),
        ],
        agg: Some(300.0),
        order_by: false,
    },
    ShapeDef {
        id: "V",
        catalog: Cat::Tpcds,
        tables: &[
            ("store_sales", "ss"),
            ("date_dim", "dd"),
            ("item", "it"),
            ("customer", "c"),
            ("store", "st"),
        ],
        joins: &[
            ((0, "date_dim_fk"), (1, "date_dim_pk")),
            ((0, "item_fk"), (2, "item_pk")),
            ((0, "customer_fk"), (3, "customer_pk")),
            ((0, "store_fk"), (4, "store_pk")),
        ],
        params: &[
            (0, "ss_sales_price", Le),
            (1, "d_year", Le),
            (2, "i_current_price", Le),
            (3, "c_birth_year", Le),
        ],
        agg: Some(200.0),
        order_by: false,
    },
    ShapeDef {
        id: "W",
        catalog: Cat::Rd1,
        tables: &[
            ("order_items", "oi"),
            ("orders_r", "or"),
            ("users", "u"),
            ("regions_r", "rr"),
            ("products", "p"),
        ],
        joins: &[
            ((0, "orders_r_fk"), (1, "orders_r_pk")),
            ((1, "users_fk"), (2, "users_pk")),
            ((2, "regions_r_fk"), (3, "regions_r_pk")),
            ((0, "products_fk"), (4, "products_pk")),
        ],
        params: &[
            (0, "oi_price", Le),
            (1, "or_total", Le),
            (2, "u_score", Le),
            (4, "p_price", Le),
        ],
        agg: None,
        order_by: true,
    },
];

/// `(shape id, d, variant)` — the full corpus roster. A variant toggles the
/// shape's aggregate/order-by decoration, yielding a different plan space
/// over the same join shape.
const ROSTER: &[(&str, usize, bool)] = &[
    // d = 1 (12)
    ("A", 1, false),
    ("B", 1, false),
    ("C", 1, false),
    ("F", 1, false),
    ("G", 1, false),
    ("H", 1, false),
    ("J", 1, false),
    ("K", 1, false),
    ("L", 1, false),
    ("M", 1, false),
    ("N", 1, false),
    ("O", 1, false),
    // d = 2 (20)
    ("A", 2, false),
    ("B", 2, false),
    ("C", 2, false),
    ("D", 2, false),
    ("V", 2, false),
    ("F", 2, false),
    ("G", 2, false),
    ("H", 2, false),
    ("I", 2, false),
    ("J", 2, false),
    ("K", 2, false),
    ("L", 2, false),
    ("M", 2, false),
    ("N", 2, false),
    ("O", 2, false),
    ("P", 2, false),
    ("Q", 2, false),
    ("R", 2, false),
    ("S", 2, false),
    ("T", 2, false),
    // d = 3 (28)
    ("A", 3, false),
    ("B", 3, false),
    ("C", 3, false),
    ("D", 3, false),
    ("U", 3, false),
    ("G", 3, false),
    ("W", 3, false),
    ("I", 3, false),
    ("J", 3, false),
    ("K", 3, false),
    ("L", 3, false),
    ("M", 3, false),
    ("N", 3, false),
    ("O", 3, false),
    ("P", 3, false),
    ("Q", 3, false),
    ("R", 3, false),
    ("S", 3, false),
    ("T", 3, false),
    ("A", 3, true),
    ("B", 3, true),
    ("D", 3, true),
    ("G", 3, true),
    ("I", 3, true),
    ("L", 3, true),
    ("N", 3, true),
    ("P", 3, true),
    ("Q", 3, true),
    // d = 4 (10)
    ("A", 4, false),
    ("B", 4, false),
    ("U", 4, false),
    ("V", 4, false),
    ("G", 4, false),
    ("W", 4, false),
    ("K", 4, false),
    ("L", 4, false),
    ("M", 4, false),
    ("N", 4, false),
    // d = 5 (5)
    ("P", 5, false),
    ("Q", 5, false),
    ("R", 5, false),
    ("S", 5, false),
    ("T", 5, false),
    // d = 6 (5)
    ("P", 6, false),
    ("Q", 6, false),
    ("R", 6, false),
    ("S", 6, false),
    ("T", 6, false),
    // d = 7 (3)
    ("P", 7, false),
    ("Q", 7, false),
    ("T", 7, false),
    // d = 8 (3)
    ("P", 8, false),
    ("R", 8, false),
    ("S", 8, false),
    // d = 9 (2)
    ("Q", 9, false),
    ("T", 9, false),
    // d = 10 (2)
    ("P", 10, false),
    ("T", 10, false),
];

/// One corpus entry: a template plus generation metadata.
#[derive(Debug, Clone)]
pub struct TemplateSpec {
    /// Corpus-unique identifier, e.g. `"tpch_skew_B_d2"`.
    pub id: String,
    /// Catalog the template queries.
    pub catalog: &'static str,
    /// The template.
    pub template: Arc<QueryTemplate>,
    /// Number of parameterized predicates.
    pub dimensions: usize,
    /// Per-template seed component for instance generation.
    pub seed: u64,
}

impl TemplateSpec {
    /// Generate `m` instances using the region bucketization of
    /// Section 7.1, deterministic in `(self.seed, seed)`.
    pub fn generate(&self, m: usize, seed: u64) -> Vec<pqo_optimizer::template::QueryInstance> {
        regions::generate(&self.template, m, self.seed ^ seed.rotate_left(17))
    }

    /// The paper's sequence length for this template: 1000 instances, 2000
    /// when `d > 3` (Section 7.1).
    pub fn default_len(&self) -> usize {
        if self.dimensions > 3 {
            2000
        } else {
            1000
        }
    }
}

fn build_template(shape: &ShapeDef, cat: &Catalog, d: usize, variant: bool) -> Arc<QueryTemplate> {
    assert!(
        d >= 1 && d <= shape.params.len(),
        "shape {} supports d ≤ {}",
        shape.id,
        shape.params.len()
    );
    let variant_tag = if variant { "v" } else { "" };
    let name = format!(
        "{}_{}_d{}{}",
        shape.catalog.name(),
        shape.id,
        d,
        variant_tag
    );
    let mut b = TemplateBuilder::new(&name);
    for (table, alias) in shape.tables {
        let t = cat.expect_table(table);
        b.relation(t, alias);
    }
    for ((lr, lc), (rr, rc)) in shape.joins {
        b.join((*lr, lc), (*rr, rc));
    }
    for (rel, col, op) in &shape.params[..d] {
        b.param(*rel, col, *op);
    }
    let (agg, order_by) = if variant {
        // Variant: toggle the decoration to change the plan space.
        match shape.agg {
            Some(_) => (None, true),
            None => (Some(150.0), shape.order_by),
        }
    } else {
        (shape.agg, shape.order_by)
    };
    if let Some(g) = agg {
        b.aggregate(g);
    }
    if order_by {
        b.order_by();
    }
    b.build()
}

fn shape(id: &str) -> &'static ShapeDef {
    SHAPES
        .iter()
        .find(|s| s.id == id)
        .unwrap_or_else(|| panic!("unknown shape {id}"))
}

/// The full 90-template corpus. Catalogs and statistics are built once and
/// cached for the process lifetime.
pub fn corpus() -> &'static [TemplateSpec] {
    static CORPUS: OnceLock<Vec<TemplateSpec>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let catalogs = [
            pqo_catalog::schemas::tpch_skew(),
            pqo_catalog::schemas::tpcds(),
            pqo_catalog::schemas::rd1(),
            pqo_catalog::schemas::rd2(),
        ];
        let cat_of = |c: Cat| match c {
            Cat::TpchSkew => &catalogs[0],
            Cat::Tpcds => &catalogs[1],
            Cat::Rd1 => &catalogs[2],
            Cat::Rd2 => &catalogs[3],
        };
        ROSTER
            .iter()
            .enumerate()
            .map(|(i, &(id, d, variant))| {
                let s = shape(id);
                let template = build_template(s, cat_of(s.catalog), d, variant);
                TemplateSpec {
                    id: template.name.clone(),
                    catalog: s.catalog.name(),
                    template,
                    dimensions: d,
                    seed: 0x5eed_0000 + i as u64,
                }
            })
            .collect()
    })
}

/// Corpus entries with exactly `d` dimensions (used by the Figure 12
/// dimension sweep).
pub fn corpus_with_dimensions(d: usize) -> Vec<&'static TemplateSpec> {
    corpus().iter().filter(|s| s.dimensions == d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_ninety_templates() {
        assert_eq!(corpus().len(), 90);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = corpus().iter().map(|s| s.id.clone()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate template ids");
    }

    #[test]
    fn dimension_profile_matches_paper() {
        let mut counts = [0usize; 11];
        for s in corpus() {
            counts[s.dimensions] += 1;
        }
        assert_eq!(&counts[1..], &[12, 20, 28, 10, 5, 5, 3, 3, 2, 2]);
        // About a third have d >= 4 (paper: ≈ 1/3).
        let high: usize = counts[4..].iter().sum();
        assert_eq!(high, 30);
    }

    #[test]
    fn high_dimensional_templates_only_on_rd2() {
        for s in corpus() {
            if s.dimensions >= 5 {
                assert_eq!(
                    s.catalog, "rd2",
                    "{} has d={} on {}",
                    s.id, s.dimensions, s.catalog
                );
            }
        }
    }

    #[test]
    fn all_templates_validate() {
        for s in corpus() {
            assert!(s.template.validate().is_ok(), "{} invalid", s.id);
            assert_eq!(s.template.dimensions(), s.dimensions);
        }
    }

    #[test]
    fn default_lengths_follow_paper() {
        for s in corpus() {
            assert_eq!(s.default_len(), if s.dimensions > 3 { 2000 } else { 1000 });
        }
    }

    #[test]
    fn generation_is_deterministic_and_distinct_per_template() {
        let a = &corpus()[0];
        let b = &corpus()[1];
        assert_eq!(a.generate(10, 1), a.generate(10, 1));
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn every_dimension_query_works() {
        for d in 1..=10 {
            assert!(
                !corpus_with_dimensions(d).is_empty(),
                "no templates with d={d}"
            );
        }
        assert!(corpus_with_dimensions(11).is_empty());
    }
}
