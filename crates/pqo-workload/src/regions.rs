//! Region-bucketized instance generation (paper Section 7.1).
//!
//! A workload is challenging for online PQO when instances have widely
//! varying selectivities and many distinct optimal plans, yet enough
//! proximity for reuse. The paper achieves this by dividing the selectivity
//! space into `d + 2` regions and drawing `m/(d+2)` instances from each:
//!
//! * `Region0` — every parameterized predicate selective (small);
//! * `Region1` — every parameterized predicate non-selective (large);
//! * `Region_di` — only dimension `i` non-selective.

use pqo_rand::rngs::StdRng;
use pqo_rand::seq::SliceRandom;
use pqo_rand::{Rng, SeedableRng};

use pqo_optimizer::svector::instance_for_target;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};

/// Bounds for "small" selectivities (log-uniform within).
pub const SMALL_SEL: (f64, f64) = (1e-3, 0.05);

/// Bounds for "large" selectivities (uniform within).
pub const LARGE_SEL: (f64, f64) = (0.2, 1.0);

fn small<R: Rng>(rng: &mut R) -> f64 {
    let (lo, hi) = SMALL_SEL;
    (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
}

fn large<R: Rng>(rng: &mut R) -> f64 {
    let (lo, hi) = LARGE_SEL;
    rng.gen_range(lo..=hi)
}

/// One target selectivity vector from region `region` (0 = Region0,
/// 1 = Region1, `2 + i` = Region_di).
fn target_from_region<R: Rng>(rng: &mut R, d: usize, region: usize) -> Vec<f64> {
    (0..d)
        .map(|dim| match region {
            0 => small(rng),
            1 => large(rng),
            r => {
                if dim == r - 2 {
                    large(rng)
                } else {
                    small(rng)
                }
            }
        })
        .collect()
}

/// Generate `m` instances for `template` using the region bucketization,
/// then shuffle (the base "random" order). Deterministic per `seed`.
pub fn generate(template: &QueryTemplate, m: usize, seed: u64) -> Vec<QueryInstance> {
    let d = template.dimensions();
    assert!(d >= 1, "template must be parameterized");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let regions = d + 2;
    let mut instances = Vec::with_capacity(m);
    for k in 0..m {
        // Cycle through regions so each gets ⌈m/(d+2)⌉ or ⌊m/(d+2)⌋.
        let region = k % regions;
        let target = target_from_region(&mut rng, d, region);
        instances.push(instance_for_target(template, &target));
    }
    instances.shuffle(&mut rng);
    instances
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_optimizer::svector::compute_svector;
    use pqo_optimizer::template::{RangeOp, TemplateBuilder};
    use std::sync::Arc;

    fn fixture() -> Arc<QueryTemplate> {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new("regions_test");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        b.build()
    }

    #[test]
    fn generates_requested_count() {
        let t = fixture();
        assert_eq!(generate(&t, 100, 1).len(), 100);
        assert_eq!(generate(&t, 0, 1).len(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let t = fixture();
        assert_eq!(generate(&t, 50, 7), generate(&t, 50, 7));
        assert_ne!(generate(&t, 50, 7), generate(&t, 50, 8));
    }

    #[test]
    fn covers_all_regions() {
        let t = fixture(); // d = 2 → 4 regions
        let instances = generate(&t, 400, 3);
        let mut seen = [0usize; 4]; // [both small, both large, d1 large, d2 large]
        for inst in &instances {
            let sv = compute_svector(&t, inst);
            // Histogram quantization can push a "small" target slightly
            // around; classify with a mid threshold.
            let big0 = sv.get(0) > 0.1;
            let big1 = sv.get(1) > 0.1;
            match (big0, big1) {
                (false, false) => seen[0] += 1,
                (true, true) => seen[1] += 1,
                (true, false) => seen[2] += 1,
                (false, true) => seen[3] += 1,
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            assert!(count >= 60, "region {i} underrepresented: {count}/400");
        }
    }

    #[test]
    fn small_selectivities_are_log_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..2000).map(|_| small(&mut rng)).collect();
        let (lo, hi) = SMALL_SEL;
        assert!(samples.iter().all(|&s| (lo..=hi).contains(&s)));
        // Log-uniform: the geometric midpoint splits the samples roughly in
        // half, unlike a linear-uniform draw which would put ~86% above it.
        let mid = (lo * hi).sqrt();
        let below = samples.iter().filter(|&&s| s < mid).count();
        assert!((800..1200).contains(&below), "{below}");
    }
}
