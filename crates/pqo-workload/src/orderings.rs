//! Workload orderings (paper Section 7.1 and Appendix H.1).
//!
//! The same instance set is presented in five different orders to test each
//! technique's robustness to sequence patterns: a random order plus the
//! four adversarial orders of Appendix H.1. The non-random orders require
//! the per-instance optimal cost/plan, i.e. a
//! [`pqo_core::runner::GroundTruth`].

use pqo_rand::rngs::StdRng;
use pqo_rand::seq::SliceRandom;
use pqo_rand::SeedableRng;

use pqo_core::runner::GroundTruth;

/// The five sequence orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ordering {
    /// Uniformly random shuffle.
    Random,
    /// Decreasing optimal-cost order (H.1 #1) — hostile to PCM, which never
    /// sees a dominating pair until late.
    DecreasingCost,
    /// Round-robin across the optimality regions of distinct plans (H.1 #2).
    RoundRobinByPlan,
    /// Instances with near-average optimal cost first, diverging to the
    /// extremes (H.1 #3).
    InsideOut,
    /// Extreme-cost instances first, converging to the average (H.1 #4).
    OutsideIn,
}

impl Ordering {
    /// All five orderings, in the order used by the evaluation.
    pub const ALL: [Ordering; 5] = [
        Ordering::Random,
        Ordering::DecreasingCost,
        Ordering::RoundRobinByPlan,
        Ordering::InsideOut,
        Ordering::OutsideIn,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Ordering::Random => "random",
            Ordering::DecreasingCost => "dec_cost",
            Ordering::RoundRobinByPlan => "round_robin",
            Ordering::InsideOut => "inside_out",
            Ordering::OutsideIn => "outside_in",
        }
    }

    /// Compute the permutation (indices into the ground truth's instance
    /// set) realizing this ordering.
    pub fn permutation(self, gt: &GroundTruth, seed: u64) -> Vec<usize> {
        let n = gt.len();
        let mut idx: Vec<usize> = (0..n).collect();
        match self {
            Ordering::Random => {
                idx.shuffle(&mut StdRng::seed_from_u64(seed));
            }
            Ordering::DecreasingCost => {
                idx.sort_by(|&a, &b| gt.opt_costs[b].partial_cmp(&gt.opt_costs[a]).unwrap());
            }
            Ordering::RoundRobinByPlan => {
                // Group indices by optimal plan, then deal one per group.
                let mut groups: std::collections::BTreeMap<_, Vec<usize>> = Default::default();
                for &i in &idx {
                    groups
                        .entry(gt.opt_plans[i].fingerprint())
                        .or_default()
                        .push(i);
                }
                let mut queues: Vec<Vec<usize>> = groups.into_values().collect();
                for q in &mut queues {
                    q.reverse(); // pop from the back = original order
                }
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    for q in &mut queues {
                        if let Some(i) = q.pop() {
                            out.push(i);
                        }
                    }
                }
                idx = out;
            }
            Ordering::InsideOut | Ordering::OutsideIn => {
                let median = {
                    let mut costs = gt.opt_costs.clone();
                    costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
                    costs[n / 2]
                };
                idx.sort_by(|&a, &b| {
                    let da = (gt.opt_costs[a] - median).abs();
                    let db = (gt.opt_costs[b] - median).abs();
                    da.partial_cmp(&db).unwrap()
                });
                if self == Ordering::OutsideIn {
                    idx.reverse();
                }
            }
        }
        idx
    }

    /// Apply the permutation to any per-instance slice.
    pub fn apply<T: Clone>(order: &[usize], items: &[T]) -> Vec<T> {
        order.iter().map(|&i| items[i].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_core::engine::QueryEngine;
    use pqo_optimizer::template::{RangeOp, TemplateBuilder};
    use std::sync::Arc;

    fn ground_truth() -> GroundTruth {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new("ordering_test");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.param(l, "l_shipdate", RangeOp::Le);
        let t = b.build();
        let instances = crate::regions::generate(&t, 60, 5);
        let engine = QueryEngine::new(Arc::clone(&t));
        GroundTruth::compute(&engine, &instances)
    }

    #[test]
    fn permutations_are_complete() {
        let gt = ground_truth();
        for o in Ordering::ALL {
            let mut p = o.permutation(&gt, 1);
            assert_eq!(p.len(), gt.len());
            p.sort();
            assert_eq!(
                p,
                (0..gt.len()).collect::<Vec<_>>(),
                "{} not a permutation",
                o.name()
            );
        }
    }

    #[test]
    fn decreasing_cost_is_sorted() {
        let gt = ground_truth();
        let p = Ordering::DecreasingCost.permutation(&gt, 0);
        for w in p.windows(2) {
            assert!(gt.opt_costs[w[0]] >= gt.opt_costs[w[1]]);
        }
    }

    #[test]
    fn inside_out_starts_near_median_and_outside_in_reverses_it() {
        let gt = ground_truth();
        let inside = Ordering::InsideOut.permutation(&gt, 0);
        let outside = Ordering::OutsideIn.permutation(&gt, 0);
        assert_eq!(inside.iter().rev().copied().collect::<Vec<_>>(), outside);
        let mut costs = gt.opt_costs.clone();
        costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = costs[gt.len() / 2];
        let first_dev = (gt.opt_costs[inside[0]] - median).abs();
        let last_dev = (gt.opt_costs[*inside.last().unwrap()] - median).abs();
        assert!(first_dev <= last_dev);
    }

    #[test]
    fn round_robin_alternates_plan_groups() {
        let gt = ground_truth();
        let p = Ordering::RoundRobinByPlan.permutation(&gt, 0);
        let plans: Vec<_> = p.iter().map(|&i| gt.opt_plans[i].fingerprint()).collect();
        let distinct = gt.distinct_plans();
        if distinct >= 2 {
            // Within the first `distinct` picks, all plans must differ.
            let head: std::collections::BTreeSet<_> = plans[..distinct].iter().collect();
            assert_eq!(head.len(), distinct);
        }
    }

    #[test]
    fn random_is_seeded() {
        let gt = ground_truth();
        assert_eq!(
            Ordering::Random.permutation(&gt, 42),
            Ordering::Random.permutation(&gt, 42)
        );
        assert_ne!(
            Ordering::Random.permutation(&gt, 42),
            Ordering::Random.permutation(&gt, 43)
        );
    }

    #[test]
    fn apply_permutes_any_slice() {
        let items = vec!["a", "b", "c"];
        assert_eq!(Ordering::apply(&[2, 0, 1], &items), vec!["c", "a", "b"]);
    }
}
