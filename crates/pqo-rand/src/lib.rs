//! Minimal deterministic pseudo-random numbers for the workspace.
//!
//! The repo must build and test **fully offline** (no crates.io access), so
//! this crate provides the tiny slice of the `rand` API the workspace
//! actually uses — a seedable generator, uniform ranges and slice
//! shuffling — over a xoshiro256++ core seeded with SplitMix64. The module
//! layout (`rngs::StdRng`, [`Rng`], [`SeedableRng`], `seq::SliceRandom`)
//! mirrors `rand` so call sites only swap the crate name.
//!
//! Determinism contract: the same seed always produces the same stream, on
//! every platform, across releases of this workspace. Workload generation,
//! experiment seeds and persisted results all rely on it.

/// Uniform random generation, mirroring the subset of `rand::Rng` we use.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample of `T` over its natural unit domain (`f64` ∈ [0, 1)).
    fn gen<T: Sample01>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample01(self)
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0.0..1.0)`,
    /// `rng.gen_range(1..=6)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }
}

/// Types that can be sampled uniformly over a unit domain.
pub trait Sample01 {
    /// Draw one sample using `rng`.
    fn sample01<R: Rng>(rng: &mut R) -> Self;
}

impl Sample01 for f64 {
    fn sample01<R: Rng>(rng: &mut R) -> Self {
        rng.gen_f64()
    }
}

impl Sample01 for bool {
    fn sample01<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a [`Rng`] can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.gen_f64() * (self.end - self.start);
        // Guard the half-open contract against f64 rounding.
        if v >= self.end {
            self.end.next_down()
        } else {
            v
        }
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // 53-bit fraction over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

fn uniform_u64<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: keep draws below the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

/// Construction from a 64-bit seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna),
    /// state expanded from the seed with SplitMix64 so nearby seeds yield
    /// unrelated streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro's state must not be all-zero; SplitMix64 never yields
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Uniformly chosen element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "nearby seeds must yield unrelated streams");
    }

    #[test]
    fn f64_stays_in_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            lo_seen |= v < 0.1;
            hi_seen |= v > 0.9;
        }
        assert!(lo_seen && hi_seen, "10k draws must reach both tails");
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let mean = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5_000 {
            let v = rng.gen_range(-4.0f64..9.0);
            assert!((-4.0..9.0).contains(&v));
            let w = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&w));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&j));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 6];
        for _ in 0..6_000 {
            counts[rng.gen_range(0usize..6)] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            assert!(*c > 700, "value {i} drawn only {c} times");
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_stable() {
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(11));
        let mut w = v.clone();
        w.sort_unstable();
        assert_eq!(w, (0..50).collect::<Vec<u32>>());
        let mut v2: Vec<u32> = (0..50).collect();
        v2.shuffle(&mut StdRng::seed_from_u64(11));
        assert_eq!(v, v2, "same seed, same permutation");
        assert_ne!(
            v,
            (0..50).collect::<Vec<u32>>(),
            "50 elements virtually never fixed"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
