//! A row-level query executor over scaled synthetic data.
//!
//! The paper's Appendix H.7 runs a *real execution* experiment (Table 3):
//! 500 instances of a TPC-DS query executed end-to-end, showing that SCR's
//! total time (optimization + execution) beats every alternative when
//! optimization time is a significant fraction of execution time. The cost
//! model alone can only simulate that; this crate closes the gap by
//! actually executing plans:
//!
//! * [`data`] — materializes each catalog table at a reduced scale
//!   (deterministic sampling from the same column distributions the
//!   statistics were built from, with PK/FK consistency so joins produce
//!   matches);
//! * [`exec`] — an operator-at-a-time executor for every physical operator
//!   the optimizer emits (scans, index seeks, hash/merge/index-NL joins,
//!   sorts, aggregations), driven directly by [`pqo_optimizer::plan::Plan`]
//!   trees.
//!
//! The executor is intentionally simple (materialized intermediates, no
//! parallelism): its purpose is to make *relative* execution times of
//! competing plans real, not to win benchmarks.

pub mod data;
pub mod exec;

pub use data::{Database, ScaledTable};
pub use exec::{execute, ExecResult};
