//! Operator-at-a-time plan execution.
//!
//! A tuple of a join subtree is the combination of one row id per base
//! relation the subtree covers ([`Tuples`] stores them flattened). Every
//! physical operator the optimizer emits is implemented: filters are
//! applied at scans, joins match on the template's equi-join edges, sorts
//! order by their recorded key, and aggregates bucket rows into the
//! template's declared group count.
//!
//! The headline correctness property (tested below and in the integration
//! suite): **any two plans for the same template produce identical result
//! cardinalities at every instance** — plan choice changes time, never
//! answers.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use pqo_optimizer::plan::{Plan, PlanNode, PlanOp};
use pqo_optimizer::template::{QueryInstance, QueryTemplate, RangeOp};

use crate::data::{Database, ScaledTable};

/// Result of executing one plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecResult {
    /// Output row count (groups, for aggregated queries).
    pub rows: usize,
    /// Wall-clock execution time.
    pub wall: Duration,
}

/// Materialized intermediate: one row id per covered relation, flattened
/// with stride `rels.len()`.
struct Tuples {
    rels: Vec<usize>,
    data: Vec<u32>,
}

impl Tuples {
    fn new(rels: Vec<usize>) -> Self {
        Tuples {
            rels,
            data: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        if self.rels.is_empty() {
            0
        } else {
            self.data.len() / self.rels.len()
        }
    }

    fn slot(&self, rel: usize) -> usize {
        self.rels
            .iter()
            .position(|&r| r == rel)
            .expect("relation not in tuple")
    }

    fn row(&self, tup: usize, slot: usize) -> u32 {
        self.data[tup * self.rels.len() + slot]
    }

    fn tuple(&self, tup: usize) -> &[u32] {
        let w = self.rels.len();
        &self.data[tup * w..(tup + 1) * w]
    }
}

/// Either a stream of join tuples or (after aggregation) a set of groups.
enum Stream {
    Tuples(Tuples),
    Groups(Vec<u64>),
}

impl Stream {
    fn rows(&self) -> usize {
        match self {
            Stream::Tuples(t) => t.len(),
            Stream::Groups(g) => g.len(),
        }
    }
}

struct Ctx<'a> {
    template: &'a QueryTemplate,
    instance: &'a QueryInstance,
    tables: Vec<&'a ScaledTable>,
}

impl Ctx<'_> {
    /// Every predicate on relation `rel`, applied to a base row. Fixed
    /// predicates have no physical column; they are realized as a
    /// deterministic pseudo-random filter at their declared selectivity.
    fn passes(&self, rel: usize, row: u32) -> bool {
        for (i, p) in self.template.param_preds.iter().enumerate() {
            if p.relation != rel {
                continue;
            }
            let v = self.tables[rel].value(p.column, row);
            let param = self.instance.values[i];
            let ok = match p.op {
                RangeOp::Le => v <= param,
                RangeOp::Ge => v >= param,
            };
            if !ok {
                return false;
            }
        }
        for (fi, p) in self.template.fixed_preds.iter().enumerate() {
            if p.relation != rel {
                continue;
            }
            let h = splitmix(row as u64 ^ ((rel as u64) << 32) ^ ((fi as u64) << 40));
            if (h as f64 / u64::MAX as f64) >= p.selectivity {
                return false;
            }
        }
        true
    }

    /// The column of `rel` used by join edge `e`.
    fn edge_col(&self, e: usize, rel: usize) -> usize {
        self.template.join_edges[e]
            .column_on(rel)
            .expect("edge touches relation")
    }

    /// Key value of edge `e` on whichever side lives inside `t`'s tuple.
    fn edge_key(&self, t: &Tuples, tup: usize, e: usize) -> u64 {
        let edge = &self.template.join_edges[e];
        let (rel, col) = if t.rels.contains(&edge.left.0) {
            edge.left
        } else {
            edge.right
        };
        let row = t.row(tup, t.slot(rel));
        self.tables[rel].value(col, row).to_bits()
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Execute `plan` for `instance` against `db`.
pub fn execute(
    db: &Database,
    template: &QueryTemplate,
    plan: &Plan,
    instance: &QueryInstance,
) -> ExecResult {
    assert_eq!(instance.values.len(), template.dimensions());
    let ctx = Ctx {
        template,
        instance,
        tables: template
            .relations
            .iter()
            .map(|r| db.table(&r.table.name))
            .collect(),
    };
    // The executor walks the boxed tree form; rebuilding it from the arena
    // is negligible next to actually running the operators.
    let root = plan.to_tree();
    let start = Instant::now();
    let out = eval(&ctx, &root);
    ExecResult {
        rows: out.rows(),
        wall: start.elapsed(),
    }
}

fn eval(ctx: &Ctx<'_>, node: &PlanNode) -> Stream {
    match &node.op {
        PlanOp::SeqScan { relation } => {
            let mut t = Tuples::new(vec![*relation]);
            for row in 0..ctx.tables[*relation].rows as u32 {
                if ctx.passes(*relation, row) {
                    t.data.push(row);
                }
            }
            Stream::Tuples(t)
        }
        PlanOp::IndexSeek {
            relation,
            seek_pred,
        } => {
            let p = &ctx.template.param_preds[*seek_pred];
            let v = ctx.instance.values[*seek_pred];
            let table = ctx.tables[*relation];
            let hits = match p.op {
                RangeOp::Le => table.index_range_le(p.column, v),
                RangeOp::Ge => table.index_range_ge(p.column, v),
            };
            let mut t = Tuples::new(vec![*relation]);
            for &(_, row) in hits {
                if ctx.passes(*relation, row) {
                    t.data.push(row);
                }
            }
            Stream::Tuples(t)
        }
        PlanOp::SortedIndexScan { relation, column } => {
            let mut t = Tuples::new(vec![*relation]);
            for &(_, row) in ctx.tables[*relation].index_full(*column) {
                if ctx.passes(*relation, row) {
                    t.data.push(row);
                }
            }
            Stream::Tuples(t)
        }
        PlanOp::HashJoin { build_left, edges } => {
            let Stream::Tuples(l) = eval(ctx, &node.children[0]) else {
                panic!("join over groups")
            };
            let Stream::Tuples(r) = eval(ctx, &node.children[1]) else {
                panic!("join over groups")
            };
            let (build, probe) = if *build_left { (&l, &r) } else { (&r, &l) };
            let mut map: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
            for tup in 0..build.len() {
                let key: Vec<u64> = edges.iter().map(|&e| ctx.edge_key(build, tup, e)).collect();
                map.entry(key).or_default().push(tup);
            }
            let mut out = Tuples::new([l.rels.clone(), r.rels.clone()].concat());
            for ptup in 0..probe.len() {
                let key: Vec<u64> = edges
                    .iter()
                    .map(|&e| ctx.edge_key(probe, ptup, e))
                    .collect();
                if let Some(matches) = map.get(&key) {
                    for &btup in matches {
                        let (ltup, rtup) = if *build_left {
                            (btup, ptup)
                        } else {
                            (ptup, btup)
                        };
                        out.data.extend_from_slice(l.tuple(ltup));
                        out.data.extend_from_slice(r.tuple(rtup));
                    }
                }
            }
            Stream::Tuples(out)
        }
        PlanOp::MergeJoin { merge_edge, edges } => {
            let Stream::Tuples(l) = eval(ctx, &node.children[0]) else {
                panic!("join over groups")
            };
            let Stream::Tuples(r) = eval(ctx, &node.children[1]) else {
                panic!("join over groups")
            };
            // Children deliver rows sorted by the merge key (sorted scans,
            // Sort enforcers or lower merge joins on the same key); we sort
            // key references defensively cheaply via extracted key arrays.
            let lk: Vec<u64> = (0..l.len())
                .map(|t| ctx.edge_key(&l, t, *merge_edge))
                .collect();
            let rk: Vec<u64> = (0..r.len())
                .map(|t| ctx.edge_key(&r, t, *merge_edge))
                .collect();
            debug_assert!(is_sorted_by_f64(&lk), "merge-join left input not sorted");
            debug_assert!(is_sorted_by_f64(&rk), "merge-join right input not sorted");
            let residual: Vec<usize> = edges.iter().copied().filter(|e| e != merge_edge).collect();
            let mut out = Tuples::new([l.rels.clone(), r.rels.clone()].concat());
            let (mut i, mut j) = (0usize, 0usize);
            while i < l.len() && j < r.len() {
                let (a, b) = (f64::from_bits(lk[i]), f64::from_bits(rk[j]));
                if a < b {
                    i += 1;
                } else if a > b {
                    j += 1;
                } else {
                    // Equal-key groups: cross join, then residual edges.
                    let i_end = (i..l.len()).find(|&x| lk[x] != lk[i]).unwrap_or(l.len());
                    let j_end = (j..r.len()).find(|&x| rk[x] != rk[j]).unwrap_or(r.len());
                    for li in i..i_end {
                        for rj in j..j_end {
                            if residual
                                .iter()
                                .all(|&e| ctx.edge_key(&l, li, e) == ctx.edge_key(&r, rj, e))
                            {
                                out.data.extend_from_slice(l.tuple(li));
                                out.data.extend_from_slice(r.tuple(rj));
                            }
                        }
                    }
                    i = i_end;
                    j = j_end;
                }
            }
            Stream::Tuples(out)
        }
        PlanOp::IndexNlj {
            inner,
            seek_edge,
            edges,
        } => {
            let Stream::Tuples(outer) = eval(ctx, &node.children[0]) else {
                panic!("join over groups")
            };
            let inner_col = ctx.edge_col(*seek_edge, *inner);
            let residual: Vec<usize> = edges.iter().copied().filter(|e| e != seek_edge).collect();
            let mut out = Tuples::new([outer.rels.clone(), vec![*inner]].concat());
            let table = ctx.tables[*inner];
            for tup in 0..outer.len() {
                let key = f64::from_bits(ctx.edge_key(&outer, tup, *seek_edge));
                for &(_, irow) in table.index_lookup_eq(inner_col, key) {
                    if !ctx.passes(*inner, irow) {
                        continue;
                    }
                    let residual_ok = residual.iter().all(|&e| {
                        let icol = ctx.edge_col(e, *inner);
                        ctx.edge_key(&outer, tup, e) == table.value(icol, irow).to_bits()
                    });
                    if residual_ok {
                        out.data.extend_from_slice(outer.tuple(tup));
                        out.data.push(irow);
                    }
                }
            }
            Stream::Tuples(out)
        }
        PlanOp::HashAggregate => {
            let Stream::Tuples(input) = eval(ctx, &node.children[0]) else {
                panic!("nested aggregate")
            };
            let mut groups: Vec<u64> = (0..input.len()).map(|t| group_of(ctx, &input, t)).collect();
            groups.sort_unstable();
            groups.dedup();
            Stream::Groups(groups)
        }
        PlanOp::StreamAggregate => {
            let Stream::Tuples(input) = eval(ctx, &node.children[0]) else {
                panic!("nested aggregate")
            };
            // Sort-based grouping: sort group keys, then a linear pass.
            let mut keys: Vec<u64> = (0..input.len()).map(|t| group_of(ctx, &input, t)).collect();
            keys.sort_unstable();
            keys.dedup();
            Stream::Groups(keys)
        }
        PlanOp::Sort { key } => match eval(ctx, &node.children[0]) {
            Stream::Groups(mut g) => {
                g.sort_unstable();
                Stream::Groups(g)
            }
            Stream::Tuples(t) => {
                let (rel, col) = key.unwrap_or((t.rels[0], 0));
                let slot = t.slot(rel);
                let mut order: Vec<usize> = (0..t.len()).collect();
                order.sort_by(|&a, &b| {
                    let va = ctx.tables[rel].value(col, t.row(a, slot));
                    let vb = ctx.tables[rel].value(col, t.row(b, slot));
                    va.partial_cmp(&vb).unwrap().then(a.cmp(&b))
                });
                let mut out = Tuples::new(t.rels.clone());
                out.data.reserve(t.data.len());
                for tup in order {
                    out.data.extend_from_slice(t.tuple(tup));
                }
                Stream::Tuples(out)
            }
        },
    }
}

/// Group key of a tuple: the *template's* first relation's row bucketized
/// into the declared group count. The grouping relation must be canonical
/// (independent of join order), or different plans would disagree on the
/// aggregate's output — plans may only change time, never answers.
fn group_of(ctx: &Ctx<'_>, t: &Tuples, tup: usize) -> u64 {
    let groups = ctx
        .template
        .aggregate
        .as_ref()
        .map(|a| a.groups)
        .unwrap_or(1.0) as u64;
    let rel = 0;
    let row = t.row(tup, t.slot(rel));
    splitmix(row as u64 ^ 0xA66) % groups.max(1)
}

fn is_sorted_by_f64(keys: &[u64]) -> bool {
    keys.windows(2)
        .all(|w| f64::from_bits(w[0]) <= f64::from_bits(w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_catalog::schemas;
    use pqo_optimizer::cost::CostModel;
    use pqo_optimizer::optimizer::optimize;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};
    use pqo_optimizer::template::{QueryTemplate, TemplateBuilder};
    use std::sync::Arc;

    fn fixture() -> (Arc<QueryTemplate>, Database) {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("exec_fixture");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        let t = b.build();
        let db = Database::build(&cat, 1000, 11);
        (t, db)
    }

    fn plan_for(t: &QueryTemplate, target: &[f64]) -> Plan {
        let sv = compute_svector(t, &instance_for_target(t, target));
        optimize(t, &CostModel::default(), &sv).plan
    }

    #[test]
    fn scan_filters_by_selectivity() {
        let (t, db) = fixture();
        let inst = instance_for_target(&t, &[0.5, 1.0]);
        let scan = Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: 0 }));
        let r = execute(&db, &t, &scan, &inst);
        let frac = r.rows as f64 / db.table("orders").rows as f64;
        assert!((frac - 0.5).abs() < 0.08, "selectivity 0.5, got {frac}");
    }

    #[test]
    fn index_seek_equals_seq_scan_output() {
        let (t, db) = fixture();
        let inst = instance_for_target(&t, &[0.3, 1.0]);
        let scan = Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: 0 }));
        let seek = Plan::new(PlanNode::leaf(PlanOp::IndexSeek {
            relation: 0,
            seek_pred: 0,
        }));
        assert_eq!(
            execute(&db, &t, &scan, &inst).rows,
            execute(&db, &t, &seek, &inst).rows
        );
    }

    #[test]
    fn all_join_algorithms_agree_on_cardinality() {
        let (t, db) = fixture();
        let inst = instance_for_target(&t, &[0.4, 0.4]);
        let scan = |r: usize| PlanNode::leaf(PlanOp::SeqScan { relation: r });
        let sorted = |r: usize, c: usize| {
            PlanNode::leaf(PlanOp::SortedIndexScan {
                relation: r,
                column: c,
            })
        };
        let hash = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![scan(0), scan(1)],
        ));
        let nlj = Plan::new(PlanNode::internal(
            PlanOp::IndexNlj {
                inner: 1,
                seek_edge: 0,
                edges: vec![0],
            },
            vec![scan(0)],
        ));
        // Merge join over sorted index scans on the edge columns:
        // orders_pk is column 0 of orders; orders_fk is column 1 of lineitem.
        let merge = Plan::new(PlanNode::internal(
            PlanOp::MergeJoin {
                merge_edge: 0,
                edges: vec![0],
            },
            vec![sorted(0, 0), sorted(1, 1)],
        ));
        let a = execute(&db, &t, &hash, &inst).rows;
        let b = execute(&db, &t, &nlj, &inst).rows;
        let c = execute(&db, &t, &merge, &inst).rows;
        assert_eq!(a, b, "hash vs index-NL join");
        assert_eq!(a, c, "hash vs merge join");
        assert!(a > 0, "the join must produce rows at 40% selectivities");
    }

    #[test]
    fn sort_enforcer_feeds_merge_join() {
        let (t, db) = fixture();
        let inst = instance_for_target(&t, &[0.4, 0.4]);
        let merge_with_sorts = Plan::new(PlanNode::internal(
            PlanOp::MergeJoin {
                merge_edge: 0,
                edges: vec![0],
            },
            vec![
                PlanNode::internal(
                    PlanOp::Sort { key: Some((0, 0)) },
                    vec![PlanNode::leaf(PlanOp::SeqScan { relation: 0 })],
                ),
                PlanNode::internal(
                    PlanOp::Sort { key: Some((1, 1)) },
                    vec![PlanNode::leaf(PlanOp::SeqScan { relation: 1 })],
                ),
            ],
        ));
        let hash = Plan::new(PlanNode::internal(
            PlanOp::HashJoin {
                build_left: true,
                edges: vec![0],
            },
            vec![
                PlanNode::leaf(PlanOp::SeqScan { relation: 0 }),
                PlanNode::leaf(PlanOp::SeqScan { relation: 1 }),
            ],
        ));
        assert_eq!(
            execute(&db, &t, &merge_with_sorts, &inst).rows,
            execute(&db, &t, &hash, &inst).rows
        );
    }

    #[test]
    fn optimizer_plans_from_different_regions_agree_on_answers() {
        // The headline property: whatever plan the optimizer picks, the
        // answer cardinality at a given instance is identical.
        let (t, db) = fixture();
        let plans: Vec<Plan> = [[0.01, 0.01], [0.9, 0.9], [0.01, 0.9], [0.9, 0.01]]
            .iter()
            .map(|p| plan_for(&t, p))
            .collect();
        for target in [[0.05, 0.2], [0.5, 0.5]] {
            let inst = instance_for_target(&t, &target);
            let counts: Vec<usize> = plans
                .iter()
                .map(|p| execute(&db, &t, p, &inst).rows)
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "plans disagree at {target:?}: {counts:?}"
            );
        }
    }

    #[test]
    fn aggregation_caps_output_at_group_count() {
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("exec_agg");
        let o = b.relation(cat.expect_table("orders"), "o");
        b.param(o, "o_totalprice", RangeOp::Le);
        b.aggregate(16.0);
        let t = b.build();
        let db = Database::build(&cat, 1000, 3);
        let inst = instance_for_target(&t, &[0.9]);
        let plan = Plan::new(PlanNode::internal(
            PlanOp::HashAggregate,
            vec![PlanNode::leaf(PlanOp::SeqScan { relation: 0 })],
        ));
        let r = execute(&db, &t, &plan, &inst);
        assert!(r.rows <= 16);
        assert!(r.rows > 1);
    }

    #[test]
    fn empty_result_at_minimal_selectivity() {
        let (t, db) = fixture();
        let inst = QueryInstance::new(vec![-1.0, -1.0]); // below every value
        let plan = plan_for(&t, &[0.01, 0.01]);
        assert_eq!(execute(&db, &t, &plan, &inst).rows, 0);
    }

    mod properties {
        use super::*;
        use pqo_rand::rngs::StdRng;
        use pqo_rand::{Rng, SeedableRng};
        use std::sync::OnceLock;

        fn shared() -> &'static (Arc<QueryTemplate>, Database) {
            static S: OnceLock<(Arc<QueryTemplate>, Database)> = OnceLock::new();
            S.get_or_init(fixture)
        }

        #[test]
        fn join_algorithms_agree_everywhere_randomized() {
            let (t, db) = shared();
            let mut rng = StdRng::seed_from_u64(0xe4ec_0001);
            for _ in 0..32 {
                let s1 = rng.gen_range(0.01..1.0);
                let s2 = rng.gen_range(0.01..1.0);
                let inst = instance_for_target(t, &[s1, s2]);
                let scan = |r: usize| PlanNode::leaf(PlanOp::SeqScan { relation: r });
                let hash = Plan::new(PlanNode::internal(
                    PlanOp::HashJoin {
                        build_left: true,
                        edges: vec![0],
                    },
                    vec![scan(0), scan(1)],
                ));
                let nlj = Plan::new(PlanNode::internal(
                    PlanOp::IndexNlj {
                        inner: 1,
                        seek_edge: 0,
                        edges: vec![0],
                    },
                    vec![scan(0)],
                ));
                let merge = Plan::new(PlanNode::internal(
                    PlanOp::MergeJoin {
                        merge_edge: 0,
                        edges: vec![0],
                    },
                    vec![
                        PlanNode::leaf(PlanOp::SortedIndexScan {
                            relation: 0,
                            column: 0,
                        }),
                        PlanNode::leaf(PlanOp::SortedIndexScan {
                            relation: 1,
                            column: 1,
                        }),
                    ],
                ));
                let a = execute(db, t, &hash, &inst).rows;
                let b = execute(db, t, &nlj, &inst).rows;
                let c = execute(db, t, &merge, &inst).rows;
                assert_eq!(a, b);
                assert_eq!(a, c);
            }
        }

        #[test]
        fn scan_fraction_tracks_target_randomized() {
            let (t, db) = shared();
            let mut rng = StdRng::seed_from_u64(0xe4ec_0002);
            for _ in 0..32 {
                let target = rng.gen_range(0.05..0.95);
                let inst = instance_for_target(t, &[target, 1.0]);
                let scan = Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: 0 }));
                let frac =
                    execute(db, t, &scan, &inst).rows as f64 / db.table("orders").rows as f64;
                assert!((frac - target).abs() < 0.1, "target {target} frac {frac}");
            }
        }

        #[test]
        fn index_access_paths_match_scan_randomized() {
            let (t, db) = shared();
            let mut rng = StdRng::seed_from_u64(0xe4ec_0003);
            for _ in 0..32 {
                let target = rng.gen_range(0.02..0.98);
                let inst = instance_for_target(t, &[target, 1.0]);
                let scan = Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: 0 }));
                let seek = Plan::new(PlanNode::leaf(PlanOp::IndexSeek {
                    relation: 0,
                    seek_pred: 0,
                }));
                // orders_pk (col 0) is indexed: ordered full scan.
                let sorted = Plan::new(PlanNode::leaf(PlanOp::SortedIndexScan {
                    relation: 0,
                    column: 0,
                }));
                let a = execute(db, t, &scan, &inst).rows;
                assert_eq!(execute(db, t, &seek, &inst).rows, a);
                assert_eq!(execute(db, t, &sorted, &inst).rows, a);
            }
        }
    }
}
