//! Scaled synthetic data with PK/FK consistency.
//!
//! Each catalog table is materialized at `full_rows / divisor` rows (the
//! catalogs describe multi-gigabyte databases; execution experiments need
//! laptop-scale data). Consistency rules:
//!
//! * a `<table>_pk` column holds `row_index · stride` where
//!   `stride = full_rows / scaled_rows` — unique, uniform over the full
//!   declared domain, exactly representable;
//! * a `<target>_fk` column samples its declared distribution over the
//!   target's full domain and snaps to the target's PK grid, so every FK
//!   value matches exactly one PK;
//! * every other column samples its declared distribution — the same
//!   distributions the optimizer's histograms were built from, so
//!   estimated and actual selectivities of parameterized predicates agree
//!   (up to sampling noise).
//!
//! Indexed columns get a sorted `(value, row)` index supporting range
//! prefixes/suffixes (IndexSeek), full ordered scans (SortedIndexScan) and
//! exact-match lookups (index nested-loops joins).

use std::collections::BTreeMap;
use std::sync::Arc;

use pqo_catalog::table::TableDef;
use pqo_catalog::Catalog;
use pqo_rand::rngs::StdRng;
use pqo_rand::SeedableRng;

/// Default downscale factor.
pub const DEFAULT_DIVISOR: u64 = 1000;

/// Minimum scaled row count per table.
pub const MIN_ROWS: usize = 20;

/// Maximum scaled row count per table (keeps 10⁸-row fact tables tractable).
pub const MAX_ROWS: usize = 200_000;

/// One materialized table.
#[derive(Debug)]
pub struct ScaledTable {
    /// Table name.
    pub name: String,
    /// Declared (full-scale) row count.
    pub full_rows: u64,
    /// Materialized row count.
    pub rows: usize,
    /// PK spacing: `full_rows / rows`.
    pub stride: f64,
    /// Column-major data: `columns[c][row]`.
    pub columns: Vec<Vec<f64>>,
    /// Per-column sorted `(value, row)` index; `None` for unindexed columns.
    pub indexes: Vec<Option<Vec<(f64, u32)>>>,
}

impl ScaledTable {
    fn build(
        def: &Arc<TableDef>,
        divisor: u64,
        seed: u64,
        pk_grid: &BTreeMap<String, (f64, usize)>,
    ) -> Self {
        let rows = ((def.row_count / divisor.max(1)) as usize)
            .clamp(MIN_ROWS, MAX_ROWS)
            .min((def.row_count as usize).max(1));
        let stride = def.row_count as f64 / rows as f64;
        let mut columns = Vec::with_capacity(def.columns.len());
        for (ci, col) in def.columns.iter().enumerate() {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (ci as u64).wrapping_mul(0x9E3779B97F4A7C15));
            let data: Vec<f64> = if col.name == format!("{}_pk", def.name) {
                (0..rows).map(|r| r as f64 * stride).collect()
            } else if let Some(target) = col.name.strip_suffix("_fk") {
                let &(t_stride, t_rows) = pk_grid
                    .get(target)
                    .unwrap_or_else(|| panic!("fk {} references unmaterialized table", col.name));
                (0..rows)
                    .map(|_| {
                        let v = col.distribution.sample(&mut rng);
                        let idx = ((v / t_stride).floor() as usize).min(t_rows - 1);
                        idx as f64 * t_stride
                    })
                    .collect()
            } else {
                (0..rows)
                    .map(|_| col.distribution.sample(&mut rng))
                    .collect()
            };
            columns.push(data);
        }
        let indexes = def
            .columns
            .iter()
            .enumerate()
            .map(|(ci, col)| {
                col.indexed.then(|| {
                    let mut ix: Vec<(f64, u32)> = columns[ci]
                        .iter()
                        .enumerate()
                        .map(|(r, &v)| (v, r as u32))
                        .collect();
                    ix.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
                    ix
                })
            })
            .collect();
        ScaledTable {
            name: def.name.clone(),
            full_rows: def.row_count,
            rows,
            stride,
            columns,
            indexes,
        }
    }

    /// Value of column `c` at row `r`.
    #[inline]
    pub fn value(&self, c: usize, r: u32) -> f64 {
        self.columns[c][r as usize]
    }

    /// Rows with `columns[c] <= v` via the index (prefix of the sorted
    /// index). Panics if the column is unindexed.
    pub fn index_range_le(&self, c: usize, v: f64) -> &[(f64, u32)] {
        let ix = self.indexes[c].as_ref().expect("index required");
        let end = ix.partition_point(|&(x, _)| x <= v);
        &ix[..end]
    }

    /// Rows with `columns[c] >= v` via the index (suffix).
    pub fn index_range_ge(&self, c: usize, v: f64) -> &[(f64, u32)] {
        let ix = self.indexes[c].as_ref().expect("index required");
        let start = ix.partition_point(|&(x, _)| x < v);
        &ix[start..]
    }

    /// Rows with `columns[c] == v` exactly via the index.
    pub fn index_lookup_eq(&self, c: usize, v: f64) -> &[(f64, u32)] {
        let ix = self.indexes[c].as_ref().expect("index required");
        let start = ix.partition_point(|&(x, _)| x < v);
        let end = ix.partition_point(|&(x, _)| x <= v);
        &ix[start..end]
    }

    /// Full ordered scan of an indexed column.
    pub fn index_full(&self, c: usize) -> &[(f64, u32)] {
        self.indexes[c].as_ref().expect("index required")
    }
}

/// A materialized database: one scaled table per catalog table.
#[derive(Debug)]
pub struct Database {
    tables: BTreeMap<String, ScaledTable>,
    divisor: u64,
}

impl Database {
    /// Materialize `catalog` at `1/divisor` scale, deterministically per
    /// `seed`.
    pub fn build(catalog: &Catalog, divisor: u64, seed: u64) -> Self {
        // First pass: every table's PK grid, so FK columns can snap.
        let pk_grid: BTreeMap<String, (f64, usize)> = catalog
            .tables()
            .map(|t| {
                let rows = ((t.row_count / divisor.max(1)) as usize)
                    .clamp(MIN_ROWS, MAX_ROWS)
                    .min((t.row_count as usize).max(1));
                (t.name.clone(), (t.row_count as f64 / rows as f64, rows))
            })
            .collect();
        let tables = catalog
            .tables()
            .map(|t| {
                let tseed = seed ^ fnv(&t.name);
                (
                    t.name.clone(),
                    ScaledTable::build(t, divisor, tseed, &pk_grid),
                )
            })
            .collect();
        Database { tables, divisor }
    }

    /// Look up a materialized table.
    pub fn table(&self, name: &str) -> &ScaledTable {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("table `{name}` not materialized"))
    }

    /// The downscale factor the database was built with.
    pub fn divisor(&self) -> u64 {
        self.divisor
    }

    /// Total materialized rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.rows).sum()
    }
}

fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_catalog::schemas;

    fn db() -> Database {
        Database::build(&schemas::tpch_skew(), 1000, 7)
    }

    #[test]
    fn scales_row_counts() {
        let db = db();
        assert_eq!(db.table("lineitem").rows, 6000);
        assert_eq!(db.table("orders").rows, 1500);
        assert_eq!(db.table("region").rows, 5); // tiny table keeps its 5 rows (never upscaled past row_count)
        assert!(db.total_rows() > 8000);
    }

    #[test]
    fn pk_columns_are_unique_and_gridded() {
        let db = db();
        let t = db.table("orders");
        let pk_col = 0; // orders_pk is declared first
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..t.rows {
            let v = t.columns[pk_col][r];
            assert_eq!(v, r as f64 * t.stride);
            assert!(seen.insert(v.to_bits()));
        }
    }

    #[test]
    fn fk_values_hit_existing_pks() {
        let db = db();
        let li = db.table("lineitem");
        let orders = db.table("orders");
        // lineitem.orders_fk is column index 1 (after lineitem_pk).
        let pks: std::collections::BTreeSet<u64> =
            orders.columns[0].iter().map(|v| v.to_bits()).collect();
        for r in 0..li.rows {
            let fk = li.columns[1][r];
            assert!(pks.contains(&fk.to_bits()), "dangling fk {fk} at row {r}");
        }
    }

    #[test]
    fn index_ranges_agree_with_scan() {
        let db = db();
        let li = db.table("lineitem");
        // l_shipdate is indexed; find its column position.
        let cat = schemas::tpch_skew();
        let c = cat
            .expect_table("lineitem")
            .column_index("l_shipdate")
            .unwrap();
        let v = 1200.0;
        let via_index = li.index_range_le(c, v).len();
        let via_scan = li.columns[c].iter().filter(|&&x| x <= v).count();
        assert_eq!(via_index, via_scan);
        let ge_index = li.index_range_ge(c, v).len();
        let ge_scan = li.columns[c].iter().filter(|&&x| x >= v).count();
        assert_eq!(ge_index, ge_scan);
    }

    #[test]
    fn index_eq_lookup_finds_all_matches() {
        let db = db();
        let li = db.table("lineitem");
        let orders_fk_col = 1;
        assert!(li.indexes[orders_fk_col].is_some(), "orders_fk is indexed");
        let probe = li.columns[orders_fk_col][17];
        let via_index = li.index_lookup_eq(orders_fk_col, probe).len();
        let via_scan = li.columns[orders_fk_col]
            .iter()
            .filter(|&&x| x == probe)
            .count();
        assert_eq!(via_index, via_scan);
        assert!(via_index >= 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Database::build(&schemas::tpch_skew(), 1000, 7);
        let b = Database::build(&schemas::tpch_skew(), 1000, 7);
        assert_eq!(
            a.table("lineitem").columns[3],
            b.table("lineitem").columns[3]
        );
        let c = Database::build(&schemas::tpch_skew(), 1000, 8);
        assert_ne!(
            a.table("lineitem").columns[3],
            c.table("lineitem").columns[3]
        );
    }

    #[test]
    fn selectivities_roughly_match_histograms() {
        let db = db();
        let cat = schemas::tpch_skew();
        let li_def = cat.expect_table("lineitem");
        let c = li_def.column_index("l_extendedprice").unwrap();
        let hist = &li_def.columns[c].stats.histogram;
        let li = db.table("lineitem");
        for target in [0.1, 0.4, 0.8] {
            let v = hist.quantile(target);
            let actual = li.columns[c].iter().filter(|&&x| x <= v).count() as f64 / li.rows as f64;
            assert!(
                (actual - target).abs() < 0.05,
                "target {target} actual {actual} for value {v}"
            );
        }
    }
}
