//! Table and column definitions.

use crate::distribution::Distribution;
use crate::stats::ColumnStats;

/// Average width in bytes assumed per row when deriving page counts.
pub const DEFAULT_ROW_BYTES: u64 = 120;

/// Bytes per page, matching a classical 8 KiB database page.
pub const PAGE_BYTES: u64 = 8192;

/// A column of a synthetic table.
#[derive(Debug, Clone)]
pub struct ColumnDef {
    /// Column name, unique within its table.
    pub name: String,
    /// Value distribution the column is drawn from.
    pub distribution: Distribution,
    /// Whether a secondary B-tree index exists on this column (enables
    /// IndexSeek / index nested-loops plans).
    pub indexed: bool,
    /// Statistics built from the distribution.
    pub stats: ColumnStats,
}

/// A synthetic base table.
#[derive(Debug, Clone)]
pub struct TableDef {
    /// Table name, unique within its catalog.
    pub name: String,
    /// Cardinality in rows.
    pub row_count: u64,
    /// Number of 8 KiB pages the heap occupies.
    pub page_count: u64,
    /// Columns in definition order.
    pub columns: Vec<ColumnDef>,
}

impl TableDef {
    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// Builder for [`TableDef`] that derives page counts and per-column
/// statistics deterministically from the table/column names.
pub struct TableBuilder {
    name: String,
    row_count: u64,
    row_bytes: u64,
    columns: Vec<ColumnDef>,
}

impl TableBuilder {
    /// Start a table with the given name and row count.
    pub fn new(name: &str, row_count: u64) -> Self {
        TableBuilder {
            name: name.to_string(),
            row_count,
            row_bytes: DEFAULT_ROW_BYTES,
            columns: Vec::new(),
        }
    }

    /// Override the assumed row width in bytes.
    pub fn row_bytes(mut self, bytes: u64) -> Self {
        self.row_bytes = bytes;
        self
    }

    /// Add a column. `ndv` caps at the row count.
    pub fn column(
        mut self,
        name: &str,
        distribution: Distribution,
        ndv: u64,
        indexed: bool,
    ) -> Self {
        let seed = seed_for(&self.name, name);
        let stats = ColumnStats::build(&distribution, ndv.min(self.row_count.max(1)), seed);
        self.columns.push(ColumnDef {
            name: name.to_string(),
            distribution,
            indexed,
            stats,
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> TableDef {
        let page_count = (self.row_count * self.row_bytes)
            .div_ceil(PAGE_BYTES)
            .max(1);
        TableDef {
            name: self.name,
            row_count: self.row_count,
            page_count,
            columns: self.columns,
        }
    }
}

/// Stable seed derived from table and column names (FNV-1a).
fn seed_for(table: &str, column: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in table.bytes().chain([b'.']).chain(column.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TableDef {
        TableBuilder::new("t", 100_000)
            .column(
                "a",
                Distribution::Uniform { min: 0.0, max: 1.0 },
                1000,
                true,
            )
            .column(
                "b",
                Distribution::Zipf {
                    min: 0.0,
                    max: 50.0,
                    exponent: 2.0,
                },
                50,
                false,
            )
            .build()
    }

    #[test]
    fn page_count_derivation() {
        let t = sample_table();
        assert_eq!(
            t.page_count,
            (100_000u64 * DEFAULT_ROW_BYTES).div_ceil(PAGE_BYTES)
        );
    }

    #[test]
    fn column_lookup() {
        let t = sample_table();
        assert!(t.column("a").unwrap().indexed);
        assert!(!t.column("b").unwrap().indexed);
        assert!(t.column("zz").is_none());
        assert_eq!(t.column_index("b"), Some(1));
    }

    #[test]
    fn seeds_differ_per_column() {
        assert_ne!(seed_for("t", "a"), seed_for("t", "b"));
        assert_ne!(seed_for("t1", "a"), seed_for("t2", "a"));
        // and the separator prevents "ab"."c" colliding with "a"."bc"
        assert_ne!(seed_for("ab", "c"), seed_for("a", "bc"));
    }

    #[test]
    fn ndv_caps_at_row_count() {
        let t = TableBuilder::new("tiny", 10)
            .column(
                "x",
                Distribution::Uniform { min: 0.0, max: 1.0 },
                99999,
                false,
            )
            .build();
        assert_eq!(t.column("x").unwrap().stats.ndv, 10);
    }

    #[test]
    fn page_count_is_at_least_one() {
        let t = TableBuilder::new("one", 1).build();
        assert_eq!(t.page_count, 1);
    }
}
