//! Per-column statistics.

use crate::distribution::Distribution;
use crate::histogram::Histogram;

/// Number of samples drawn per column when building statistics. Large enough
/// that histogram quantization error is well below the selectivity-region
/// widths the experiments use.
pub const STATS_SAMPLE_SIZE: usize = 40_000;

/// Default histogram resolution.
pub const STATS_BUCKETS: usize = 200;

/// Statistics for one column: an equi-depth histogram plus the number of
/// distinct values (used for join selectivity estimation).
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Equi-depth histogram over the column values.
    pub histogram: Histogram,
    /// Estimated number of distinct values.
    pub ndv: u64,
}

impl ColumnStats {
    /// Build statistics for a column by sampling its distribution. `seed`
    /// makes the statistics deterministic per column.
    pub fn build(dist: &Distribution, ndv: u64, seed: u64) -> Self {
        let samples = dist.sample_n(STATS_SAMPLE_SIZE, seed);
        ColumnStats {
            histogram: Histogram::from_samples(samples, STATS_BUCKETS),
            ndv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_full_resolution_histogram() {
        let d = Distribution::Uniform { min: 0.0, max: 1.0 };
        let s = ColumnStats::build(&d, 1000, 5);
        assert_eq!(s.histogram.buckets(), STATS_BUCKETS);
        assert_eq!(s.ndv, 1000);
    }

    #[test]
    fn build_is_deterministic() {
        let d = Distribution::Zipf {
            min: 0.0,
            max: 10.0,
            exponent: 2.0,
        };
        let a = ColumnStats::build(&d, 10, 99);
        let b = ColumnStats::build(&d, 10, 99);
        assert_eq!(a.histogram.quantile(0.37), b.histogram.quantile(0.37));
    }
}
