//! Equi-depth histograms.
//!
//! This is the statistics structure behind the engine's selectivity
//! estimation. Each bucket holds the same number of underlying samples, so
//! bucket boundaries are quantiles of the column distribution. Selectivity of
//! `col <= v` is estimated by locating `v`'s bucket and interpolating
//! linearly inside it; the inverse operation ([`Histogram::quantile`]) maps a
//! target selectivity back to a predicate value, which the workload generator
//! uses to place instances at chosen points of the selectivity space.

/// Minimum selectivity ever reported. Real optimizers clamp estimates away
/// from zero; the paper's multiplicative machinery (ratios `αi`, factors `G`
/// and `L`) also requires strictly positive selectivities.
pub const MIN_SELECTIVITY: f64 = 1e-6;

/// An equi-depth histogram over a numeric column.
///
/// ```
/// use pqo_catalog::histogram::Histogram;
///
/// // 10k uniform samples over [0, 100).
/// let samples: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64).collect();
/// let h = Histogram::from_samples(samples, 50);
///
/// // Selectivity of `col <= 25` is about a quarter...
/// assert!((h.selectivity_le(25.0) - 0.25).abs() < 0.03);
/// // ...and `quantile` inverts it.
/// assert!((h.selectivity_le(h.quantile(0.7)) - 0.7).abs() < 0.03);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `bounds[i]..bounds[i+1]` is bucket `i`; `bounds` has `buckets + 1`
    /// entries and is non-decreasing.
    bounds: Vec<f64>,
}

impl Histogram {
    /// Build an equi-depth histogram with `buckets` buckets from `samples`.
    ///
    /// # Panics
    /// Panics if `samples` is empty, `buckets == 0`, or any sample is NaN.
    pub fn from_samples(mut samples: Vec<f64>, buckets: usize) -> Self {
        assert!(!samples.is_empty(), "histogram needs at least one sample");
        assert!(buckets > 0, "histogram needs at least one bucket");
        samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in histogram input"));
        let n = samples.len();
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            // Quantile of rank i/buckets, with both endpoints included.
            let idx = ((i * (n - 1)) as f64 / buckets as f64).round() as usize;
            bounds.push(samples[idx.min(n - 1)]);
        }
        Histogram { bounds }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Smallest value covered.
    pub fn min(&self) -> f64 {
        self.bounds[0]
    }

    /// Largest value covered.
    pub fn max(&self) -> f64 {
        *self.bounds.last().unwrap()
    }

    /// Estimated selectivity of `col <= v`, clamped to
    /// `[MIN_SELECTIVITY, 1.0]`.
    pub fn selectivity_le(&self, v: f64) -> f64 {
        let b = self.buckets() as f64;
        if v <= self.min() {
            return MIN_SELECTIVITY;
        }
        if v >= self.max() {
            return 1.0;
        }
        // Find the bucket containing v: bounds is sorted.
        let i = match self
            .bounds
            .binary_search_by(|probe| probe.partial_cmp(&v).unwrap())
        {
            Ok(i) => i,
            Err(i) => i - 1, // v lies in bucket (i-1): bounds[i-1] < v < bounds[i]
        };
        let i = i.min(self.buckets() - 1);
        let lo = self.bounds[i];
        let hi = self.bounds[i + 1];
        let frac = if hi > lo { (v - lo) / (hi - lo) } else { 1.0 };
        ((i as f64 + frac) / b).clamp(MIN_SELECTIVITY, 1.0)
    }

    /// Estimated selectivity of `col >= v`, clamped to
    /// `[MIN_SELECTIVITY, 1.0]`.
    pub fn selectivity_ge(&self, v: f64) -> f64 {
        (1.0 - self.selectivity_le(v)).clamp(MIN_SELECTIVITY, 1.0)
    }

    /// Value `v` such that `selectivity_le(v) ≈ p` — the inverse of
    /// [`Histogram::selectivity_le`]. `p` is clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let b = self.buckets() as f64;
        let pos = p * b;
        let i = (pos.floor() as usize).min(self.buckets() - 1);
        let frac = pos - i as f64;
        let lo = self.bounds[i];
        let hi = self.bounds[i + 1];
        lo + frac * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use pqo_rand::rngs::StdRng;
    use pqo_rand::{Rng, SeedableRng};

    fn uniform_hist() -> Histogram {
        let d = Distribution::Uniform {
            min: 0.0,
            max: 100.0,
        };
        Histogram::from_samples(d.sample_n(50_000, 7), 100)
    }

    #[test]
    fn selectivity_le_tracks_uniform_cdf() {
        let h = uniform_hist();
        for v in [10.0, 25.0, 50.0, 75.0, 90.0] {
            let sel = h.selectivity_le(v);
            assert!((sel - v / 100.0).abs() < 0.02, "v={v} sel={sel}");
        }
    }

    #[test]
    fn selectivity_ge_is_complement() {
        let h = uniform_hist();
        let le = h.selectivity_le(30.0);
        let ge = h.selectivity_ge(30.0);
        assert!((le + ge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extremes_clamp() {
        let h = uniform_hist();
        assert_eq!(h.selectivity_le(-5.0), MIN_SELECTIVITY);
        assert_eq!(h.selectivity_le(1000.0), 1.0);
        assert_eq!(h.selectivity_ge(1000.0), MIN_SELECTIVITY);
    }

    #[test]
    fn quantile_inverts_selectivity() {
        let h = uniform_hist();
        for p in [0.01, 0.1, 0.3, 0.5, 0.9, 0.99] {
            let v = h.quantile(p);
            let sel = h.selectivity_le(v);
            assert!((sel - p).abs() < 0.015, "p={p} v={v} sel={sel}");
        }
    }

    #[test]
    fn works_on_skewed_data() {
        let d = Distribution::Zipf {
            min: 0.0,
            max: 1000.0,
            exponent: 4.0,
        };
        let h = Histogram::from_samples(d.sample_n(50_000, 9), 100);
        // Equi-depth: median of heavily skewed data is far below the midpoint.
        assert!(h.quantile(0.5) < 200.0);
        // Still invertible on skewed data.
        let v = h.quantile(0.25);
        assert!((h.selectivity_le(v) - 0.25).abs() < 0.02);
    }

    #[test]
    fn single_bucket_histogram() {
        let h = Histogram::from_samples(vec![1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(h.buckets(), 1);
        assert!(h.selectivity_le(2.5) > 0.0);
        assert!(h.selectivity_le(2.5) < 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = Histogram::from_samples(vec![], 4);
    }

    #[test]
    fn constant_column() {
        let h = Histogram::from_samples(vec![5.0; 100], 10);
        assert_eq!(h.selectivity_le(5.0), MIN_SELECTIVITY); // v <= min clamps
        assert_eq!(h.selectivity_le(5.1), 1.0);
    }

    fn random_vals(rng: &mut StdRng, lo: f64, hi: f64, min_n: usize, max_n: usize) -> Vec<f64> {
        let n = rng.gen_range(min_n..max_n);
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn selectivity_le_is_monotone_randomized() {
        let mut rng = StdRng::seed_from_u64(0x4157_0001);
        for _ in 0..256 {
            let vals = random_vals(&mut rng, 0.0, 1000.0, 10, 500);
            let a = rng.gen_range(0.0..1000.0);
            let b = rng.gen_range(0.0..1000.0);
            let h = Histogram::from_samples(vals, 20);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            assert!(h.selectivity_le(lo) <= h.selectivity_le(hi) + 1e-12);
        }
    }

    #[test]
    fn quantile_is_monotone_randomized() {
        let mut rng = StdRng::seed_from_u64(0x4157_0002);
        for _ in 0..256 {
            let vals = random_vals(&mut rng, -50.0, 50.0, 10, 500);
            let p = rng.gen_range(0.0..1.0);
            let q = rng.gen_range(0.0..1.0);
            let h = Histogram::from_samples(vals, 16);
            let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
            assert!(h.quantile(lo) <= h.quantile(hi) + 1e-9);
        }
    }

    #[test]
    fn selectivity_always_in_unit_interval_randomized() {
        let mut rng = StdRng::seed_from_u64(0x4157_0003);
        for _ in 0..256 {
            let vals = random_vals(&mut rng, 0.0, 10.0, 2, 200);
            let v = rng.gen_range(-5.0..15.0);
            let h = Histogram::from_samples(vals, 8);
            let s = h.selectivity_le(v);
            assert!((MIN_SELECTIVITY..=1.0).contains(&s));
        }
    }

    #[test]
    fn roundtrip_quantile_selectivity_randomized() {
        // On a smooth distribution the roundtrip error is bounded by one
        // bucket width.
        let d = Distribution::Uniform { min: 0.0, max: 1.0 };
        let h = Histogram::from_samples(d.sample_n(20_000, 11), 50);
        let mut rng = StdRng::seed_from_u64(0x4157_0004);
        for _ in 0..256 {
            let p = rng.gen_range(0.05..0.95);
            let v = h.quantile(p);
            assert!((h.selectivity_le(v) - p).abs() < 0.03, "p={p} v={v}");
        }
    }
}
