//! Synthetic catalogs and column statistics for the PQO reproduction.
//!
//! The SIGMOD 2017 paper evaluates SCR on TPC-H (skewed), TPC-DS and two
//! real-world databases. None of those are available here, so this crate
//! provides the closest synthetic equivalent: table definitions with row
//! counts matching the benchmark scale factors, numeric columns drawn from
//! seeded distributions (uniform, Zipf, normal, exponential), and equi-depth
//! histograms over those columns.
//!
//! Two operations matter downstream:
//!
//! * [`Histogram::selectivity`] — given a one-sided range predicate value,
//!   estimate the fraction of rows that satisfy it. This backs the engine's
//!   `sVector` API (Section 4.2 of the paper).
//! * [`Histogram::quantile`] — the inverse: given a target selectivity,
//!   produce the predicate value that achieves it. The workload generator
//!   uses this to place query instances at controlled points of the
//!   selectivity space (Section 7.1).

pub mod catalog;
pub mod distribution;
pub mod histogram;
pub mod schemas;
pub mod stats;
pub mod table;

pub use catalog::Catalog;
pub use distribution::Distribution;
pub use histogram::Histogram;
pub use stats::ColumnStats;
pub use table::{ColumnDef, TableDef};
