//! The catalog: a named collection of tables.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::table::TableDef;

/// A database catalog. Tables are stored behind `Arc` so query templates can
/// reference them cheaply.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    name: String,
    tables: BTreeMap<String, Arc<TableDef>>,
}

impl Catalog {
    /// Create an empty catalog with a display name (e.g. `"tpch_skew"`).
    pub fn new(name: &str) -> Self {
        Catalog {
            name: name.to_string(),
            tables: BTreeMap::new(),
        }
    }

    /// Catalog display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Register a table.
    ///
    /// # Panics
    /// Panics if a table with the same name is already registered.
    pub fn add_table(&mut self, table: TableDef) {
        let prev = self.tables.insert(table.name.clone(), Arc::new(table));
        assert!(prev.is_none(), "duplicate table registered in catalog");
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Option<&Arc<TableDef>> {
        self.tables.get(name)
    }

    /// Table lookup that panics with a useful message on a miss.
    pub fn expect_table(&self, name: &str) -> &Arc<TableDef> {
        self.table(name)
            .unwrap_or_else(|| panic!("table `{name}` not found in catalog `{}`", self.name))
    }

    /// All tables, sorted by name.
    pub fn tables(&self) -> impl Iterator<Item = &Arc<TableDef>> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::Distribution;
    use crate::table::TableBuilder;

    fn tiny() -> TableDef {
        TableBuilder::new("tiny", 10)
            .column("x", Distribution::Uniform { min: 0.0, max: 1.0 }, 10, false)
            .build()
    }

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new("test");
        c.add_table(tiny());
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.table("tiny").unwrap().row_count, 10);
        assert!(c.table("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_panics() {
        let mut c = Catalog::new("test");
        c.add_table(tiny());
        c.add_table(tiny());
    }

    #[test]
    #[should_panic(expected = "not found in catalog")]
    fn expect_table_panics_on_missing() {
        let c = Catalog::new("test");
        c.expect_table("nope");
    }

    #[test]
    fn tables_iterates_sorted() {
        let mut c = Catalog::new("test");
        for n in ["zeta", "alpha", "mid"] {
            c.add_table(TableBuilder::new(n, 5).build());
        }
        let names: Vec<_> = c.tables().map(|t| t.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
