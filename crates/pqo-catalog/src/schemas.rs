//! The four synthetic benchmark databases.
//!
//! These stand in for the paper's TPC-H (skewed data generator), TPC-DS and
//! the two real-world databases RD1 (98 GB) and RD2 (780 GB). Row counts
//! follow the original schemas/scales; column value distributions mix
//! uniform, Zipf, normal and exponential so that selectivity varies sharply
//! across the parameter domain (the skew is what makes PQO interesting).
//!
//! Every table gets a primary-key column `<table>_pk` (uniform, indexed) and
//! zero or more foreign keys `<target>_fk`; the remaining columns are
//! numeric attributes usable as parameterized one-sided range predicates.

use crate::catalog::Catalog;
use crate::distribution::Distribution;
use crate::table::TableBuilder;

fn uni(max: f64) -> Distribution {
    Distribution::Uniform { min: 0.0, max }
}

fn zipf(max: f64, e: f64) -> Distribution {
    Distribution::Zipf {
        min: 0.0,
        max,
        exponent: e,
    }
}

fn norm(max: f64) -> Distribution {
    Distribution::Normal {
        min: 0.0,
        max,
        mean: max / 2.0,
        stddev: max / 6.0,
    }
}

fn exp(max: f64, rate: f64) -> Distribution {
    Distribution::Exponential {
        min: 0.0,
        max,
        rate,
    }
}

/// Add `n` generic measure columns `m1..mn` with rotating distributions.
/// Every third measure is indexed so both index and scan access paths exist.
fn with_measures(mut b: TableBuilder, n: usize, ndv: u64) -> TableBuilder {
    for i in 1..=n {
        let dist = match i % 4 {
            0 => uni(1000.0),
            1 => zipf(1000.0, 2.0 + (i % 3) as f64),
            2 => norm(1000.0),
            _ => exp(1000.0, 4.0 + (i % 5) as f64),
        };
        b = b.column(&format!("m{i}"), dist, ndv, i % 3 == 1);
    }
    b
}

fn keyed(name: &str, rows: u64) -> TableBuilder {
    TableBuilder::new(name, rows).column(&format!("{name}_pk"), uni(rows as f64), rows, true)
}

/// TPC-H at scale factor 1 with skewed value distributions (the paper uses
/// the skewed dbgen of reference [23]).
pub fn tpch_skew() -> Catalog {
    let mut c = Catalog::new("tpch_skew");
    c.add_table(keyed("region", 5).build());
    c.add_table(
        keyed("nation", 25)
            .column("region_fk", uni(5.0), 5, false)
            .build(),
    );
    c.add_table(
        keyed("supplier", 10_000)
            .column("nation_fk", uni(25.0), 25, false)
            .column("s_acctbal", norm(11_000.0), 9_999, true)
            .build(),
    );
    c.add_table(
        keyed("customer", 150_000)
            .column("nation_fk", zipf(25.0, 2.0), 25, false)
            .column("c_acctbal", norm(11_000.0), 140_000, true)
            .column("c_mktsegment", uni(5.0), 5, false)
            .build(),
    );
    c.add_table(
        keyed("part", 200_000)
            .column("p_size", uni(50.0), 50, true)
            .column("p_retailprice", zipf(2_000.0, 1.5), 120_000, false)
            .build(),
    );
    c.add_table(
        keyed("partsupp", 800_000)
            .column("part_fk", uni(200_000.0), 200_000, true)
            .column("supplier_fk", uni(10_000.0), 10_000, true)
            .column("ps_supplycost", exp(1_000.0, 3.0), 99_000, false)
            .build(),
    );
    c.add_table(
        keyed("orders", 1_500_000)
            .column("customer_fk", zipf(150_000.0, 2.5), 100_000, true)
            .column("o_totalprice", zipf(500_000.0, 3.0), 1_400_000, true)
            .column("o_orderdate", uni(2_406.0), 2_406, true)
            .column("o_shippriority", uni(5.0), 5, false)
            .build(),
    );
    c.add_table(
        keyed("lineitem", 6_000_000)
            .column("orders_fk", uni(1_500_000.0), 1_500_000, true)
            .column("part_fk", zipf(200_000.0, 2.0), 200_000, true)
            .column("supplier_fk", uni(10_000.0), 10_000, true)
            .column("l_quantity", uni(50.0), 50, false)
            .column("l_extendedprice", zipf(100_000.0, 2.5), 900_000, true)
            .column("l_discount", uni(0.1), 11, false)
            .column("l_shipdate", uni(2_526.0), 2_526, true)
            .column("l_receiptdate", norm(2_526.0), 2_526, false)
            .build(),
    );
    c
}

/// TPC-DS inspired star/snowflake subset.
pub fn tpcds() -> Catalog {
    let mut c = Catalog::new("tpcds");
    c.add_table(
        keyed("date_dim", 73_049)
            .column("d_year", uni(200.0), 200, true)
            .column("d_moy", uni(12.0), 12, false)
            .build(),
    );
    c.add_table(
        keyed("item", 102_000)
            .column("i_current_price", zipf(300.0, 2.0), 9_000, true)
            .column("i_category", uni(10.0), 10, false)
            .column("i_brand", zipf(1_000.0, 1.6), 950, false)
            .build(),
    );
    c.add_table(
        keyed("customer", 100_000)
            .column("c_birth_year", norm(80.0), 80, false)
            .column("customer_address_fk", uni(50_000.0), 50_000, false)
            .build(),
    );
    c.add_table(
        keyed("customer_address", 50_000)
            .column("ca_gmt_offset", uni(24.0), 24, false)
            .build(),
    );
    c.add_table(
        keyed("customer_demographics", 1_920_800)
            .column("cd_dep_count", uni(10.0), 10, true)
            .column("cd_purchase_estimate", zipf(10_000.0, 2.2), 9_000, false)
            .build(),
    );
    c.add_table(
        keyed("household_demographics", 7_200)
            .column("hd_vehicle_count", uni(5.0), 5, false)
            .build(),
    );
    c.add_table(
        keyed("store", 402)
            .column("s_floor_space", norm(10_000_000.0), 400, false)
            .build(),
    );
    c.add_table(keyed("warehouse", 15).build());
    c.add_table(
        keyed("promotion", 1_000)
            .column("p_cost", exp(2_000.0, 2.0), 900, false)
            .build(),
    );
    c.add_table(
        with_measures(
            keyed("store_sales", 2_880_404)
                .column("date_dim_fk", uni(73_049.0), 1_800, true)
                .column("item_fk", zipf(102_000.0, 2.0), 102_000, true)
                .column("customer_fk", uni(100_000.0), 100_000, true)
                .column("store_fk", uni(402.0), 402, false)
                .column("ss_quantity", uni(100.0), 100, false)
                .column("ss_sales_price", zipf(300.0, 2.5), 25_000, true)
                .column("ss_net_profit", norm(20_000.0), 900_000, false),
            4,
            50_000,
        )
        .build(),
    );
    c.add_table(
        with_measures(
            keyed("catalog_sales", 1_441_548)
                .column("date_dim_fk", uni(73_049.0), 1_800, true)
                .column("item_fk", uni(102_000.0), 102_000, true)
                .column("customer_fk", zipf(100_000.0, 1.8), 95_000, true)
                .column("warehouse_fk", uni(15.0), 15, false)
                .column("cs_quantity", uni(100.0), 100, false)
                .column("cs_wholesale_cost", exp(100.0, 3.0), 9_000, true),
            4,
            40_000,
        )
        .build(),
    );
    c.add_table(
        with_measures(
            keyed("web_sales", 719_384)
                .column("date_dim_fk", uni(73_049.0), 1_800, true)
                .column("item_fk", zipf(102_000.0, 2.4), 98_000, true)
                .column("customer_fk", uni(100_000.0), 90_000, false)
                .column("promotion_fk", uni(1_000.0), 1_000, false)
                .column("ws_sales_price", zipf(300.0, 2.0), 25_000, true),
            4,
            30_000,
        )
        .build(),
    );
    c.add_table(
        keyed("inventory", 1_000_000)
            .column("item_fk", uni(102_000.0), 102_000, true)
            .column("warehouse_fk", uni(15.0), 15, false)
            .column("date_dim_fk", uni(73_049.0), 261, false)
            .column("inv_quantity_on_hand", exp(1_000.0, 2.5), 1_000, false)
            .build(),
    );
    c
}

/// RD1: a 98 GB OLTP-ish real-world database stand-in (payments domain).
pub fn rd1() -> Catalog {
    let mut c = Catalog::new("rd1");
    c.add_table(keyed("regions_r", 500).build());
    c.add_table(
        keyed("merchants", 50_000)
            .column("regions_r_fk", zipf(500.0, 2.0), 500, false)
            .column("mrc_rating", norm(100.0), 100, true)
            .build(),
    );
    c.add_table(
        keyed("users", 5_000_000)
            .column("regions_r_fk", zipf(500.0, 1.6), 500, false)
            .column("u_age", norm(90.0), 90, false)
            .column("u_score", exp(1_000.0, 5.0), 1_000, true)
            .build(),
    );
    c.add_table(
        keyed("accounts", 2_000_000)
            .column("users_fk", uni(5_000_000.0), 1_900_000, true)
            .column("a_balance", zipf(1_000_000.0, 3.0), 950_000, true)
            .column("a_opened", uni(3_650.0), 3_650, false)
            .build(),
    );
    c.add_table(
        with_measures(
            keyed("transactions", 20_000_000)
                .column("accounts_fk", zipf(2_000_000.0, 2.2), 2_000_000, true)
                .column("merchants_fk", zipf(50_000.0, 2.8), 50_000, true)
                .column("t_amount", exp(10_000.0, 4.0), 800_000, true)
                .column("t_ts", uni(31_536_000.0), 5_000_000, true),
            4,
            100_000,
        )
        .build(),
    );
    c.add_table(
        keyed("sessions", 10_000_000)
            .column("users_fk", zipf(5_000_000.0, 1.8), 4_500_000, true)
            .column("s_duration", exp(7_200.0, 6.0), 7_200, false)
            .column("s_ts", uni(31_536_000.0), 8_000_000, true)
            .build(),
    );
    c.add_table(
        keyed("products", 100_000)
            .column("p_price", zipf(5_000.0, 2.0), 40_000, true)
            .build(),
    );
    c.add_table(
        keyed("orders_r", 8_000_000)
            .column("users_fk", uni(5_000_000.0), 3_500_000, true)
            .column("or_total", zipf(20_000.0, 2.5), 500_000, true)
            .column("or_ts", uni(31_536_000.0), 6_000_000, false)
            .build(),
    );
    c.add_table(
        keyed("order_items", 15_000_000)
            .column("orders_r_fk", uni(8_000_000.0), 8_000_000, true)
            .column("products_fk", zipf(100_000.0, 2.2), 100_000, true)
            .column("oi_qty", exp(50.0, 3.0), 50, false)
            .column("oi_price", zipf(5_000.0, 2.0), 40_000, false)
            .build(),
    );
    c.add_table(
        keyed("logs", 20_000_000)
            .column("users_fk", zipf(5_000_000.0, 2.5), 3_000_000, false)
            .column("l_severity", zipf(8.0, 3.0), 8, true)
            .column("l_ts", uni(31_536_000.0), 10_000_000, true)
            .build(),
    );
    c
}

/// RD2: a 780 GB telemetry warehouse stand-in. Wide fact tables with many
/// numeric attributes support the paper's high-dimensional templates
/// (d >= 5 "were only possible on RD2", Section 7.1).
pub fn rd2() -> Catalog {
    let mut c = Catalog::new("rd2");
    c.add_table(
        keyed("sites", 10_000)
            .column("st_elevation", norm(4_000.0), 3_800, false)
            .build(),
    );
    c.add_table(
        keyed("firmware", 500)
            .column("f_version", uni(500.0), 500, false)
            .build(),
    );
    c.add_table(
        with_measures(
            keyed("devices", 10_000_000)
                .column("sites_fk", zipf(10_000.0, 2.0), 10_000, true)
                .column("firmware_fk", zipf(500.0, 2.5), 500, false)
                .column("d_age_days", exp(2_000.0, 2.0), 2_000, true),
            6,
            250,
        )
        .build(),
    );
    c.add_table(
        keyed("sensors", 5_000_000)
            .column("devices_fk", uni(10_000_000.0), 4_800_000, true)
            .column("sn_precision", norm(100.0), 100, false)
            .column("sn_range", uni(10_000.0), 10_000, true)
            .build(),
    );
    c.add_table(
        keyed("calib", 1_000_000)
            .column("sensors_fk", uni(5_000_000.0), 1_000_000, true)
            .column("cb_drift", norm(10.0), 10_000, false)
            .build(),
    );
    c.add_table(
        with_measures(
            keyed("telemetry", 100_000_000)
                .column("devices_fk", zipf(10_000_000.0, 2.0), 10_000_000, true)
                .column("t_ts", uni(31_536_000.0), 30_000_000, true)
                .column("t_battery", norm(100.0), 100, false)
                .column("t_signal", exp(120.0, 3.0), 120, true),
            10,
            400,
        )
        .build(),
    );
    c.add_table(
        with_measures(
            keyed("readings", 80_000_000)
                .column("sensors_fk", zipf(5_000_000.0, 1.8), 5_000_000, true)
                .column("r_ts", uni(31_536_000.0), 30_000_000, true)
                .column("r_value", zipf(1_000_000.0, 3.5), 900_000, true),
            10,
            600,
        )
        .build(),
    );
    c.add_table(
        with_measures(
            keyed("alerts", 20_000_000)
                .column("devices_fk", zipf(10_000_000.0, 3.0), 6_000_000, true)
                .column("al_severity", zipf(10.0, 2.5), 10, true)
                .column("al_ts", uni(31_536_000.0), 15_000_000, false),
            6,
            300,
        )
        .build(),
    );
    c.add_table(
        keyed("maintenance", 5_000_000)
            .column("devices_fk", uni(10_000_000.0), 3_500_000, true)
            .column("mt_cost", exp(50_000.0, 4.0), 45_000, true)
            .column("mt_duration", zipf(480.0, 2.0), 480, false)
            .build(),
    );
    c.add_table(
        keyed("weather", 50_000_000)
            .column("sites_fk", uni(10_000.0), 10_000, true)
            .column("w_ts", uni(31_536_000.0), 30_000_000, true)
            .column("w_temp", norm(60.0), 1_200, false)
            .column("w_wind", exp(150.0, 4.0), 1_500, false)
            .build(),
    );
    c
}

/// All four catalogs, keyed by name.
pub fn all_catalogs() -> Vec<Catalog> {
    vec![tpch_skew(), tpcds(), rd1(), rd2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_catalogs_build() {
        let cats = all_catalogs();
        assert_eq!(cats.len(), 4);
        let names: Vec<_> = cats.iter().map(|c| c.name().to_string()).collect();
        assert_eq!(names, vec!["tpch_skew", "tpcds", "rd1", "rd2"]);
    }

    #[test]
    fn tpch_has_expected_tables() {
        let c = tpch_skew();
        for t in [
            "region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
        ] {
            assert!(c.table(t).is_some(), "missing table {t}");
        }
        assert_eq!(c.expect_table("lineitem").row_count, 6_000_000);
    }

    #[test]
    fn every_table_has_indexed_pk() {
        for cat in all_catalogs() {
            for t in cat.tables() {
                let pk = format!("{}_pk", t.name);
                let col = t
                    .column(&pk)
                    .unwrap_or_else(|| panic!("{} missing pk", t.name));
                assert!(col.indexed, "{} pk not indexed", t.name);
                assert_eq!(col.stats.ndv, t.row_count, "{} pk ndv", t.name);
            }
        }
    }

    #[test]
    fn fk_columns_reference_existing_tables() {
        for cat in all_catalogs() {
            for t in cat.tables() {
                for col in &t.columns {
                    if let Some(target) = col.name.strip_suffix("_fk") {
                        assert!(
                            cat.table(target).is_some(),
                            "{}.{} dangling fk",
                            t.name,
                            col.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn rd2_fact_tables_are_wide_enough_for_d10() {
        let c = rd2();
        // d=10 templates need >= 10 non-key numeric columns spread over a
        // small join graph; telemetry and readings each carry 10 measures
        // plus named attributes.
        for t in ["telemetry", "readings"] {
            let non_key = c
                .expect_table(t)
                .columns
                .iter()
                .filter(|col| !col.name.ends_with("_pk") && !col.name.ends_with("_fk"))
                .count();
            assert!(non_key >= 10, "{t} has only {non_key} attribute columns");
        }
    }

    #[test]
    fn statistics_are_deterministic_across_builds() {
        let a = tpch_skew();
        let b = tpch_skew();
        let ca = &a
            .expect_table("lineitem")
            .column("l_extendedprice")
            .unwrap()
            .stats;
        let cb = &b
            .expect_table("lineitem")
            .column("l_extendedprice")
            .unwrap()
            .stats;
        assert_eq!(ca.histogram.quantile(0.123), cb.histogram.quantile(0.123));
    }
}
