//! Seeded value distributions used to synthesize column contents.
//!
//! Columns never materialize actual rows; instead each column samples its
//! distribution a fixed number of times to build an equi-depth histogram
//! (see [`crate::histogram`]). The samplers are deterministic given a seed so
//! that every run of the reproduction sees exactly the same statistics.

use pqo_rand::rngs::StdRng;
use pqo_rand::{Rng, SeedableRng};

/// A univariate value distribution over a numeric domain.
///
/// All variants produce values in `[min, max]` (clamped where the underlying
/// law is unbounded). The skewed variants (`Zipf`, `Exponential`) model the
/// "TPC-H with skew" data generator the paper uses (reference [23]).
#[derive(Debug, Clone, PartialEq)]
pub enum Distribution {
    /// Uniform over `[min, max]`.
    Uniform { min: f64, max: f64 },
    /// Zipf-like: value `min + (max-min) * u^theta_exponent`, producing heavy
    /// concentration near `min` for `exponent > 1`. `exponent` must be > 0.
    Zipf { min: f64, max: f64, exponent: f64 },
    /// Normal with the given mean/stddev, clamped to `[min, max]`.
    Normal {
        min: f64,
        max: f64,
        mean: f64,
        stddev: f64,
    },
    /// Exponential decay from `min`, clamped to `[min, max]`. `rate` > 0;
    /// larger rates concentrate mass near `min`.
    Exponential { min: f64, max: f64, rate: f64 },
}

impl Distribution {
    /// Lower bound of the support.
    pub fn min(&self) -> f64 {
        match *self {
            Distribution::Uniform { min, .. }
            | Distribution::Zipf { min, .. }
            | Distribution::Normal { min, .. }
            | Distribution::Exponential { min, .. } => min,
        }
    }

    /// Upper bound of the support.
    pub fn max(&self) -> f64 {
        match *self {
            Distribution::Uniform { max, .. }
            | Distribution::Zipf { max, .. }
            | Distribution::Normal { max, .. }
            | Distribution::Exponential { max, .. } => max,
        }
    }

    /// Draw one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        match *self {
            Distribution::Uniform { min, max } => rng.gen_range(min..=max),
            Distribution::Zipf { min, max, exponent } => {
                let u: f64 = rng.gen_range(0.0..=1.0);
                min + (max - min) * u.powf(exponent)
            }
            Distribution::Normal {
                min,
                max,
                mean,
                stddev,
            } => {
                // Box-Muller; clamped to the declared support.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mean + stddev * z).clamp(min, max)
            }
            Distribution::Exponential { min, max, rate } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                (min - u.ln() / rate * (max - min)).clamp(min, max)
            }
        }
    }

    /// Draw `n` values with a deterministic RNG seeded from `seed`.
    pub fn sample_n(&self, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| self.sample(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_stays_in_range() {
        let d = Distribution::Uniform {
            min: 2.0,
            max: 10.0,
        };
        for v in d.sample_n(1000, 1) {
            assert!((2.0..=10.0).contains(&v));
        }
    }

    #[test]
    fn zipf_is_skewed_towards_min() {
        let d = Distribution::Zipf {
            min: 0.0,
            max: 100.0,
            exponent: 3.0,
        };
        let samples = d.sample_n(10_000, 2);
        let below_quarter = samples.iter().filter(|&&v| v < 25.0).count();
        // u^3 maps 63% of uniform mass below 0.25.
        assert!(below_quarter > 5_000, "got {below_quarter}");
    }

    #[test]
    fn normal_is_clamped() {
        let d = Distribution::Normal {
            min: -1.0,
            max: 1.0,
            mean: 0.0,
            stddev: 10.0,
        };
        for v in d.sample_n(1000, 3) {
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn exponential_concentrates_near_min() {
        let d = Distribution::Exponential {
            min: 0.0,
            max: 1000.0,
            rate: 10.0,
        };
        let samples = d.sample_n(10_000, 4);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean < 200.0, "mean {mean}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Distribution::Uniform { min: 0.0, max: 1.0 };
        assert_eq!(d.sample_n(64, 42), d.sample_n(64, 42));
        assert_ne!(d.sample_n(64, 42), d.sample_n(64, 43));
    }

    #[test]
    fn min_max_accessors() {
        let d = Distribution::Zipf {
            min: 1.0,
            max: 9.0,
            exponent: 2.0,
        };
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 9.0);
    }
}
