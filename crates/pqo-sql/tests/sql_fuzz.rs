//! Seeded fuzzing of the SQL frontend: arbitrary input must never panic
//! any layer — tokenizer, parser or the full compile pipeline — and every
//! failure must be a typed [`pqo_sql::SqlError`] whose span stays inside
//! the source text. Three attack surfaces, mirroring the wire-decoder
//! fuzz tests:
//!
//! 1. random character soup (ASCII, SQL punctuation, multi-byte UTF-8);
//! 2. the committed fixture corpus mutated by splices, deletions,
//!    truncations and token injections;
//! 3. every prefix truncation of each fixture (mid-token cuts included).

use std::path::PathBuf;
use std::sync::OnceLock;

use pqo_catalog::{schemas, Catalog};
use pqo_rand::rngs::StdRng;
use pqo_rand::{Rng, SeedableRng};

fn tpch() -> &'static Catalog {
    static CATALOG: OnceLock<Catalog> = OnceLock::new();
    CATALOG.get_or_init(schemas::tpch_skew)
}

/// Run every layer over one input; assert that failures are well-formed
/// (span inside the source on a char boundary) instead of panics.
fn attack(src: &str) {
    let check = |err: pqo_sql::SqlError| {
        assert!(
            err.span.start <= err.span.end && err.span.end <= src.len(),
            "span {}..{} escapes {}-byte source",
            err.span.start,
            err.span.end,
            src.len()
        );
        // Rendering the caret diagnostic must not panic either (it slices
        // the source by the span).
        let rendered = err.render(src);
        assert!(!rendered.is_empty());
    };
    if let Err(e) = pqo_sql::tokenize(src) {
        check(e);
    }
    if let Err(e) = pqo_sql::parse(src) {
        check(e);
    }
    if let Err(e) = pqo_sql::directives(src) {
        check(e);
    }
    // The full pipeline binds against a real catalog; a fixture mutated
    // into another catalog's template is a typed directive error, so the
    // catalog mismatch path gets fuzzed too.
    if let Err(e) = pqo_sql::compile("fuzz", src, tpch()) {
        check(e);
    }
}

fn fixture_sources() -> Vec<String> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../templates");
    let mut sources: Vec<(PathBuf, String)> = std::fs::read_dir(&dir)
        .expect("templates dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .map(|p| {
            let src = std::fs::read_to_string(&p).expect("fixture reads");
            (p, src)
        })
        .collect();
    sources.sort();
    assert!(sources.len() >= 10, "committed fixture corpus shrank");
    sources.into_iter().map(|(_, s)| s).collect()
}

/// Character soup: random strings over a pool biased toward SQL
/// structure so the fuzzer reaches deep parser states, plus multi-byte
/// characters to attack any byte-indexed slicing.
#[test]
fn random_soup_never_panics() {
    const POOL: &[&str] = &[
        "select",
        "SELECT",
        "from",
        "join",
        "on",
        "where",
        "and",
        "group",
        "by",
        "order",
        "asc",
        "desc",
        "count",
        "sum",
        "(",
        ")",
        "*",
        ",",
        ".",
        ";",
        "<=",
        ">=",
        "<",
        ">",
        "=",
        "$",
        "$1",
        "$99",
        "?",
        "'",
        "''",
        "\"",
        "`",
        "--",
        "/*",
        "*/",
        "pqo:",
        "0",
        "1.5",
        "1e309",
        "1e-3",
        ".5",
        "lineitem",
        "l_shipdate",
        "x",
        "_",
        " ",
        "\n",
        "\t",
        "é",
        "⨝",
        "🦀",
        "\u{0}",
    ];
    let mut rng = StdRng::seed_from_u64(0x5EEDF00D);
    for _ in 0..4000 {
        let len = rng.gen_range(0usize..60);
        let src: String = (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect();
        attack(&src);
    }
    // Pure byte-soup decoded lossily: exercises inputs no grammar rule
    // anticipates (replacement chars, control bytes).
    for _ in 0..2000 {
        let len = rng.gen_range(0usize..120);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        attack(&String::from_utf8_lossy(&bytes));
    }
}

/// Mutated fixtures: each committed `.sql` file is perturbed by random
/// single-char edits, range deletions, duplications and cross-fixture
/// splices — inputs that are *almost* valid reach the binder's deepest
/// error paths.
#[test]
fn mutated_fixtures_never_panic() {
    let fixtures = fixture_sources();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..1500 {
        let base = &fixtures[round % fixtures.len()];
        let mut chars: Vec<char> = base.chars().collect();
        for _ in 0..rng.gen_range(1usize..6) {
            if chars.is_empty() {
                break;
            }
            match rng.gen_range(0u32..4) {
                0 => {
                    // Replace one char with a hostile one.
                    let at = rng.gen_range(0..chars.len());
                    chars[at] = ['$', '?', '"', '`', '\'', '.', '(', '\u{0}', '⨝']
                        [rng.gen_range(0usize..9)];
                }
                1 => {
                    // Delete a range.
                    let at = rng.gen_range(0..chars.len());
                    let end = (at + rng.gen_range(1usize..20)).min(chars.len());
                    chars.drain(at..end);
                }
                2 => {
                    // Duplicate a range in place.
                    let at = rng.gen_range(0..chars.len());
                    let end = (at + rng.gen_range(1usize..10)).min(chars.len());
                    let slice: Vec<char> = chars[at..end].to_vec();
                    for (i, c) in slice.into_iter().enumerate() {
                        chars.insert(at + i, c);
                    }
                }
                _ => {
                    // Splice a random window of another fixture in.
                    let other = &fixtures[rng.gen_range(0..fixtures.len())];
                    let ochars: Vec<char> = other.chars().collect();
                    let at = rng.gen_range(0..ochars.len());
                    let end = (at + rng.gen_range(1usize..30)).min(ochars.len());
                    let dst = rng.gen_range(0..=chars.len());
                    for (i, c) in ochars[at..end].iter().enumerate() {
                        chars.insert(dst + i, *c);
                    }
                }
            }
        }
        attack(&chars.iter().collect::<String>());
    }
}

/// Every byte-truncation of every fixture (snapped to char boundaries)
/// either compiles or yields a typed error — mid-statement cuts land on
/// the `UnexpectedEnd` paths of every parser production.
#[test]
fn fixture_truncations_never_panic() {
    for src in fixture_sources() {
        for cut in 0..=src.len() {
            if src.is_char_boundary(cut) {
                attack(&src[..cut]);
            }
        }
    }
}
