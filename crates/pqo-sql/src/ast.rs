//! The (deliberately small) SQL AST.
//!
//! The grammar covers exactly the template language of the paper:
//! `SELECT` over a FROM list with `[INNER] JOIN ... ON` equi-joins, an
//! AND-connected `WHERE` of simple comparisons, optional `GROUP BY` and
//! `ORDER BY`. Every node carries the [`Span`] it was parsed from so the
//! binder can report errors against the source text.

use crate::error::Span;
use crate::token::QuoteStyle;

/// An identifier as written: name plus whether/how it was quoted.
#[derive(Debug, Clone, PartialEq)]
pub struct Name {
    /// The identifier text (unquoted identifiers are lowercased).
    pub text: String,
    /// Quoting style, if quoted.
    pub quote: Option<QuoteStyle>,
    /// Source span.
    pub span: Span,
}

/// A possibly-qualified column reference `[alias.]column`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnRef {
    /// Qualifier (a FROM alias or table name), if written.
    pub qualifier: Option<Name>,
    /// The column name.
    pub column: Name,
    /// Span of the whole reference.
    pub span: Span,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// A plain column.
    Column(ColumnRef),
    /// `fn(col)` or `count(*)`.
    Aggregate {
        /// Function name, lowercased (`count`, `sum`, `min`, `max`, `avg`).
        func: String,
        /// Argument column; `None` for `count(*)`.
        arg: Option<ColumnRef>,
        /// Span of the call.
        span: Span,
    },
}

/// A table in FROM or JOIN: `table [AS] alias`.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: Name,
    /// Optional alias.
    pub alias: Option<Name>,
    /// Span of the whole reference.
    pub span: Span,
}

impl TableRef {
    /// The name this relation binds in scope: the alias if given, else the
    /// table name.
    pub fn bound_name(&self) -> &str {
        self.alias
            .as_ref()
            .map(|a| a.text.as_str())
            .unwrap_or(&self.table.text)
    }
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<=`
    Le,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `=`
    Eq,
}

impl CmpOp {
    /// Mirror the operator (for `$1 >= col` → `col <= $1` normalization).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Eq,
        }
    }

    /// SQL spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Le => "<=",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Gt => ">",
            CmpOp::Eq => "=",
        }
    }
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// A column reference.
    Column(ColumnRef),
    /// A numeric literal.
    Number {
        /// The value.
        value: f64,
        /// Source span.
        span: Span,
    },
    /// A string literal (tokenized but rejected by the binder: all template
    /// columns are numeric).
    Str {
        /// The text.
        text: String,
        /// Source span.
        span: Span,
    },
    /// A parameter placeholder: `$n` (`Some(n)`) or `?` (`None`).
    Placeholder {
        /// 1-based index for `$n`; `None` for `?`.
        index: Option<u32>,
        /// Source span.
        span: Span,
    },
}

impl Scalar {
    /// Source span of this scalar.
    pub fn span(&self) -> Span {
        match self {
            Scalar::Column(c) => c.span,
            Scalar::Number { span, .. }
            | Scalar::Str { span, .. }
            | Scalar::Placeholder { span, .. } => *span,
        }
    }
}

/// One WHERE conjunct: `lhs op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left-hand side.
    pub lhs: Scalar,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: Scalar,
    /// Span of the whole conjunct.
    pub span: Span,
}

/// An `ON left = right` equi-join condition.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOn {
    /// The joined table (the JOIN's right operand).
    pub table: TableRef,
    /// Left column of the ON condition.
    pub left: ColumnRef,
    /// Right column of the ON condition.
    pub right: ColumnRef,
    /// Span of the whole JOIN clause.
    pub span: Span,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// First FROM entry, then any comma-separated FROM entries.
    pub from: Vec<TableRef>,
    /// `JOIN ... ON` clauses, in source order.
    pub joins: Vec<JoinOn>,
    /// AND-connected WHERE conjuncts.
    pub predicates: Vec<Predicate>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// ORDER BY columns (direction is parsed and discarded — only sortedness
    /// matters to the cost model).
    pub order_by: Vec<ColumnRef>,
    /// Span of the whole statement.
    pub span: Span,
}
