//! Typed, span-carrying errors for every layer of the SQL frontend.
//!
//! Nothing in this crate panics on malformed input: the tokenizer, parser
//! and binder all return [`SqlError`], which names the byte range of the
//! offending source text so callers can render a caret diagnostic.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first offending byte.
    pub start: usize,
    /// Byte offset one past the last offending byte.
    pub end: usize,
}

impl Span {
    /// Construct a span; callers guarantee `start <= end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// An empty span at `pos` (used for end-of-input errors).
    pub fn point(pos: usize) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// What went wrong, by frontend layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlErrorKind {
    /// Tokenizer: a byte sequence that is not part of any token.
    Lex(String),
    /// Parser: a token that doesn't fit the grammar at this position.
    UnexpectedToken {
        /// What the grammar would have accepted.
        expected: String,
        /// What was actually found.
        found: String,
    },
    /// Parser: the input ended mid-statement.
    UnexpectedEnd {
        /// What the grammar would have accepted.
        expected: String,
    },
    /// A recognized but unsupported SQL construct (outer joins, subqueries,
    /// string comparisons, …) or a construct invalid in the active dialect.
    Unsupported(String),
    /// Binder: FROM/JOIN names a table the catalog doesn't have.
    UnknownTable(String),
    /// Binder: a column reference that resolves to nothing.
    UnknownColumn {
        /// The column name as written.
        column: String,
        /// Where resolution was attempted (an alias, or "any relation").
        scope: String,
    },
    /// Binder: an unqualified column name that exists on several relations.
    AmbiguousColumn(String),
    /// Binder: two FROM/JOIN entries share an alias.
    DuplicateAlias(String),
    /// Binder: `$n` placeholders must cover `1..=d` exactly once each, and
    /// must not be mixed with `?`.
    Placeholder(String),
    /// Binder: the lowered template failed structural validation
    /// (disconnected join graph, self-loop, too many relations, …).
    Semantic(String),
    /// A malformed `-- pqo:` directive header, or an unknown catalog /
    /// dialect named by one.
    Directive(String),
}

impl fmt::Display for SqlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlErrorKind::Lex(m) => write!(f, "lex error: {m}"),
            SqlErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            SqlErrorKind::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            SqlErrorKind::Unsupported(m) => write!(f, "unsupported: {m}"),
            SqlErrorKind::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            SqlErrorKind::UnknownColumn { column, scope } => {
                write!(f, "unknown column `{column}` in {scope}")
            }
            SqlErrorKind::AmbiguousColumn(c) => {
                write!(f, "ambiguous column `{c}` (qualify it with an alias)")
            }
            SqlErrorKind::DuplicateAlias(a) => write!(f, "duplicate alias `{a}`"),
            SqlErrorKind::Placeholder(m) => write!(f, "placeholder error: {m}"),
            SqlErrorKind::Semantic(m) => write!(f, "semantic error: {m}"),
            SqlErrorKind::Directive(m) => write!(f, "directive error: {m}"),
        }
    }
}

/// An error anywhere in the tokenize → parse → bind pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError {
    /// What went wrong.
    pub kind: SqlErrorKind,
    /// Where in the source text.
    pub span: Span,
}

impl SqlError {
    /// Construct an error.
    pub fn new(kind: SqlErrorKind, span: Span) -> Self {
        SqlError { kind, span }
    }

    /// Render a one-line diagnostic with `line:col` resolved against `src`,
    /// plus the offending line and a caret underline. Safe on any `src`,
    /// including one the span does not fit (falls back to byte offsets).
    pub fn render(&self, src: &str) -> String {
        let start = self.span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
        let line_no = src[..start].matches('\n').count() + 1;
        let col = src[line_start..start].chars().count() + 1;
        let line_end = src[start..]
            .find('\n')
            .map(|i| start + i)
            .unwrap_or(src.len());
        let line = &src[line_start..line_end];
        let caret_len = self
            .span
            .end
            .min(line_end)
            .saturating_sub(start)
            .max(1)
            .min(line.len().saturating_sub(start - line_start).max(1));
        let pad = " ".repeat(col - 1);
        let carets = "^".repeat(caret_len);
        format!(
            "error at {line_no}:{col}: {}\n  | {line}\n  | {pad}{carets}",
            self.kind
        )
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at bytes {}", self.kind, self.span)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_and_display() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
        assert_eq!(format!("{a}"), "2..5");
    }

    #[test]
    fn render_points_at_offending_line() {
        let src = "SELECT *\nFROM nope\n";
        let err = SqlError::new(SqlErrorKind::UnknownTable("nope".into()), Span::new(14, 18));
        let msg = err.render(src);
        assert!(msg.contains("error at 2:6"), "{msg}");
        assert!(msg.contains("unknown table `nope`"), "{msg}");
        assert!(msg.contains("^^^^"), "{msg}");
    }

    #[test]
    fn render_survives_out_of_range_span() {
        let err = SqlError::new(SqlErrorKind::Lex("x".into()), Span::new(100, 200));
        let _ = err.render("short");
        let _ = err.render("");
    }
}
