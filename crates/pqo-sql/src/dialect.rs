//! SQL dialects: placeholder syntax, identifier quoting, literal forms.
//!
//! The tokenizer accepts the union of all dialects; the [`Dialect`] trait
//! then *validates* what a given dialect actually owns (postgres has no
//! `?`, mysql has no `$n`, backtick quoting is mysql-only) and *renders*
//! SQL back out in the dialect's native forms for the `--op explain`
//! reverse path. [`DialectKind`] is the nameable/wire-taggable handle that
//! dispatches to the trait implementations.

use std::fmt;

use crate::error::{Span, SqlError, SqlErrorKind};
use crate::token::QuoteStyle;

/// Per-dialect syntax: what it accepts on the way in, how it renders on the
/// way out.
pub trait Dialect {
    /// Canonical lowercase name (`postgres`, `mysql`, `duckdb`).
    fn name(&self) -> &'static str;

    /// Whether numbered `$n` placeholders are valid input.
    fn allows_numbered(&self) -> bool;

    /// Whether anonymous `?` placeholders are valid input.
    fn allows_anonymous(&self) -> bool;

    /// The identifier quoting style this dialect owns.
    fn quote_style(&self) -> QuoteStyle;

    /// Render the placeholder for 1-based parameter `n`.
    fn placeholder(&self, n: usize) -> String {
        if self.allows_numbered() {
            format!("${n}")
        } else {
            "?".into()
        }
    }

    /// Quote an identifier in this dialect's native style.
    fn quote_ident(&self, name: &str) -> String {
        match self.quote_style() {
            QuoteStyle::Double => format!("\"{}\"", name.replace('"', "\"\"")),
            QuoteStyle::Backtick => format!("`{}`", name.replace('`', "``")),
        }
    }

    /// Render a numeric literal (all template columns are numeric).
    fn literal(&self, v: f64) -> String {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v}")
        }
    }
}

/// PostgreSQL: `$n` placeholders, `"ident"` quoting.
pub struct Postgres;

impl Dialect for Postgres {
    fn name(&self) -> &'static str {
        "postgres"
    }
    fn allows_numbered(&self) -> bool {
        true
    }
    fn allows_anonymous(&self) -> bool {
        false
    }
    fn quote_style(&self) -> QuoteStyle {
        QuoteStyle::Double
    }
}

/// MySQL: `?` placeholders, `` `ident` `` quoting.
pub struct MySql;

impl Dialect for MySql {
    fn name(&self) -> &'static str {
        "mysql"
    }
    fn allows_numbered(&self) -> bool {
        false
    }
    fn allows_anonymous(&self) -> bool {
        true
    }
    fn quote_style(&self) -> QuoteStyle {
        QuoteStyle::Backtick
    }
}

/// DuckDB: accepts both `$n` and `?`, renders `$n`; `"ident"` quoting.
pub struct DuckDb;

impl Dialect for DuckDb {
    fn name(&self) -> &'static str {
        "duckdb"
    }
    fn allows_numbered(&self) -> bool {
        true
    }
    fn allows_anonymous(&self) -> bool {
        true
    }
    fn quote_style(&self) -> QuoteStyle {
        QuoteStyle::Double
    }
}

/// The supported dialects, as a nameable, wire-taggable handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DialectKind {
    /// See [`Postgres`].
    Postgres,
    /// See [`MySql`].
    MySql,
    /// See [`DuckDb`].
    DuckDb,
}

impl DialectKind {
    /// All dialects, in canonical order.
    pub const ALL: &'static [DialectKind] = &[
        DialectKind::Postgres,
        DialectKind::MySql,
        DialectKind::DuckDb,
    ];

    /// The trait implementation this handle names.
    pub fn dialect(&self) -> &'static dyn Dialect {
        match self {
            DialectKind::Postgres => &Postgres,
            DialectKind::MySql => &MySql,
            DialectKind::DuckDb => &DuckDb,
        }
    }

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        self.dialect().name()
    }

    /// Stable wire tag (u8) for the EXPLAIN request.
    pub fn as_tag(&self) -> u8 {
        match self {
            DialectKind::Postgres => 0,
            DialectKind::MySql => 1,
            DialectKind::DuckDb => 2,
        }
    }

    /// Inverse of [`DialectKind::as_tag`].
    pub fn from_tag(tag: u8) -> Option<DialectKind> {
        Some(match tag {
            0 => DialectKind::Postgres,
            1 => DialectKind::MySql,
            2 => DialectKind::DuckDb,
            _ => return None,
        })
    }

    /// Parse a dialect name, case-insensitively (`Postgres`, `MYSQL`, …).
    /// Unknown names get an error listing the valid options.
    pub fn parse(s: &str) -> Result<DialectKind, String> {
        let lower = s.trim().to_ascii_lowercase();
        for d in DialectKind::ALL {
            if lower == d.name() {
                return Ok(*d);
            }
        }
        let options = DialectKind::ALL
            .iter()
            .map(|d| d.name())
            .collect::<Vec<_>>()
            .join("|");
        Err(format!("unknown dialect `{s}` ({options})"))
    }

    /// Validate a placeholder as written against this dialect; `index` is
    /// `Some(n)` for `$n`, `None` for `?`.
    pub fn check_placeholder(&self, index: Option<u32>, span: Span) -> Result<(), SqlError> {
        let d = self.dialect();
        let ok = match index {
            Some(_) => d.allows_numbered(),
            None => d.allows_anonymous(),
        };
        if ok {
            Ok(())
        } else {
            let (style, fix) = match index {
                Some(n) => (format!("`${n}`"), "use `?`"),
                None => ("`?`".into(), "use `$n`"),
            };
            Err(SqlError::new(
                SqlErrorKind::Unsupported(format!(
                    "{style} placeholders are not valid in {} ({fix})",
                    d.name()
                )),
                span,
            ))
        }
    }

    /// Validate a quoted identifier's style against this dialect.
    pub fn check_quote(&self, style: QuoteStyle, span: Span) -> Result<(), SqlError> {
        if self.dialect().quote_style() == style {
            return Ok(());
        }
        let (seen, want) = match style {
            QuoteStyle::Backtick => ("backtick", "\"double quotes\""),
            QuoteStyle::Double => ("double-quote", "`backticks`"),
        };
        Err(SqlError::new(
            SqlErrorKind::Unsupported(format!(
                "{seen}-quoted identifiers are not valid in {} (use {want})",
                self.name()
            )),
            span,
        ))
    }

    /// Render the placeholder for 1-based parameter `n`.
    pub fn placeholder(&self, n: usize) -> String {
        self.dialect().placeholder(n)
    }

    /// Quote an identifier in this dialect's native style.
    pub fn quote_ident(&self, name: &str) -> String {
        self.dialect().quote_ident(name)
    }

    /// Render an identifier: bare when it's a plain, unreserved lowercase
    /// word, quoted otherwise.
    pub fn ident(&self, name: &str) -> String {
        let plain = !name.is_empty()
            && !crate::token::is_reserved(name)
            && name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_');
        if plain {
            name.to_string()
        } else {
            self.quote_ident(name)
        }
    }

    /// Render a numeric literal.
    pub fn literal(&self, v: f64) -> String {
        self.dialect().literal(v)
    }
}

impl fmt::Display for DialectKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(DialectKind::parse("Postgres"), Ok(DialectKind::Postgres));
        assert_eq!(DialectKind::parse("MYSQL"), Ok(DialectKind::MySql));
        assert_eq!(DialectKind::parse(" DuckDB "), Ok(DialectKind::DuckDb));
    }

    #[test]
    fn unknown_dialect_lists_options() {
        let err = DialectKind::parse("oracle").unwrap_err();
        assert!(err.contains("postgres|mysql|duckdb"), "{err}");
        assert!(err.contains("oracle"), "{err}");
    }

    #[test]
    fn tags_roundtrip() {
        for d in DialectKind::ALL {
            assert_eq!(DialectKind::from_tag(d.as_tag()), Some(*d));
        }
        assert_eq!(DialectKind::from_tag(9), None);
    }

    #[test]
    fn placeholder_styles() {
        assert_eq!(DialectKind::Postgres.placeholder(2), "$2");
        assert_eq!(DialectKind::MySql.placeholder(2), "?");
        assert_eq!(DialectKind::DuckDb.placeholder(1), "$1");
        assert!(DialectKind::Postgres
            .check_placeholder(None, Span::new(0, 1))
            .is_err());
        assert!(DialectKind::MySql
            .check_placeholder(Some(1), Span::new(0, 1))
            .is_err());
        assert!(DialectKind::DuckDb
            .check_placeholder(None, Span::new(0, 1))
            .is_ok());
        assert!(DialectKind::DuckDb
            .check_placeholder(Some(1), Span::new(0, 1))
            .is_ok());
    }

    #[test]
    fn quoting() {
        assert_eq!(DialectKind::Postgres.quote_ident("A b"), "\"A b\"");
        assert_eq!(DialectKind::MySql.quote_ident("A b"), "`A b`");
        assert_eq!(DialectKind::Postgres.ident("orders"), "orders");
        assert_eq!(DialectKind::MySql.ident("Orders"), "`Orders`");
        assert!(DialectKind::MySql
            .check_quote(QuoteStyle::Double, Span::new(0, 1))
            .is_err());
        assert!(DialectKind::Postgres
            .check_quote(QuoteStyle::Backtick, Span::new(0, 1))
            .is_err());
    }

    #[test]
    fn literals() {
        assert_eq!(DialectKind::Postgres.literal(42.0), "42");
        assert_eq!(DialectKind::Postgres.literal(0.05), "0.05");
    }
}
