//! # pqo-sql — the SQL template frontend
//!
//! Lowers real parameterized SQL text into the serving stack's
//! `QueryTemplate`, in four layers:
//!
//! 1. **[`token`]** — a never-panic tokenizer with byte-accurate spans.
//! 2. **[`ast`] / [`parser`]** — recursive descent over the template
//!    subset: `SELECT … FROM … [JOIN … ON …] WHERE …` with positional
//!    (`$n`, `?`) parameters, equi-joins, constant filters, `GROUP BY`
//!    and `ORDER BY`.
//! 3. **[`dialect`]** — a [`Dialect`] trait (postgres, mysql, duckdb)
//!    owning placeholder syntax, identifier quoting and literal forms.
//! 4. **[`binder`]** — name resolution against a `pqo_catalog::Catalog`
//!    and lowering into `pqo_optimizer::QueryTemplate` with exactly the
//!    `TemplateBuilder` derivations, so SQL-born templates are
//!    indistinguishable from hand-built ones.
//!
//! [`emit`] is the reverse path: a chosen plan renders back out as
//! dialect-specific hinted SQL (join order as comment hints).
//!
//! ## Template files
//!
//! A `.sql` template file opens with directive comments naming the catalog
//! it binds against and (optionally) its dialect, then one `SELECT`:
//!
//! ```sql
//! -- pqo:catalog tpch_skew
//! -- pqo:dialect postgres
//! SELECT count(*)
//! FROM orders o JOIN lineitem l ON o.orders_pk = l.orders_fk
//! WHERE o.o_totalprice <= $1 AND l.l_extendedprice <= $2
//! ```
//!
//! [`compile`] runs the whole pipeline on such a file. Every layer returns
//! typed, span-carrying [`SqlError`]s; nothing panics on malformed input.

#![warn(missing_docs)]

pub mod ast;
pub mod binder;
pub mod dialect;
pub mod emit;
pub mod error;
pub mod parser;
pub mod token;

use std::sync::Arc;

use pqo_catalog::Catalog;
use pqo_optimizer::QueryTemplate;

pub use binder::bind;
pub use dialect::{Dialect, DialectKind, DuckDb, MySql, Postgres};
pub use error::{Span, SqlError, SqlErrorKind};
pub use parser::parse;
pub use token::tokenize;

/// Directives read from a template file's leading `-- pqo:` comments.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Directives {
    /// `-- pqo:catalog <name>` — the catalog the template binds against.
    pub catalog: Option<String>,
    /// `-- pqo:dialect <name>` — the SQL dialect of the file.
    pub dialect: Option<DialectKind>,
}

/// Extract `-- pqo:key value` directives from comment lines. Unknown
/// `pqo:` keys and malformed values are typed errors; ordinary comments
/// pass through untouched.
pub fn directives(src: &str) -> Result<Directives, SqlError> {
    let mut out = Directives::default();
    let mut offset = 0usize;
    for line in src.lines() {
        let trimmed = line.trim_start();
        let indent = line.len() - trimmed.len();
        if let Some(comment) = trimmed.strip_prefix("--") {
            let body = comment.trim();
            if let Some(rest) = body.strip_prefix("pqo:") {
                let span_start = offset + indent;
                let span = Span::new(span_start, offset + line.len());
                let mut parts = rest.splitn(2, char::is_whitespace);
                let key = parts.next().unwrap_or("");
                let value = parts.next().unwrap_or("").trim();
                if value.is_empty() {
                    return Err(SqlError::new(
                        SqlErrorKind::Directive(format!("`pqo:{key}` needs a value")),
                        span,
                    ));
                }
                match key {
                    "catalog" => out.catalog = Some(value.to_string()),
                    "dialect" => {
                        let d = DialectKind::parse(value)
                            .map_err(|e| SqlError::new(SqlErrorKind::Directive(e), span))?;
                        out.dialect = Some(d);
                    }
                    other => {
                        return Err(SqlError::new(
                            SqlErrorKind::Directive(format!(
                                "unknown directive `pqo:{other}` (catalog|dialect)"
                            )),
                            span,
                        ))
                    }
                }
            }
        }
        offset += line.len() + 1;
    }
    Ok(out)
}

/// A template compiled from SQL text.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// The bound, validated template.
    pub template: Arc<QueryTemplate>,
    /// The dialect the file declared (default: postgres).
    pub dialect: DialectKind,
}

/// Run the whole pipeline — directives, tokenize, parse, bind — on one
/// template file's text. `name` becomes the template name (for files, the
/// file stem). The file's `pqo:catalog` directive, if present, must match
/// `catalog`'s name.
pub fn compile(name: &str, src: &str, catalog: &Catalog) -> Result<Compiled, SqlError> {
    let dirs = directives(src)?;
    if let Some(c) = &dirs.catalog {
        if c != catalog.name() {
            return Err(SqlError::new(
                SqlErrorKind::Directive(format!(
                    "template declares catalog `{c}` but is bound against `{}`",
                    catalog.name()
                )),
                Span::point(0),
            ));
        }
    }
    let dialect = dirs.dialect.unwrap_or(DialectKind::Postgres);
    let stmt = parser::parse(src)?;
    let template = binder::bind(&stmt, catalog, dialect, name)?;
    Ok(Compiled { template, dialect })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_catalog::schemas;

    const FILE: &str = "-- pqo:catalog tpch_skew\n-- pqo:dialect postgres\n\
        -- a plain comment\n\
        SELECT count(*) FROM orders o JOIN lineitem l ON o.orders_pk = l.orders_fk\n\
        WHERE o.o_totalprice <= $1 AND l.l_extendedprice <= $2\n";

    #[test]
    fn directives_parse() {
        let d = directives(FILE).unwrap();
        assert_eq!(d.catalog.as_deref(), Some("tpch_skew"));
        assert_eq!(d.dialect, Some(DialectKind::Postgres));
    }

    #[test]
    fn directive_errors_are_typed() {
        for bad in [
            "-- pqo:catalog\nSELECT 1",
            "-- pqo:dialect oracle\nSELECT 1",
            "-- pqo:nope x\nSELECT 1",
        ] {
            let err = directives(bad).unwrap_err();
            assert!(matches!(err.kind, SqlErrorKind::Directive(_)), "{bad}");
        }
    }

    #[test]
    fn compile_end_to_end() {
        let cat = schemas::tpch_skew();
        let c = compile("q", FILE, &cat).unwrap();
        assert_eq!(c.template.name, "q");
        assert_eq!(c.template.dimensions(), 2);
        assert_eq!(c.dialect, DialectKind::Postgres);
    }

    #[test]
    fn compile_rejects_catalog_mismatch() {
        let cat = schemas::tpcds();
        let err = compile("q", FILE, &cat).unwrap_err();
        assert!(matches!(err.kind, SqlErrorKind::Directive(_)));
    }

    #[test]
    fn dialect_is_case_insensitive_in_directives() {
        let src = "-- pqo:dialect DuckDB\nSELECT * FROM orders WHERE o_totalprice <= ?";
        let cat = schemas::tpch_skew();
        let c = compile("q", src, &cat).unwrap();
        assert_eq!(c.dialect, DialectKind::DuckDb);
    }
}
