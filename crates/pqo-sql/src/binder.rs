//! Name resolution and lowering from the AST into a `QueryTemplate`.
//!
//! The binder resolves tables/columns against a [`Catalog`] and lowers the
//! statement with exactly the derivations `TemplateBuilder` uses, so a
//! bound `.sql` template is interchangeable with a hand-built one:
//!
//! * `JOIN ... ON a.x = b.y` (and `WHERE a.x = b.y`) → a `JoinEdge` with
//!   selectivity `1 / max(ndv(a.x), ndv(b.y))` (NDVs floored at 1).
//! * `col <= $k` / `col >= $k` (also `<`, `>`) → a `ParamPredicate`
//!   dimension. With `$n` placeholders, dimension order is parameter-number
//!   order and the numbers must cover `1..=d` exactly; with `?`, dimension
//!   order is appearance order. Mixing the styles is an error.
//! * `col = 42` → a `FixedPredicate` with selectivity `1 / max(ndv, 1)`;
//!   `col <= 42` / `col >= 42` use the column histogram's
//!   `selectivity_le` / `selectivity_ge` (already clamped to
//!   `[MIN_SELECTIVITY, 1]`).
//! * `GROUP BY c1, …` (or a bare aggregate projection) → an
//!   `AggregateSpec` whose group count is the product of the grouping
//!   columns' NDVs (1 for a bare aggregate).
//! * `ORDER BY …` → the template's `order_by` flag.

use std::sync::Arc;

use pqo_catalog::Catalog;
use pqo_optimizer::template::{
    AggregateSpec, FixedPredicate, JoinEdge, ParamPredicate, QueryTemplate, RangeOp, RelationRef,
};

use crate::ast::{CmpOp, ColumnRef, Name, Predicate, Scalar, SelectItem, SelectStmt};
use crate::dialect::DialectKind;
use crate::error::{Span, SqlError, SqlErrorKind};

/// Bind `stmt` against `catalog`, producing a validated template named
/// `name`. `dialect` gates placeholder and quoting styles.
pub fn bind(
    stmt: &SelectStmt,
    catalog: &Catalog,
    dialect: DialectKind,
    name: &str,
) -> Result<Arc<QueryTemplate>, SqlError> {
    Binder {
        stmt,
        catalog,
        dialect,
        relations: Vec::new(),
    }
    .run(name)
}

struct Binder<'a> {
    stmt: &'a SelectStmt,
    catalog: &'a Catalog,
    dialect: DialectKind,
    /// `(bound name, RelationRef)` in FROM/JOIN order.
    relations: Vec<(String, RelationRef)>,
}

/// A parameterized predicate before dimension ordering is fixed.
struct PendingParam {
    pred: ParamPredicate,
    /// `Some(n)` for `$n`, `None` for `?`.
    index: Option<u32>,
    span: Span,
}

impl<'a> Binder<'a> {
    fn check_name(&self, n: &Name) -> Result<(), SqlError> {
        if let Some(style) = n.quote {
            self.dialect.check_quote(style, n.span)?;
        }
        Ok(())
    }

    fn add_relation(&mut self, table: &Name, alias: Option<&Name>) -> Result<usize, SqlError> {
        self.check_name(table)?;
        if let Some(a) = alias {
            self.check_name(a)?;
        }
        let Some(def) = self.catalog.table(&table.text) else {
            return Err(SqlError::new(
                SqlErrorKind::UnknownTable(table.text.clone()),
                table.span,
            ));
        };
        let bound = alias.map(|a| a.text.as_str()).unwrap_or(&table.text);
        if self.relations.iter().any(|(n, _)| n == bound) {
            let span = alias.map(|a| a.span).unwrap_or(table.span);
            return Err(SqlError::new(
                SqlErrorKind::DuplicateAlias(bound.to_string()),
                span,
            ));
        }
        self.relations.push((
            bound.to_string(),
            RelationRef {
                table: Arc::clone(def),
                alias: bound.to_string(),
            },
        ));
        Ok(self.relations.len() - 1)
    }

    /// Resolve a column reference to `(relation index, column index)`.
    fn resolve(&self, col: &ColumnRef) -> Result<(usize, usize), SqlError> {
        if let Some(q) = &col.qualifier {
            self.check_name(q)?;
        }
        self.check_name(&col.column)?;
        match &col.qualifier {
            Some(q) => {
                let Some(rel) = self.relations.iter().position(|(n, _)| n == &q.text) else {
                    return Err(SqlError::new(
                        SqlErrorKind::UnknownTable(q.text.clone()),
                        q.span,
                    ));
                };
                let table = &self.relations[rel].1.table;
                let Some(ci) = table.column_index(&col.column.text) else {
                    return Err(SqlError::new(
                        SqlErrorKind::UnknownColumn {
                            column: col.column.text.clone(),
                            scope: format!("`{}` (table `{}`)", q.text, table.name),
                        },
                        col.column.span,
                    ));
                };
                Ok((rel, ci))
            }
            None => {
                let mut found = None;
                for (rel, (_, r)) in self.relations.iter().enumerate() {
                    if let Some(ci) = r.table.column_index(&col.column.text) {
                        if found.is_some() {
                            return Err(SqlError::new(
                                SqlErrorKind::AmbiguousColumn(col.column.text.clone()),
                                col.column.span,
                            ));
                        }
                        found = Some((rel, ci));
                    }
                }
                found.ok_or_else(|| {
                    SqlError::new(
                        SqlErrorKind::UnknownColumn {
                            column: col.column.text.clone(),
                            scope: "any FROM relation".into(),
                        },
                        col.column.span,
                    )
                })
            }
        }
    }

    fn ndv(&self, rel: usize, col: usize) -> u64 {
        self.relations[rel].1.table.columns[col].stats.ndv.max(1)
    }

    fn join_edge(&self, l: &ColumnRef, r: &ColumnRef) -> Result<JoinEdge, SqlError> {
        let left = self.resolve(l)?;
        let right = self.resolve(r)?;
        if left.0 == right.0 {
            return Err(SqlError::new(
                SqlErrorKind::Semantic(format!(
                    "join condition compares two columns of the same relation `{}`",
                    self.relations[left.0].0
                )),
                l.span.to(r.span),
            ));
        }
        let selectivity = 1.0 / self.ndv(left.0, left.1).max(self.ndv(right.0, right.1)) as f64;
        Ok(JoinEdge {
            left,
            right,
            selectivity,
        })
    }

    /// Lower one WHERE conjunct into the right bucket.
    fn lower_predicate(
        &self,
        p: &Predicate,
        params: &mut Vec<PendingParam>,
        fixed: &mut Vec<FixedPredicate>,
        joins: &mut Vec<JoinEdge>,
    ) -> Result<(), SqlError> {
        // Reject string literals outright: every template column is numeric.
        for side in [&p.lhs, &p.rhs] {
            if let Scalar::Str { span, .. } = side {
                return Err(SqlError::new(
                    SqlErrorKind::Unsupported(
                        "string literals (template columns are numeric)".into(),
                    ),
                    *span,
                ));
            }
        }
        // Normalize so the column is on the left.
        let (col, op, rhs) = match (&p.lhs, &p.rhs) {
            (Scalar::Column(l), _) => (l, p.op, &p.rhs),
            (_, Scalar::Column(r)) => (r, p.op.flipped(), &p.lhs),
            _ => {
                return Err(SqlError::new(
                    SqlErrorKind::Unsupported("comparison without a column operand".into()),
                    p.span,
                ))
            }
        };
        match rhs {
            Scalar::Column(other) => {
                if op != CmpOp::Eq {
                    return Err(SqlError::new(
                        SqlErrorKind::Unsupported(
                            "non-equality comparison between two columns".into(),
                        ),
                        p.span,
                    ));
                }
                joins.push(self.join_edge(col, other)?);
            }
            Scalar::Placeholder { index, span } => {
                self.dialect.check_placeholder(*index, *span)?;
                let range_op = match op {
                    CmpOp::Le | CmpOp::Lt => RangeOp::Le,
                    CmpOp::Ge | CmpOp::Gt => RangeOp::Ge,
                    CmpOp::Eq => {
                        return Err(SqlError::new(
                            SqlErrorKind::Unsupported(
                                "parameterized equality (templates use one-sided ranges: \
                                 `col <= $n` or `col >= $n`)"
                                    .into(),
                            ),
                            p.span,
                        ))
                    }
                };
                let (relation, column) = self.resolve(col)?;
                params.push(PendingParam {
                    pred: ParamPredicate {
                        relation,
                        column,
                        op: range_op,
                    },
                    index: *index,
                    span: *span,
                });
            }
            Scalar::Number { value, .. } => {
                let (relation, column) = self.resolve(col)?;
                let stats = &self.relations[relation].1.table.columns[column].stats;
                let selectivity = match op {
                    CmpOp::Eq => 1.0 / stats.ndv.max(1) as f64,
                    CmpOp::Le | CmpOp::Lt => stats.histogram.selectivity_le(*value),
                    CmpOp::Ge | CmpOp::Gt => stats.histogram.selectivity_ge(*value),
                };
                fixed.push(FixedPredicate {
                    relation,
                    selectivity,
                });
            }
            Scalar::Str { .. } => unreachable!("rejected above"),
        }
        Ok(())
    }

    /// Fix dimension order: `$n` → parameter-number order covering `1..=d`
    /// exactly; `?` → appearance order. Mixing styles is an error.
    fn order_params(&self, mut params: Vec<PendingParam>) -> Result<Vec<ParamPredicate>, SqlError> {
        let numbered = params.iter().filter(|p| p.index.is_some()).count();
        if numbered != 0 && numbered != params.len() {
            let span = params
                .iter()
                .map(|p| p.span)
                .reduce(Span::to)
                .unwrap_or(self.stmt.span);
            return Err(SqlError::new(
                SqlErrorKind::Placeholder("cannot mix `$n` and `?` placeholders".into()),
                span,
            ));
        }
        if numbered == 0 {
            return Ok(params.into_iter().map(|p| p.pred).collect());
        }
        params.sort_by_key(|p| p.index.unwrap_or(0));
        let d = params.len() as u32;
        for (slot, p) in params.iter().enumerate() {
            let n = p.index.unwrap_or(0);
            if n != slot as u32 + 1 {
                let msg = if params.iter().filter(|q| q.index == p.index).count() > 1 {
                    format!("parameter ${n} is used in more than one predicate")
                } else {
                    format!("parameters must cover $1..=${d} exactly; found ${n}")
                };
                return Err(SqlError::new(SqlErrorKind::Placeholder(msg), p.span));
            }
        }
        Ok(params.into_iter().map(|p| p.pred).collect())
    }

    fn run(mut self, name: &str) -> Result<Arc<QueryTemplate>, SqlError> {
        // FROM entries, then each JOIN's table, in source order — the same
        // relation numbering TemplateBuilder callers use.
        for t in &self.stmt.from {
            self.add_relation(&t.table, t.alias.as_ref())?;
        }
        let mut join_edges = Vec::new();
        for j in &self.stmt.joins {
            self.add_relation(&j.table.table, j.table.alias.as_ref())?;
            join_edges.push(self.join_edge(&j.left, &j.right)?);
        }

        // Projection columns must resolve (Star and count(*) aside).
        let mut has_aggregate = false;
        for item in &self.stmt.projection {
            match item {
                SelectItem::Star => {}
                SelectItem::Column(c) => {
                    self.resolve(c)?;
                }
                SelectItem::Aggregate { arg, .. } => {
                    has_aggregate = true;
                    if let Some(c) = arg {
                        self.resolve(c)?;
                    }
                }
            }
        }

        let mut params = Vec::new();
        let mut fixed_preds = Vec::new();
        for p in &self.stmt.predicates {
            self.lower_predicate(p, &mut params, &mut fixed_preds, &mut join_edges)?;
        }
        let param_preds = self.order_params(params)?;
        if param_preds.is_empty() {
            return Err(SqlError::new(
                SqlErrorKind::Semantic(
                    "template has no parameterized predicate (add `col <= $1` or `col >= $1`)"
                        .into(),
                ),
                self.stmt.span,
            ));
        }

        let aggregate = if !self.stmt.group_by.is_empty() {
            let mut groups = 1.0f64;
            for c in &self.stmt.group_by {
                let (rel, col) = self.resolve(c)?;
                groups *= self.ndv(rel, col) as f64;
            }
            Some(AggregateSpec { groups })
        } else if has_aggregate {
            Some(AggregateSpec { groups: 1.0 })
        } else {
            None
        };

        for c in &self.stmt.order_by {
            self.resolve(c)?;
        }

        let template = QueryTemplate {
            name: name.to_string(),
            relations: self.relations.into_iter().map(|(_, r)| r).collect(),
            join_edges,
            param_preds,
            fixed_preds,
            aggregate,
            order_by: !self.stmt.order_by.is_empty(),
        };
        template
            .validate()
            .map_err(|e| SqlError::new(SqlErrorKind::Semantic(e), self.stmt.span))?;
        Ok(Arc::new(template))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use pqo_catalog::schemas;

    fn bind_pg(src: &str) -> Result<Arc<QueryTemplate>, SqlError> {
        let cat = schemas::tpch_skew();
        bind(&parse(src)?, &cat, DialectKind::Postgres, "t")
    }

    #[test]
    fn lowers_like_template_builder() {
        let t = bind_pg(
            "SELECT count(*) FROM orders o JOIN lineitem l ON o.orders_pk = l.orders_fk \
             WHERE o.o_totalprice <= $1 AND l.l_extendedprice <= $2 \
             GROUP BY o.o_shippriority",
        )
        .unwrap();
        use pqo_optimizer::template::TemplateBuilder;
        let cat = schemas::tpch_skew();
        let mut b = TemplateBuilder::new("t");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        b.aggregate(5.0); // o_shippriority has ndv 5
        let oracle = b.build();

        assert_eq!(t.relations.len(), oracle.relations.len());
        assert_eq!(t.join_edges.len(), 1);
        assert_eq!(t.join_edges[0].left, oracle.join_edges[0].left);
        assert_eq!(t.join_edges[0].right, oracle.join_edges[0].right);
        assert_eq!(
            t.join_edges[0].selectivity,
            oracle.join_edges[0].selectivity
        );
        assert_eq!(t.param_preds.len(), 2);
        assert_eq!(t.param_preds[0].relation, oracle.param_preds[0].relation);
        assert_eq!(t.param_preds[0].column, oracle.param_preds[0].column);
        assert_eq!(t.param_preds[1].column, oracle.param_preds[1].column);
        assert_eq!(t.aggregate.as_ref().unwrap().groups, 5.0);
        assert!(!t.order_by);
    }

    #[test]
    fn numbered_params_define_dimension_order() {
        let t = bind_pg("SELECT * FROM lineitem WHERE l_extendedprice <= $2 AND l_shipdate >= $1")
            .unwrap();
        // $1 is the first dimension even though it appears second.
        let lineitem = schemas::tpch_skew();
        let li = lineitem.expect_table("lineitem");
        assert_eq!(
            t.param_preds[0].column,
            li.column_index("l_shipdate").unwrap()
        );
        assert_eq!(t.param_preds[0].op, RangeOp::Ge);
        assert_eq!(
            t.param_preds[1].column,
            li.column_index("l_extendedprice").unwrap()
        );
    }

    #[test]
    fn where_join_and_flipped_operands() {
        let t = bind_pg(
            "SELECT * FROM orders o, lineitem l \
             WHERE o.orders_pk = l.orders_fk AND $1 >= o.o_totalprice",
        )
        .unwrap();
        assert_eq!(t.join_edges.len(), 1);
        // `$1 >= col` normalizes to `col <= $1`.
        assert_eq!(t.param_preds[0].op, RangeOp::Le);
    }

    #[test]
    fn constant_filters_use_stats() {
        let t = bind_pg("SELECT * FROM orders WHERE o_shippriority = 3 AND o_totalprice <= $1")
            .unwrap();
        assert_eq!(t.fixed_preds.len(), 1);
        assert_eq!(t.fixed_preds[0].selectivity, 1.0 / 5.0); // ndv(o_shippriority) = 5
        let t2 = bind_pg("SELECT * FROM orders WHERE o_orderdate <= 1000 AND o_totalprice <= $1")
            .unwrap();
        let cat = schemas::tpch_skew();
        let col = cat.expect_table("orders").column("o_orderdate").unwrap();
        assert_eq!(
            t2.fixed_preds[0].selectivity,
            col.stats.histogram.selectivity_le(1000.0)
        );
    }

    #[test]
    fn binder_errors_are_typed() {
        type KindCheck = fn(&SqlErrorKind) -> bool;
        let cases: &[(&str, KindCheck)] = &[
            ("SELECT * FROM nope WHERE x <= $1", |k| {
                matches!(k, SqlErrorKind::UnknownTable(_))
            }),
            ("SELECT * FROM orders WHERE nope <= $1", |k| {
                matches!(k, SqlErrorKind::UnknownColumn { .. })
            }),
            (
                "SELECT * FROM supplier s, customer c \
                 WHERE s.nation_fk = c.nation_fk AND nation_fk <= $1",
                |k| matches!(k, SqlErrorKind::AmbiguousColumn(_)),
            ),
            (
                "SELECT * FROM orders o, lineitem o WHERE o.o_totalprice <= $1",
                |k| matches!(k, SqlErrorKind::DuplicateAlias(_)),
            ),
            (
                "SELECT * FROM orders WHERE o_totalprice <= $1 AND o_orderdate <= $3",
                |k| matches!(k, SqlErrorKind::Placeholder(_)),
            ),
            (
                "SELECT * FROM orders WHERE o_totalprice <= $1 AND o_orderdate <= $1",
                |k| matches!(k, SqlErrorKind::Placeholder(_)),
            ),
            ("SELECT * FROM orders WHERE o_totalprice = $1", |k| {
                matches!(k, SqlErrorKind::Unsupported(_))
            }),
            ("SELECT * FROM orders WHERE o_totalprice <= 'big'", |k| {
                matches!(k, SqlErrorKind::Unsupported(_))
            }),
            (
                "SELECT * FROM orders, lineitem WHERE o_totalprice <= $1",
                |k| matches!(k, SqlErrorKind::Semantic(_)),
            ),
            (
                "SELECT * FROM orders o WHERE o.orders_pk = o.customer_fk",
                |k| matches!(k, SqlErrorKind::Semantic(_)),
            ),
        ];
        for (src, want) in cases {
            let err = bind_pg(src).expect_err(src);
            assert!(want(&err.kind), "{src}: {:?}", err.kind);
            assert!(err.span.end >= err.span.start);
        }

        // Mixing `$n` and `?` is only reachable under duckdb, the one
        // dialect that accepts both styles.
        let cat = schemas::tpch_skew();
        let stmt =
            parse("SELECT * FROM orders WHERE o_totalprice <= $1 AND o_orderdate <= ?").unwrap();
        let err = bind(&stmt, &cat, DialectKind::DuckDb, "t").unwrap_err();
        assert!(
            matches!(err.kind, SqlErrorKind::Placeholder(_)),
            "{:?}",
            err.kind
        );
    }

    #[test]
    fn dialect_gates_placeholders_and_quotes() {
        let cat = schemas::tpch_skew();
        let stmt = parse("SELECT * FROM orders WHERE o_totalprice <= ?").unwrap();
        assert!(bind(&stmt, &cat, DialectKind::Postgres, "t").is_err());
        assert!(bind(&stmt, &cat, DialectKind::MySql, "t").is_ok());
        assert!(bind(&stmt, &cat, DialectKind::DuckDb, "t").is_ok());

        let stmt = parse("SELECT * FROM `orders` WHERE o_totalprice <= ?").unwrap();
        assert!(bind(&stmt, &cat, DialectKind::MySql, "t").is_ok());
        assert!(bind(&stmt, &cat, DialectKind::DuckDb, "t").is_err());

        let stmt = parse("SELECT * FROM \"orders\" WHERE o_totalprice <= $1").unwrap();
        assert!(bind(&stmt, &cat, DialectKind::Postgres, "t").is_ok());
        assert!(bind(&stmt, &cat, DialectKind::MySql, "t").is_err());
    }

    #[test]
    fn order_by_and_bare_aggregate() {
        let t =
            bind_pg("SELECT count(*) FROM orders WHERE o_totalprice <= $1 ORDER BY o_orderdate")
                .unwrap();
        assert!(t.order_by);
        assert_eq!(t.aggregate.as_ref().unwrap().groups, 1.0);
    }
}
