//! Recursive-descent parser from tokens to [`SelectStmt`].
//!
//! The parser is total: any token sequence either parses or yields a typed
//! [`SqlError`] with the span of the offending token. Recognized-but-
//! unsupported constructs (outer joins, subqueries, `OR`, arithmetic) are
//! reported as [`SqlErrorKind::Unsupported`] rather than a generic parse
//! error, so callers can tell "not SQL" from "not this subset".

use crate::ast::{
    CmpOp, ColumnRef, JoinOn, Name, Predicate, Scalar, SelectItem, SelectStmt, TableRef,
};
use crate::error::{Span, SqlError, SqlErrorKind};
use crate::token::{tokenize, Kw, SpannedTok, Tok, UNSUPPORTED_WORDS};

/// Aggregate function names the projection accepts.
const AGG_FUNCS: &[&str] = &["count", "sum", "min", "max", "avg"];

/// Parse one `SELECT` statement from SQL text.
pub fn parse(src: &str) -> Result<SelectStmt, SqlError> {
    let toks = tokenize(src)?;
    Parser {
        toks: &toks,
        pos: 0,
        end: src.len(),
    }
    .stmt()
}

struct Parser<'a> {
    toks: &'a [SpannedTok],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a SpannedTok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a SpannedTok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.end))
    }

    fn err_expected(&self, expected: &str) -> SqlError {
        match self.peek() {
            Some(t) => {
                if let Tok::Ident(w) = &t.tok {
                    if UNSUPPORTED_WORDS.contains(&w.as_str()) {
                        return SqlError::new(
                            SqlErrorKind::Unsupported(format!(
                                "`{}` is not part of the template subset",
                                w.to_ascii_uppercase()
                            )),
                            t.span,
                        );
                    }
                }
                SqlError::new(
                    SqlErrorKind::UnexpectedToken {
                        expected: expected.into(),
                        found: t.tok.describe(),
                    },
                    t.span,
                )
            }
            None => SqlError::new(
                SqlErrorKind::UnexpectedEnd {
                    expected: expected.into(),
                },
                Span::point(self.end),
            ),
        }
    }

    fn expect_kw(&mut self, kw: Kw) -> Result<Span, SqlError> {
        match self.peek() {
            Some(t) if t.tok == Tok::Keyword(kw) => {
                self.pos += 1;
                Ok(t.span)
            }
            _ => Err(self.err_expected(kw.as_str())),
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn name(&mut self, what: &str) -> Result<Name, SqlError> {
        match self.peek() {
            Some(t) => match &t.tok {
                Tok::Ident(s) => {
                    if UNSUPPORTED_WORDS.contains(&s.as_str()) {
                        return Err(SqlError::new(
                            SqlErrorKind::Unsupported(format!(
                                "`{}` is not part of the template subset",
                                s.to_ascii_uppercase()
                            )),
                            t.span,
                        ));
                    }
                    self.pos += 1;
                    Ok(Name {
                        text: s.clone(),
                        quote: None,
                        span: t.span,
                    })
                }
                Tok::Quoted(s, style) => {
                    self.pos += 1;
                    Ok(Name {
                        text: s.clone(),
                        quote: Some(*style),
                        span: t.span,
                    })
                }
                _ => Err(self.err_expected(what)),
            },
            None => Err(self.err_expected(what)),
        }
    }

    fn column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.name("a column name")?;
        if self.eat(&Tok::Dot) {
            let col = self.name("a column name after `.`")?;
            let span = first.span.to(col.span);
            Ok(ColumnRef {
                qualifier: Some(first),
                column: col,
                span,
            })
        } else {
            let span = first.span;
            Ok(ColumnRef {
                qualifier: None,
                column: first,
                span,
            })
        }
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.name("a table name")?;
        let mut span = table.span;
        let alias = if self.eat(&Tok::Keyword(Kw::As)) {
            let a = self.name("an alias after AS")?;
            span = span.to(a.span);
            Some(a)
        } else if matches!(self.peek().map(|t| &t.tok), Some(Tok::Quoted(..)))
            || matches!(self.peek().map(|t| &t.tok),
                Some(Tok::Ident(w)) if !UNSUPPORTED_WORDS.contains(&w.as_str()))
        {
            let a = self.name("an alias")?;
            span = span.to(a.span);
            Some(a)
        } else {
            None
        };
        Ok(TableRef { table, alias, span })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if let Some(t) = self.peek() {
            if t.tok == Tok::Star {
                self.pos += 1;
                return Ok(SelectItem::Star);
            }
            if let Tok::Ident(f) = &t.tok {
                if AGG_FUNCS.contains(&f.as_str())
                    && self.toks.get(self.pos + 1).map(|t| &t.tok) == Some(&Tok::LParen)
                {
                    let func = f.clone();
                    let start = t.span;
                    self.pos += 2;
                    let arg = if self.eat(&Tok::Star) {
                        if func != "count" {
                            return Err(SqlError::new(
                                SqlErrorKind::Unsupported(format!("{func}(*) — only count(*)")),
                                start,
                            ));
                        }
                        None
                    } else {
                        Some(self.column_ref()?)
                    };
                    let close = self.here();
                    if !self.eat(&Tok::RParen) {
                        return Err(self.err_expected("`)`"));
                    }
                    return Ok(SelectItem::Aggregate {
                        func,
                        arg,
                        span: start.to(close),
                    });
                }
            }
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn scalar(&mut self) -> Result<Scalar, SqlError> {
        match self.peek() {
            Some(t) => match &t.tok {
                Tok::Number(v) => {
                    self.pos += 1;
                    Ok(Scalar::Number {
                        value: *v,
                        span: t.span,
                    })
                }
                Tok::Str(s) => {
                    self.pos += 1;
                    Ok(Scalar::Str {
                        text: s.clone(),
                        span: t.span,
                    })
                }
                Tok::Placeholder(idx) => {
                    self.pos += 1;
                    Ok(Scalar::Placeholder {
                        index: *idx,
                        span: t.span,
                    })
                }
                Tok::Ident(_) | Tok::Quoted(..) => Ok(Scalar::Column(self.column_ref()?)),
                _ => Err(self.err_expected("a column, literal or placeholder")),
            },
            None => Err(self.err_expected("a column, literal or placeholder")),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, SqlError> {
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Ge) => CmpOp::Ge,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Eq) => CmpOp::Eq,
            _ => return Err(self.err_expected("a comparison operator (`<=`, `>=`, `<`, `>`, `=`)")),
        };
        self.pos += 1;
        Ok(op)
    }

    fn predicate(&mut self) -> Result<Predicate, SqlError> {
        let lhs = self.scalar()?;
        let op = self.cmp_op()?;
        let rhs = self.scalar()?;
        let span = lhs.span().to(rhs.span());
        Ok(Predicate { lhs, op, rhs, span })
    }

    fn column_list(&mut self) -> Result<Vec<ColumnRef>, SqlError> {
        let mut cols = vec![self.column_ref()?];
        while self.eat(&Tok::Comma) {
            cols.push(self.column_ref()?);
        }
        Ok(cols)
    }

    fn stmt(&mut self) -> Result<SelectStmt, SqlError> {
        let start = self.expect_kw(Kw::Select)?;

        let mut projection = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            projection.push(self.select_item()?);
        }

        self.expect_kw(Kw::From)?;
        let mut from = vec![self.table_ref()?];
        let mut joins = Vec::new();
        loop {
            if self.eat(&Tok::Comma) {
                if !joins.is_empty() {
                    return Err(SqlError::new(
                        SqlErrorKind::Unsupported("comma-FROM entries after a JOIN clause".into()),
                        self.here(),
                    ));
                }
                from.push(self.table_ref()?);
                continue;
            }
            let inner = self.eat(&Tok::Keyword(Kw::Inner));
            if self.peek().map(|t| &t.tok) == Some(&Tok::Keyword(Kw::Join)) {
                let jspan = self.next().map(|t| t.span).unwrap_or_else(|| self.here());
                let table = self.table_ref()?;
                self.expect_kw(Kw::On)?;
                let left = self.column_ref()?;
                if !self.eat(&Tok::Eq) {
                    return Err(self.err_expected("`=` in a join condition"));
                }
                let right = self.column_ref()?;
                let span = jspan.to(right.span);
                joins.push(JoinOn {
                    table,
                    left,
                    right,
                    span,
                });
                continue;
            }
            if inner {
                return Err(self.err_expected("JOIN after INNER"));
            }
            break;
        }

        let mut predicates = Vec::new();
        if self.eat(&Tok::Keyword(Kw::Where)) {
            predicates.push(self.predicate()?);
            while self.eat(&Tok::Keyword(Kw::And)) {
                predicates.push(self.predicate()?);
            }
        }

        let mut group_by = Vec::new();
        if self.eat(&Tok::Keyword(Kw::Group)) {
            self.expect_kw(Kw::By)?;
            group_by = self.column_list()?;
        }

        let mut order_by = Vec::new();
        if self.eat(&Tok::Keyword(Kw::Order)) {
            self.expect_kw(Kw::By)?;
            order_by = self.column_list()?;
            // Direction applies to the whole list; sortedness is all the
            // cost model sees, so the direction itself is discarded.
            let _ = self.eat(&Tok::Keyword(Kw::Asc)) || self.eat(&Tok::Keyword(Kw::Desc));
        }

        let end_span = self.here();
        self.eat(&Tok::Semi);
        if self.peek().is_some() {
            return Err(self.err_expected("end of statement"));
        }

        Ok(SelectStmt {
            projection,
            from,
            joins,
            predicates,
            group_by,
            order_by,
            span: start.to(end_span),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let s = parse("SELECT * FROM lineitem WHERE l_shipdate <= $1").unwrap();
        assert_eq!(s.projection, vec![SelectItem::Star]);
        assert_eq!(s.from.len(), 1);
        assert_eq!(s.from[0].table.text, "lineitem");
        assert_eq!(s.predicates.len(), 1);
        assert!(s.group_by.is_empty() && s.order_by.is_empty());
    }

    #[test]
    fn parses_joins_aliases_groups() {
        let s = parse(
            "SELECT o.o_totalprice, count(*) FROM orders AS o \
             JOIN lineitem l ON o.orders_pk = l.orders_fk \
             WHERE o.o_totalprice <= $1 AND l.l_discount = 0.05 \
             GROUP BY o.o_shippriority ORDER BY o.o_totalprice DESC",
        )
        .unwrap();
        assert_eq!(s.from[0].bound_name(), "o");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].table.bound_name(), "l");
        assert_eq!(s.predicates.len(), 2);
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
    }

    #[test]
    fn comma_from_is_accepted() {
        let s = parse("SELECT * FROM a, b WHERE a.x = b.y AND a.m <= ?").unwrap();
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.predicates.len(), 2);
    }

    #[test]
    fn unsupported_constructs_are_typed() {
        for src in [
            "SELECT * FROM a LEFT JOIN b ON a.x = b.y",
            "SELECT DISTINCT x FROM a",
            "SELECT * FROM a WHERE x = 1 OR y = 2",
            "SELECT * FROM a WHERE x BETWEEN 1 AND 2",
        ] {
            let err = parse(src).unwrap_err();
            assert!(
                matches!(err.kind, SqlErrorKind::Unsupported(_)),
                "{src}: {err:?}"
            );
        }
    }

    #[test]
    fn parse_errors_are_typed_with_spans() {
        let err = parse("SELECT FROM t").unwrap_err();
        assert!(matches!(err.kind, SqlErrorKind::UnexpectedToken { .. }));
        let err = parse("SELECT *").unwrap_err();
        assert!(matches!(err.kind, SqlErrorKind::UnexpectedEnd { .. }));
        let err = parse("SELECT * FROM t WHERE").unwrap_err();
        assert!(matches!(err.kind, SqlErrorKind::UnexpectedEnd { .. }));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("SELECT * FROM t ; SELECT").unwrap_err();
        assert!(matches!(err.kind, SqlErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn count_star_only() {
        assert!(parse("SELECT sum(*) FROM t").is_err());
        assert!(parse("SELECT count(*) FROM t").is_ok());
    }
}
