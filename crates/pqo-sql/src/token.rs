//! Never-panic SQL tokenizer.
//!
//! The tokenizer is dialect-agnostic: it accepts both `"double-quoted"` and
//! `` `backtick-quoted` `` identifiers and both `$n` and `?` placeholders,
//! recording which style was used so the dialect layer can reject the ones
//! it doesn't own. Every token carries the byte [`Span`] it was read from.

use crate::error::{Span, SqlError, SqlErrorKind};

/// Identifier quoting styles (validated per dialect at parse time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuoteStyle {
    /// `"name"` (postgres, duckdb).
    Double,
    /// `` `name` `` (mysql).
    Backtick,
}

/// Keywords the grammar knows. Anything else lexes as an identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the keywords themselves
pub enum Kw {
    Select,
    From,
    Where,
    Inner,
    Join,
    On,
    And,
    As,
    Group,
    Order,
    By,
    Asc,
    Desc,
}

impl Kw {
    fn from_ident(lower: &str) -> Option<Kw> {
        Some(match lower {
            "select" => Kw::Select,
            "from" => Kw::From,
            "where" => Kw::Where,
            "inner" => Kw::Inner,
            "join" => Kw::Join,
            "on" => Kw::On,
            "and" => Kw::And,
            "as" => Kw::As,
            "group" => Kw::Group,
            "order" => Kw::Order,
            "by" => Kw::By,
            "asc" => Kw::Asc,
            "desc" => Kw::Desc,
            _ => return None,
        })
    }

    /// The canonical spelling, for diagnostics.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kw::Select => "SELECT",
            Kw::From => "FROM",
            Kw::Where => "WHERE",
            Kw::Inner => "INNER",
            Kw::Join => "JOIN",
            Kw::On => "ON",
            Kw::And => "AND",
            Kw::As => "AS",
            Kw::Group => "GROUP",
            Kw::Order => "ORDER",
            Kw::By => "BY",
            Kw::Asc => "ASC",
            Kw::Desc => "DESC",
        }
    }
}

/// Words we recognize but refuse (outer joins, subqueries, …), so the
/// parser can tell "not SQL" from "not this subset". Kept here next to the
/// keywords because together they form the reserved-word set.
pub const UNSUPPORTED_WORDS: &[&str] = &[
    "left", "right", "full", "outer", "cross", "union", "having", "limit", "offset", "distinct",
    "or", "not", "in", "between", "like", "exists", "case",
];

/// Whether `s` (lowercase) is reserved — a keyword or a recognized
/// unsupported construct — and therefore needs quoting when emitted as an
/// identifier.
pub fn is_reserved(s: &str) -> bool {
    Kw::from_ident(s).is_some() || UNSUPPORTED_WORDS.contains(&s)
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Unquoted identifier, lowercased.
    Ident(String),
    /// Quoted identifier, case preserved, with the quoting style used.
    Quoted(String, QuoteStyle),
    /// A recognized keyword.
    Keyword(Kw),
    /// Numeric literal.
    Number(f64),
    /// `'single-quoted'` string literal (`''` escapes a quote).
    Str(String),
    /// `$n` (`Some(n)`, 1-based) or `?` (`None`).
    Placeholder(Option<u32>),
    /// `*`
    Star,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
}

impl Tok {
    /// Short description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Quoted(s, _) => format!("identifier `{s}`"),
            Tok::Keyword(k) => format!("keyword {}", k.as_str()),
            Tok::Number(n) => format!("number {n}"),
            Tok::Str(_) => "string literal".into(),
            Tok::Placeholder(Some(n)) => format!("placeholder ${n}"),
            Tok::Placeholder(None) => "placeholder ?".into(),
            Tok::Star => "`*`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::Semi => "`;`".into(),
            Tok::Eq => "`=`".into(),
            Tok::Lt => "`<`".into(),
            Tok::Gt => "`>`".into(),
            Tok::Le => "`<=`".into(),
            Tok::Ge => "`>=`".into(),
        }
    }
}

/// A token plus where it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Its byte range in the source.
    pub span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenize `src`. Returns every token or the first lex error; never panics,
/// whatever bytes `src` holds.
pub fn tokenize(src: &str) -> Result<Vec<SpannedTok>, SqlError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut it = src.char_indices().peekable();

    while let Some(&(start, c)) = it.peek() {
        // Whitespace.
        if c.is_whitespace() {
            it.next();
            continue;
        }
        // `-- line comment`
        if c == '-' && bytes.get(start + 1) == Some(&b'-') {
            while let Some(&(_, ch)) = it.peek() {
                it.next();
                if ch == '\n' {
                    break;
                }
            }
            continue;
        }
        // `/* block comment */` (non-nesting)
        if c == '/' && bytes.get(start + 1) == Some(&b'*') {
            it.next();
            it.next();
            let mut closed = false;
            while let Some((i, ch)) = it.next() {
                if ch == '*' && bytes.get(i + 1) == Some(&b'/') {
                    it.next();
                    closed = true;
                    break;
                }
            }
            if !closed {
                return Err(SqlError::new(
                    SqlErrorKind::Lex("unterminated block comment".into()),
                    Span::new(start, src.len()),
                ));
            }
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut end = start;
            while let Some(&(i, ch)) = it.peek() {
                if is_ident_cont(ch) {
                    end = i + ch.len_utf8();
                    it.next();
                } else {
                    break;
                }
            }
            let word = &src[start..end];
            let lower = word.to_ascii_lowercase();
            let tok = match Kw::from_ident(&lower) {
                Some(k) => Tok::Keyword(k),
                None => Tok::Ident(lower),
            };
            out.push(SpannedTok {
                tok,
                span: Span::new(start, end),
            });
            continue;
        }
        // Quoted identifiers.
        if c == '"' || c == '`' {
            let style = if c == '"' {
                QuoteStyle::Double
            } else {
                QuoteStyle::Backtick
            };
            it.next();
            let mut name = String::new();
            let mut end = None;
            for (i, ch) in it.by_ref() {
                if ch == c {
                    end = Some(i + ch.len_utf8());
                    break;
                }
                name.push(ch);
            }
            let Some(end) = end else {
                return Err(SqlError::new(
                    SqlErrorKind::Lex(format!("unterminated quoted identifier (opened with {c})")),
                    Span::new(start, src.len()),
                ));
            };
            if name.is_empty() {
                return Err(SqlError::new(
                    SqlErrorKind::Lex("empty quoted identifier".into()),
                    Span::new(start, end),
                ));
            }
            out.push(SpannedTok {
                tok: Tok::Quoted(name, style),
                span: Span::new(start, end),
            });
            continue;
        }
        // String literals ('' escapes a quote).
        if c == '\'' {
            it.next();
            let mut text = String::new();
            let mut end = None;
            while let Some((i, ch)) = it.next() {
                if ch == '\'' {
                    if it.peek().map(|&(_, n)| n) == Some('\'') {
                        text.push('\'');
                        it.next();
                    } else {
                        end = Some(i + 1);
                        break;
                    }
                } else {
                    text.push(ch);
                }
            }
            let Some(end) = end else {
                return Err(SqlError::new(
                    SqlErrorKind::Lex("unterminated string literal".into()),
                    Span::new(start, src.len()),
                ));
            };
            out.push(SpannedTok {
                tok: Tok::Str(text),
                span: Span::new(start, end),
            });
            continue;
        }
        // Numbers: digits, optional fraction, optional exponent. A leading
        // `.5` is also accepted.
        if c.is_ascii_digit() || (c == '.' && bytes.get(start + 1).is_some_and(u8::is_ascii_digit))
        {
            let mut end = start;
            let mut seen_dot = false;
            let mut seen_exp = false;
            while let Some(&(i, ch)) = it.peek() {
                let ok = ch.is_ascii_digit()
                    || (ch == '.' && !seen_dot && !seen_exp)
                    || ((ch == 'e' || ch == 'E') && !seen_exp && i > start)
                    || ((ch == '+' || ch == '-')
                        && seen_exp
                        && matches!(bytes.get(i.wrapping_sub(1)), Some(b'e') | Some(b'E')));
                if !ok {
                    break;
                }
                seen_dot |= ch == '.';
                seen_exp |= ch == 'e' || ch == 'E';
                end = i + ch.len_utf8();
                it.next();
            }
            let text = &src[start..end];
            let Ok(v) = text.parse::<f64>() else {
                return Err(SqlError::new(
                    SqlErrorKind::Lex(format!("malformed number `{text}`")),
                    Span::new(start, end),
                ));
            };
            if !v.is_finite() {
                return Err(SqlError::new(
                    SqlErrorKind::Lex(format!("number `{text}` overflows")),
                    Span::new(start, end),
                ));
            }
            out.push(SpannedTok {
                tok: Tok::Number(v),
                span: Span::new(start, end),
            });
            continue;
        }
        // Placeholders.
        if c == '?' {
            it.next();
            out.push(SpannedTok {
                tok: Tok::Placeholder(None),
                span: Span::new(start, start + 1),
            });
            continue;
        }
        if c == '$' {
            it.next();
            let mut end = start + 1;
            while let Some(&(i, ch)) = it.peek() {
                if ch.is_ascii_digit() {
                    end = i + 1;
                    it.next();
                } else {
                    break;
                }
            }
            let digits = &src[start + 1..end];
            if digits.is_empty() {
                return Err(SqlError::new(
                    SqlErrorKind::Lex("`$` must be followed by a parameter number".into()),
                    Span::new(start, end),
                ));
            }
            let Ok(n) = digits.parse::<u32>() else {
                return Err(SqlError::new(
                    SqlErrorKind::Lex(format!("parameter number `${digits}` overflows")),
                    Span::new(start, end),
                ));
            };
            if n == 0 {
                return Err(SqlError::new(
                    SqlErrorKind::Lex("parameter numbers are 1-based; `$0` is invalid".into()),
                    Span::new(start, end),
                ));
            }
            out.push(SpannedTok {
                tok: Tok::Placeholder(Some(n)),
                span: Span::new(start, end),
            });
            continue;
        }
        // Operators and punctuation.
        let (tok, len) = match c {
            '*' => (Tok::Star, 1),
            ',' => (Tok::Comma, 1),
            '.' => (Tok::Dot, 1),
            '(' => (Tok::LParen, 1),
            ')' => (Tok::RParen, 1),
            ';' => (Tok::Semi, 1),
            '=' => (Tok::Eq, 1),
            '<' => {
                if bytes.get(start + 1) == Some(&b'=') {
                    (Tok::Le, 2)
                } else {
                    (Tok::Lt, 1)
                }
            }
            '>' => {
                if bytes.get(start + 1) == Some(&b'=') {
                    (Tok::Ge, 2)
                } else {
                    (Tok::Gt, 1)
                }
            }
            other => {
                return Err(SqlError::new(
                    SqlErrorKind::Lex(format!("unexpected character `{other}`")),
                    Span::new(start, start + other.len_utf8()),
                ));
            }
        };
        for _ in 0..len {
            it.next();
        }
        out.push(SpannedTok {
            tok,
            span: Span::new(start, start + len),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("select FROM Where"),
            vec![
                Tok::Keyword(Kw::Select),
                Tok::Keyword(Kw::From),
                Tok::Keyword(Kw::Where)
            ]
        );
    }

    #[test]
    fn idents_lowercase_quoted_preserve() {
        assert_eq!(
            toks("Orders \"CamelCase\" `tick`"),
            vec![
                Tok::Ident("orders".into()),
                Tok::Quoted("CamelCase".into(), QuoteStyle::Double),
                Tok::Quoted("tick".into(), QuoteStyle::Backtick),
            ]
        );
    }

    #[test]
    fn numbers_and_placeholders() {
        assert_eq!(
            toks("42 3.5 .5 1e3 $2 ?"),
            vec![
                Tok::Number(42.0),
                Tok::Number(3.5),
                Tok::Number(0.5),
                Tok::Number(1000.0),
                Tok::Placeholder(Some(2)),
                Tok::Placeholder(None),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= < > = . , ; ( ) *"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Dot,
                Tok::Comma,
                Tok::Semi,
                Tok::LParen,
                Tok::RParen,
                Tok::Star,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a -- trailing\n/* block\nspans */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into())]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn lex_errors_are_typed() {
        for bad in ["$", "$0", "'open", "\"open", "/* open", "@", "1e999"] {
            let err = tokenize(bad).unwrap_err();
            assert!(matches!(err.kind, SqlErrorKind::Lex(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn spans_are_byte_accurate() {
        let ts = tokenize("ab  <=").unwrap();
        assert_eq!(ts[0].span, Span::new(0, 2));
        assert_eq!(ts[1].span, Span::new(4, 6));
    }

    #[test]
    fn arbitrary_utf8_never_panics() {
        for src in ["π ≤ $1", "emoji 🦀 soup", "\u{0}\u{1}\u{7f}"] {
            let _ = tokenize(src);
        }
    }
}
