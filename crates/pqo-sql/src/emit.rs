//! The reverse path: render a template plus a chosen plan back out as
//! dialect-specific hinted SQL text.
//!
//! The SQL body is reconstructed from the template (canonical projection,
//! FROM/JOIN chain, parameterized WHERE); the *plan* rides along as comment
//! hints — the join order as a nested `(a ⨝ b)` expression plus the access
//! path per relation. Parts the template lowered away (constant filter
//! expressions, grouping columns) are surfaced as comments rather than
//! invented.

use pqo_optimizer::plan::{Plan, PlanNode, PlanOp};
use pqo_optimizer::template::QueryTemplate;

use crate::dialect::DialectKind;

/// Render `plan` for `template` as hinted SQL in `dialect`. When `values`
/// holds the instance's parameter values they are inlined as literals;
/// otherwise placeholders are emitted.
pub fn render(
    template: &QueryTemplate,
    plan: &Plan,
    dialect: DialectKind,
    values: Option<&[f64]>,
) -> String {
    let mut out = String::new();
    let tree = plan.to_tree();

    out.push_str(&format!("-- template: {}\n", template.name));
    out.push_str(&format!("-- dialect: {}\n", dialect.name()));
    out.push_str(&format!("-- plan: {}\n", plan.fingerprint()));
    out.push_str(&format!("-- join order: {}\n", join_order(&tree, template)));
    for (i, r) in template.relations.iter().enumerate() {
        out.push_str(&format!(
            "-- access {}: {}\n",
            r.alias,
            access_path(&tree, i, template)
        ));
    }
    for f in &template.fixed_preds {
        out.push_str(&format!(
            "-- fixed filter on {}: selectivity {:.6}\n",
            template.relations[f.relation].alias, f.selectivity
        ));
    }
    if let Some(agg) = &template.aggregate {
        out.push_str(&format!("-- aggregate: ~{} groups\n", agg.groups));
    }

    // Projection.
    out.push_str("SELECT ");
    out.push_str(if template.aggregate.is_some() {
        "count(*)"
    } else {
        "*"
    });
    out.push('\n');

    // FROM/JOIN chain: start at relation 0 and greedily attach relations
    // along join edges (the template's join graph is connected).
    let n = template.relations.len();
    let rel_sql = |i: usize| {
        let r = &template.relations[i];
        if r.table.name == r.alias {
            dialect.ident(&r.table.name)
        } else {
            format!(
                "{} AS {}",
                dialect.ident(&r.table.name),
                dialect.ident(&r.alias)
            )
        }
    };
    let col_sql = |rel: usize, col: usize| {
        let r = &template.relations[rel];
        let name = r
            .table
            .columns
            .get(col)
            .map(|c| c.name.as_str())
            .unwrap_or("?col");
        format!("{}.{}", dialect.ident(&r.alias), dialect.ident(name))
    };
    out.push_str(&format!("FROM {}\n", rel_sql(0)));
    let mut joined = vec![false; n];
    let mut edge_used = vec![false; template.join_edges.len()];
    if n > 0 {
        joined[0] = true;
    }
    loop {
        let mut progressed = false;
        for (ei, e) in template.join_edges.iter().enumerate() {
            if edge_used[ei] {
                continue;
            }
            let (new_rel, have) = if joined[e.left.0] && !joined[e.right.0] {
                (e.right.0, true)
            } else if joined[e.right.0] && !joined[e.left.0] {
                (e.left.0, true)
            } else if joined[e.left.0] && joined[e.right.0] {
                // Redundant edge inside the joined set: residual condition.
                edge_used[ei] = true;
                out.push_str(&format!(
                    "  -- residual: {} = {}\n",
                    col_sql(e.left.0, e.left.1),
                    col_sql(e.right.0, e.right.1)
                ));
                progressed = true;
                continue;
            } else {
                (0, false)
            };
            if have {
                edge_used[ei] = true;
                joined[new_rel] = true;
                out.push_str(&format!(
                    "  JOIN {} ON {} = {}\n",
                    rel_sql(new_rel),
                    col_sql(e.left.0, e.left.1),
                    col_sql(e.right.0, e.right.1)
                ));
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // Parameterized WHERE.
    if !template.param_preds.is_empty() {
        out.push_str("WHERE ");
        for (k, p) in template.param_preds.iter().enumerate() {
            if k > 0 {
                out.push_str("\n  AND ");
            }
            let rhs = match values.and_then(|v| v.get(k)) {
                Some(v) => dialect.literal(*v),
                None => dialect.placeholder(k + 1),
            };
            let op = match p.op {
                pqo_optimizer::template::RangeOp::Le => "<=",
                pqo_optimizer::template::RangeOp::Ge => ">=",
            };
            out.push_str(&format!("{} {op} {rhs}", col_sql(p.relation, p.column)));
        }
        out.push('\n');
    }

    if template.order_by {
        out.push_str("ORDER BY 1\n");
    }
    out
}

/// The plan's join order as a nested `(a ⨝ b)` expression over aliases.
fn join_order(node: &PlanNode, template: &QueryTemplate) -> String {
    let alias = |rel: usize| {
        template
            .relations
            .get(rel)
            .map(|r| r.alias.clone())
            .unwrap_or_else(|| format!("r{rel}"))
    };
    match &node.op {
        PlanOp::SeqScan { relation }
        | PlanOp::IndexSeek { relation, .. }
        | PlanOp::SortedIndexScan {
            relation,
            column: _,
        } => alias(*relation),
        PlanOp::HashJoin { .. } | PlanOp::MergeJoin { .. } => {
            let l = node
                .children
                .first()
                .map(|c| join_order(c, template))
                .unwrap_or_default();
            let r = node
                .children
                .get(1)
                .map(|c| join_order(c, template))
                .unwrap_or_default();
            format!("({l} ⨝ {r})")
        }
        PlanOp::IndexNlj { inner, .. } => {
            let l = node
                .children
                .first()
                .map(|c| join_order(c, template))
                .unwrap_or_default();
            format!("({l} ⨝ {})", alias(*inner))
        }
        PlanOp::HashAggregate | PlanOp::StreamAggregate | PlanOp::Sort { .. } => node
            .children
            .first()
            .map(|c| join_order(c, template))
            .unwrap_or_default(),
    }
}

/// Describe how the plan reaches relation `rel`.
fn access_path(node: &PlanNode, rel: usize, template: &QueryTemplate) -> String {
    match &node.op {
        PlanOp::SeqScan { relation } if *relation == rel => return "seq scan".into(),
        PlanOp::IndexSeek {
            relation,
            seek_pred,
        } if *relation == rel => {
            let col = template
                .param_preds
                .get(*seek_pred)
                .and_then(|p| template.relations[p.relation].table.columns.get(p.column))
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("pred {seek_pred}"));
            return format!("index seek on {col}");
        }
        PlanOp::SortedIndexScan { relation, column } if *relation == rel => {
            let col = template
                .relations
                .get(*relation)
                .and_then(|r| r.table.columns.get(*column))
                .map(|c| c.name.clone())
                .unwrap_or_else(|| format!("col {column}"));
            return format!("sorted index scan on {col}");
        }
        PlanOp::IndexNlj {
            inner, seek_edge, ..
        } if *inner == rel => {
            return format!("index lookup via join edge {seek_edge}");
        }
        _ => {}
    }
    for c in &node.children {
        let s = access_path(c, rel, template);
        if s != "?" {
            return s;
        }
    }
    "?".into()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binder::bind;
    use crate::parser::parse;
    use pqo_catalog::schemas;
    use pqo_optimizer::engine::QueryEngine;
    use pqo_optimizer::template::QueryInstance;

    fn fixture() -> (std::sync::Arc<QueryTemplate>, std::sync::Arc<Plan>) {
        let cat = schemas::tpch_skew();
        let stmt = parse(
            "SELECT count(*) FROM orders o JOIN lineitem l ON o.orders_pk = l.orders_fk \
             WHERE o.o_totalprice <= $1 AND l.l_extendedprice <= $2 GROUP BY o.o_shippriority",
        )
        .unwrap();
        let t = bind(&stmt, &cat, DialectKind::Postgres, "emit_fixture").unwrap();
        let engine = QueryEngine::new(std::sync::Arc::clone(&t));
        let inst = QueryInstance::new(vec![250_000.0, 50_000.0]);
        let sv = pqo_optimizer::svector::compute_svector(&t, &inst);
        let plan = engine.optimize(&sv).plan;
        (t, plan)
    }

    #[test]
    fn renders_hinted_sql_with_join_order() {
        let (t, plan) = fixture();
        let sql = render(&t, &plan, DialectKind::Postgres, None);
        assert!(sql.contains("-- join order: "), "{sql}");
        assert!(sql.contains("⨝"), "{sql}");
        assert!(
            sql.contains(&format!("-- plan: {}", plan.fingerprint())),
            "{sql}"
        );
        assert!(sql.contains("FROM orders AS o"), "{sql}");
        assert!(
            sql.contains("JOIN lineitem AS l ON o.orders_pk = l.orders_fk"),
            "{sql}"
        );
        assert!(sql.contains("o.o_totalprice <= $1"), "{sql}");
        assert!(sql.contains("l.l_extendedprice <= $2"), "{sql}");
    }

    #[test]
    fn dialect_controls_placeholders_and_values_inline() {
        let (t, plan) = fixture();
        let sql = render(&t, &plan, DialectKind::MySql, None);
        assert!(sql.contains("o.o_totalprice <= ?"), "{sql}");
        assert!(!sql.contains("$1"), "{sql}");
        let sql = render(&t, &plan, DialectKind::Postgres, Some(&[250000.0, 50000.0]));
        assert!(sql.contains("o.o_totalprice <= 250000"), "{sql}");
    }

    #[test]
    fn rendered_sql_reparses_in_same_dialect() {
        let (t, plan) = fixture();
        for d in DialectKind::ALL {
            let sql = render(&t, &plan, *d, None);
            let cat = schemas::tpch_skew();
            let stmt = parse(&sql).expect(&sql);
            let re = bind(&stmt, &cat, *d, "roundtrip").expect(&sql);
            assert_eq!(re.relations.len(), t.relations.len());
            assert_eq!(re.param_preds.len(), t.param_preds.len());
            assert_eq!(re.join_edges[0].selectivity, t.join_edges[0].selectivity);
        }
    }
}
