//! Sequence runner: execute a technique over a workload against the
//! Optimize-Always ground truth.
//!
//! The paper evaluates with *optimizer-estimated costs* (Section 2.1), so
//! the oracle is: optimize every instance once (untracked, outside the
//! technique's accounting), remember `Popt(q)` and `Cost(Popt(q), q)`, and
//! score each technique's choice by re-costing it at the instance.
//! Ground truth depends only on the instance *set*, not its order, so one
//! [`GroundTruth`] is shared across all orderings of the same instances via
//! [`GroundTruth::permute`].

use std::sync::Arc;
use std::time::Instant;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::Plan;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use crate::metrics::RunResult;
use crate::OnlinePqo;

/// Per-instance oracle data, aligned with a workload sequence.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Selectivity vector per instance.
    pub svectors: Vec<SVector>,
    /// Optimal cost per instance.
    pub opt_costs: Vec<f64>,
    /// Optimal plan per instance.
    pub opt_plans: Vec<Arc<Plan>>,
}

impl GroundTruth {
    /// Compute the oracle for `instances` (one untracked optimizer call
    /// each).
    pub fn compute(engine: &QueryEngine, instances: &[QueryInstance]) -> Self {
        let template = Arc::clone(engine.template());
        let mut svectors = Vec::with_capacity(instances.len());
        let mut opt_costs = Vec::with_capacity(instances.len());
        let mut opt_plans = Vec::with_capacity(instances.len());
        for inst in instances {
            let sv = pqo_optimizer::svector::compute_svector(&template, inst);
            let opt = engine.optimize_untracked(&sv);
            svectors.push(sv);
            opt_costs.push(opt.cost);
            opt_plans.push(opt.plan);
        }
        GroundTruth {
            svectors,
            opt_costs,
            opt_plans,
        }
    }

    /// Number of instances covered.
    pub fn len(&self) -> usize {
        self.opt_costs.len()
    }

    /// Whether the oracle is empty.
    pub fn is_empty(&self) -> bool {
        self.opt_costs.is_empty()
    }

    /// Number of distinct optimal plans (`n = |P|`, Section 2).
    pub fn distinct_plans(&self) -> usize {
        let mut fps: Vec<_> = self.opt_plans.iter().map(|p| p.fingerprint()).collect();
        fps.sort();
        fps.dedup();
        fps.len()
    }

    /// Re-align the oracle with a permuted sequence: entry `i` of the result
    /// corresponds to `order[i]` of `self`.
    pub fn permute(&self, order: &[usize]) -> GroundTruth {
        GroundTruth {
            svectors: order.iter().map(|&i| self.svectors[i].clone()).collect(),
            opt_costs: order.iter().map(|&i| self.opt_costs[i]).collect(),
            opt_plans: order
                .iter()
                .map(|&i| Arc::clone(&self.opt_plans[i]))
                .collect(),
        }
    }
}

/// Run `technique` over `instances` (aligned with `gt`) and collect every
/// metric. The engine's counters are reset at the start, so the result
/// reflects only this run.
pub fn run_sequence(
    technique: &mut dyn OnlinePqo,
    engine: &QueryEngine,
    instances: &[QueryInstance],
    gt: &GroundTruth,
) -> RunResult {
    assert_eq!(
        instances.len(),
        gt.len(),
        "ground truth misaligned with workload"
    );
    engine.reset_stats();
    let mut so = Vec::with_capacity(instances.len());
    let mut getplan_time = std::time::Duration::ZERO;
    for (i, inst) in instances.iter().enumerate() {
        let start = Instant::now();
        let sv = engine.compute_svector(inst);
        let choice = technique.get_plan(inst, &sv, engine);
        getplan_time += start.elapsed();
        let s = if choice.plan.fingerprint() == gt.opt_plans[i].fingerprint() {
            1.0
        } else {
            (engine.recost_untracked(&choice.plan, &gt.svectors[i]) / gt.opt_costs[i]).max(1.0)
        };
        so.push(s);
    }
    let stats = engine.stats();
    RunResult {
        technique: technique.name(),
        num_instances: instances.len(),
        so,
        opt_costs: gt.opt_costs.clone(),
        num_opt: stats.optimize_calls,
        num_plans: technique.max_plans_cached(),
        recost_calls: stats.recost_calls,
        optimize_time: stats.optimize_time,
        recost_time: stats.recost_time,
        getplan_time,
        distinct_optimal_plans: gt.distinct_plans(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{OptimizeAlways, OptimizeOnce};
    use crate::scr::Scr;
    use crate::testutil::fixture_template;
    use pqo_optimizer::svector::instance_for_target;
    use pqo_optimizer::template::QueryTemplate;

    fn fixture() -> Arc<QueryTemplate> {
        fixture_template("runner_test")
    }

    fn grid(t: &QueryTemplate, n: usize) -> Vec<QueryInstance> {
        let mut v = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let target = [
                    0.01 + 0.9 * i as f64 / n as f64,
                    0.01 + 0.9 * j as f64 / n as f64,
                ];
                v.push(instance_for_target(t, &target));
            }
        }
        v
    }

    #[test]
    fn oracle_has_so_one_everywhere() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let instances = grid(&t, 4);
        let gt = GroundTruth::compute(&engine, &instances);
        let mut oracle = OptimizeAlways::new();
        let r = run_sequence(&mut oracle, &engine, &instances, &gt);
        assert_eq!(r.mso(), 1.0);
        assert_eq!(r.total_cost_ratio(), 1.0);
        assert_eq!(r.num_opt as usize, instances.len());
    }

    #[test]
    fn opt_once_is_cheap_but_suboptimal() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let instances = grid(&t, 5);
        let gt = GroundTruth::compute(&engine, &instances);
        let mut once = OptimizeOnce::new();
        let r = run_sequence(&mut once, &engine, &instances, &gt);
        assert_eq!(r.num_opt, 1);
        assert!(
            r.mso() > 1.0,
            "a single plan cannot be optimal across the grid"
        );
    }

    #[test]
    fn scr_respects_lambda_on_this_workload() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let instances = grid(&t, 5);
        let gt = GroundTruth::compute(&engine, &instances);
        let mut scr = Scr::new(2.0).unwrap();
        let r = run_sequence(&mut scr, &engine, &instances, &gt);
        assert!(r.mso() <= 2.0 * 1.001, "MSO {}", r.mso());
        assert!(
            r.num_opt < instances.len() as u64,
            "SCR must save optimizer calls"
        );
        assert!(r.total_cost_ratio() <= r.mso());
    }

    #[test]
    fn permute_realigns_oracle() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let instances = grid(&t, 3);
        let gt = GroundTruth::compute(&engine, &instances);
        let order: Vec<usize> = (0..instances.len()).rev().collect();
        let pg = gt.permute(&order);
        assert_eq!(pg.opt_costs[0], gt.opt_costs[instances.len() - 1]);
        assert_eq!(pg.distinct_plans(), gt.distinct_plans());
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_ground_truth_panics() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let instances = grid(&t, 2);
        let gt = GroundTruth::compute(&engine, &instances[..2]);
        let mut once = OptimizeOnce::new();
        let _ = run_sequence(&mut once, &engine, &instances, &gt);
    }
}
