//! The plan-selection policy layer (DESIGN.md §8).
//!
//! PRs 1–8 hard-wired the serving stack to SCR. This module carves the
//! *decision* out of the substrate: a [`PlanPolicy`] is the pair of hooks
//! the serving core calls —
//!
//! * **decide-on-hit** ([`PlanPolicy::decide`]): given the published cache
//!   view and an incoming instance, serve a cached plan or return `None`
//!   to route the instance to the optimizer. Runs on the lock-free read
//!   path (`&ReadView`), so it may only touch atomics.
//! * **admit-on-miss** ([`PlanPolicy::admit`]): after an optimizer call,
//!   mutate the cache (store/discard the new plan, evict for budget).
//!   Runs under the writer lock (`&mut Scr`).
//!
//! Every policy shares the substrate built for SCR: the prepared/delta
//! Recost machinery ([`GetPlanScratch`]), the published
//! [`crate::snapshot::CacheSnapshot`] read path, and the sharded
//! log-selectivity index (candidate neighbourhoods come from the same
//! crossover rule SCR uses). Dispatch is a `match` on [`PolicyId`] at the
//! two choke points in `scr.rs` — static, no `dyn` in the hot loop — and
//! the SCR arm delegates to the *unchanged* pre-refactor code, so SCR's
//! decision stream is byte-identical by construction (the equivalence
//! oracles in `tests/` run unmodified).
//!
//! Policy identity travels with the cache: [`ScrConfig::policy`] at
//! construction, a tag byte in the persist header (v3) so a warm restart
//! refuses a mismatched policy, and a tag byte in every replication record
//! so replicas reject cross-policy generation streams with a typed error.
//!
//! # The serving-grade policies
//!
//! * [`PolicyId::Scr`] — the paper's technique, λ-guaranteed.
//! * [`PolicyId::Lec`] — least expected cost (Chu/Halpern/Seshadri): over
//!   the usage-weighted empirical neighbourhood of the query point, serve
//!   the cached plan with minimum expected Recost. No per-instance
//!   guarantee; optimizes when the neighbourhood is empty or too far.
//! * [`PolicyId::Penalty`] — PARQO-flavored robust selection: penalize
//!   each candidate plan by its recosted *regret* against the cached
//!   frontier across the neighbourhood, serve the minimax-regret plan,
//!   gated by λ-competitiveness with the frontier at the query point.
//!   Admission reuses SCR's `manageCache` (redundancy check + budget).

use std::time::Instant;

use pqo_optimizer::engine::{OptimizedPlan, QueryEngine};
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::svector::SVector;

use crate::cache::InstanceEntry;
use crate::scr::{GetPlanScratch, ReadView, Scr};
use crate::PlanChoice;

/// Identity of a serving policy — threaded through [`ScrConfig`], the
/// persist header, replication records, wire STATS and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyId {
    /// The paper's SCR technique (selectivity/cost/redundancy checks).
    #[default]
    Scr,
    /// Least-expected-cost selection over the empirical neighbourhood.
    Lec,
    /// Penalty-aware (minimax recosted regret) selection.
    Penalty,
}

impl PolicyId {
    /// Stable one-byte tag used in the persist header and replication
    /// records. Never renumber: persisted snapshots carry these bytes.
    pub fn as_tag(self) -> u8 {
        match self {
            PolicyId::Scr => 0,
            PolicyId::Lec => 1,
            PolicyId::Penalty => 2,
        }
    }

    /// Inverse of [`PolicyId::as_tag`]; `None` for an unknown tag (a
    /// snapshot from a future build).
    pub fn from_tag(tag: u8) -> Option<PolicyId> {
        match tag {
            0 => Some(PolicyId::Scr),
            1 => Some(PolicyId::Lec),
            2 => Some(PolicyId::Penalty),
            _ => None,
        }
    }

    /// The CLI/wire name (`scr` | `lec` | `penalty`).
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::Scr => "scr",
            PolicyId::Lec => "lec",
            PolicyId::Penalty => "penalty",
        }
    }

    /// Parse a CLI/wire name, case-insensitively (`scr`, `LEC`, `Penalty`
    /// all work; see [`PolicyId::name`] for the canonical spellings).
    pub fn parse(s: &str) -> Option<PolicyId> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scr" => Some(PolicyId::Scr),
            "lec" => Some(PolicyId::Lec),
            "penalty" => Some(PolicyId::Penalty),
            _ => None,
        }
    }
}

impl std::fmt::Display for PolicyId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The two hooks a serving policy implements. Static dispatch only: the
/// serving core `match`es on [`PolicyId`] and calls these as associated
/// functions, so the hot path never goes through a vtable.
pub(crate) trait PlanPolicy {
    /// Decide-on-hit: serve from the published cache view, or `None` to
    /// optimize. Read path — `&self` view, atomics only.
    fn decide(
        view: &ReadView<'_>,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice>;

    /// Admit-on-miss: fold a fresh optimization into the cache. Write path
    /// — runs under the writer lock. The caller (`Scr::manage_cache_entry`)
    /// has already bumped `optimizer_calls` and the dynamic-λ accumulators.
    fn admit(
        scr: &mut Scr,
        sv: &SVector,
        opt: OptimizedPlan,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    );
}

/// SCR as a policy: both hooks delegate to the pre-refactor code paths in
/// `scr.rs`, unchanged — byte-identity with the pre-trait decision stream
/// is by construction, not by test luck (the oracle suites then pin it).
pub(crate) struct ScrPolicy;

impl PlanPolicy for ScrPolicy {
    fn decide(
        view: &ReadView<'_>,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        view.scr_decide(sv, engine, scratch)
    }

    fn admit(
        scr: &mut Scr,
        sv: &SVector,
        opt: OptimizedPlan,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) {
        scr.scr_admit(sv, opt, engine, scratch);
    }
}

/// The candidate neighbourhood both non-SCR policies decide over: the
/// nearest (smallest G·L) non-violation-disabled entries, at most
/// `max_recost_candidates`, gathered through the same linear/indexed
/// crossover SCR uses. Returned as `(G·L, entry index)` ascending.
fn candidate_entries(view: &ReadView<'_>, sv: &SVector) -> Vec<(f64, usize)> {
    let k = view.config.max_recost_candidates.max(1);
    let use_index = view.config.spatial_index_threshold != usize::MAX
        && view.cache.num_instances() >= view.config.spatial_index_threshold;
    let mut cands: Vec<(f64, usize)> = if use_index {
        // Over-fetch so violation-disabled entries do not starve the list
        // (same rule as the indexed cost check).
        let fetch = k.saturating_mul(view.config.recost_fetch_factor).max(16);
        view.cache
            .nearest_instances(sv, fetch)
            .into_iter()
            .filter(|&(_, idx)| !view.cache.instances()[idx].violation_detected())
            .map(|(dist, idx)| (dist.exp(), idx))
            .collect()
    } else {
        view.cache
            .instances()
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.violation_detected())
            .map(|(idx, e)| {
                let (g, l) = sv.g_and_l(&e.svector);
                (g * l, idx)
            })
            .collect()
    };
    cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    cands.truncate(k);
    cands
}

/// Distinct plans referenced by the candidate entries, in fingerprint
/// order (deterministic regardless of entry order).
fn candidate_plans(view: &ReadView<'_>, cands: &[(f64, usize)]) -> Vec<PlanFingerprint> {
    let mut plans: Vec<PlanFingerprint> = cands
        .iter()
        .map(|&(_, idx)| view.cache.instances()[idx].plan)
        .collect();
    plans.sort();
    plans.dedup();
    plans
}

/// Serve through the nearest candidate entry holding `fp` (bumps that
/// entry's usage, exactly like SCR's serve path).
fn serve_entry_with_plan(
    view: &ReadView<'_>,
    cands: &[(f64, usize)],
    fp: PlanFingerprint,
) -> Option<PlanChoice> {
    cands
        .iter()
        .find(|&&(_, idx)| view.cache.instances()[idx].plan == fp)
        .map(|&(_, idx)| view.serve(idx))
}

/// Whether the neighbourhood is close enough to decide from at all: the
/// nearest entry must lie within ln λ in log-selectivity space (G·L ≤ λ,
/// with λ taken per-entry so dynamic λ composes). Beyond that, both
/// policies route to the optimizer — a distant neighbourhood carries no
/// evidence about the query point.
fn within_decision_radius(view: &ReadView<'_>, cands: &[(f64, usize)]) -> bool {
    cands.first().is_some_and(|&(gl, idx)| {
        let e = &view.cache.instances()[idx];
        gl <= view.effective_lambda(e.opt_cost)
    })
}

/// Least-expected-cost selection (Chu/Halpern/Seshadri, adapted online):
/// the per-template instance distribution is the *empirical* one the cache
/// already tracks — stored entries weighted by their usage counters. Over
/// the query's neighbourhood, each distinct cached plan is recosted at the
/// query point (weight 1) and at every neighbour entry (weight = usage),
/// and the plan with minimum expected cost serves. At most
/// `(K+1)·K` prepared Recosts per decision, K = `max_recost_candidates`.
pub(crate) struct LecPolicy;

impl PlanPolicy for LecPolicy {
    fn decide(
        view: &ReadView<'_>,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        let cands = candidate_entries(view, sv);
        if cands.is_empty() {
            return None; // cold cache: nothing to decide over
        }
        if !within_decision_radius(view, &cands) {
            view.stats.record_policy_reject();
            return None;
        }
        let t0 = Instant::now();
        let mut recosts = 0u64;
        let mut best: Option<(f64, PlanFingerprint)> = None;
        for fp in candidate_plans(view, &cands) {
            let cached = view
                .cache
                .cached(fp)
                .expect("candidate points to live plan");
            let prepared = cached.prepared(engine);
            let mut expected = engine.recost_prepared(prepared, sv, &mut scratch.recost);
            recosts += 1;
            for &(_, idx) in &cands {
                let e = &view.cache.instances()[idx];
                expected += e.usage() as f64
                    * engine.recost_prepared(prepared, &e.svector, &mut scratch.recost);
                recosts += 1;
            }
            if best.is_none_or(|(c, _)| expected < c) {
                best = Some((expected, fp));
            }
        }
        view.stats
            .record_policy_recosts(recosts, t0.elapsed().as_nanos() as u64);
        let (_, fp) = best?;
        let choice = serve_entry_with_plan(view, &cands, fp)?;
        view.stats.record_policy_hit();
        Some(choice)
    }

    /// LEC keeps every optimized plan (no redundancy check — expected-cost
    /// selection wants the full frontier to choose from), enforcing only
    /// the plan budget.
    fn admit(
        scr: &mut Scr,
        sv: &SVector,
        opt: OptimizedPlan,
        engine: &QueryEngine,
        _scratch: &mut GetPlanScratch,
    ) {
        let fp = opt.plan.fingerprint();
        if scr.cache.contains_plan(fp) {
            scr.cache
                .push_instance(InstanceEntry::new(sv.clone(), fp, opt.cost, 1.0, 1));
            return;
        }
        scr.enforce_plan_budget();
        scr.cache.insert_plan(opt.plan);
        if let Some(c) = scr.cache.cached(fp) {
            let _ = c.prepared(engine);
        }
        scr.cache
            .push_instance(InstanceEntry::new(sv.clone(), fp, opt.cost, 1.0, 1));
        debug_assert!(scr.cache.check_invariants().is_ok());
    }
}

/// Penalty-aware (PARQO-flavored) robust selection: each candidate plan is
/// penalized by its recosted *regret* against the cached frontier — the
/// pointwise minimum over candidate plans — across the neighbourhood and
/// the query point. The minimax-regret plan serves only if it is
/// λ-competitive with the frontier at the query point itself; otherwise
/// the instance optimizes. Admission reuses SCR's `manageCache`
/// (redundancy check, budget eviction), so the cached frontier stays
/// non-redundant. At most `K·(K+1)` prepared Recosts per decision.
pub(crate) struct PenaltyPolicy;

impl PlanPolicy for PenaltyPolicy {
    fn decide(
        view: &ReadView<'_>,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        let cands = candidate_entries(view, sv);
        if cands.is_empty() {
            return None;
        }
        if !within_decision_radius(view, &cands) {
            view.stats.record_policy_reject();
            return None;
        }
        let t0 = Instant::now();
        let mut recosts = 0u64;
        let plans = candidate_plans(view, &cands);
        // Cost matrix: each plan recosted at the query point and at every
        // candidate entry's sVector.
        let mut at_sv: Vec<f64> = Vec::with_capacity(plans.len());
        let mut matrix: Vec<Vec<f64>> = Vec::with_capacity(plans.len());
        for &fp in &plans {
            let cached = view
                .cache
                .cached(fp)
                .expect("candidate points to live plan");
            let prepared = cached.prepared(engine);
            at_sv.push(engine.recost_prepared(prepared, sv, &mut scratch.recost));
            recosts += 1;
            let row: Vec<f64> = cands
                .iter()
                .map(|&(_, idx)| {
                    recosts += 1;
                    let e = &view.cache.instances()[idx];
                    engine.recost_prepared(prepared, &e.svector, &mut scratch.recost)
                })
                .collect();
            matrix.push(row);
        }
        view.stats
            .record_policy_recosts(recosts, t0.elapsed().as_nanos() as u64);
        // Frontier: pointwise minimum over the candidate plans.
        let frontier_at_sv = at_sv.iter().copied().fold(f64::INFINITY, f64::min);
        let frontier: Vec<f64> = (0..cands.len())
            .map(|j| {
                matrix
                    .iter()
                    .map(|row| row[j])
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        // Minimax recosted regret, including the query point.
        let mut best: Option<(f64, usize)> = None;
        for i in 0..plans.len() {
            let mut regret = at_sv[i] - frontier_at_sv;
            for (j, m) in frontier.iter().enumerate() {
                regret = regret.max(matrix[i][j] - m);
            }
            if best.is_none_or(|(r, _)| regret < r) {
                best = Some((regret, i));
            }
        }
        let (_, i) = best?;
        // λ-gate at the query point: serving a robust-but-bad plan here
        // would trade the current instance for hypothetical future ones.
        if at_sv[i] > view.config.lambda * frontier_at_sv {
            view.stats.record_policy_reject();
            return None;
        }
        let choice = serve_entry_with_plan(view, &cands, plans[i])?;
        view.stats.record_policy_hit();
        Some(choice)
    }

    fn admit(
        scr: &mut Scr,
        sv: &SVector,
        opt: OptimizedPlan,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) {
        scr.scr_admit(sv, opt, engine, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scr::ScrConfig;
    use crate::testutil::{fixture_template, run_point};
    use crate::OnlinePqo;
    use std::sync::Arc;

    #[test]
    fn tags_and_names_roundtrip() {
        for p in [PolicyId::Scr, PolicyId::Lec, PolicyId::Penalty] {
            assert_eq!(PolicyId::from_tag(p.as_tag()), Some(p));
            assert_eq!(PolicyId::parse(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!(PolicyId::from_tag(3), None);
        // The tag bytes are a persisted format: pin them.
        assert_eq!(PolicyId::Scr.as_tag(), 0);
        assert_eq!(PolicyId::Lec.as_tag(), 1);
        assert_eq!(PolicyId::Penalty.as_tag(), 2);
    }

    #[test]
    fn parse_is_case_insensitive() {
        assert_eq!(PolicyId::parse("SCR"), Some(PolicyId::Scr));
        assert_eq!(PolicyId::parse("LEC"), Some(PolicyId::Lec));
        assert_eq!(PolicyId::parse("Penalty"), Some(PolicyId::Penalty));
        assert_eq!(PolicyId::parse(" lec "), Some(PolicyId::Lec));
        assert_eq!(PolicyId::parse("pcm"), None);
        // Canonical names stay lowercase — wire/persist tags are unaffected.
        assert_eq!(PolicyId::parse("SCR").unwrap().name(), "scr");
    }

    fn warmed(policy: PolicyId) -> (Scr, pqo_optimizer::engine::QueryEngine) {
        let t = fixture_template("policy_test");
        let engine = pqo_optimizer::engine::QueryEngine::new(Arc::clone(&t));
        let cfg = ScrConfig::new(2.0).unwrap().with_policy(policy);
        let mut scr = Scr::with_config(cfg).unwrap();
        for i in 0..10 {
            let _ = run_point(&mut scr, &engine, &[0.05 + 0.09 * i as f64, 0.4]);
        }
        (scr, engine)
    }

    #[test]
    fn lec_serves_warm_neighbourhood_without_optimizing() {
        let (mut scr, engine) = warmed(PolicyId::Lec);
        assert_eq!(scr.name(), "LEC2");
        let before = scr.stats().optimizer_calls;
        let c = run_point(&mut scr, &engine, &[0.23, 0.4]);
        assert!(!c.optimized, "a warm neighbour must serve under LEC");
        assert_eq!(scr.stats().optimizer_calls, before);
        assert!(scr.stats().policy_hits > 0);
    }

    #[test]
    fn penalty_serves_warm_neighbourhood_and_gates_distant_points() {
        let (mut scr, engine) = warmed(PolicyId::Penalty);
        assert_eq!(scr.name(), "PEN2");
        let c = run_point(&mut scr, &engine, &[0.23, 0.4]);
        assert!(!c.optimized, "a warm neighbour must serve under Penalty");
        assert!(scr.stats().policy_hits > 0);
        // A point far outside the warmed band must route to the optimizer.
        let before = scr.stats().optimizer_calls;
        let c = run_point(&mut scr, &engine, &[0.97, 0.97]);
        assert!(c.optimized);
        assert_eq!(scr.stats().optimizer_calls, before + 1);
    }

    #[test]
    fn lec_skips_redundancy_check_entirely() {
        let (scr, _) = warmed(PolicyId::Lec);
        assert_eq!(
            scr.stats().redundant_plans_discarded,
            0,
            "LEC admission must not run the redundancy check"
        );
    }

    #[test]
    fn scr_policy_leaves_policy_counters_at_zero() {
        // Byte-identity guard: under PolicyId::Scr the new counters never
        // move, so pre- and post-refactor stat streams agree too.
        let (scr, _) = warmed(PolicyId::Scr);
        assert_eq!(scr.stats().policy_hits, 0);
        assert_eq!(scr.stats().policy_rejects, 0);
    }

    #[test]
    fn policies_enforce_plan_budget() {
        let t = fixture_template("policy_budget");
        let engine = pqo_optimizer::engine::QueryEngine::new(Arc::clone(&t));
        for policy in [PolicyId::Lec, PolicyId::Penalty] {
            let mut cfg = ScrConfig::new(1.05).unwrap().with_policy(policy);
            cfg.plan_budget = Some(2);
            cfg.lambda_r = 0.0;
            let mut scr = Scr::with_config(cfg).unwrap();
            for i in 1..=12 {
                let _ = run_point(&mut scr, &engine, &[0.08 * i as f64, 0.08 * i as f64]);
                assert!(scr.plans_cached() <= 2, "{policy}: budget violated");
                assert!(scr.cache.check_invariants().is_ok());
            }
        }
    }
}
