//! Generation-log snapshot replication: serialize the publication stream.
//!
//! [`crate::snapshot::CacheWriter`] turns every `manageCache` commit into a
//! new [`CacheSnapshot`] generation with a monotonic stamp. This module
//! makes that stream *replicable*: each publish can be encoded as a
//! self-describing **generation record** that a read replica decodes and
//! installs into its own [`crate::snapshot::SnapshotCell`], replaying the
//! primary's exact cache state (the paper's guarantee is a property of the
//! cache state, so a replica that replays it inherits λ-optimality for
//! every hit it serves).
//!
//! Every record header carries the primary's [`PolicyId`] tag: cache
//! contents are policy-shaped, so a replica configured with a different
//! plan-selection policy must refuse the stream with a typed error
//! ([`ReplicationError::PolicyMismatch`]) instead of silently serving
//! another policy's cache.
//!
//! Two record kinds:
//!
//! * **Full** — the [`crate::persist`] v3 blob (arena plans in Appendix B
//!   compact encoding, instance 5-tuples, λ accumulators, generation
//!   stamp). Used for bootstrap and whenever the subscriber's acknowledged
//!   base has aged out of the writer's generation log.
//! * **Delta** — encoded against a recently published base generation.
//!   Because consecutive generations share `Arc`s (the cache clone is
//!   shallow: plan list values and instance entries are `Arc`-shared, see
//!   [`crate::cache::PlanCache`]), the encoder detects "untouched" by
//!   pointer identity and ships *references*: an unchanged instance entry
//!   is a 5-byte base-index tag, an unchanged plan an 8-byte fingerprint —
//!   only genuinely new plans/entries ship bytes. A typical post-warmup
//!   publish (one new instance entry on an existing plan) is tens of bytes
//!   regardless of cache size, mirroring PR 7's O(n/shards) publish cost at
//!   the fleet level.
//!
//! Decoding rebuilds an [`Scr`] via [`Scr::from_parts`] — the same
//! re-insertion path as a persist restore, whose index/decision equivalence
//! with the writer's incrementally-maintained state is pinned by the
//! persist round-trip tests. Delta decoding resolves base references
//! against the replica's *current published generation*, which must carry
//! exactly the record's base stamp ([`ReplicationError::BaseMismatch`]
//! otherwise) — so a replica can never silently apply a delta onto the
//! wrong state.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use pqo_optimizer::compact::CompactPlan;
use pqo_optimizer::error::PqoError;
use pqo_optimizer::plan::{Plan, PlanFingerprint};
use pqo_optimizer::svector::SVector;

use crate::cache::InstanceEntry;
use crate::persist::{self, RestoreError};
use crate::policy::PolicyId;
use crate::scr::{Scr, ScrConfig};
use crate::snapshot::CacheSnapshot;

/// Record header magic ("PQO generation record, layout 2" — layout 2 added
/// the policy tag byte after the record kind).
const RECORD_MAGIC: &[u8; 4] = b"PQG2";
const KIND_FULL: u8 = 0;
const KIND_DELTA: u8 = 1;
const ENTRY_BASE_REF: u8 = 0;
const ENTRY_INLINE: u8 = 1;
const PLAN_BASE_REF: u8 = 0;
const PLAN_INLINE: u8 = 1;

/// Errors raised while decoding or applying a generation record.
#[derive(Debug)]
pub enum ReplicationError {
    /// Structurally invalid record (truncated, implausible counts, dangling
    /// references, non-finite numbers).
    Corrupt(String),
    /// A delta record whose base generation does not match the replica's
    /// current published generation — applying it would replay the delta
    /// onto the wrong state, so the caller must resynchronize (typically by
    /// re-subscribing from its actual generation).
    BaseMismatch {
        /// The base generation the record was encoded against.
        record_base: u64,
        /// The generation the replica actually has (`None` when the caller
        /// supplied no base snapshot at all).
        have: Option<u64>,
    },
    /// The record was produced under a different plan-selection policy than
    /// the replica runs — applying it would install a cache another policy
    /// built, so the subscription must be refused.
    PolicyMismatch {
        /// The policy this replica is configured with.
        expected: PolicyId,
        /// The policy tag carried by the record.
        found: PolicyId,
    },
    /// The embedded full snapshot failed to restore.
    Restore(RestoreError),
}

impl std::fmt::Display for ReplicationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicationError::Corrupt(m) => write!(f, "corrupt generation record: {m}"),
            ReplicationError::BaseMismatch { record_base, have } => write!(
                f,
                "delta base generation {record_base} does not match replica generation {have:?}"
            ),
            ReplicationError::PolicyMismatch { expected, found } => write!(
                f,
                "generation record was produced under policy `{found}` but this replica runs `{expected}`"
            ),
            ReplicationError::Restore(e) => write!(f, "embedded snapshot: {e}"),
        }
    }
}

impl std::error::Error for ReplicationError {}

impl From<RestoreError> for ReplicationError {
    fn from(e: RestoreError) -> Self {
        match e {
            RestoreError::PolicyMismatch { expected, found } => {
                ReplicationError::PolicyMismatch { expected, found }
            }
            other => ReplicationError::Restore(other),
        }
    }
}

impl From<ReplicationError> for PqoError {
    fn from(e: ReplicationError) -> Self {
        match e {
            ReplicationError::PolicyMismatch { expected, found } => PqoError::PolicyMismatch {
                expected: expected.name().to_string(),
                found: found.name().to_string(),
            },
            other => PqoError::Persist {
                message: other.to_string(),
            },
        }
    }
}

/// Parsed record header: what a subscriber learns before applying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordInfo {
    /// The generation this record produces when applied.
    pub generation: u64,
    /// The base generation a delta record requires (`None` for full
    /// records).
    pub base: Option<u64>,
    /// The plan-selection policy the producing writer runs.
    pub policy: PolicyId,
}

/// Encode one published generation as a record.
///
/// When `base` is a retained earlier generation of the same lineage
/// (`base.generation() < snapshot.generation()`), the record is a delta;
/// otherwise a full snapshot. The encoder never fails — a base that turns
/// out to share nothing simply yields a delta that inlines everything.
pub fn encode_generation(snapshot: &CacheSnapshot, base: Option<&CacheSnapshot>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(RECORD_MAGIC);
    match base {
        Some(base) if base.generation() < snapshot.generation() => {
            out.push(KIND_DELTA);
            out.push(snapshot.config().policy.as_tag());
            out.extend_from_slice(&snapshot.generation().to_le_bytes());
            out.extend_from_slice(&base.generation().to_le_bytes());
            encode_delta_body(snapshot, base, &mut out);
        }
        _ => {
            out.push(KIND_FULL);
            out.push(snapshot.config().policy.as_tag());
            out.extend_from_slice(&snapshot.generation().to_le_bytes());
            persist::save_snapshot(snapshot, &mut out).expect("Vec writes are infallible");
        }
    }
    out
}

fn encode_delta_body(snapshot: &CacheSnapshot, base: &CacheSnapshot, out: &mut Vec<u8>) {
    // Plan membership: the complete fingerprint list of the new generation
    // (so evictions and zero-entry plans replicate exactly). Plans the base
    // already holds ship as references.
    let base_fps: HashSet<PlanFingerprint> =
        base.cache().plans().map(|p| p.fingerprint()).collect();
    let mut plans: Vec<&Arc<Plan>> = snapshot.cache().plans().collect();
    plans.sort_by_key(|p| p.fingerprint());
    out.extend_from_slice(&(plans.len() as u32).to_le_bytes());
    for p in &plans {
        out.extend_from_slice(&p.fingerprint().0.to_le_bytes());
        if base_fps.contains(&p.fingerprint()) {
            out.push(PLAN_BASE_REF);
        } else {
            out.push(PLAN_INLINE);
            let enc = CompactPlan::encode(p);
            out.extend_from_slice(&(enc.bytes_len() as u32).to_le_bytes());
            out.extend_from_slice(enc.as_bytes());
        }
    }

    // Instance list in the new generation's order. Entries `Arc`-shared
    // with the base (the shallow-clone publish path guarantees pointer
    // identity for untouched entries) ship as base-index references.
    let base_index: HashMap<*const InstanceEntry, u32> = base
        .cache()
        .instances()
        .iter()
        .enumerate()
        .map(|(i, e)| (Arc::as_ptr(e), i as u32))
        .collect();
    let entries = snapshot.cache().instances();
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        match base_index.get(&Arc::as_ptr(e)) {
            Some(&idx) => {
                out.push(ENTRY_BASE_REF);
                out.extend_from_slice(&idx.to_le_bytes());
            }
            None => {
                out.push(ENTRY_INLINE);
                out.extend_from_slice(&e.plan.0.to_le_bytes());
                out.extend_from_slice(&(e.svector.len() as u32).to_le_bytes());
                for &s in &e.svector.0 {
                    out.extend_from_slice(&s.to_le_bytes());
                }
                out.extend_from_slice(&e.opt_cost.to_le_bytes());
                out.extend_from_slice(&e.sub_opt.to_le_bytes());
                out.extend_from_slice(&e.usage().to_le_bytes());
                out.push(u8::from(e.violation_detected()));
            }
        }
    }

    // Dynamic-λ accumulators.
    let (log_cost_sum, opt_count) = snapshot.lambda_accumulators();
    out.extend_from_slice(&log_cost_sum.to_le_bytes());
    out.extend_from_slice(&opt_count.to_le_bytes());
}

/// Bounds-checked little-endian reader over a record body.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ReplicationError> {
        if self.buf.len() - self.pos < n {
            return Err(ReplicationError::Corrupt("truncated record".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ReplicationError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ReplicationError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ReplicationError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ReplicationError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self) -> Result<(), ReplicationError> {
        if self.pos != self.buf.len() {
            return Err(ReplicationError::Corrupt(format!(
                "{} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Parse a record's header without applying it.
pub fn record_info(bytes: &[u8]) -> Result<RecordInfo, ReplicationError> {
    let mut c = Cur { buf: bytes, pos: 0 };
    if c.take(4)? != RECORD_MAGIC {
        return Err(ReplicationError::Corrupt("bad record magic".into()));
    }
    let kind = c.u8()?;
    let policy = read_policy(&mut c)?;
    let generation = c.u64()?;
    match kind {
        KIND_FULL => Ok(RecordInfo {
            generation,
            base: None,
            policy,
        }),
        KIND_DELTA => Ok(RecordInfo {
            generation,
            base: Some(c.u64()?),
            policy,
        }),
        k => Err(ReplicationError::Corrupt(format!(
            "unknown record kind {k}"
        ))),
    }
}

fn read_policy(c: &mut Cur<'_>) -> Result<PolicyId, ReplicationError> {
    let tag = c.u8()?;
    PolicyId::from_tag(tag)
        .ok_or_else(|| ReplicationError::Corrupt(format!("unknown policy tag {tag}")))
}

/// Decode a generation record into a fresh [`Scr`], resolving delta
/// references against `base` (the replica's current published generation).
/// Returns the rebuilt state and the generation it represents; the caller
/// installs it via
/// [`crate::snapshot::CacheWriter::install_generation`].
///
/// # Errors
/// [`ReplicationError::BaseMismatch`] when a delta's base generation is not
/// the one supplied; [`ReplicationError::PolicyMismatch`] when the record
/// carries a different policy tag than `config`; [`ReplicationError::Corrupt`]
/// / [`ReplicationError::Restore`] on malformed bytes.
pub fn apply_generation(
    config: ScrConfig,
    base: Option<&CacheSnapshot>,
    bytes: &[u8],
) -> Result<(Scr, u64), ReplicationError> {
    let mut c = Cur { buf: bytes, pos: 0 };
    if c.take(4)? != RECORD_MAGIC {
        return Err(ReplicationError::Corrupt("bad record magic".into()));
    }
    let kind = c.u8()?;
    let policy = read_policy(&mut c)?;
    if policy != config.policy {
        return Err(ReplicationError::PolicyMismatch {
            expected: config.policy,
            found: policy,
        });
    }
    let generation = c.u64()?;
    match kind {
        KIND_FULL => {
            let mut body = &bytes[c.pos..];
            let (scr, embedded_gen) = persist::restore_with_generation(config, &mut body)?;
            if !body.is_empty() {
                return Err(ReplicationError::Corrupt(format!(
                    "{} trailing bytes after full snapshot",
                    body.len()
                )));
            }
            if embedded_gen != generation {
                return Err(ReplicationError::Corrupt(format!(
                    "header generation {generation} != embedded generation {embedded_gen}"
                )));
            }
            Ok((scr, generation))
        }
        KIND_DELTA => {
            let record_base = c.u64()?;
            let base = match base {
                Some(b) if b.generation() == record_base => b,
                other => {
                    return Err(ReplicationError::BaseMismatch {
                        record_base,
                        have: other.map(CacheSnapshot::generation),
                    })
                }
            };
            let (scr, _) = apply_delta_body(config, base, &mut c, generation)?;
            c.finish()?;
            Ok((scr, generation))
        }
        k => Err(ReplicationError::Corrupt(format!(
            "unknown record kind {k}"
        ))),
    }
}

fn apply_delta_body(
    config: ScrConfig,
    base: &CacheSnapshot,
    c: &mut Cur<'_>,
    generation: u64,
) -> Result<(Scr, u64), ReplicationError> {
    let plan_count = c.u32()? as usize;
    if plan_count > 1_000_000 {
        return Err(ReplicationError::Corrupt(format!(
            "implausible plan count {plan_count}"
        )));
    }
    let mut plans: Vec<Arc<Plan>> = Vec::with_capacity(plan_count);
    let mut fps: HashSet<PlanFingerprint> = HashSet::with_capacity(plan_count);
    for i in 0..plan_count {
        let fp = PlanFingerprint(c.u64()?);
        let plan = match c.u8()? {
            PLAN_BASE_REF => Arc::clone(base.cache().plan(fp).ok_or_else(|| {
                ReplicationError::Corrupt(format!("plan {i} references {fp} missing from base"))
            })?),
            PLAN_INLINE => {
                let len = c.u32()? as usize;
                if len == 0 || len > 1 << 20 {
                    return Err(ReplicationError::Corrupt(format!(
                        "plan {i} has length {len}"
                    )));
                }
                let bytes = c.take(len)?.to_vec();
                let plan = CompactPlan::from_bytes(bytes.into_boxed_slice())
                    .checked_decode()
                    .map_err(|e| ReplicationError::Corrupt(format!("plan {i}: {e}")))?;
                if plan.fingerprint() != fp {
                    return Err(ReplicationError::Corrupt(format!(
                        "plan {i} fingerprint mismatch"
                    )));
                }
                Arc::new(plan)
            }
            t => {
                return Err(ReplicationError::Corrupt(format!(
                    "plan {i} has unknown tag {t}"
                )))
            }
        };
        fps.insert(fp);
        plans.push(plan);
    }

    let entry_count = c.u32()? as usize;
    if entry_count > 100_000_000 {
        return Err(ReplicationError::Corrupt(format!(
            "implausible entry count {entry_count}"
        )));
    }
    let base_entries = base.cache().instances();
    let mut entries: Vec<InstanceEntry> = Vec::with_capacity(entry_count);
    for i in 0..entry_count {
        match c.u8()? {
            ENTRY_BASE_REF => {
                let idx = c.u32()? as usize;
                let e = base_entries.get(idx).ok_or_else(|| {
                    ReplicationError::Corrupt(format!(
                        "entry {i} references base index {idx} of {}",
                        base_entries.len()
                    ))
                })?;
                if !fps.contains(&e.plan) {
                    return Err(ReplicationError::Corrupt(format!(
                        "entry {i} references plan {} absent from this generation",
                        e.plan
                    )));
                }
                entries.push(InstanceEntry::restored(
                    e.svector.clone(),
                    e.plan,
                    e.opt_cost,
                    e.sub_opt,
                    e.usage(),
                    e.violation_detected(),
                ));
            }
            ENTRY_INLINE => {
                let fp = PlanFingerprint(c.u64()?);
                if !fps.contains(&fp) {
                    return Err(ReplicationError::Corrupt(format!(
                        "entry {i} references plan {fp} absent from this generation"
                    )));
                }
                let d = c.u32()? as usize;
                if d == 0 || d > 64 {
                    return Err(ReplicationError::Corrupt(format!(
                        "entry {i} has dimensionality {d}"
                    )));
                }
                let mut sels = Vec::with_capacity(d);
                for _ in 0..d {
                    let s = c.f64()?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(ReplicationError::Corrupt(format!(
                            "entry {i} has selectivity {s}"
                        )));
                    }
                    sels.push(s);
                }
                let opt_cost = c.f64()?;
                let sub_opt = c.f64()?;
                let usage = c.u64()?;
                let violation = c.u8()? != 0;
                if !opt_cost.is_finite() || opt_cost <= 0.0 || !sub_opt.is_finite() || sub_opt < 1.0
                {
                    return Err(ReplicationError::Corrupt(format!(
                        "entry {i} has C={opt_cost}, S={sub_opt}"
                    )));
                }
                entries.push(InstanceEntry::restored(
                    SVector(sels),
                    fp,
                    opt_cost,
                    sub_opt,
                    usage,
                    violation,
                ));
            }
            t => {
                return Err(ReplicationError::Corrupt(format!(
                    "entry {i} has unknown tag {t}"
                )))
            }
        }
    }

    let log_cost_sum = c.f64()?;
    let opt_count = c.u64()?;
    if !log_cost_sum.is_finite() {
        return Err(ReplicationError::Corrupt("non-finite λ accumulator".into()));
    }

    let scr = Scr::from_parts(config, plans, entries, log_cost_sum, opt_count)
        .map_err(|e| ReplicationError::Corrupt(format!("invalid decoded state: {e}")))?;
    Ok((scr, generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{CacheWriter, SnapshotCell};
    use crate::testutil::fixture_template;
    use pqo_optimizer::engine::QueryEngine;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};

    /// Drive one seeded point through the writer (optimize on miss) and
    /// return whether it published a new generation.
    fn drive(
        t: &Arc<pqo_optimizer::template::QueryTemplate>,
        engine: &QueryEngine,
        writer: &mut CacheWriter,
        cell: &SnapshotCell,
        target: &[f64],
    ) -> bool {
        let inst = instance_for_target(t, target);
        let sv = compute_svector(t, &inst);
        if cell.load().try_cached_plan(&sv, engine).is_some() {
            return false;
        }
        let opt = engine.optimize(&sv);
        writer.manage_cache_entry(&sv, opt, engine, cell);
        true
    }

    fn targets(n: usize) -> Vec<[f64; 2]> {
        (0..n)
            .map(|i| {
                [
                    0.02 + 0.012 * (i % 73) as f64,
                    0.03 + 0.011 * ((i * 7) % 67) as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn full_record_roundtrips() {
        let t = fixture_template("repl_full");
        let engine = QueryEngine::new(Arc::clone(&t));
        let (mut writer, first) = CacheWriter::new(Scr::new(1.5).unwrap());
        let cell = SnapshotCell::new(first);
        for tg in targets(40) {
            drive(&t, &engine, &mut writer, &cell, &tg);
        }
        let latest = writer.latest_snapshot();
        let record = encode_generation(&latest, None);
        let info = record_info(&record).unwrap();
        assert_eq!(info.generation, latest.generation());
        assert_eq!(info.base, None);

        let (scr, generation) =
            apply_generation(ScrConfig::new(1.5).unwrap(), None, &record).unwrap();
        assert_eq!(generation, latest.generation());
        assert_eq!(scr.cache().num_plans(), latest.cache().num_plans());
        assert_eq!(scr.cache().num_instances(), latest.cache().num_instances());
        assert!(scr.cache().check_invariants().is_ok());
    }

    #[test]
    fn delta_chain_replays_primary_state_and_decisions() {
        let t = fixture_template("repl_chain");
        let engine = QueryEngine::new(Arc::clone(&t));
        let r_engine = QueryEngine::new(Arc::clone(&t));
        let cfg = ScrConfig::new(1.5).unwrap();
        let (mut writer, first) = CacheWriter::new(Scr::with_config(cfg.clone()).unwrap());
        let cell = SnapshotCell::new(first);
        let (mut r_writer, r_first) = CacheWriter::new(Scr::with_config(cfg.clone()).unwrap());
        let r_cell = SnapshotCell::new(r_first);

        // Bootstrap the replica with a full record of generation 0.
        let boot = encode_generation(&writer.latest_snapshot(), None);
        let (scr, generation) = apply_generation(cfg.clone(), None, &boot).unwrap();
        r_writer.install_generation(scr, generation, &r_cell);

        let mut delta_bytes = 0usize;
        let mut deltas = 0usize;
        for tg in targets(60) {
            if !drive(&t, &engine, &mut writer, &cell, &tg) {
                continue;
            }
            let applied = r_cell.load().generation();
            let latest = writer.latest_snapshot();
            let record = encode_generation(&latest, writer.logged_snapshot(applied).as_deref());
            let info = record_info(&record).unwrap();
            assert_eq!(
                info.base,
                Some(applied),
                "base within the log window must yield a delta"
            );
            delta_bytes += record.len();
            deltas += 1;
            let prev = r_cell.load();
            let (scr, generation) = apply_generation(cfg.clone(), Some(&prev), &record).unwrap();
            r_writer.install_generation(scr, generation, &r_cell);

            // Untouched plans keep their Arc identity across applied
            // generations — the delta shipped references, not bytes.
            let now = r_cell.load();
            for p in prev.cache().plans() {
                if let Some(q) = now.cache().plan(p.fingerprint()) {
                    assert!(Arc::ptr_eq(p, q), "replica re-materialized a shared plan");
                }
            }
        }
        assert!(deltas > 3, "workload must publish several generations");

        // Replica state equals the primary's canonical state.
        let p = cell.load();
        let r = r_cell.load();
        assert_eq!(r.generation(), p.generation());
        assert_eq!(r.cache().num_plans(), p.cache().num_plans());
        assert_eq!(r.cache().num_instances(), p.cache().num_instances());
        for (a, b) in p.cache().instances().iter().zip(r.cache().instances()) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.opt_cost.to_bits(), b.opt_cost.to_bits());
            assert_eq!(a.sub_opt.to_bits(), b.sub_opt.to_bits());
            assert_eq!(a.svector.0, b.svector.0);
        }

        // And makes identical reuse decisions on a fresh probe grid.
        for tg in targets(80) {
            let inst = instance_for_target(&t, &tg);
            let sv = compute_svector(&t, &inst);
            let a = p.try_cached_plan(&sv, &engine);
            let b = r.try_cached_plan(&sv, &r_engine);
            match (a, b) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.plan.fingerprint(), y.plan.fingerprint(), "at {tg:?}");
                    assert_eq!(x.optimized, y.optimized);
                }
                (a, b) => panic!(
                    "decision diverged at {tg:?}: {:?} vs {:?}",
                    a.is_some(),
                    b.is_some()
                ),
            }
        }

        // Deltas must be far cheaper than re-shipping the cache.
        let full = encode_generation(&cell.load(), None).len();
        assert!(
            delta_bytes / deltas < full,
            "average delta ({} B) not smaller than a full record ({full} B)",
            delta_bytes / deltas
        );
    }

    #[test]
    fn delta_base_mismatch_is_typed() {
        let t = fixture_template("repl_mismatch");
        let engine = QueryEngine::new(Arc::clone(&t));
        let cfg = ScrConfig::new(1.5).unwrap();
        let (mut writer, first) = CacheWriter::new(Scr::with_config(cfg.clone()).unwrap());
        let cell = SnapshotCell::new(first);
        for tg in targets(10) {
            drive(&t, &engine, &mut writer, &cell, &tg);
        }
        let base = writer.logged_snapshot(writer.generation() - 1).unwrap();
        let record = encode_generation(&writer.latest_snapshot(), Some(&base));

        // No base at all.
        let err = apply_generation(cfg.clone(), None, &record).unwrap_err();
        assert!(
            matches!(err, ReplicationError::BaseMismatch { have: None, .. }),
            "{err}"
        );
        // Wrong base generation.
        let wrong = writer.logged_snapshot(writer.generation() - 2).unwrap();
        let err = apply_generation(cfg, Some(&wrong), &record).unwrap_err();
        assert!(
            matches!(
                err,
                ReplicationError::BaseMismatch {
                    have: Some(g),
                    ..
                } if g == wrong.generation()
            ),
            "{err}"
        );
    }

    #[test]
    fn cross_policy_subscription_is_refused_with_typed_error() {
        let t = fixture_template("repl_policy");
        let engine = QueryEngine::new(Arc::clone(&t));
        let lec_cfg = ScrConfig::new(1.5).unwrap().with_policy(PolicyId::Lec);
        let (mut writer, first) = CacheWriter::new(Scr::with_config(lec_cfg.clone()).unwrap());
        let cell = SnapshotCell::new(first);
        for tg in targets(10) {
            drive(&t, &engine, &mut writer, &cell, &tg);
        }

        // The record header advertises the producing policy.
        let latest = writer.latest_snapshot();
        let full = encode_generation(&latest, None);
        assert_eq!(record_info(&full).unwrap().policy, PolicyId::Lec);
        let base = writer.logged_snapshot(writer.generation() - 1).unwrap();
        let delta = encode_generation(&latest, Some(&base));
        assert_eq!(record_info(&delta).unwrap().policy, PolicyId::Lec);

        // An SCR replica refuses both record kinds before touching the body.
        let scr_cfg = ScrConfig::new(1.5).unwrap();
        for record in [&full, &delta] {
            let err = apply_generation(scr_cfg.clone(), Some(&base), record).unwrap_err();
            assert!(
                matches!(
                    err,
                    ReplicationError::PolicyMismatch {
                        expected: PolicyId::Scr,
                        found: PolicyId::Lec,
                    }
                ),
                "{err}"
            );
            // And the workspace-wide error stays typed.
            let wide: PqoError = err.into();
            assert!(matches!(wide, PqoError::PolicyMismatch { .. }), "{wide}");
        }

        // A matching LEC replica applies the full record fine.
        assert!(apply_generation(lec_cfg, None, &full).is_ok());
    }

    #[test]
    fn corrupt_records_never_panic() {
        let t = fixture_template("repl_fuzz");
        let engine = QueryEngine::new(Arc::clone(&t));
        let cfg = ScrConfig::new(1.5).unwrap();
        let (mut writer, first) = CacheWriter::new(Scr::with_config(cfg.clone()).unwrap());
        let cell = SnapshotCell::new(first);
        for tg in targets(15) {
            drive(&t, &engine, &mut writer, &cell, &tg);
        }
        let base = writer.logged_snapshot(writer.generation() - 1).unwrap();
        for record in [
            encode_generation(&writer.latest_snapshot(), None),
            encode_generation(&writer.latest_snapshot(), Some(&base)),
        ] {
            // Truncations.
            for cut in 0..record.len().min(64) {
                let _ = apply_generation(cfg.clone(), Some(&base), &record[..cut]);
                let _ = record_info(&record[..cut]);
            }
            // Byte flips.
            for i in (0..record.len()).step_by(7) {
                let mut evil = record.clone();
                evil[i] ^= 0xFF;
                let _ = apply_generation(cfg.clone(), Some(&base), &evil);
            }
            // Trailing garbage.
            let mut evil = record.clone();
            evil.push(0);
            assert!(apply_generation(cfg.clone(), Some(&base), &evil).is_err());
        }
    }
}
