//! The concurrent serving layer: [`PqoService`].
//!
//! [`crate::manager::PqoManager`] is the single-threaded deployment surface;
//! `PqoService` is its thread-safe replacement, realizing the paper's
//! Figure 2 split at scale: `getPlan` stays on each caller's critical path
//! while cache maintenance serializes per template, and N threads serve
//! concurrently.
//!
//! # Snapshot-published read path
//!
//! * **Registry** — `RwLock<BTreeMap<name, Arc<Shard>>>`, read-mostly:
//!   `get_plan` takes a read lock just long enough to clone the shard's
//!   `Arc`; only `register` writes.
//! * **Shard** — one per template: a shared [`QueryEngine`] (interior-
//!   mutable, no lock needed), a [`SnapshotCell`] holding the published
//!   [`CacheSnapshot`] generation, and a `Mutex<CacheWriter>`. The SCR
//!   read path ([`CacheSnapshot::try_cached_plan`]) runs against a loaded
//!   generation with **no lock held** — cache hits on the same template
//!   never wait for `manageCache`, not even while a writer holds the
//!   writer mutex. Only confirmed misses (after the optimizer call, which
//!   also runs lock-free) enter the writer, which commits the mutation and
//!   publishes the next generation with one `Arc` swap.
//! * **Counters** — engine stats, SCR stats and the global plan total are
//!   atomics with snapshot views: observers never block servers. Instance
//!   usage counters are `Arc`-shared across generations, so LFU signal
//!   from readers on older snapshots still reaches the writer.
//!
//! # Error policy
//!
//! Misuse (unknown/duplicate template names, invalid λ, bad snapshots)
//! returns [`PqoError`]; panics are reserved for internal cache invariants.
//!
//! # Global budget
//!
//! Like the manager, the service can cap the total number of plans across
//! templates. The running total is an `AtomicUsize` adjusted by the exact
//! cache delta under each shard's writer lock — checking the budget is
//! O(1), and each eviction scans the registry once (O(templates), over
//! published snapshots) to find the global LFU victim instead of
//! re-counting every cache. In debug builds every eviction point
//! reconciles the running total against a full recount taken with all
//! writer locks held (every structural change *and* its accounting happen
//! under a writer lock, so the total is stable at that point).

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

use pqo_optimizer::engine::{EngineStats, OptimizedPlan, QueryEngine};
use pqo_optimizer::error::PqoError;
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};

use crate::persist;
use crate::replication;
use crate::scr::{GetPlanScratch, Scr, ScrConfig, ScrStats};
use crate::snapshot::{CacheSnapshot, CacheWriter, SnapshotCell};
use crate::PlanChoice;

/// One registered template: its engine (shared, lock-free), the published
/// snapshot generation (read path, lock-free in practice), the writer
/// (cache maintenance, serialized by the mutex) and a shared
/// [`GetPlanScratch`] so cost checks reuse one memo table and recost base
/// derivation across calls instead of allocating per call.
struct Shard {
    engine: QueryEngine,
    published: SnapshotCell,
    writer: Mutex<CacheWriter>,
    scratch: Mutex<GetPlanScratch>,
}

impl Shard {
    fn writer(&self) -> MutexGuard<'_, CacheWriter> {
        self.writer.lock().expect("writer lock poisoned")
    }

    /// The cached `getPlan` path against `snapshot`, borrowing the shard
    /// scratch when it is free. Contended callers fall back to a fresh
    /// scratch rather than wait — the scratch is an optimization, never a
    /// serialization point.
    fn try_cached_plan(&self, snapshot: &CacheSnapshot, sv: &SVector) -> Option<PlanChoice> {
        match self.scratch.try_lock() {
            Ok(mut scratch) => snapshot.try_cached_plan_with(sv, &self.engine, &mut scratch),
            Err(_) => snapshot.try_cached_plan(sv, &self.engine),
        }
    }
}

/// Thread-safe multi-template serving layer (`Send + Sync`): shared
/// ownership, typed errors, per-template sharding.
///
/// ```
/// use std::sync::Arc;
/// use pqo_core::service::PqoService;
/// use pqo_core::scr::ScrConfig;
/// use pqo_optimizer::template::{RangeOp, TemplateBuilder};
/// use pqo_optimizer::svector::instance_for_target;
///
/// # fn main() -> Result<(), pqo_core::PqoError> {
/// let catalog = pqo_catalog::schemas::tpch_skew();
/// let mut b = TemplateBuilder::new("dashboard");
/// let o = b.relation(catalog.expect_table("orders"), "o");
/// b.param(o, "o_totalprice", RangeOp::Le);
/// let template = b.build();
///
/// let service = Arc::new(PqoService::new());
/// service.register(template.clone(), ScrConfig::new(2.0)?)?;
///
/// let q = instance_for_target(&template, &[0.2]);
/// let first = service.get_plan("dashboard", &q)?;
/// let second = service.get_plan("dashboard", &q)?;
/// assert!(first.optimized && !second.optimized);
/// # Ok(())
/// # }
/// ```
pub struct PqoService {
    shards: RwLock<BTreeMap<String, Arc<Shard>>>,
    global_plan_budget: Option<usize>,
    /// Running total of plans cached across all shards; every structural
    /// cache change adjusts it by the exact delta under the owning shard's
    /// write lock.
    total_plans: AtomicUsize,
    global_evictions: AtomicU64,
}

impl PqoService {
    /// Service without a global budget.
    pub fn new() -> Self {
        PqoService {
            shards: RwLock::new(BTreeMap::new()),
            global_plan_budget: None,
            total_plans: AtomicUsize::new(0),
            global_evictions: AtomicU64::new(0),
        }
    }

    /// Service with a global cap on the total number of cached plans.
    ///
    /// # Errors
    /// [`PqoError::InvalidBudget`] if `budget` is zero.
    pub fn with_global_budget(budget: usize) -> Result<Self, PqoError> {
        if budget == 0 {
            return Err(PqoError::InvalidBudget { budget });
        }
        let mut s = PqoService::new();
        s.global_plan_budget = Some(budget);
        Ok(s)
    }

    /// Register a template under its name with the given configuration.
    ///
    /// # Errors
    /// [`PqoError::DuplicateTemplate`] if the name is taken;
    /// [`PqoError::InvalidLambda`] / [`PqoError::InvalidBudget`] if the
    /// configuration is invalid.
    pub fn register(
        &self,
        template: Arc<QueryTemplate>,
        config: ScrConfig,
    ) -> Result<(), PqoError> {
        let scr = Scr::with_config(config)?;
        self.install(template, scr, 0)
    }

    /// Register a template whose SCR state is restored from a snapshot
    /// produced by [`persist::save`] (e.g. a warm restart). The restored
    /// shard continues the snapshot's generation lineage: its published
    /// generation equals the stamp the snapshot was saved under, so a
    /// restarted replica can resubscribe from where it left off.
    ///
    /// # Errors
    /// [`PqoError::Persist`] when the snapshot is unreadable or corrupt, in
    /// addition to the [`PqoService::register`] errors.
    pub fn register_restored(
        &self,
        template: Arc<QueryTemplate>,
        config: ScrConfig,
        snapshot: &mut impl Read,
    ) -> Result<(), PqoError> {
        let (scr, generation) = persist::restore_with_generation(config, snapshot)?;
        self.install(template, scr, generation)
    }

    fn install(
        &self,
        template: Arc<QueryTemplate>,
        scr: Scr,
        generation: u64,
    ) -> Result<(), PqoError> {
        let name = template.name.clone();
        let plans = scr.cache().num_plans();
        let (writer, first) = CacheWriter::at_generation(scr, generation);
        let mut shards = self.shards.write().expect("registry lock poisoned");
        if shards.contains_key(&name) {
            return Err(PqoError::DuplicateTemplate { name });
        }
        shards.insert(
            name,
            Arc::new(Shard {
                engine: QueryEngine::new(template),
                published: SnapshotCell::new(first),
                writer: Mutex::new(writer),
                scratch: Mutex::new(GetPlanScratch::new()),
            }),
        );
        // Account while still holding the registry write lock so the debug
        // reconciler (which scans under the registry read lock) never
        // observes a shard whose restored plans are not yet in the total.
        self.total_plans.fetch_add(plans, Ordering::Relaxed);
        drop(shards);
        self.enforce_global_budget();
        Ok(())
    }

    /// Persist one template's current published generation into `w` (see
    /// [`persist::save_snapshot`]): the blob is internally consistent
    /// without taking the writer lock, because the generation is immutable.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] / [`PqoError::Persist`].
    pub fn save(&self, template: &str, w: &mut impl Write) -> Result<(), PqoError> {
        let snapshot = self.shard(template)?.published.load();
        persist::save_snapshot(&snapshot, w).map_err(|e| PqoError::Persist {
            message: e.to_string(),
        })
    }

    /// The registered template object behind `name` — front ends (e.g. the
    /// TCP server) use it to validate incoming instances (arity, finite
    /// parameter values) *before* entering the serving path.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn template(&self, name: &str) -> Result<Arc<QueryTemplate>, PqoError> {
        Ok(Arc::clone(self.shard(name)?.engine.template()))
    }

    /// Registered template names, sorted.
    pub fn templates(&self) -> Vec<String> {
        self.shards
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect()
    }

    fn shard(&self, template: &str) -> Result<Arc<Shard>, PqoError> {
        self.shards
            .read()
            .expect("registry lock poisoned")
            .get(template)
            .cloned()
            .ok_or_else(|| PqoError::UnknownTemplate {
                name: template.to_string(),
            })
    }

    /// Serve one instance of the named template — callable from any number
    /// of threads concurrently.
    ///
    /// The fast path (selectivity/cost check hit) runs against the loaded
    /// [`CacheSnapshot`] generation with no lock held — it proceeds even
    /// while another thread's `manageCache` holds the writer lock. A miss
    /// optimizes *outside* all locks, then commits `manageCache` under the
    /// writer lock and publishes the next generation. Two threads missing
    /// on the same point may both optimize — the second commit simply
    /// extends the existing plan's inference region (benign, never
    /// violates λ).
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] when `template` is not registered.
    pub fn get_plan(
        &self,
        template: &str,
        instance: &QueryInstance,
    ) -> Result<PlanChoice, PqoError> {
        Ok(self.get_plan_with_generation(template, instance)?.0)
    }

    /// [`PqoService::get_plan`] plus the generation the decision is valid
    /// at: the published generation the hit was served from, or the
    /// generation a miss's `manageCache` published. A replica that has
    /// applied *at least* this generation holds every cache entry this
    /// decision depends on — the wire protocol carries it so replicas can
    /// sequence forwarded decisions against their own applied stream.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] when `template` is not registered.
    pub fn get_plan_with_generation(
        &self,
        template: &str,
        instance: &QueryInstance,
    ) -> Result<(PlanChoice, u64), PqoError> {
        let shard = self.shard(template)?;
        let sv = shard.engine.compute_svector(instance);

        let snapshot = shard.published.load();
        if let Some(choice) = shard.try_cached_plan(&snapshot, &sv) {
            return Ok((choice, snapshot.generation()));
        }

        // Miss: the optimizer call happens with no lock held.
        let t0 = Instant::now();
        let opt = shard.engine.optimize(&sv);
        let opt_nanos = t0.elapsed().as_nanos() as u64;
        let plan = Arc::clone(&opt.plan);
        let generation = self.commit(&shard, &sv, opt, opt_nanos);
        Ok((
            PlanChoice {
                plan,
                optimized: true,
            },
            generation,
        ))
    }

    /// The cache-only serving path (selectivity check + cost check against
    /// the current published generation — never an optimizer call, never a
    /// cache mutation), plus the generation consulted. This is the replica
    /// fast path: a read replica answers hits locally and forwards misses
    /// (`None`) to its primary.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] when `template` is not registered.
    pub fn serve_cached(
        &self,
        template: &str,
        instance: &QueryInstance,
    ) -> Result<(Option<PlanChoice>, u64), PqoError> {
        let shard = self.shard(template)?;
        let sv = shard.engine.compute_svector(instance);
        let snapshot = shard.published.load();
        Ok((shard.try_cached_plan(&snapshot, &sv), snapshot.generation()))
    }

    /// Serve a batch of instances of the named template, amortizing the
    /// snapshot load and the selectivity-vector pass across the batch.
    ///
    /// One generation is loaded up front and serves every cache hit; each
    /// confirmed miss optimizes, commits and re-loads the just-published
    /// generation, so instance `i+1` sees the plan instance `i` added —
    /// the per-instance decisions are exactly those the sequential
    /// [`Scr`] technique would make over the same sequence (asserted
    /// against the oracle in `tests/snapshot_stress.rs`).
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] when `template` is not registered.
    pub fn get_plan_batch(
        &self,
        template: &str,
        instances: &[QueryInstance],
    ) -> Result<Vec<PlanChoice>, PqoError> {
        Ok(self.get_plan_batch_with_generation(template, instances)?.0)
    }

    /// [`PqoService::get_plan_batch`] plus the generation the *last*
    /// decision in the batch is valid at (see
    /// [`PqoService::get_plan_with_generation`]): the generation of the
    /// final snapshot consulted, which covers every decision in the frame.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] when `template` is not registered.
    pub fn get_plan_batch_with_generation(
        &self,
        template: &str,
        instances: &[QueryInstance],
    ) -> Result<(Vec<PlanChoice>, u64), PqoError> {
        let shard = self.shard(template)?;
        // One selectivity pass over the whole batch.
        let svs: Vec<_> = instances
            .iter()
            .map(|q| shard.engine.compute_svector(q))
            .collect();
        let mut snapshot = shard.published.load();
        snapshot.record_batch(instances.len() as u64);
        let mut out = Vec::with_capacity(instances.len());
        for sv in &svs {
            if let Some(choice) = shard.try_cached_plan(&snapshot, sv) {
                out.push(choice);
                continue;
            }
            let t0 = Instant::now();
            let opt = shard.engine.optimize(sv);
            let opt_nanos = t0.elapsed().as_nanos() as u64;
            let plan = Arc::clone(&opt.plan);
            self.commit(&shard, sv, opt, opt_nanos);
            snapshot = shard.published.load();
            snapshot.record_snapshot_reload();
            out.push(PlanChoice {
                plan,
                optimized: true,
            });
        }
        Ok((out, snapshot.generation()))
    }

    /// Commit a fresh optimization: `manageCache` + publication under the
    /// shard's writer lock, exact-delta accounting under the same lock,
    /// then global-budget enforcement. `opt_nanos` is the wall time the
    /// caller spent inside the (lock-free) optimizer call, attributed to
    /// the technique's overhead split. Returns the generation the commit
    /// published.
    fn commit(&self, shard: &Shard, sv: &SVector, opt: OptimizedPlan, opt_nanos: u64) -> u64 {
        let generation = {
            let mut writer = shard.writer();
            writer.scr().record_optimize_nanos(opt_nanos);
            let (before, after) =
                writer.manage_cache_entry(sv, opt, &shard.engine, &shard.published);
            self.apply_delta(before, after);
            writer.generation()
        };
        self.enforce_global_budget();
        generation
    }

    fn apply_delta(&self, before: usize, after: usize) {
        if after >= before {
            self.total_plans
                .fetch_add(after - before, Ordering::Relaxed);
        } else {
            self.total_plans
                .fetch_sub(before - after, Ordering::Relaxed);
        }
    }

    /// The named template's current published generation — an immutable
    /// view callers can hold across many decisions (e.g. the baselines
    /// runner, tools) without pinning any lock.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn snapshot(&self, template: &str) -> Result<Arc<CacheSnapshot>, PqoError> {
        Ok(self.shard(template)?.published.load())
    }

    /// The named template's current published generation stamp (O(1); the
    /// replication heartbeat).
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn generation(&self, template: &str) -> Result<u64, PqoError> {
        Ok(self.shard(template)?.published.load().generation())
    }

    /// Encode the named template's latest published generation as a
    /// replication record (see [`replication::encode_generation`]): a delta
    /// against `since` when that base is still in the writer's generation
    /// log, a full snapshot otherwise. The `Arc`s are grabbed under the
    /// writer lock; the (possibly large) encode runs after it is released.
    /// Returns the record and the generation it produces.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn generation_record(
        &self,
        template: &str,
        since: Option<u64>,
    ) -> Result<(Vec<u8>, u64), PqoError> {
        let shard = self.shard(template)?;
        let (latest, base) = {
            let writer = shard.writer();
            let base = since.and_then(|g| writer.logged_snapshot(g));
            (writer.latest_snapshot(), base)
        };
        let generation = latest.generation();
        Ok((
            replication::encode_generation(&latest, base.as_deref()),
            generation,
        ))
    }

    /// Catch-up batch of [`PqoService::generation_record`]: every record a
    /// subscriber at `since` needs to reach the latest published generation,
    /// in apply order. When the whole span `since..=latest` is still in the
    /// writer's generation log, the result is one *delta per intermediate
    /// generation* — a resubscriber several generations behind gets the
    /// missing deltas back-to-back in one burst instead of one full
    /// snapshot or one round trip per generation. When any intermediate
    /// generation has aged out of the log (or `since` is `None`), this
    /// degrades to the single record [`PqoService::generation_record`]
    /// would produce.
    ///
    /// The `Arc`s are grabbed under the writer lock; the encodes run after
    /// it is released. Each element is `(record, generation it produces)`;
    /// an already-caught-up subscriber gets an empty batch.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn generation_records(
        &self,
        template: &str,
        since: Option<u64>,
    ) -> Result<Vec<(Vec<u8>, u64)>, PqoError> {
        let shard = self.shard(template)?;
        // Under the lock: the latest generation plus the contiguous chain of
        // logged snapshots from `since` forward (base first).
        let (latest, chain) = {
            let writer = shard.writer();
            let latest = writer.latest_snapshot();
            let chain = since.map(|from| {
                let mut chain = Vec::new();
                for g in from..latest.generation() {
                    match writer.logged_snapshot(g) {
                        Some(s) => chain.push(s),
                        None => {
                            chain.clear();
                            break;
                        }
                    }
                }
                chain
            });
            (latest, chain)
        };
        let latest_gen = latest.generation();
        if since == Some(latest_gen) {
            return Ok(Vec::new());
        }
        match chain {
            // Contiguous span: one delta per missing generation, each
            // encoded against its immediate predecessor.
            Some(chain) if !chain.is_empty() => {
                let mut records = Vec::with_capacity(chain.len());
                for pair in chain.windows(2) {
                    records.push((
                        replication::encode_generation(&pair[1], Some(&pair[0])),
                        pair[1].generation(),
                    ));
                }
                let last_base = chain.last().expect("chain is non-empty");
                records.push((
                    replication::encode_generation(&latest, Some(last_base)),
                    latest_gen,
                ));
                Ok(records)
            }
            // Base aged out of the log (or no base at all): a single full
            // record re-ships the cache, exactly as `generation_record`.
            _ => Ok(vec![(
                replication::encode_generation(&latest, None),
                latest_gen,
            )]),
        }
    }

    /// Apply a pushed replication record to the named template (the replica
    /// side of [`PqoService::generation_record`]): decode against the
    /// current published generation as delta base, then install the decoded
    /// state under the record's generation stamp. Plan-count accounting and
    /// the global budget apply exactly as for locally committed mutations.
    /// Returns the generation now published.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`]; [`PqoError::Persist`] when the record
    /// is corrupt or its delta base does not match the currently published
    /// generation (the caller should resubscribe from its actual
    /// generation).
    pub fn apply_generation(&self, template: &str, record: &[u8]) -> Result<u64, PqoError> {
        let shard = self.shard(template)?;
        let generation = {
            let mut writer = shard.writer();
            let base = writer.latest_snapshot();
            let config = base.config().clone();
            let (scr, generation) = replication::apply_generation(config, Some(&base), record)?;
            let before = writer.scr().cache().num_plans();
            let after = scr.cache().num_plans();
            writer.install_generation(scr, generation, &shard.published);
            self.apply_delta(before, after);
            generation
        };
        self.enforce_global_budget();
        Ok(generation)
    }

    /// Total plans cached across all templates (O(1): the running total).
    pub fn total_plans(&self) -> usize {
        self.total_plans.load(Ordering::Relaxed)
    }

    /// Total optimizer calls across all templates.
    pub fn total_optimizer_calls(&self) -> u64 {
        let shards = self.shards.read().expect("registry lock poisoned");
        shards
            .values()
            .map(|s| s.engine.stats().optimize_calls)
            .sum()
    }

    /// Plans evicted by the *global* budget (per-template budgets count in
    /// each SCR's own stats).
    pub fn global_evictions(&self) -> u64 {
        self.global_evictions.load(Ordering::Relaxed)
    }

    /// Snapshot of one template's technique counters (lock-free reads of
    /// the atomic cells, shared between the writer and every published
    /// generation).
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn scr_stats(&self, template: &str) -> Result<ScrStats, PqoError> {
        Ok(self.shard(template)?.published.load().stats())
    }

    /// Snapshot of one template's engine counters.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn engine_stats(&self, template: &str) -> Result<EngineStats, PqoError> {
        Ok(self.shard(template)?.engine.stats())
    }

    /// Run a closure against one template's canonical SCR state under the
    /// *writer* lock (e.g. invariant checks in tests, cache introspection
    /// in tools). Cache-hit readers keep serving from the published
    /// generation while `f` runs — only writers wait.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`].
    pub fn with_scr<R>(&self, template: &str, f: impl FnOnce(&Scr) -> R) -> Result<R, PqoError> {
        Ok(f(self.shard(template)?.writer().scr()))
    }

    /// Global LFU enforcement: O(1) budget check against the running total;
    /// each eviction makes one pass over the shards' *published
    /// generations* (no lock beyond the registry read lock) to pick the
    /// minimum-aggregate-usage plan (Section 6.3.1 lifted one level).
    fn enforce_global_budget(&self) {
        let Some(budget) = self.global_plan_budget else {
            return;
        };
        while self.total_plans.load(Ordering::Relaxed) > budget {
            let victim: Option<(u64, String, Arc<Shard>, PlanFingerprint)> = {
                let shards = self.shards.read().expect("registry lock poisoned");
                let mut best: Option<(u64, String, Arc<Shard>, PlanFingerprint)> = None;
                for (name, shard) in shards.iter() {
                    let snapshot = shard.published.load();
                    if let Some(fp) = snapshot.cache().min_usage_plan() {
                        let usage = snapshot.cache().plan_usage(fp);
                        let better = match &best {
                            None => true,
                            Some((u, n, _, _)) => (usage, name) < (*u, n),
                        };
                        if better {
                            best = Some((usage, name.clone(), Arc::clone(shard), fp));
                        }
                    }
                }
                best
            };
            let Some((_, _, shard, fp)) = victim else {
                break;
            };
            {
                let mut writer = shard.writer();
                // The victim came from a published snapshot and may already
                // be gone from the canonical state; `evict_plan` re-checks
                // under the writer lock and reports the exact delta.
                let (before, after) = writer.evict_plan(fp, &shard.published);
                self.apply_delta(before, after);
                if before > after {
                    self.global_evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            self.debug_reconcile_total();
            // If another thread raced us to this victim, loop and re-check
            // the (already-decremented) total.
        }
    }

    /// Debug-build reconciliation of the O(1) running total against a full
    /// recount (ISSUE satellite): takes every shard's writer lock in
    /// registry order — every structural cache change *and* its
    /// accounting happen under the owning writer lock, so with all locks
    /// held the total is momentarily exact. Registry-order acquisition is
    /// deadlock-free because no other code path holds two writer locks.
    #[inline]
    fn debug_reconcile_total(&self) {
        if !cfg!(debug_assertions) {
            return;
        }
        let shards = self.shards.read().expect("registry lock poisoned");
        let guards: Vec<MutexGuard<'_, CacheWriter>> =
            shards.values().map(|s| s.writer()).collect();
        let recount: usize = guards.iter().map(|w| w.scr().cache().num_plans()).sum();
        debug_assert_eq!(
            recount,
            self.total_plans.load(Ordering::Relaxed),
            "global plan total drifted from recount at eviction point"
        );
    }
}

impl Default for PqoService {
    fn default() -> Self {
        PqoService::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{inst_at, single_rel_template};

    fn service_two_templates() -> (PqoService, Arc<QueryTemplate>, Arc<QueryTemplate>) {
        let t_orders = single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate");
        let t_line = single_rel_template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice");
        let s = PqoService::new();
        s.register(Arc::clone(&t_orders), ScrConfig::new(2.0).unwrap())
            .unwrap();
        s.register(Arc::clone(&t_line), ScrConfig::new(1.5).unwrap())
            .unwrap();
        (s, t_orders, t_line)
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PqoService>();
    }

    #[test]
    fn serves_templates_with_typed_errors() {
        let (s, t_orders, _) = service_two_templates();
        assert_eq!(
            s.templates(),
            vec!["q_lineitem".to_string(), "q_orders".to_string()]
        );

        let q = inst_at(&t_orders, &[0.1, 0.5]);
        assert!(s.get_plan("q_orders", &q).unwrap().optimized);
        assert!(!s.get_plan("q_orders", &q).unwrap().optimized);

        let err = s.get_plan("nope", &q).unwrap_err();
        assert!(matches!(err, PqoError::UnknownTemplate { ref name } if name == "nope"));
        let err = s
            .register(
                single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate"),
                ScrConfig::new(2.0).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, PqoError::DuplicateTemplate { ref name } if name == "q_orders"));
        assert!(matches!(
            PqoService::with_global_budget(0),
            Err(PqoError::InvalidBudget { budget: 0 })
        ));
    }

    #[test]
    fn running_total_matches_recount() {
        let (s, t_orders, t_line) = service_two_templates();
        for i in 1..=9 {
            let p = [0.1 * i as f64, 1.0 - 0.1 * i as f64];
            let _ = s.get_plan("q_orders", &inst_at(&t_orders, &p)).unwrap();
            let _ = s.get_plan("q_lineitem", &inst_at(&t_line, &p)).unwrap();
            let recount: usize = s
                .templates()
                .iter()
                .map(|n| s.with_scr(n, |scr| scr.cache().num_plans()).unwrap())
                .sum();
            assert_eq!(s.total_plans(), recount);
        }
    }

    #[test]
    fn global_budget_holds_across_shards() {
        let t_orders = single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate");
        let t_line = single_rel_template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice");
        let s = PqoService::with_global_budget(3).unwrap();
        let mut cfg = ScrConfig::new(1.02).unwrap();
        cfg.lambda_r = 0.0; // store aggressively to stress the budget
        s.register(Arc::clone(&t_orders), cfg.clone()).unwrap();
        s.register(Arc::clone(&t_line), cfg).unwrap();
        let probes: [[f64; 2]; 6] = [
            [0.001, 0.9],
            [0.9, 0.001],
            [0.9, 0.9],
            [0.002, 0.95],
            [0.95, 0.002],
            [0.85, 0.95],
        ];
        for p in probes {
            let _ = s.get_plan("q_orders", &inst_at(&t_orders, &p)).unwrap();
            let _ = s.get_plan("q_lineitem", &inst_at(&t_line, &p)).unwrap();
            assert!(
                s.total_plans() <= 3,
                "global budget violated: {}",
                s.total_plans()
            );
        }
        assert!(s.global_evictions() > 0, "tight budget must evict");
        for name in s.templates() {
            s.with_scr(&name, |scr| assert!(scr.cache().check_invariants().is_ok()))
                .unwrap();
        }
    }

    #[test]
    fn save_restore_roundtrip_through_service() {
        let (s, t_orders, _) = service_two_templates();
        for i in 1..=8 {
            let _ = s
                .get_plan("q_orders", &inst_at(&t_orders, &[0.1 * i as f64, 0.5]))
                .unwrap();
        }
        let mut buf = Vec::new();
        s.save("q_orders", &mut buf).unwrap();
        assert!(matches!(
            s.save("nope", &mut Vec::new()),
            Err(PqoError::UnknownTemplate { .. })
        ));

        let s2 = PqoService::new();
        s2.register_restored(
            Arc::clone(&t_orders),
            ScrConfig::new(2.0).unwrap(),
            &mut buf.as_slice(),
        )
        .unwrap();
        assert_eq!(
            s2.with_scr("q_orders", |scr| scr.cache().num_plans())
                .unwrap(),
            s.with_scr("q_orders", |scr| scr.cache().num_plans())
                .unwrap(),
        );
        assert_eq!(
            s2.total_plans(),
            s2.with_scr("q_orders", |s| s.cache().num_plans()).unwrap()
        );
        // A warm-region instance serves without re-optimizing.
        let q = inst_at(&t_orders, &[0.4, 0.5]);
        assert!(!s2.get_plan("q_orders", &q).unwrap().optimized);

        let err = s2
            .register_restored(
                single_rel_template("fresh", "orders", "o_totalprice", "o_orderdate"),
                ScrConfig::new(2.0).unwrap(),
                &mut &b"garbage-not-a-snapshot"[..],
            )
            .unwrap_err();
        assert!(matches!(err, PqoError::Persist { .. }), "{err}");
    }

    #[test]
    fn replication_stream_mirrors_primary_shard() {
        let (p, t_orders, _) = service_two_templates();
        let r = PqoService::new();
        r.register(Arc::clone(&t_orders), ScrConfig::new(2.0).unwrap())
            .unwrap();
        let mut applied = 0u64;
        for i in 1..=9 {
            let q = inst_at(&t_orders, &[0.1 * i as f64, 0.5]);
            let (_, gen) = p.get_plan_with_generation("q_orders", &q).unwrap();
            if gen > applied {
                let (record, produced) = p.generation_record("q_orders", Some(applied)).unwrap();
                applied = r.apply_generation("q_orders", &record).unwrap();
                assert_eq!(applied, produced);
            }
            // The replica now serves the same point as a local cache hit.
            let (hit, g) = r.serve_cached("q_orders", &q).unwrap();
            assert_eq!(g, applied);
            let hit = hit.expect("replayed generation must cover the instance");
            assert!(!hit.optimized);
        }
        assert_eq!(
            r.generation("q_orders").unwrap(),
            p.generation("q_orders").unwrap()
        );
        assert_eq!(r.total_plans(), p.total_plans()); // only q_orders holds plans
                                                      // A stale/corrupt record surfaces as a typed persist error.
        let (record, _) = p.generation_record("q_orders", None).unwrap();
        let mut evil = record;
        evil[4] = 0xEE;
        assert!(matches!(
            r.apply_generation("q_orders", &evil),
            Err(PqoError::Persist { .. })
        ));
    }

    #[test]
    fn catch_up_batch_ships_consecutive_deltas() {
        let t_orders = crate::testutil::fixture_template("q_orders");
        let cfg = ScrConfig::new(1.5).unwrap();
        let p = PqoService::new();
        p.register(Arc::clone(&t_orders), cfg.clone()).unwrap();
        let r = PqoService::new();
        r.register(Arc::clone(&t_orders), cfg).unwrap();

        // Caught-up subscriber: empty batch.
        let g0 = p.generation("q_orders").unwrap();
        assert!(p
            .generation_records("q_orders", Some(g0))
            .unwrap()
            .is_empty());

        // Drive a varied sweep until several generations publish while the
        // subscriber is away, stopping before the log window (depth 8) ages
        // the subscriber's base out.
        let applied = p.generation("q_orders").unwrap();
        let probe = |i: usize| {
            [
                0.02 + 0.012 * (i % 73) as f64,
                0.03 + 0.011 * ((i * 7) % 67) as f64,
            ]
        };
        let mut i = 0usize;
        while p.generation("q_orders").unwrap() - applied < 4 {
            let _ = p
                .get_plan("q_orders", &inst_at(&t_orders, &probe(i)))
                .unwrap();
            i += 1;
            assert!(i < 200, "workload never published 4 generations");
        }
        let latest = p.generation("q_orders").unwrap();
        assert!(latest - applied >= 3, "workload must publish generations");

        // The burst holds one delta per missing generation, in apply order.
        let records = p.generation_records("q_orders", Some(applied)).unwrap();
        assert_eq!(records.len(), (latest - applied) as usize);
        let mut expected_base = applied;
        let mut replica_gen = applied;
        for (record, produced) in &records {
            let info = replication::record_info(record).unwrap();
            assert_eq!(
                info.base,
                Some(expected_base),
                "records must chain consecutively"
            );
            assert_eq!(info.generation, *produced);
            expected_base = *produced;
            replica_gen = r.apply_generation("q_orders", record).unwrap();
        }
        assert_eq!(replica_gen, latest, "burst must land on the latest");
        assert_eq!(r.total_plans(), p.total_plans());

        // A subscriber whose base aged out of the log window degrades to a
        // single full record.
        while p.generation("q_orders").unwrap() - applied < 9 {
            let _ = p
                .get_plan("q_orders", &inst_at(&t_orders, &probe(i)))
                .unwrap();
            i += 1;
            assert!(i < 400, "workload never aged the base out of the log");
        }
        let records = p.generation_records("q_orders", Some(applied)).unwrap();
        assert_eq!(records.len(), 1, "aged-out base must fall back to full");
        let info = replication::record_info(&records[0].0).unwrap();
        assert_eq!(info.base, None, "fallback record must be full");
        assert_eq!(info.generation, p.generation("q_orders").unwrap());
    }

    #[test]
    fn concurrent_get_plan_on_shared_service() {
        let (s, t_orders, t_line) = service_two_templates();
        let s = Arc::new(s);
        std::thread::scope(|scope| {
            for k in 0..8 {
                let s = Arc::clone(&s);
                let (t_o, t_l) = (Arc::clone(&t_orders), Arc::clone(&t_line));
                scope.spawn(move || {
                    for i in 0..20 {
                        let p = [0.05 + 0.045 * ((i + k) % 20) as f64, 0.5];
                        if k % 2 == 0 {
                            s.get_plan("q_orders", &inst_at(&t_o, &p)).unwrap();
                        } else {
                            s.get_plan("q_lineitem", &inst_at(&t_l, &p)).unwrap();
                        }
                    }
                });
            }
        });
        for name in s.templates() {
            s.with_scr(&name, |scr| assert!(scr.cache().check_invariants().is_ok()))
                .unwrap();
        }
        let stats = s.scr_stats("q_orders").unwrap();
        assert!(stats.selectivity_hits + stats.cost_hits + stats.optimizer_calls > 0);
    }
}
