//! Multi-query PQO manager (single-threaded).
//!
//! The paper's machinery is per-template: one plan cache, one instance
//! list, one λ per parameterized query (Section 2). A real deployment
//! serves *many* templates at once under one memory budget ("in case a
//! plan cache budget ... is enforced", Section 6.3.1 — per query in the
//! paper, global here). [`PqoManager`] is that deployment surface:
//!
//! * register a template (with its own λ / configuration),
//! * feed raw instances — the manager computes the sVector, runs SCR and
//!   returns the plan,
//! * optionally enforce a **global** plan budget: when the total number of
//!   cached plans across templates exceeds it, the least-used plan across
//!   all templates is evicted (the same LFU rule as Section 6.3.1, lifted
//!   one level).
//!
//! For concurrent serving, use [`crate::service::PqoService`] — the
//! `Send + Sync` replacement with the same semantics. `PqoManager` remains
//! for single-threaded embedding (benchmark loops, deterministic replay)
//! where `&mut self` is natural and lock overhead is unwanted.

use std::collections::BTreeMap;
use std::sync::Arc;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::error::PqoError;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};

use crate::scr::{Scr, ScrConfig};
use crate::{OnlinePqo, PlanChoice};

struct Entry {
    engine: QueryEngine,
    scr: Scr,
}

/// Serves multiple parameterized queries, each with its own SCR state,
/// under an optional global plan budget.
///
/// ```
/// use pqo_core::manager::PqoManager;
/// use pqo_core::scr::ScrConfig;
/// use pqo_optimizer::template::{RangeOp, TemplateBuilder};
/// use pqo_optimizer::svector::instance_for_target;
///
/// # fn main() -> Result<(), pqo_core::PqoError> {
/// let catalog = pqo_catalog::schemas::tpch_skew();
/// let mut b = TemplateBuilder::new("dashboard");
/// let o = b.relation(catalog.expect_table("orders"), "o");
/// b.param(o, "o_totalprice", RangeOp::Le);
/// let template = b.build();
///
/// let mut manager = PqoManager::new();
/// manager.register(template.clone(), ScrConfig::new(2.0)?)?;
///
/// let q = instance_for_target(&template, &[0.2]);
/// let first = manager.get_plan("dashboard", &q)?;
/// let second = manager.get_plan("dashboard", &q)?;
/// assert!(first.optimized && !second.optimized);
/// # Ok(())
/// # }
/// ```
pub struct PqoManager {
    entries: BTreeMap<String, Entry>,
    global_plan_budget: Option<usize>,
    /// Running total of plans across all entries, adjusted by the exact
    /// cache delta after every mutation — keeps the global-budget check
    /// O(1) instead of re-summing every cache per loop iteration.
    total_plans: usize,
    global_evictions: u64,
}

impl PqoManager {
    /// Manager without a global budget.
    pub fn new() -> Self {
        PqoManager {
            entries: BTreeMap::new(),
            global_plan_budget: None,
            total_plans: 0,
            global_evictions: 0,
        }
    }

    /// Manager with a global cap on the total number of cached plans.
    ///
    /// # Errors
    /// [`PqoError::InvalidBudget`] if `budget` is zero.
    pub fn with_global_budget(budget: usize) -> Result<Self, PqoError> {
        if budget == 0 {
            return Err(PqoError::InvalidBudget { budget });
        }
        let mut m = PqoManager::new();
        m.global_plan_budget = Some(budget);
        Ok(m)
    }

    /// Register a template under its name with the given configuration.
    ///
    /// # Errors
    /// [`PqoError::DuplicateTemplate`] if the name is already registered;
    /// [`PqoError::InvalidLambda`] / [`PqoError::InvalidBudget`] if the
    /// configuration is invalid.
    pub fn register(
        &mut self,
        template: Arc<QueryTemplate>,
        config: ScrConfig,
    ) -> Result<(), PqoError> {
        let name = template.name.clone();
        if self.entries.contains_key(&name) {
            return Err(PqoError::DuplicateTemplate { name });
        }
        let scr = Scr::with_config(config)?;
        self.entries.insert(
            name,
            Entry {
                engine: QueryEngine::new(template),
                scr,
            },
        );
        Ok(())
    }

    /// Registered template names.
    pub fn templates(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Serve one instance of the named template.
    ///
    /// # Errors
    /// [`PqoError::UnknownTemplate`] if the template is not registered.
    pub fn get_plan(
        &mut self,
        template: &str,
        instance: &QueryInstance,
    ) -> Result<PlanChoice, PqoError> {
        let e = self
            .entries
            .get_mut(template)
            .ok_or_else(|| PqoError::UnknownTemplate {
                name: template.to_string(),
            })?;
        let sv = e.engine.compute_svector(instance);
        let before = e.scr.plans_cached();
        let choice = e.scr.get_plan(instance, &sv, &e.engine);
        let after = e.scr.plans_cached();
        // `before` is part of the running total, so this never underflows.
        self.total_plans = self.total_plans - before + after;
        if choice.optimized {
            self.enforce_global_budget();
        }
        Ok(choice)
    }

    /// Total plans cached across all templates (O(1): a running total).
    pub fn total_plans(&self) -> usize {
        self.total_plans
    }

    /// Total optimizer calls across all templates.
    pub fn total_optimizer_calls(&self) -> u64 {
        self.entries
            .values()
            .map(|e| e.engine.stats().optimize_calls)
            .sum()
    }

    /// Plans evicted by the *global* budget (per-template budgets count in
    /// each SCR's own stats).
    pub fn global_evictions(&self) -> u64 {
        self.global_evictions
    }

    /// Read-only access to one template's SCR state.
    pub fn scr(&self, template: &str) -> Option<&Scr> {
        self.entries.get(template).map(|e| &e.scr)
    }

    /// Global LFU enforcement: the budget check reads the running total
    /// (O(1)); each eviction scans the registry once to find the
    /// minimum-aggregate-usage plan — O(templates) per victim instead of
    /// the former re-count of every cache on every loop iteration.
    fn enforce_global_budget(&mut self) {
        let Some(budget) = self.global_plan_budget else {
            return;
        };
        while self.total_plans > budget {
            // Global LFU: the (template, plan) with minimum aggregate usage.
            let victim = self
                .entries
                .iter()
                .filter_map(|(name, e)| {
                    e.scr
                        .cache()
                        .min_usage_plan()
                        .map(|fp| (e.scr.cache().plan_usage(fp), name.clone(), fp))
                })
                .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            let Some((_, name, fp)) = victim else { break };
            let e = self.entries.get_mut(&name).expect("victim template exists");
            let before = e.scr.plans_cached();
            e.scr.evict_plan(fp);
            let after = e.scr.plans_cached();
            self.total_plans -= before - after;
            self.global_evictions += 1;
            // Eviction-point reconciliation: the O(1) running total must
            // equal a full recount (cheap insurance in debug builds; the
            // service layer asserts the same invariant under concurrency).
            debug_assert_eq!(
                self.total_plans,
                self.entries.values().map(|e| e.scr.plans_cached()).sum(),
                "manager plan total drifted from recount at eviction point"
            );
        }
    }
}

impl Default for PqoManager {
    fn default() -> Self {
        PqoManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{inst_at, single_rel_template};
    use pqo_optimizer::svector::instance_for_target;

    fn manager() -> PqoManager {
        let mut m = PqoManager::new();
        m.register(
            single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate"),
            ScrConfig::new(2.0).unwrap(),
        )
        .unwrap();
        m.register(
            single_rel_template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice"),
            ScrConfig::new(1.5).unwrap(),
        )
        .unwrap();
        m
    }

    fn inst(name: &str, target: &[f64]) -> QueryInstance {
        let t = match name {
            "q_orders" => single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate"),
            _ => single_rel_template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice"),
        };
        inst_at(&t, target)
    }

    #[test]
    fn serves_multiple_templates_independently() {
        let mut m = manager();
        assert_eq!(m.templates().count(), 2);
        let a = m
            .get_plan("q_orders", &inst("q_orders", &[0.1, 0.5]))
            .unwrap();
        let b = m
            .get_plan("q_lineitem", &inst("q_lineitem", &[0.2, 0.4]))
            .unwrap();
        assert!(a.optimized && b.optimized);
        // Re-serving the same points reuses per-template caches.
        let a2 = m
            .get_plan("q_orders", &inst("q_orders", &[0.1, 0.5]))
            .unwrap();
        assert!(!a2.optimized);
        assert_eq!(m.total_optimizer_calls(), 2);
        assert!(m.total_plans() >= 2);
    }

    #[test]
    fn duplicate_registration_is_an_error() {
        let mut m = manager();
        let err = m
            .register(
                single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate"),
                ScrConfig::new(2.0).unwrap(),
            )
            .unwrap_err();
        assert!(matches!(err, PqoError::DuplicateTemplate { ref name } if name == "q_orders"));
    }

    #[test]
    fn unknown_template_is_an_error() {
        let mut m = manager();
        let i = inst("q_orders", &[0.5, 0.5]);
        let err = m.get_plan("nope", &i).unwrap_err();
        assert!(matches!(err, PqoError::UnknownTemplate { ref name } if name == "nope"));
    }

    #[test]
    fn zero_budget_is_an_error() {
        assert!(matches!(
            PqoManager::with_global_budget(0),
            Err(PqoError::InvalidBudget { budget: 0 })
        ));
    }

    #[test]
    fn running_total_matches_recount() {
        let mut m = manager();
        for i in 1..=9 {
            let p = [0.1 * i as f64, 1.0 - 0.1 * i as f64];
            let _ = m.get_plan("q_orders", &inst("q_orders", &p)).unwrap();
            let _ = m.get_plan("q_lineitem", &inst("q_lineitem", &p)).unwrap();
            let recount: usize = m.entries.values().map(|e| e.scr.cache().num_plans()).sum();
            assert_eq!(m.total_plans(), recount);
        }
    }

    #[test]
    fn global_budget_evicts_across_templates() {
        let mut m = PqoManager::with_global_budget(3).unwrap();
        let mut cfg = ScrConfig::new(1.02).unwrap();
        cfg.lambda_r = 0.0; // store aggressively to stress the budget
        m.register(
            single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate"),
            cfg.clone(),
        )
        .unwrap();
        m.register(
            single_rel_template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice"),
            cfg,
        )
        .unwrap();
        // Force plan diversity per template: seek-on-dim0, seek-on-dim1 and
        // plain-scan regions all appear.
        let probes: [[f64; 2]; 6] = [
            [0.001, 0.9],
            [0.9, 0.001],
            [0.9, 0.9],
            [0.002, 0.95],
            [0.95, 0.002],
            [0.85, 0.95],
        ];
        for p in probes {
            let io = inst("q_orders", &p);
            let il = inst("q_lineitem", &p);
            let _ = m.get_plan("q_orders", &io).unwrap();
            let _ = m.get_plan("q_lineitem", &il).unwrap();
            assert!(
                m.total_plans() <= 3,
                "global budget violated: {}",
                m.total_plans()
            );
        }
        assert!(m.global_evictions() > 0, "tight budget must evict");
        for name in ["q_orders", "q_lineitem"] {
            assert!(m.scr(name).unwrap().cache().check_invariants().is_ok());
        }
    }

    #[test]
    fn guarantee_holds_under_global_pressure() {
        let mut m = PqoManager::with_global_budget(2).unwrap();
        m.register(
            single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate"),
            ScrConfig::new(2.0).unwrap(),
        )
        .unwrap();
        let t = single_rel_template("q_orders", "orders", "o_totalprice", "o_orderdate");
        let engine = QueryEngine::new(Arc::clone(&t));
        for i in 0..8 {
            for j in 0..8 {
                let target = [0.02 + 0.12 * i as f64, 0.02 + 0.12 * j as f64];
                let q = instance_for_target(&t, &target);
                let choice = m.get_plan("q_orders", &q).unwrap();
                let sv = pqo_optimizer::svector::compute_svector(&t, &q);
                let opt = engine.optimize_untracked(&sv);
                let so = engine.recost_untracked(&choice.plan, &sv) / opt.cost;
                assert!(so <= 2.0 * 1.001, "eviction broke the bound: {so}");
            }
        }
    }
}
