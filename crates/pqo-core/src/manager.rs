//! Multi-query PQO manager.
//!
//! The paper's machinery is per-template: one plan cache, one instance
//! list, one λ per parameterized query (Section 2). A real deployment
//! serves *many* templates at once under one memory budget ("in case a
//! plan cache budget ... is enforced", Section 6.3.1 — per query in the
//! paper, global here). [`PqoManager`] is that deployment surface:
//!
//! * register a template (with its own λ / configuration),
//! * feed raw instances — the manager computes the sVector, runs SCR and
//!   returns the plan,
//! * optionally enforce a **global** plan budget: when the total number of
//!   cached plans across templates exceeds it, the least-used plan across
//!   all templates is evicted (the same LFU rule as Section 6.3.1, lifted
//!   one level).

use std::collections::BTreeMap;
use std::sync::Arc;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};

use crate::scr::{Scr, ScrConfig};
use crate::{OnlinePqo, PlanChoice};

struct Entry {
    engine: QueryEngine,
    scr: Scr,
}

/// Serves multiple parameterized queries, each with its own SCR state,
/// under an optional global plan budget.
///
/// ```
/// use pqo_core::manager::PqoManager;
/// use pqo_core::scr::ScrConfig;
/// use pqo_optimizer::template::{RangeOp, TemplateBuilder};
/// use pqo_optimizer::svector::instance_for_target;
///
/// let catalog = pqo_catalog::schemas::tpch_skew();
/// let mut b = TemplateBuilder::new("dashboard");
/// let o = b.relation(catalog.expect_table("orders"), "o");
/// b.param(o, "o_totalprice", RangeOp::Le);
/// let template = b.build();
///
/// let mut manager = PqoManager::new();
/// manager.register(template.clone(), ScrConfig::new(2.0));
///
/// let q = instance_for_target(&template, &[0.2]);
/// let first = manager.get_plan("dashboard", &q);
/// let second = manager.get_plan("dashboard", &q);
/// assert!(first.optimized && !second.optimized);
/// ```
pub struct PqoManager {
    entries: BTreeMap<String, Entry>,
    global_plan_budget: Option<usize>,
    global_evictions: u64,
}

impl PqoManager {
    /// Manager without a global budget.
    pub fn new() -> Self {
        PqoManager { entries: BTreeMap::new(), global_plan_budget: None, global_evictions: 0 }
    }

    /// Manager with a global cap on the total number of cached plans.
    pub fn with_global_budget(budget: usize) -> Self {
        assert!(budget >= 1);
        PqoManager {
            entries: BTreeMap::new(),
            global_plan_budget: Some(budget),
            global_evictions: 0,
        }
    }

    /// Register a template under its name with the given configuration.
    ///
    /// # Panics
    /// Panics if the name is already registered.
    pub fn register(&mut self, template: Arc<QueryTemplate>, config: ScrConfig) {
        let name = template.name.clone();
        let prev = self
            .entries
            .insert(name.clone(), Entry { engine: QueryEngine::new(template), scr: Scr::with_config(config) });
        assert!(prev.is_none(), "template `{name}` registered twice");
    }

    /// Registered template names.
    pub fn templates(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Serve one instance of the named template.
    ///
    /// # Panics
    /// Panics if the template is not registered.
    pub fn get_plan(&mut self, template: &str, instance: &QueryInstance) -> PlanChoice {
        let e = self
            .entries
            .get_mut(template)
            .unwrap_or_else(|| panic!("template `{template}` not registered"));
        let sv = e.engine.compute_svector(instance);
        let choice = e.scr.get_plan(instance, &sv, &mut e.engine);
        if choice.optimized {
            self.enforce_global_budget();
        }
        choice
    }

    /// Total plans cached across all templates.
    pub fn total_plans(&self) -> usize {
        self.entries.values().map(|e| e.scr.plans_cached()).sum()
    }

    /// Total optimizer calls across all templates.
    pub fn total_optimizer_calls(&self) -> u64 {
        self.entries.values().map(|e| e.engine.stats().optimize_calls).sum()
    }

    /// Plans evicted by the *global* budget (per-template budgets count in
    /// each SCR's own stats).
    pub fn global_evictions(&self) -> u64 {
        self.global_evictions
    }

    /// Read-only access to one template's SCR state.
    pub fn scr(&self, template: &str) -> Option<&Scr> {
        self.entries.get(template).map(|e| &e.scr)
    }

    fn enforce_global_budget(&mut self) {
        let Some(budget) = self.global_plan_budget else { return };
        while self.total_plans() > budget {
            // Global LFU: the (template, plan) with minimum aggregate usage.
            let victim = self
                .entries
                .iter()
                .filter_map(|(name, e)| {
                    e.scr.cache().min_usage_plan().map(|fp| {
                        (e.scr.cache().plan_usage(fp), name.clone(), fp)
                    })
                })
                .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
            let Some((_, name, fp)) = victim else { break };
            let e = self.entries.get_mut(&name).expect("victim template exists");
            e.scr.evict_plan(fp);
            self.global_evictions += 1;
        }
    }
}

impl Default for PqoManager {
    fn default() -> Self {
        PqoManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_optimizer::svector::instance_for_target;
    use pqo_optimizer::template::{RangeOp, TemplateBuilder};

    fn template(name: &str, table: &str, col_a: &str, col_b: &str) -> Arc<QueryTemplate> {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new(name);
        let r = b.relation(cat.expect_table(table), "t");
        b.param(r, col_a, RangeOp::Le);
        b.param(r, col_b, RangeOp::Le);
        b.build()
    }

    fn manager() -> PqoManager {
        let mut m = PqoManager::new();
        m.register(template("q_orders", "orders", "o_totalprice", "o_orderdate"), ScrConfig::new(2.0));
        m.register(template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice"), ScrConfig::new(1.5));
        m
    }

    fn inst(m: &PqoManager, name: &str, target: &[f64]) -> QueryInstance {
        // Rebuild the template to invert targets; names are unique per test.
        let _ = m;
        let t = match name {
            "q_orders" => template("q_orders", "orders", "o_totalprice", "o_orderdate"),
            _ => template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice"),
        };
        instance_for_target(&t, target)
    }

    #[test]
    fn serves_multiple_templates_independently() {
        let mut m = manager();
        assert_eq!(m.templates().count(), 2);
        let a = m.get_plan("q_orders", &inst(&m, "q_orders", &[0.1, 0.5]));
        let b = m.get_plan("q_lineitem", &inst(&m, "q_lineitem", &[0.2, 0.4]));
        assert!(a.optimized && b.optimized);
        // Re-serving the same points reuses per-template caches.
        let a2 = m.get_plan("q_orders", &inst(&m, "q_orders", &[0.1, 0.5]));
        assert!(!a2.optimized);
        assert_eq!(m.total_optimizer_calls(), 2);
        assert!(m.total_plans() >= 2);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut m = manager();
        m.register(template("q_orders", "orders", "o_totalprice", "o_orderdate"), ScrConfig::new(2.0));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_template_panics() {
        let mut m = manager();
        let i = inst(&m, "q_orders", &[0.5, 0.5]);
        let _ = m.get_plan("nope", &i);
    }

    #[test]
    fn global_budget_evicts_across_templates() {
        let mut m = PqoManager::with_global_budget(3);
        let mut cfg = ScrConfig::new(1.02);
        cfg.lambda_r = 0.0; // store aggressively to stress the budget
        m.register(template("q_orders", "orders", "o_totalprice", "o_orderdate"), cfg.clone());
        m.register(template("q_lineitem", "lineitem", "l_shipdate", "l_extendedprice"), cfg);
        // Force plan diversity per template: seek-on-dim0, seek-on-dim1 and
        // plain-scan regions all appear.
        let probes: [[f64; 2]; 6] =
            [[0.001, 0.9], [0.9, 0.001], [0.9, 0.9], [0.002, 0.95], [0.95, 0.002], [0.85, 0.95]];
        for p in probes {
            let io = inst(&m, "q_orders", &p);
            let il = inst(&m, "q_lineitem", &p);
            let _ = m.get_plan("q_orders", &io);
            let _ = m.get_plan("q_lineitem", &il);
            assert!(m.total_plans() <= 3, "global budget violated: {}", m.total_plans());
        }
        assert!(m.global_evictions() > 0, "tight budget must evict");
        for name in ["q_orders", "q_lineitem"] {
            assert!(m.scr(name).unwrap().cache().check_invariants().is_ok());
        }
    }

    #[test]
    fn guarantee_holds_under_global_pressure() {
        let mut m = PqoManager::with_global_budget(2);
        m.register(template("q_orders", "orders", "o_totalprice", "o_orderdate"), ScrConfig::new(2.0));
        let t = template("q_orders", "orders", "o_totalprice", "o_orderdate");
        let mut engine = QueryEngine::new(Arc::clone(&t));
        for i in 0..8 {
            for j in 0..8 {
                let target = [0.02 + 0.12 * i as f64, 0.02 + 0.12 * j as f64];
                let q = instance_for_target(&t, &target);
                let choice = m.get_plan("q_orders", &q);
                let sv = pqo_optimizer::svector::compute_svector(&t, &q);
                let opt = engine.optimize_untracked(&sv);
                let so = engine.recost_untracked(&choice.plan, &sv) / opt.cost;
                assert!(so <= 2.0 * 1.001, "eviction broke the bound: {so}");
            }
        }
    }
}
