//! Evaluation metrics (paper Section 2.1).

use std::time::Duration;

/// Everything measured while running one technique over one workload
/// sequence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Technique display name.
    pub technique: String,
    /// Number of query instances processed (`m`).
    pub num_instances: usize,
    /// Per-instance sub-optimality `SO(q) ≥ 1`, in sequence order.
    pub so: Vec<f64>,
    /// Per-instance optimal cost (from the ground-truth oracle).
    pub opt_costs: Vec<f64>,
    /// Number of optimizer calls the technique issued (`numOpt`).
    pub num_opt: u64,
    /// Maximum number of plans cached simultaneously (`numPlans`).
    pub num_plans: usize,
    /// Recost calls issued by the technique.
    pub recost_calls: u64,
    /// Wall time the technique spent inside optimizer calls.
    pub optimize_time: Duration,
    /// Wall time the technique spent inside Recost calls.
    pub recost_time: Duration,
    /// Total wall time of all `getPlan` invocations (includes optimizer and
    /// Recost time).
    pub getplan_time: Duration,
    /// Number of distinct optimal plans across the sequence (`n = |P|`,
    /// from the ground truth — a property of the workload, not of the
    /// technique).
    pub distinct_optimal_plans: usize,
}

impl RunResult {
    /// `MSO = max SO(q)` over the sequence.
    pub fn mso(&self) -> f64 {
        self.so.iter().copied().fold(1.0, f64::max)
    }

    /// `TotalCostRatio = Σ Cost(P(q), q) / Σ Cost(Popt(q), q)` — the
    /// cost-weighted aggregate sub-optimality, in `[1, MSO]`.
    pub fn total_cost_ratio(&self) -> f64 {
        let opt: f64 = self.opt_costs.iter().sum();
        let chosen: f64 = self
            .so
            .iter()
            .zip(&self.opt_costs)
            .map(|(s, c)| s * c)
            .sum();
        if opt > 0.0 {
            chosen / opt
        } else {
            1.0
        }
    }

    /// Fraction of instances that triggered an optimizer call, in percent.
    pub fn num_opt_pct(&self) -> f64 {
        if self.num_instances == 0 {
            0.0
        } else {
            100.0 * self.num_opt as f64 / self.num_instances as f64
        }
    }

    /// Fraction of instances with `SO > bound` (the guarantee-violation rate
    /// of Section 7.2).
    pub fn violation_rate(&self, bound: f64) -> f64 {
        if self.so.is_empty() {
            return 0.0;
        }
        self.so
            .iter()
            .filter(|&&s| s > bound * (1.0 + 1e-9))
            .count() as f64
            / self.so.len() as f64
    }
}

/// `p`-th percentile (0..=100) of `values` using nearest-rank on a sorted
/// copy. Returns `None` on empty input.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    Some(v[rank.min(v.len() - 1)])
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(so: Vec<f64>, costs: Vec<f64>) -> RunResult {
        RunResult {
            technique: "t".into(),
            num_instances: so.len(),
            so,
            opt_costs: costs,
            num_opt: 2,
            num_plans: 1,
            recost_calls: 0,
            optimize_time: Duration::ZERO,
            recost_time: Duration::ZERO,
            getplan_time: Duration::ZERO,
            distinct_optimal_plans: 1,
        }
    }

    #[test]
    fn mso_is_max_so() {
        let r = result(vec![1.0, 3.0, 1.5], vec![1.0, 1.0, 1.0]);
        assert_eq!(r.mso(), 3.0);
    }

    #[test]
    fn total_cost_ratio_is_cost_weighted() {
        // SO=2 on the expensive instance dominates.
        let r = result(vec![1.0, 2.0], vec![1.0, 99.0]);
        let tcr = r.total_cost_ratio();
        assert!((tcr - 199.0 / 100.0).abs() < 1e-12);
        assert!(tcr <= r.mso());
        assert!(tcr >= 1.0);
    }

    #[test]
    fn num_opt_pct() {
        let r = result(vec![1.0; 10], vec![1.0; 10]);
        assert!((r.num_opt_pct() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn violation_rate_counts_exceedances() {
        let r = result(vec![1.0, 2.5, 2.0, 1.9], vec![1.0; 4]);
        assert!((r.violation_rate(2.0) - 0.25).abs() < 1e-12);
        assert_eq!(r.violation_rate(3.0), 0.0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }
}
