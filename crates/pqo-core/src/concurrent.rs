//! Asynchronous `manageCache` (paper Section 4.1).
//!
//! *"Since manageCache does not need to occur on the critical path of query
//! execution, it can be implemented asynchronously on a background
//! thread."* [`AsyncScr`] realizes that architecture: `getPlan` runs on the
//! caller's thread (it is on the critical path), and when an optimizer call
//! produces a fresh plan, the `manageCache` work — including its Recost
//! calls for the redundancy check — is shipped to a dedicated worker thread
//! that owns its own engine handle.
//!
//! Consequences, faithful to the paper's design:
//!
//! * the caller never waits for redundancy-check Recosts;
//! * a brief window exists where a just-optimized instance is not yet in
//!   the cache — later instances may pay an extra optimizer call, but
//!   **never** receive a plan outside the λ bound (the checks only read
//!   committed cache state);
//! * cache mutations are serialized by the worker, so the Figure 5
//!   invariants hold at every observable point.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use pqo_optimizer::engine::{OptimizedPlan, QueryEngine};
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};

use crate::scr::{Scr, ScrConfig};
use crate::{OnlinePqo, PlanChoice};

enum Job {
    Manage(SVector, OptimizedPlan),
    Flush(Sender<()>),
    Shutdown,
}

/// SCR with `manageCache` running on a background thread.
pub struct AsyncScr {
    shared: Arc<Mutex<Scr>>,
    tx: Sender<Job>,
    worker: Option<JoinHandle<()>>,
}

impl AsyncScr {
    /// Spawn the background worker. The worker owns a private engine for
    /// its Recost calls (counted separately from the foreground engine).
    pub fn new(config: ScrConfig, template: Arc<QueryTemplate>) -> Self {
        let shared = Arc::new(Mutex::new(Scr::with_config(config)));
        let (tx, rx) = unbounded::<Job>();
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("scr-manage-cache".into())
            .spawn(move || {
                let mut engine = QueryEngine::new(template);
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Manage(sv, opt) => {
                            worker_shared.lock().manage_cache_entry(&sv, opt, &mut engine);
                        }
                        Job::Flush(ack) => {
                            let _ = ack.send(());
                        }
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn manageCache worker");
        AsyncScr { shared, tx, worker: Some(worker) }
    }

    /// Block until every queued `manageCache` job has been applied.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.tx.send(Job::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Plans currently cached (flush first for a quiescent view).
    pub fn plans_cached(&self) -> usize {
        self.shared.lock().plans_cached()
    }

    /// Run a closure against the underlying SCR state (e.g. to inspect
    /// stats or cache invariants in tests).
    pub fn with_inner<R>(&self, f: impl FnOnce(&Scr) -> R) -> R {
        f(&self.shared.lock())
    }

    /// The critical-path `getPlan`: checks under the shared lock; on a miss
    /// the optimizer runs on the caller's thread and cache maintenance is
    /// queued to the worker.
    pub fn get_plan(
        &self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &mut QueryEngine,
    ) -> PlanChoice {
        if let Some(choice) = self.shared.lock().try_cached_plan(sv, engine) {
            return choice;
        }
        let opt = engine.optimize(sv);
        let plan = Arc::clone(&opt.plan);
        // Fire-and-forget: the worker commits the cache update.
        let _ = self.tx.send(Job::Manage(sv.clone(), opt));
        PlanChoice { plan, optimized: true }
    }
}

impl Drop for AsyncScr {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};
    use pqo_optimizer::template::{RangeOp, TemplateBuilder};

    fn fixture() -> Arc<QueryTemplate> {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new("async_test");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        b.build()
    }

    #[test]
    fn async_variant_reuses_after_flush() {
        let t = fixture();
        let scr = AsyncScr::new(ScrConfig::new(2.0), Arc::clone(&t));
        let mut engine = QueryEngine::new(Arc::clone(&t));
        let inst = instance_for_target(&t, &[0.2, 0.2]);
        let sv = compute_svector(&t, &inst);
        assert!(scr.get_plan(&inst, &sv, &mut engine).optimized);
        scr.flush();
        assert!(!scr.get_plan(&inst, &sv, &mut engine).optimized, "cached after flush");
        assert_eq!(scr.plans_cached(), 1);
    }

    #[test]
    fn guarantee_holds_despite_async_maintenance() {
        let t = fixture();
        let scr = AsyncScr::new(ScrConfig::new(2.0), Arc::clone(&t));
        let mut engine = QueryEngine::new(Arc::clone(&t));
        let mut worst = 1.0f64;
        for i in 0..10 {
            for j in 0..10 {
                let target = [0.01 + 0.09 * i as f64, 0.01 + 0.09 * j as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let choice = scr.get_plan(&inst, &sv, &mut engine);
                let opt = engine.optimize_untracked(&sv);
                worst = worst.max(engine.recost_untracked(&choice.plan, &sv) / opt.cost);
            }
        }
        assert!(worst <= 2.0 * 1.001, "async path broke λ-optimality: {worst}");
        scr.flush();
        scr.with_inner(|s| assert!(s.cache().check_invariants().is_ok()));
    }

    #[test]
    fn async_may_optimize_more_but_never_worse_quality() {
        // Without flushing, back-to-back duplicates may both optimize (the
        // maintenance races the second call) — allowed; quality is not.
        let t = fixture();
        let scr = AsyncScr::new(ScrConfig::new(2.0), Arc::clone(&t));
        let mut engine = QueryEngine::new(Arc::clone(&t));
        let inst = instance_for_target(&t, &[0.5, 0.5]);
        let sv = compute_svector(&t, &inst);
        let a = scr.get_plan(&inst, &sv, &mut engine);
        let b = scr.get_plan(&inst, &sv, &mut engine);
        // Both came from the optimizer or the cache; either way both are
        // the optimal plan for this exact point.
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint());
    }

    #[test]
    fn converges_to_sync_cache_contents() {
        let t = fixture();
        let cfg = ScrConfig::new(1.5);
        let a_sync = {
            let mut engine = QueryEngine::new(Arc::clone(&t));
            let mut scr = Scr::with_config(cfg.clone());
            for i in 0..30 {
                let target = [0.03 * (i + 1) as f64, 0.02 * (i + 1) as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let _ = OnlinePqo::get_plan(&mut scr, &inst, &sv, &mut engine);
            }
            scr.plans_cached()
        };
        let a_async = {
            let scr = AsyncScr::new(cfg, Arc::clone(&t));
            let mut engine = QueryEngine::new(Arc::clone(&t));
            for i in 0..30 {
                let target = [0.03 * (i + 1) as f64, 0.02 * (i + 1) as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let _ = scr.get_plan(&inst, &sv, &mut engine);
                scr.flush(); // serialize: state identical to the sync path
            }
            scr.plans_cached()
        };
        assert_eq!(a_sync, a_async, "flushed-after-every-call async must equal sync");
    }
}
