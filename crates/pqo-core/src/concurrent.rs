//! Asynchronous `manageCache` (paper Section 4.1).
//!
//! *"Since manageCache does not need to occur on the critical path of query
//! execution, it can be implemented asynchronously on a background
//! thread."* [`AsyncScr`] realizes that architecture: `getPlan` runs on the
//! caller's thread (it is on the critical path), and when an optimizer call
//! produces a fresh plan, the `manageCache` work — including its Recost
//! calls for the redundancy check — is shipped to a dedicated worker thread
//! that owns its own engine handle.
//!
//! Built entirely on `std` primitives: jobs travel over a
//! [`std::sync::mpsc`] channel, the SCR state is snapshot-published — the
//! `getPlan` read path loads the current [`CacheSnapshot`] generation from
//! a [`SnapshotCell`] and decides with **no lock held** (like
//! [`crate::service::PqoService`]), while the worker owns the
//! [`CacheWriter`] and publishes a fresh generation after each committed
//! `manageCache` — and [`AsyncScr::flush`] waits on a [`Condvar`] over a
//! pending-job counter rather than a channel roundtrip — so a flush
//! returns only after every job *enqueued before it* has been fully
//! applied, even when several threads flush at once.
//!
//! Consequences, faithful to the paper's design:
//!
//! * the caller never waits for redundancy-check Recosts;
//! * a brief window exists where a just-optimized instance is not yet in
//!   the cache — later instances may pay an extra optimizer call, but
//!   **never** receive a plan outside the λ bound (the checks only read
//!   committed cache state);
//! * cache mutations are serialized by the worker, so the Figure 5
//!   invariants hold at every observable point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use pqo_optimizer::engine::{OptimizedPlan, QueryEngine};
use pqo_optimizer::error::PqoError;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};

use crate::scr::{Scr, ScrConfig};
use crate::snapshot::{CacheSnapshot, CacheWriter, SnapshotCell};
use crate::PlanChoice;

enum Job {
    Manage(SVector, OptimizedPlan),
    Shutdown,
}

/// Flush rendezvous: `enqueued` counts jobs submitted, `applied` counts
/// jobs the worker has committed. `flush` waits until `applied` catches up
/// with the `enqueued` value it observed.
struct Progress {
    enqueued: AtomicU64,
    applied: Mutex<u64>,
    advanced: Condvar,
}

/// SCR with `manageCache` running on a background thread.
pub struct AsyncScr {
    published: Arc<SnapshotCell>,
    writer: Arc<Mutex<CacheWriter>>,
    progress: Arc<Progress>,
    tx: Sender<Job>,
    worker: Option<JoinHandle<()>>,
}

impl AsyncScr {
    /// Spawn the background worker. The worker owns a private engine for
    /// its Recost calls (counted separately from the foreground engine).
    ///
    /// # Errors
    /// [`PqoError::InvalidLambda`] / [`PqoError::InvalidBudget`] when the
    /// configuration is invalid.
    pub fn new(config: ScrConfig, template: Arc<QueryTemplate>) -> Result<Self, PqoError> {
        let (writer, first) = CacheWriter::new(Scr::with_config(config)?);
        let published = Arc::new(SnapshotCell::new(first));
        let writer = Arc::new(Mutex::new(writer));
        let progress = Arc::new(Progress {
            enqueued: AtomicU64::new(0),
            applied: Mutex::new(0),
            advanced: Condvar::new(),
        });
        let (tx, rx) = channel::<Job>();
        let worker_published = Arc::clone(&published);
        let worker_writer = Arc::clone(&writer);
        let worker_progress = Arc::clone(&progress);
        let worker = std::thread::Builder::new()
            .name("scr-manage-cache".into())
            .spawn(move || {
                let engine = QueryEngine::new(template);
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Manage(sv, opt) => {
                            worker_writer
                                .lock()
                                .expect("writer lock poisoned")
                                .manage_cache_entry(&sv, opt, &engine, &worker_published);
                            let mut applied = worker_progress
                                .applied
                                .lock()
                                .expect("progress lock poisoned");
                            *applied += 1;
                            worker_progress.advanced.notify_all();
                        }
                        Job::Shutdown => break,
                    }
                }
            })
            .expect("spawn manageCache worker");
        Ok(AsyncScr {
            published,
            writer,
            progress,
            tx,
            worker: Some(worker),
        })
    }

    /// Block until every `manageCache` job enqueued before this call has
    /// been applied. Safe to call from multiple threads concurrently.
    pub fn flush(&self) {
        let target = self.progress.enqueued.load(Ordering::Acquire);
        let mut applied = self
            .progress
            .applied
            .lock()
            .expect("progress lock poisoned");
        while *applied < target {
            applied = self
                .progress
                .advanced
                .wait(applied)
                .expect("progress lock poisoned");
        }
    }

    /// Plans currently cached in the published generation (flush first for
    /// a quiescent view).
    pub fn plans_cached(&self) -> usize {
        self.published.load().cache().num_plans()
    }

    /// The current published generation (lock-free view for callers that
    /// make several decisions against one consistent cache state).
    pub fn snapshot(&self) -> Arc<CacheSnapshot> {
        self.published.load()
    }

    /// Run a closure against the canonical SCR state under the writer lock
    /// (e.g. to inspect stats or cache invariants in tests).
    pub fn with_inner<R>(&self, f: impl FnOnce(&Scr) -> R) -> R {
        f(self.writer.lock().expect("writer lock poisoned").scr())
    }

    /// The critical-path `getPlan`: checks against the loaded snapshot
    /// generation with no lock held; on a miss the optimizer runs on the
    /// caller's thread and cache maintenance is queued to the worker.
    pub fn get_plan(
        &self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        if let Some(choice) = self.published.load().try_cached_plan(sv, engine) {
            return choice;
        }
        let opt = engine.optimize(sv);
        let plan = Arc::clone(&opt.plan);
        // Count before sending so a racing flush that observes the send
        // also waits for it.
        self.progress.enqueued.fetch_add(1, Ordering::AcqRel);
        if self.tx.send(Job::Manage(sv.clone(), opt)).is_err() {
            // Worker gone (only during teardown): roll the counter back so
            // flush cannot deadlock.
            self.progress.enqueued.fetch_sub(1, Ordering::AcqRel);
        }
        PlanChoice {
            plan,
            optimized: true,
        }
    }
}

impl Drop for AsyncScr {
    fn drop(&mut self) {
        // Shutdown queues *behind* pending Manage jobs, so every enqueued
        // mutation is applied before the worker exits.
        let _ = self.tx.send(Job::Shutdown);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_template;
    use crate::OnlinePqo;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};

    fn fixture() -> Arc<QueryTemplate> {
        fixture_template("async_test")
    }

    #[test]
    fn async_variant_reuses_after_flush() {
        let t = fixture();
        let scr = AsyncScr::new(ScrConfig::new(2.0).unwrap(), Arc::clone(&t)).unwrap();
        let engine = QueryEngine::new(Arc::clone(&t));
        let inst = instance_for_target(&t, &[0.2, 0.2]);
        let sv = compute_svector(&t, &inst);
        assert!(scr.get_plan(&inst, &sv, &engine).optimized);
        scr.flush();
        assert!(
            !scr.get_plan(&inst, &sv, &engine).optimized,
            "cached after flush"
        );
        assert_eq!(scr.plans_cached(), 1);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let t = fixture();
        let cfg = ScrConfig {
            lambda: 0.5,
            ..ScrConfig::new(2.0).unwrap()
        };
        assert!(matches!(
            AsyncScr::new(cfg, t),
            Err(PqoError::InvalidLambda { lambda, .. }) if lambda == 0.5
        ));
    }

    #[test]
    fn guarantee_holds_despite_async_maintenance() {
        let t = fixture();
        let scr = AsyncScr::new(ScrConfig::new(2.0).unwrap(), Arc::clone(&t)).unwrap();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut worst = 1.0f64;
        for i in 0..10 {
            for j in 0..10 {
                let target = [0.01 + 0.09 * i as f64, 0.01 + 0.09 * j as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let choice = scr.get_plan(&inst, &sv, &engine);
                let opt = engine.optimize_untracked(&sv);
                worst = worst.max(engine.recost_untracked(&choice.plan, &sv) / opt.cost);
            }
        }
        assert!(
            worst <= 2.0 * 1.001,
            "async path broke λ-optimality: {worst}"
        );
        scr.flush();
        scr.with_inner(|s| assert!(s.cache().check_invariants().is_ok()));
    }

    #[test]
    fn async_may_optimize_more_but_never_worse_quality() {
        // Without flushing, back-to-back duplicates may both optimize (the
        // maintenance races the second call) — allowed; quality is not.
        let t = fixture();
        let scr = AsyncScr::new(ScrConfig::new(2.0).unwrap(), Arc::clone(&t)).unwrap();
        let engine = QueryEngine::new(Arc::clone(&t));
        let inst = instance_for_target(&t, &[0.5, 0.5]);
        let sv = compute_svector(&t, &inst);
        let a = scr.get_plan(&inst, &sv, &engine);
        let b = scr.get_plan(&inst, &sv, &engine);
        // Both came from the optimizer or the cache; either way both are
        // the optimal plan for this exact point.
        assert_eq!(a.plan.fingerprint(), b.plan.fingerprint());
    }

    #[test]
    fn converges_to_sync_cache_contents() {
        let t = fixture();
        let cfg = ScrConfig::new(1.5).unwrap();
        let a_sync = {
            let engine = QueryEngine::new(Arc::clone(&t));
            let mut scr = Scr::with_config(cfg.clone()).unwrap();
            for i in 0..30 {
                let target = [0.03 * (i + 1) as f64, 0.02 * (i + 1) as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let _ = OnlinePqo::get_plan(&mut scr, &inst, &sv, &engine);
            }
            scr.plans_cached()
        };
        let a_async = {
            let scr = AsyncScr::new(cfg, Arc::clone(&t)).unwrap();
            let engine = QueryEngine::new(Arc::clone(&t));
            for i in 0..30 {
                let target = [0.03 * (i + 1) as f64, 0.02 * (i + 1) as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let _ = scr.get_plan(&inst, &sv, &engine);
                scr.flush(); // serialize: state identical to the sync path
            }
            scr.plans_cached()
        };
        assert_eq!(
            a_sync, a_async,
            "flushed-after-every-call async must equal sync"
        );
    }

    #[test]
    fn concurrent_flush_and_drop_are_race_free() {
        // Many threads interleave get_plan with flush; every flush must
        // observe all work enqueued before it, and drop must apply the
        // whole queue before joining the worker.
        let t = fixture();
        let scr = Arc::new(AsyncScr::new(ScrConfig::new(1.5).unwrap(), Arc::clone(&t)).unwrap());
        std::thread::scope(|scope| {
            for k in 0..4 {
                let scr = Arc::clone(&scr);
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    let engine = QueryEngine::new(Arc::clone(&t));
                    for i in 0..12 {
                        let target = [
                            0.03 + 0.07 * ((i * 4 + k) % 13) as f64,
                            0.04 + 0.05 * k as f64,
                        ];
                        let inst = instance_for_target(&t, &target);
                        let sv = compute_svector(&t, &inst);
                        let _ = scr.get_plan(&inst, &sv, &engine);
                        if i % 3 == 0 {
                            scr.flush();
                        }
                    }
                });
            }
        });
        scr.flush();
        let plans_before_drop = scr.plans_cached();
        assert!(plans_before_drop >= 1);
        scr.with_inner(|s| assert!(s.cache().check_invariants().is_ok()));
        // Dropping the last handle joins the worker with the queue drained.
        drop(
            Arc::try_unwrap(scr)
                .map_err(|_| "sole owner expected")
                .unwrap(),
        );
    }
}
