//! SCR: the paper's online PQO technique with guarantees.
//!
//! SCR processes query instances online with three checks:
//!
//! 1. **Selectivity check** (Sections 5.3, 6.2): for a stored instance `qe`
//!    with entry `<V, PP, C, S, U>`, compute the selectivity-ratio factors
//!    `G = ∏_{αi>1} αi` and `L = ∏_{αi<1} 1/αi`. Under Bounded Cost Growth
//!    with `fi(α) = α`, `SubOpt(P(qe), qc) ≤ G·S·L`, so the check
//!    `G·L ≤ λ/S` guarantees λ-optimality using arithmetic only.
//! 2. **Cost check** (Section 6.2): for the most promising candidates (in
//!    increasing `G·L` order), replace the `G` bound by the exact ratio
//!    `R = Recost(P(qe), qc) / C`; reuse when `R·L ≤ λ/S`.
//! 3. **Redundancy check** (Section 6.3): when a fresh optimization yields a
//!    plan not in the cache, discard it if some cached plan is within
//!    `λr = √λ` of optimal at `qc` (Appendix E justifies the √λ choice).
//!
//! Extensions implemented: plan budget `k` with least-frequently-used
//! eviction (Section 6.3.1), dynamic λ (Appendix D), redundancy sweep for
//! existing plans (Appendix F), and BCG/PCM violation detection with entry
//! disabling (Appendix G).
//!
//! # Concurrency split
//!
//! The cache-*read* path ([`Scr::try_cached_plan`] — selectivity check and
//! cost check) takes `&self`: served-instance bookkeeping (usage counts,
//! violation flags, technique counters) lives in atomics, so N threads can
//! run `getPlan` under a shared read lock. Only `manageCache`
//! ([`Scr::manage_cache_entry`]) mutates the cache structure and needs
//! `&mut self` / the write lock. [`crate::service::PqoService`] builds on
//! exactly this split.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use pqo_optimizer::engine::{OptimizedPlan, QueryEngine};
use pqo_optimizer::error::PqoError;
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::recost::RecostScratch;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use crate::cache::{InstanceEntry, PlanCache};
use crate::policy::{LecPolicy, PenaltyPolicy, PlanPolicy, PolicyId, ScrPolicy};
use crate::{OnlinePqo, PlanChoice};

/// Dynamic λ mapping of Appendix D: cheaper instances tolerate a larger λ.
#[derive(Debug, Clone, Copy)]
pub struct DynamicLambda {
    /// λ used for the most expensive instances.
    pub lambda_min: f64,
    /// λ approached by the cheapest instances.
    pub lambda_max: f64,
}

/// Order in which selectivity-check survivors are tried by the cost check
/// (Section 6.2 discusses these alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateOrder {
    /// Increasing `G·L` — the paper's default: small G·L is most likely to
    /// pass.
    GlAscending,
    /// Decreasing usage count `U`: frequently reused entries first.
    UsageDescending,
    /// Decreasing selectivity-region area (∝ ∏ si, Section 5.3): entries
    /// with larger inference regions first.
    AreaDescending,
}

/// SCR configuration.
#[derive(Debug, Clone)]
pub struct ScrConfig {
    /// The sub-optimality bound λ ≥ 1.
    pub lambda: f64,
    /// Redundancy-check threshold λr (Appendix E). `0.0` disables the
    /// redundancy check (every new plan is stored); the paper's default is
    /// `√λ`.
    pub lambda_r: f64,
    /// Optional hard budget `k` on the number of cached plans
    /// (Section 6.3.1). Eviction removes the plan with minimum aggregate
    /// usage together with all its instance entries.
    pub plan_budget: Option<usize>,
    /// Maximum number of candidate entries the cost check may re-cost per
    /// `getPlan` call — the G·L-pruning heuristic of Section 6.2.
    pub max_recost_candidates: usize,
    /// Dynamic λ range (Appendix D); `None` keeps λ static.
    pub dynamic_lambda: Option<DynamicLambda>,
    /// Appendix G: detect BCG/PCM violations during cost checks and disable
    /// the offending entries for future cost checks.
    pub violation_handling: bool,
    /// Appendix F: after adding a new plan, probe whether existing plans
    /// became redundant and drop them. Off by default (the paper's
    /// evaluation only applies the redundancy check to new plans).
    pub existing_plan_redundancy: bool,
    /// Instance-list size at which `getPlan` switches from the linear scan
    /// to the spatial index of Section 6.2 (`usize::MAX` disables the
    /// index).
    pub spatial_index_threshold: usize,
    /// Cost-check candidate ordering for the linear path (the indexed path
    /// is inherently G·L-ascending).
    pub candidate_order: CandidateOrder,
    /// Over-fetch multiplier for the indexed cost check: the nearest-
    /// neighbour query fetches `max_recost_candidates × recost_fetch_factor`
    /// entries (never fewer than 16) so violation-disabled entries do not
    /// starve the candidate list. Larger values trade index work for
    /// resilience under heavy Appendix G disabling.
    pub recost_fetch_factor: usize,
    /// Which serving policy decides reuse/admission over this cache
    /// (DESIGN.md §8). Part of the cache's identity: persisted in the
    /// snapshot header and carried on every replication record, so a warm
    /// restart or a replica subscription under a different policy fails
    /// with a typed error instead of silently mixing decision streams.
    pub policy: PolicyId,
}

impl ScrConfig {
    /// The paper's default configuration for a given λ: `λr = √λ`, no plan
    /// budget, at most 8 Recost candidates, static λ, violation handling on.
    ///
    /// # Errors
    /// [`PqoError::InvalidLambda`] unless λ is finite and ≥ 1.
    pub fn new(lambda: f64) -> Result<Self, PqoError> {
        if !lambda.is_finite() || lambda < 1.0 {
            return Err(PqoError::InvalidLambda { lambda, what: "λ" });
        }
        Ok(ScrConfig {
            lambda,
            lambda_r: lambda.sqrt(),
            plan_budget: None,
            max_recost_candidates: 8,
            dynamic_lambda: None,
            violation_handling: true,
            existing_plan_redundancy: false,
            spatial_index_threshold: 64,
            candidate_order: CandidateOrder::GlAscending,
            recost_fetch_factor: 4,
            policy: PolicyId::Scr,
        })
    }

    /// Select the serving policy (default [`PolicyId::Scr`]). The CLI
    /// exposes this as `pqo serve --policy scr|lec|penalty`.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyId) -> Self {
        self.policy = policy;
        self
    }

    /// Override the instance-list size at which `getPlan` switches from
    /// the linear scan to the spatial index (Section 6.2). `usize::MAX`
    /// disables the index; `0` always uses it. Deployment layers
    /// ([`crate::service::PqoService::register`], the CLI's
    /// `--spatial-threshold`) expose this knob so the crossover can be
    /// tuned per workload instead of relying on the default of 64.
    #[must_use]
    pub fn with_spatial_index_threshold(mut self, threshold: usize) -> Self {
        self.spatial_index_threshold = threshold;
        self
    }

    /// Override the indexed cost check's candidate over-fetch multiplier
    /// (see [`ScrConfig::recost_fetch_factor`]; the CLI exposes this as
    /// `--recost-fetch-factor`). The floor of 16 fetched candidates always
    /// applies, so `0` degenerates to that floor rather than an empty list.
    #[must_use]
    pub fn with_recost_fetch_factor(mut self, factor: usize) -> Self {
        self.recost_fetch_factor = factor;
        self
    }

    /// Validate every knob (used by the `Scr` constructors, which accept
    /// hand-edited configurations).
    pub fn validate(&self) -> Result<(), PqoError> {
        if !self.lambda.is_finite() || self.lambda < 1.0 {
            return Err(PqoError::InvalidLambda {
                lambda: self.lambda,
                what: "λ",
            });
        }
        if !self.lambda_r.is_finite() || self.lambda_r < 0.0 {
            return Err(PqoError::InvalidLambda {
                lambda: self.lambda_r,
                what: "λr",
            });
        }
        if let Some(DynamicLambda {
            lambda_min,
            lambda_max,
        }) = self.dynamic_lambda
        {
            if !lambda_min.is_finite() || lambda_min < 1.0 {
                return Err(PqoError::InvalidLambda {
                    lambda: lambda_min,
                    what: "dynamic λ",
                });
            }
            if !lambda_max.is_finite() || lambda_max < lambda_min {
                return Err(PqoError::InvalidLambda {
                    lambda: lambda_max,
                    what: "dynamic λ",
                });
            }
        }
        if self.plan_budget == Some(0) {
            return Err(PqoError::InvalidBudget { budget: 0 });
        }
        Ok(())
    }
}

/// Counters describing how SCR served a sequence (Section 7.3's overhead
/// anatomy).
///
/// A point-in-time *snapshot*, returned by value from [`Scr::stats`]; the
/// live counters are atomics inside the technique, so observers never block
/// servers.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScrStats {
    /// Instances served by the selectivity check.
    pub selectivity_hits: u64,
    /// Instances served by the cost check.
    pub cost_hits: u64,
    /// Instances that required an optimizer call.
    pub optimizer_calls: u64,
    /// New plans discarded by the redundancy check.
    pub redundant_plans_discarded: u64,
    /// Existing plans dropped by the Appendix F sweep.
    pub existing_plans_dropped: u64,
    /// Plans evicted to enforce the budget `k`.
    pub budget_evictions: u64,
    /// Total Recost calls issued from `getPlan` (cost check only).
    pub getplan_recost_calls: u64,
    /// Maximum Recost calls issued by any single `getPlan` invocation.
    pub max_recosts_per_getplan: u64,
    /// Entries disabled after a detected BCG/PCM violation (Appendix G).
    pub violations_detected: u64,
    /// Cumulative nanoseconds spent in Recost work (cost check, redundancy
    /// check and Appendix F sweep) — one side of the paper's
    /// Recost-vs-optimize overhead split (Section 7.3).
    pub recost_nanos: u64,
    /// Cumulative nanoseconds spent inside optimizer calls issued by
    /// `getPlan` — the other side of the overhead split.
    pub optimize_nanos: u64,
    /// Published-generation re-loads taken by batched serving after a
    /// miss→publish (one per miss inside a batch), so operators can see how
    /// often a batch had to chase a fresh snapshot.
    pub snapshot_reloads: u64,
    /// Batched `get_plan_batch` frames served for this template.
    pub batches_served: u64,
    /// Total instances that arrived through the batched path.
    pub batch_instances: u64,
    /// Largest single batch served.
    pub max_batch_size: u64,
    /// Spatial-index shard rebuilds performed by the writer (cumulative).
    pub index_shard_rebuilds: u64,
    /// Total points re-inserted across those shard rebuilds — the writer's
    /// incremental index-maintenance cost, O(n/shards) per rebuild.
    pub index_points_rebuilt: u64,
    /// Snapshot generations published by the writer.
    pub publishes: u64,
    /// Cumulative nanoseconds spent capturing + installing published
    /// generations (the cost the sharded index keeps at O(n/shards)).
    pub publish_nanos: u64,
    /// Instances served by a non-SCR policy's decide hook (LEC /
    /// Penalty). Always 0 under [`PolicyId::Scr`], whose hits land in
    /// `selectivity_hits` / `cost_hits`.
    pub policy_hits: u64,
    /// Instances a non-SCR policy examined but routed to the optimizer
    /// (neighbourhood too distant, or the λ-gate failed). Always 0 under
    /// [`PolicyId::Scr`].
    pub policy_rejects: u64,
}

/// The live (atomic) form of [`ScrStats`]. Counters bumped on the read path
/// use `Relaxed` ordering — they are independent tallies, not
/// synchronization. Shared (`Arc`) between the writer-side [`Scr`] and
/// every published [`crate::snapshot::CacheSnapshot`], so hits counted
/// through any snapshot generation land in one tally.
#[derive(Debug, Default)]
pub(crate) struct ScrStatCells {
    selectivity_hits: AtomicU64,
    cost_hits: AtomicU64,
    optimizer_calls: AtomicU64,
    redundant_plans_discarded: AtomicU64,
    existing_plans_dropped: AtomicU64,
    budget_evictions: AtomicU64,
    getplan_recost_calls: AtomicU64,
    max_recosts_per_getplan: AtomicU64,
    violations_detected: AtomicU64,
    recost_nanos: AtomicU64,
    optimize_nanos: AtomicU64,
    snapshot_reloads: AtomicU64,
    batches_served: AtomicU64,
    batch_instances: AtomicU64,
    max_batch_size: AtomicU64,
    index_shard_rebuilds: AtomicU64,
    index_points_rebuilt: AtomicU64,
    publishes: AtomicU64,
    publish_nanos: AtomicU64,
    policy_hits: AtomicU64,
    policy_rejects: AtomicU64,
}

impl ScrStatCells {
    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn add(cell: &AtomicU64, n: u64) {
        cell.fetch_add(n, Ordering::Relaxed);
    }

    /// One batched `get_plan_batch` frame of `len` instances.
    pub(crate) fn record_batch(&self, len: u64) {
        Self::bump(&self.batches_served);
        Self::add(&self.batch_instances, len);
        self.max_batch_size.fetch_max(len, Ordering::Relaxed);
    }

    /// One published-generation re-load after a batch miss→publish.
    pub(crate) fn record_snapshot_reload(&self) {
        Self::bump(&self.snapshot_reloads);
    }

    /// Writer-side sync of the spatial index's cumulative rebuild counters
    /// (the index owns plain `u64`s; the writer mirrors them here after
    /// every structural mutation).
    pub(crate) fn sync_index_stats(&self, shard_rebuilds: u64, points_rebuilt: u64) {
        self.index_shard_rebuilds
            .store(shard_rebuilds, Ordering::Relaxed);
        self.index_points_rebuilt
            .store(points_rebuilt, Ordering::Relaxed);
    }

    /// One snapshot publication that took `nanos` to capture + install.
    pub(crate) fn record_publish(&self, nanos: u64) {
        Self::bump(&self.publishes);
        Self::add(&self.publish_nanos, nanos);
    }

    /// One instance served by a non-SCR policy's decide hook.
    pub(crate) fn record_policy_hit(&self) {
        Self::bump(&self.policy_hits);
    }

    /// One instance a non-SCR policy examined but routed to the optimizer.
    pub(crate) fn record_policy_reject(&self) {
        Self::bump(&self.policy_rejects);
    }

    /// Recost work done inside a non-SCR decide hook — folded into the
    /// same tallies the SCR cost check feeds, so the overhead split and
    /// the per-call maximum stay comparable across policies.
    pub(crate) fn record_policy_recosts(&self, n: u64, nanos: u64) {
        Self::add(&self.getplan_recost_calls, n);
        self.max_recosts_per_getplan.fetch_max(n, Ordering::Relaxed);
        Self::add(&self.recost_nanos, nanos);
    }

    pub(crate) fn snapshot(&self) -> ScrStats {
        ScrStats {
            selectivity_hits: self.selectivity_hits.load(Ordering::Relaxed),
            cost_hits: self.cost_hits.load(Ordering::Relaxed),
            optimizer_calls: self.optimizer_calls.load(Ordering::Relaxed),
            redundant_plans_discarded: self.redundant_plans_discarded.load(Ordering::Relaxed),
            existing_plans_dropped: self.existing_plans_dropped.load(Ordering::Relaxed),
            budget_evictions: self.budget_evictions.load(Ordering::Relaxed),
            getplan_recost_calls: self.getplan_recost_calls.load(Ordering::Relaxed),
            max_recosts_per_getplan: self.max_recosts_per_getplan.load(Ordering::Relaxed),
            violations_detected: self.violations_detected.load(Ordering::Relaxed),
            recost_nanos: self.recost_nanos.load(Ordering::Relaxed),
            optimize_nanos: self.optimize_nanos.load(Ordering::Relaxed),
            snapshot_reloads: self.snapshot_reloads.load(Ordering::Relaxed),
            batches_served: self.batches_served.load(Ordering::Relaxed),
            batch_instances: self.batch_instances.load(Ordering::Relaxed),
            max_batch_size: self.max_batch_size.load(Ordering::Relaxed),
            index_shard_rebuilds: self.index_shard_rebuilds.load(Ordering::Relaxed),
            index_points_rebuilt: self.index_points_rebuilt.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            publish_nanos: self.publish_nanos.load(Ordering::Relaxed),
            policy_hits: self.policy_hits.load(Ordering::Relaxed),
            policy_rejects: self.policy_rejects.load(Ordering::Relaxed),
        }
    }
}

/// Reusable scratch for one `getPlan` caller: the cost check's
/// fingerprint→Recost memo table plus the arena-recost scratch
/// ([`RecostScratch`]) whose base derivation is delta-updated across
/// candidates and across successive calls. A caller that threads one of
/// these through repeated [`Scr::try_cached_plan_with`] /
/// [`crate::snapshot::CacheSnapshot::try_cached_plan_with`] invocations
/// allocates nothing on the cache-hit path; callers without one fall back
/// to a fresh scratch per call.
///
/// A scratch is specific to one template and cost model (it caches
/// per-relation base cardinalities); call [`GetPlanScratch::invalidate`]
/// before reusing it against a different engine.
#[derive(Debug, Default)]
pub struct GetPlanScratch {
    pub(crate) recosted: HashMap<PlanFingerprint, f64>,
    pub(crate) recost: RecostScratch,
}

impl GetPlanScratch {
    /// An empty scratch (equivalent to `Default::default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop all memoized state so the scratch can serve a different
    /// template or cost model.
    pub fn invalidate(&mut self) {
        self.recosted.clear();
        self.recost.invalidate();
    }
}

/// The SCR technique (Figure 2 architecture: `getPlan` + `manageCache` over
/// the plan cache of Figure 5).
#[derive(Debug)]
pub struct Scr {
    config: ScrConfig,
    pub(crate) cache: PlanCache,
    stats: Arc<ScrStatCells>,
    /// Running Σ log(C) and count over optimized instances — the cost scale
    /// for the dynamic-λ mapping. Written only on the `&mut` maintenance
    /// path, read on the shared read path (safe under the service's RwLock).
    log_cost_sum: f64,
    opt_count: u64,
    /// Owned scratch for the sequential (`&mut self`) `getPlan` path, taken
    /// with `mem::take` around each call so the borrow never conflicts with
    /// the cache view. Concurrent callers bring their own
    /// [`GetPlanScratch`].
    scratch: GetPlanScratch,
}

/// Borrowed view of everything the cache-*read* path touches: the knobs,
/// the plan cache, the stat cells and the dynamic-λ accumulators.
///
/// Both [`Scr::try_cached_plan`] (sequential / lock-guarded callers) and
/// [`crate::snapshot::CacheSnapshot::try_cached_plan`] (the published
/// lock-free read path) build one of these and run the *same* code, so the
/// snapshot reader's reuse/optimize decisions are byte-identical to the
/// sequential technique's by construction.
pub(crate) struct ReadView<'a> {
    pub(crate) config: &'a ScrConfig,
    pub(crate) cache: &'a PlanCache,
    pub(crate) stats: &'a ScrStatCells,
    pub(crate) log_cost_sum: f64,
    pub(crate) opt_count: u64,
}

impl ReadView<'_> {
    /// Effective λ for an entry with optimal cost `c` (Appendix D): static
    /// λ, or `λmin + (λmax − λmin)·exp(−c / Cref)` where `Cref` is the
    /// geometric mean of optimal costs seen so far.
    pub(crate) fn effective_lambda(&self, c: f64) -> f64 {
        match self.config.dynamic_lambda {
            None => self.config.lambda,
            Some(DynamicLambda {
                lambda_min,
                lambda_max,
            }) => {
                if self.opt_count == 0 {
                    return lambda_min;
                }
                let c_ref = (self.log_cost_sum / self.opt_count as f64).exp();
                lambda_min + (lambda_max - lambda_min) * (-c / c_ref.max(f64::MIN_POSITIVE)).exp()
            }
        }
    }

    /// The cache-only part of `getPlan`: the active policy's decide hook —
    /// never an optimizer call, never a structural cache mutation.
    /// `scratch` carries the cost check's memo table and recost scratch
    /// across calls; the hit path allocates nothing when the caller reuses
    /// one. Dispatch is a static `match` on [`PolicyId`] (no `dyn` on the
    /// hot path); the SCR arm is the unchanged pre-policy code.
    pub(crate) fn try_cached_plan(
        &self,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        match self.config.policy {
            PolicyId::Scr => ScrPolicy::decide(self, sv, engine, scratch),
            PolicyId::Lec => LecPolicy::decide(self, sv, engine, scratch),
            PolicyId::Penalty => PenaltyPolicy::decide(self, sv, engine, scratch),
        }
    }

    /// SCR's decide-on-hit: selectivity check then cost check (Algorithm 1
    /// minus the optimizer arm).
    pub(crate) fn scr_decide(
        &self,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        let use_index = self.config.spatial_index_threshold != usize::MAX
            && self.cache.num_instances() >= self.config.spatial_index_threshold;
        let candidates = if use_index {
            match self.selectivity_check_indexed(sv) {
                Ok(choice) => return Some(choice),
                Err(c) => c,
            }
        } else {
            match self.selectivity_check_linear(sv) {
                Ok(choice) => return Some(choice),
                Err(c) => c,
            }
        };
        self.cost_check(sv, candidates, engine, scratch)
    }

    /// Serve an instance through cache entry `idx` without an optimizer
    /// call.
    pub(crate) fn serve(&self, idx: usize) -> PlanChoice {
        let e = &self.cache.instances()[idx];
        e.record_use();
        let plan = Arc::clone(self.cache.plan(e.plan).expect("entry points to live plan"));
        PlanChoice {
            plan,
            optimized: false,
        }
    }

    /// Linear-scan selectivity check (small instance lists): returns the
    /// serving choice, or the cost-check candidates `(G, L, idx)` ordered
    /// per [`ScrConfig::candidate_order`].
    fn selectivity_check_linear(&self, sv: &SVector) -> Result<PlanChoice, Vec<(f64, f64, usize)>> {
        let mut candidates: Vec<(f64, f64, usize)> = Vec::new(); // (G, L, idx)
        for (idx, e) in self.cache.instances().iter().enumerate() {
            let (g, l) = sv.g_and_l(&e.svector);
            let lambda_e = self.effective_lambda(e.opt_cost);
            if g * l <= lambda_e / e.sub_opt {
                ScrStatCells::bump(&self.stats.selectivity_hits);
                return Ok(self.serve(idx));
            }
            if !e.violation_detected() {
                candidates.push((g, l, idx));
            }
        }
        let key = |&(g, l, idx): &(f64, f64, usize)| -> f64 {
            let e = &self.cache.instances()[idx];
            match self.config.candidate_order {
                CandidateOrder::GlAscending => g * l,
                CandidateOrder::UsageDescending => -(e.usage() as f64),
                CandidateOrder::AreaDescending => -e.svector.0.iter().product::<f64>(),
            }
        };
        candidates.sort_by(|a, b| key(a).partial_cmp(&key(b)).unwrap());
        candidates.truncate(self.config.max_recost_candidates);
        Err(candidates)
    }

    /// Spatial-index selectivity check (Section 6.2): the selectivity check
    /// is an L1 ball query in log-selectivity space (G·L = e^distance), and
    /// the cost-check candidates are the nearest neighbours — smallest G·L
    /// first without scanning the instance list.
    fn selectivity_check_indexed(
        &self,
        sv: &SVector,
    ) -> Result<PlanChoice, Vec<(f64, f64, usize)>> {
        let lambda_upper = match self.config.dynamic_lambda {
            Some(d) => d.lambda_max,
            None => self.config.lambda,
        };
        for (dist, idx) in self.cache.instances_within(sv, lambda_upper.ln()) {
            let e = &self.cache.instances()[idx];
            let gl = dist.exp();
            if gl <= self.effective_lambda(e.opt_cost) / e.sub_opt {
                ScrStatCells::bump(&self.stats.selectivity_hits);
                return Ok(self.serve(idx));
            }
        }
        // Over-fetch so violation-disabled entries do not starve the list.
        let fetch = self
            .config
            .max_recost_candidates
            .saturating_mul(self.config.recost_fetch_factor)
            .max(16);
        let mut candidates: Vec<(f64, f64, usize)> = self
            .cache
            .nearest_instances(sv, fetch)
            .into_iter()
            .filter(|&(_, idx)| !self.cache.instances()[idx].violation_detected())
            .map(|(_, idx)| {
                let (g, l) = sv.g_and_l(&self.cache.instances()[idx].svector);
                (g, l, idx)
            })
            .collect();
        candidates.truncate(self.config.max_recost_candidates);
        Err(candidates)
    }

    /// Cost check over ordered candidates: replace the `G` bound by the
    /// exact Recost ratio `R`, re-costing each distinct plan at most once.
    /// Each Recost runs over the plan's [`CachedPlan`](crate::cache::CachedPlan)
    /// prepared form — a linear arena pass whose base derivation lives in
    /// `scratch` and is shared across candidates (and delta-updated across
    /// calls), so the loop performs no allocation and no tree walk.
    fn cost_check(
        &self,
        sv: &SVector,
        candidates: Vec<(f64, f64, usize)>,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        if candidates.is_empty() {
            return None;
        }
        scratch.recosted.clear();
        let mut recosts_this_call = 0u64;
        let t0 = Instant::now();
        let flush_recost_tally = |n: u64| {
            self.stats
                .getplan_recost_calls
                .fetch_add(n, Ordering::Relaxed);
            self.stats
                .max_recosts_per_getplan
                .fetch_max(n, Ordering::Relaxed);
            ScrStatCells::add(&self.stats.recost_nanos, t0.elapsed().as_nanos() as u64);
        };
        for (g, l, idx) in candidates {
            let e = &self.cache.instances()[idx];
            let (fp, c, s, lambda_e) = (
                e.plan,
                e.opt_cost,
                e.sub_opt,
                self.effective_lambda(e.opt_cost),
            );
            let new_cost = match scratch.recosted.get(&fp) {
                Some(&c) => c,
                None => {
                    let cached = self.cache.cached(fp).expect("live plan");
                    let c =
                        engine.recost_prepared(cached.prepared(engine), sv, &mut scratch.recost);
                    recosts_this_call += 1;
                    scratch.recosted.insert(fp, c);
                    c
                }
            };
            let r = new_cost / c;
            // Appendix G: Cost(P, qe) = S·C, so BCG demands
            // S·C/L ≤ Cost(P, qc) ≤ G·S·C. Outside → violation at qe.
            if self.config.violation_handling {
                let upper = g * s * c;
                let lower = s * c / l;
                if new_cost > upper * (1.0 + 1e-9) || new_cost < lower * (1.0 - 1e-9) {
                    e.mark_violation();
                    ScrStatCells::bump(&self.stats.violations_detected);
                    continue;
                }
            }
            if r * l <= lambda_e / s {
                ScrStatCells::bump(&self.stats.cost_hits);
                flush_recost_tally(recosts_this_call);
                return Some(self.serve(idx));
            }
        }
        flush_recost_tally(recosts_this_call);
        None
    }
}

impl Scr {
    /// SCR with the paper's defaults for the given λ.
    ///
    /// # Errors
    /// [`PqoError::InvalidLambda`] unless λ is finite and ≥ 1.
    pub fn new(lambda: f64) -> Result<Self, PqoError> {
        Scr::with_config(ScrConfig::new(lambda)?)
    }

    /// SCR with an explicit configuration.
    ///
    /// # Errors
    /// [`PqoError::InvalidLambda`] / [`PqoError::InvalidBudget`] when the
    /// configuration fails [`ScrConfig::validate`].
    pub fn with_config(config: ScrConfig) -> Result<Self, PqoError> {
        config.validate()?;
        Ok(Scr {
            config,
            cache: PlanCache::new(),
            stats: Arc::new(ScrStatCells::default()),
            log_cost_sum: 0.0,
            opt_count: 0,
            scratch: GetPlanScratch::default(),
        })
    }

    /// Current configuration.
    pub fn config(&self) -> &ScrConfig {
        &self.config
    }

    /// The plan cache (read-only).
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Point-in-time snapshot of the technique counters (lock-free).
    pub fn stats(&self) -> ScrStats {
        self.stats.snapshot()
    }

    /// Attribute optimizer wall time measured by an outer serving layer
    /// (e.g. [`crate::service::PqoService`], whose optimizer calls run
    /// outside this technique) to the overhead split.
    pub(crate) fn record_optimize_nanos(&self, nanos: u64) {
        ScrStatCells::add(&self.stats.optimize_nanos, nanos);
    }

    /// Evict one plan (and its instance entries) from the cache — used by
    /// the global budget of [`crate::manager::PqoManager`] and
    /// [`crate::service::PqoService`]. Safe for the guarantee: inference
    /// entries leave with the plan (Section 6.3.1).
    pub fn evict_plan(&mut self, fp: PlanFingerprint) {
        self.cache.drop_plan(fp);
        ScrStatCells::bump(&self.stats.budget_evictions);
        self.sync_index_stats();
    }

    /// Mirror the spatial index's cumulative rebuild counters into the
    /// shared stat cells (called after every structural cache mutation).
    fn sync_index_stats(&self) {
        if let Some(ix) = self.cache.spatial_index() {
            let (rebuilds, points) = ix.rebuild_stats();
            self.stats.sync_index_stats(rebuilds, points);
        }
    }

    /// The dynamic-λ accumulators `(Σ log C, optimized count)` — persisted
    /// alongside the cache so a restored SCR keeps its cost scale.
    pub fn lambda_accumulators(&self) -> (f64, u64) {
        (self.log_cost_sum, self.opt_count)
    }

    /// Reassemble an SCR from persisted parts (see [`crate::persist`]).
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    ///
    /// # Panics
    /// Panics (debug) if an entry references a plan not in `plans` — an
    /// internal cache invariant; the snapshot loader validates references
    /// before calling.
    pub fn from_parts(
        config: ScrConfig,
        plans: Vec<Arc<pqo_optimizer::plan::Plan>>,
        entries: Vec<InstanceEntry>,
        log_cost_sum: f64,
        opt_count: u64,
    ) -> Result<Self, PqoError> {
        let mut scr = Scr::with_config(config)?;
        for p in plans {
            scr.cache.insert_plan(p);
        }
        for e in entries {
            scr.cache.push_instance(e);
        }
        scr.log_cost_sum = log_cost_sum;
        scr.opt_count = opt_count;
        scr.sync_index_stats();
        debug_assert!(scr.cache.check_invariants().is_ok());
        Ok(scr)
    }

    /// The borrowed read-path view over this technique's state — the same
    /// code object the published snapshots execute.
    pub(crate) fn read_view(&self) -> ReadView<'_> {
        ReadView {
            config: &self.config,
            cache: &self.cache,
            stats: &self.stats,
            log_cost_sum: self.log_cost_sum,
            opt_count: self.opt_count,
        }
    }

    /// The shared stat cells (for snapshot publication).
    pub(crate) fn stat_cells(&self) -> &Arc<ScrStatCells> {
        &self.stats
    }

    /// Adopt an existing set of shared stat cells (the replica apply path:
    /// each applied generation is rebuilt via [`Scr::from_parts`], but the
    /// shard's cumulative hit/publish tallies must survive the swap). The
    /// adopted cells immediately re-sync the new index's rebuild counters.
    pub(crate) fn adopt_stat_cells(&mut self, cells: Arc<ScrStatCells>) {
        self.stats = cells;
        self.sync_index_stats();
    }

    /// Effective λ for an entry with optimal cost `c` (Appendix D).
    fn effective_lambda(&self, c: f64) -> f64 {
        self.read_view().effective_lambda(c)
    }

    /// `getPlan` (Algorithm 1): selectivity check, then cost check, then an
    /// optimizer call followed by `manageCache`. Reuses the technique's
    /// owned [`GetPlanScratch`] so back-to-back calls allocate nothing on
    /// the cache-hit path.
    fn get_plan_inner(&mut self, sv: &SVector, engine: &QueryEngine) -> PlanChoice {
        let mut scratch = std::mem::take(&mut self.scratch);
        let hit = self.read_view().try_cached_plan(sv, engine, &mut scratch);
        self.scratch = scratch;
        if let Some(choice) = hit {
            return choice;
        }

        // --- Optimizer call + manageCache -----------------------------------
        let t0 = Instant::now();
        let opt = engine.optimize(sv);
        ScrStatCells::add(&self.stats.optimize_nanos, t0.elapsed().as_nanos() as u64);
        let plan = Arc::clone(&opt.plan);
        self.manage_cache_entry(sv, opt, engine);
        PlanChoice {
            plan,
            optimized: true,
        }
    }

    /// The cache-only part of `getPlan`: selectivity check then cost check,
    /// never an optimizer call, never a structural cache mutation — `&self`,
    /// so concurrent servers share it ([`crate::concurrent::AsyncScr`],
    /// [`crate::service::PqoService`] run the identical code through a
    /// published [`crate::snapshot::CacheSnapshot`]). Allocates a fresh
    /// scratch per call; hot callers should prefer
    /// [`Scr::try_cached_plan_with`].
    pub fn try_cached_plan(&self, sv: &SVector, engine: &QueryEngine) -> Option<PlanChoice> {
        self.read_view()
            .try_cached_plan(sv, engine, &mut GetPlanScratch::default())
    }

    /// [`Scr::try_cached_plan`] with a caller-owned [`GetPlanScratch`]: the
    /// cost check's memo table and recost base derivation survive across
    /// calls, so repeated probes neither allocate nor re-derive unchanged
    /// selectivity dimensions.
    pub fn try_cached_plan_with(
        &self,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        self.read_view().try_cached_plan(sv, engine, scratch)
    }

    /// Record a fresh optimization in the cache (`manageCache`), including
    /// the optimizer-call bookkeeping — the only path that mutates cache
    /// structure. Runs on a worker thread ([`crate::concurrent::AsyncScr`])
    /// or under the service's write lock (Section 4.1). The shared
    /// pre-amble (optimizer-call tally, dynamic-λ accumulators) runs for
    /// every policy; the structural admission dispatches to the active
    /// policy's admit hook.
    pub fn manage_cache_entry(&mut self, sv: &SVector, opt: OptimizedPlan, engine: &QueryEngine) {
        ScrStatCells::bump(&self.stats.optimizer_calls);
        self.log_cost_sum += opt.cost.max(f64::MIN_POSITIVE).ln();
        self.opt_count += 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        match self.config.policy {
            PolicyId::Scr => ScrPolicy::admit(self, sv, opt, engine, &mut scratch),
            PolicyId::Lec => LecPolicy::admit(self, sv, opt, engine, &mut scratch),
            PolicyId::Penalty => PenaltyPolicy::admit(self, sv, opt, engine, &mut scratch),
        }
        self.scratch = scratch;
        self.sync_index_stats();
    }

    /// Enforce the plan budget before an insertion (Section 6.3.1): drop
    /// the minimum-aggregate-usage plan along with its instance entries
    /// until a slot is free.
    pub(crate) fn enforce_plan_budget(&mut self) {
        if let Some(k) = self.config.plan_budget {
            while self.cache.num_plans() >= k.max(1) {
                let victim = self
                    .cache
                    .min_usage_plan()
                    .expect("budget > 0 ⇒ victim exists");
                self.cache.drop_plan(victim);
                ScrStatCells::bump(&self.stats.budget_evictions);
            }
        }
    }

    /// SCR's admit-on-miss: `manageCache` (Algorithm 2).
    pub(crate) fn scr_admit(
        &mut self,
        sv: &SVector,
        opt: OptimizedPlan,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) {
        let fp = opt.plan.fingerprint();
        if self.cache.contains_plan(fp) {
            // Plan already cached: extend its inference region with qc.
            self.cache
                .push_instance(InstanceEntry::new(sv.clone(), fp, opt.cost, 1.0, 1));
            return;
        }

        // Redundancy check: is some cached plan λr-close to optimal at qc?
        // One prepared linear pass per plan; the base derivation in
        // `scratch` is shared by every plan (same sVector).
        if self.config.lambda_r > 0.0 && self.cache.num_plans() > 0 {
            let t0 = Instant::now();
            let (min_fp, min_cost) = self
                .cache
                .cached_plans()
                .map(|c| {
                    let cost = engine.recost_prepared(c.prepared(engine), sv, &mut scratch.recost);
                    (c.fingerprint(), cost)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("non-empty plan list");
            ScrStatCells::add(&self.stats.recost_nanos, t0.elapsed().as_nanos() as u64);
            let s_min = (min_cost / opt.cost).max(1.0);
            if s_min <= self.config.lambda_r {
                ScrStatCells::bump(&self.stats.redundant_plans_discarded);
                self.cache.push_instance(InstanceEntry::new(
                    sv.clone(),
                    min_fp,
                    opt.cost,
                    s_min,
                    1,
                ));
                return;
            }
        }

        self.enforce_plan_budget();

        self.cache.insert_plan(opt.plan);
        // Build the prepared form at insert time — every later Recost of
        // this plan (cost check, redundancy check, sweep) is then a linear
        // arena pass with no per-call setup.
        if let Some(c) = self.cache.cached(fp) {
            let _ = c.prepared(engine);
        }
        self.cache
            .push_instance(InstanceEntry::new(sv.clone(), fp, opt.cost, 1.0, 1));

        if self.config.existing_plan_redundancy {
            self.sweep_existing_plans(engine, scratch);
        }
        debug_assert!(self.cache.check_invariants().is_ok());
    }

    /// Appendix F: probe each pre-existing plan (in increasing instance-set
    /// size) for redundancy — temporarily remove it, re-run the simulated
    /// `getPlan` for each of its instances against the rest of the cache,
    /// and keep the removal only if every instance finds an alternative
    /// λ-optimal plan.
    fn sweep_existing_plans(&mut self, engine: &QueryEngine, scratch: &mut GetPlanScratch) {
        let t0 = Instant::now();
        let mut plans: Vec<PlanFingerprint> = self.cache.plans().map(|p| p.fingerprint()).collect();
        plans.sort_by_key(|&fp| {
            (
                self.cache
                    .instances()
                    .iter()
                    .filter(|e| e.plan == fp)
                    .count(),
                fp,
            )
        });
        for fp in plans {
            if self.cache.num_plans() <= 1 {
                break;
            }
            let taken = self.cache.take_instances_of(fp);
            let plan = self.cache.remove_plan_only(fp).expect("plan listed");
            let mut replacements: Vec<InstanceEntry> = Vec::with_capacity(taken.len());
            let mut ok = true;
            for e in &taken {
                match self.simulated_get_plan(&e.svector, e.opt_cost, engine, scratch) {
                    Some((alt_fp, s_new)) => replacements.push(InstanceEntry::restored(
                        e.svector.clone(),
                        alt_fp,
                        e.opt_cost,
                        s_new,
                        e.usage(),
                        e.violation_detected(),
                    )),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for r in replacements {
                    self.cache.push_instance(r);
                }
                ScrStatCells::bump(&self.stats.existing_plans_dropped);
            } else {
                self.cache.insert_plan(plan);
                for e in taken {
                    self.cache.push_instance_arc(e);
                }
            }
        }
        // The sweep is Recost-dominated; attribute its wall time there.
        ScrStatCells::add(&self.stats.recost_nanos, t0.elapsed().as_nanos() as u64);
    }

    /// The simulated `getPlan` of Appendix F: find an alternative λ-optimal
    /// plan for a stored instance (selectivity check, then cost check) and
    /// return it with its *exact* sub-optimality at that instance (one extra
    /// Recost against the instance's stored optimal cost).
    fn simulated_get_plan(
        &self,
        sv: &SVector,
        opt_cost: f64,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<(PlanFingerprint, f64)> {
        let recost = |fp: PlanFingerprint, scratch: &mut GetPlanScratch| -> f64 {
            let cached = self.cache.cached(fp).expect("live plan");
            engine.recost_prepared(cached.prepared(engine), sv, &mut scratch.recost)
        };
        let mut candidates: Vec<(f64, usize)> = Vec::new();
        for (idx, e) in self.cache.instances().iter().enumerate() {
            let (g, l) = sv.g_and_l(&e.svector);
            let lambda_e = self.effective_lambda(e.opt_cost);
            if g * l <= lambda_e / e.sub_opt {
                let s_new = (recost(e.plan, scratch) / opt_cost).max(1.0);
                return Some((e.plan, s_new));
            }
            if !e.violation_detected() {
                candidates.push((g * l, idx));
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        candidates.truncate(self.config.max_recost_candidates);
        for (_, idx) in candidates {
            let e = &self.cache.instances()[idx];
            let (_, l) = sv.g_and_l(&e.svector);
            let new_cost = recost(e.plan, scratch);
            let r = new_cost / e.opt_cost;
            if r * l <= self.effective_lambda(e.opt_cost) / e.sub_opt {
                return Some((e.plan, (new_cost / opt_cost).max(1.0)));
            }
        }
        None
    }
}

impl OnlinePqo for Scr {
    fn name(&self) -> String {
        let stem = match self.config.policy {
            PolicyId::Scr => "SCR",
            PolicyId::Lec => "LEC",
            PolicyId::Penalty => "PEN",
        };
        let mut n = format!("{stem}{}", self.config.lambda);
        if let Some(d) = self.config.dynamic_lambda {
            n = format!("{stem}[{},{}]", d.lambda_min, d.lambda_max);
        }
        if let Some(k) = self.config.plan_budget {
            n.push_str(&format!("-k{k}"));
        }
        n
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        self.get_plan_inner(sv, engine)
    }

    fn plans_cached(&self) -> usize {
        self.cache.num_plans()
    }

    fn max_plans_cached(&self) -> usize {
        self.cache.max_plans()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{fixture_template, run_point};
    use pqo_optimizer::svector::{compute_svector, instance_for_target};

    fn fixture() -> Arc<pqo_optimizer::template::QueryTemplate> {
        fixture_template("scr_test")
    }

    #[test]
    fn invalid_configs_are_rejected_not_panicked() {
        assert!(matches!(
            ScrConfig::new(0.5),
            Err(PqoError::InvalidLambda { what: "λ", .. })
        ));
        assert!(matches!(
            Scr::new(f64::NAN),
            Err(PqoError::InvalidLambda { .. })
        ));
        let mut cfg = ScrConfig::new(2.0).unwrap();
        cfg.lambda_r = -1.0;
        assert!(matches!(
            Scr::with_config(cfg.clone()),
            Err(PqoError::InvalidLambda { what: "λr", .. })
        ));
        cfg.lambda_r = 1.0;
        cfg.plan_budget = Some(0);
        assert!(matches!(
            Scr::with_config(cfg),
            Err(PqoError::InvalidBudget { budget: 0 })
        ));
    }

    #[test]
    fn first_instance_always_optimizes() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut scr = Scr::new(2.0).unwrap();
        let c = run_point(&mut scr, &engine, &[0.1, 0.1]);
        assert!(c.optimized);
        assert_eq!(scr.plans_cached(), 1);
        assert_eq!(scr.cache().num_instances(), 1);
    }

    #[test]
    fn identical_instance_passes_selectivity_check() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut scr = Scr::new(1.1).unwrap();
        let _ = run_point(&mut scr, &engine, &[0.1, 0.1]);
        let c = run_point(&mut scr, &engine, &[0.1, 0.1]);
        assert!(!c.optimized, "G = L = 1 must pass the selectivity check");
        assert_eq!(scr.stats().selectivity_hits, 1);
        assert_eq!(engine.stats().optimize_calls, 1);
    }

    #[test]
    fn nearby_instance_reuses_within_lambda() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut scr = Scr::new(2.0).unwrap();
        let _ = run_point(&mut scr, &engine, &[0.10, 0.10]);
        // α = (1.2, 1.1) → G·L = 1.32 ≤ 2.
        let c = run_point(&mut scr, &engine, &[0.12, 0.11]);
        assert!(!c.optimized);
    }

    #[test]
    fn distant_instance_triggers_optimizer() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut scr = Scr::new(1.1).unwrap();
        let _ = run_point(&mut scr, &engine, &[0.001, 0.001]);
        let c = run_point(&mut scr, &engine, &[0.9, 0.9]);
        assert!(
            c.optimized,
            "selectivity and cost growth is far beyond λ=1.1"
        );
        assert_eq!(scr.stats().optimizer_calls, 2);
    }

    #[test]
    fn cost_check_extends_reuse_beyond_selectivity_region() {
        // SeqScan-dominated region: cost barely changes with selectivity, so
        // the exact ratio R stays near 1 even when G is large.
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut scr = Scr::new(1.2).unwrap();
        let _ = run_point(&mut scr, &engine, &[0.55, 0.55]);
        let c = run_point(&mut scr, &engine, &[0.8, 0.8]);
        if !c.optimized {
            assert!(scr.stats().cost_hits + scr.stats().selectivity_hits >= 1);
        }
        // Either way the cache never exceeds the plans actually needed.
        assert!(scr.plans_cached() <= 2);
    }

    #[test]
    fn redundancy_check_discards_near_duplicate_plans() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        // λr = √4 = 2: generous redundancy threshold.
        let mut scr = Scr::new(4.0).unwrap();
        let points: Vec<[f64; 2]> = (1..=20)
            .map(|i| [0.04 * i as f64, 0.03 * i as f64])
            .collect();
        for p in &points {
            let _ = run_point(&mut scr, &engine, p);
        }
        let opt_calls = engine.stats().optimize_calls;
        assert!(
            (scr.plans_cached() as u64) < opt_calls || opt_calls <= 1,
            "redundancy check should retain fewer plans ({}) than optimizer calls ({})",
            scr.plans_cached(),
            opt_calls,
        );
        assert!(scr.cache().check_invariants().is_ok());
    }

    #[test]
    fn lambda_r_zero_stores_every_new_plan() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut cfg = ScrConfig::new(2.0).unwrap();
        cfg.lambda_r = 0.0;
        let mut scr = Scr::with_config(cfg).unwrap();
        for i in 1..=10 {
            let _ = run_point(&mut scr, &engine, &[0.09 * i as f64, 0.005]);
        }
        assert_eq!(scr.stats().redundant_plans_discarded, 0);
    }

    #[test]
    fn plan_budget_is_enforced() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut cfg = ScrConfig::new(1.05).unwrap();
        cfg.lambda_r = 0.0; // store aggressively to stress the budget
        cfg.plan_budget = Some(2);
        let mut scr = Scr::with_config(cfg).unwrap();
        for i in 1..=12 {
            let _ = run_point(&mut scr, &engine, &[0.08 * i as f64, 0.08 * i as f64]);
            assert!(
                scr.plans_cached() <= 2,
                "budget violated: {}",
                scr.plans_cached()
            );
            assert!(scr.cache().check_invariants().is_ok());
        }
    }

    #[test]
    fn guarantee_holds_across_a_grid() {
        // The λ-optimality contract, verified against the oracle on a grid.
        // BCG violations are possible in principle (sort super-linearity) but
        // must be rare; on this fixture they do not occur.
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let lambda = 2.0;
        let mut scr = Scr::new(lambda).unwrap();
        let mut worst = 1.0f64;
        for i in 0..12 {
            for j in 0..12 {
                let target = [0.002 + 0.08 * i as f64, 0.002 + 0.08 * j as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let choice = scr.get_plan(&inst, &sv, &engine);
                let opt = engine.optimize_untracked(&sv);
                let so = engine.recost_untracked(&choice.plan, &sv) / opt.cost;
                worst = worst.max(so);
            }
        }
        assert!(worst <= lambda * 1.001, "MSO {worst} exceeds λ={lambda}");
    }

    #[test]
    fn usage_counters_accumulate() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut scr = Scr::new(2.0).unwrap();
        let _ = run_point(&mut scr, &engine, &[0.2, 0.2]);
        for _ in 0..5 {
            let _ = run_point(&mut scr, &engine, &[0.2, 0.2]);
        }
        assert_eq!(scr.cache().instances()[0].usage(), 6);
    }

    #[test]
    fn dynamic_lambda_reports_name_and_relaxes_cheap_instances() {
        let mut cfg = ScrConfig::new(1.1).unwrap();
        cfg.dynamic_lambda = Some(DynamicLambda {
            lambda_min: 1.1,
            lambda_max: 10.0,
        });
        let scr = Scr::with_config(cfg).unwrap();
        assert_eq!(scr.name(), "SCR[1.1,10]");
        // Before any optimization the mapping falls back to λmin.
        assert_eq!(scr.effective_lambda(123.0), 1.1);
    }

    #[test]
    fn existing_plan_sweep_keeps_cache_consistent() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut cfg = ScrConfig::new(3.0).unwrap();
        cfg.existing_plan_redundancy = true;
        cfg.lambda_r = 0.0; // force storing, so the sweep has work to do
        let mut scr = Scr::with_config(cfg).unwrap();
        for i in 1..=15 {
            let _ = run_point(&mut scr, &engine, &[0.06 * i as f64, 0.06 * i as f64]);
            assert!(scr.cache().check_invariants().is_ok());
        }
    }

    #[test]
    fn indexed_and_linear_paths_agree_on_decisions() {
        // The spatial index must make the same optimize-or-reuse decisions
        // as the linear scan (it sees the same candidate set, just without
        // scanning): same numOpt, same guarantee.
        let points: Vec<[f64; 2]> = (0..12)
            .flat_map(|i| (0..12).map(move |j| [0.004 + 0.08 * i as f64, 0.004 + 0.08 * j as f64]))
            .collect();

        let run = |threshold: usize| {
            let engine = QueryEngine::new(fixture());
            let mut cfg = ScrConfig::new(2.0).unwrap();
            cfg.spatial_index_threshold = threshold;
            let mut scr = Scr::with_config(cfg).unwrap();
            for p in &points {
                let _ = run_point(&mut scr, &engine, p);
            }
            (engine.stats().optimize_calls, scr.plans_cached())
        };
        let linear = run(usize::MAX);
        let indexed = run(0);
        assert_eq!(linear.0, indexed.0, "optimizer-call counts must match");
        assert_eq!(linear.1, indexed.1, "plan-cache sizes must match");
    }

    #[test]
    fn indexed_path_respects_guarantee() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut cfg = ScrConfig::new(2.0).unwrap();
        cfg.spatial_index_threshold = 0; // always use the index
        let mut scr = Scr::with_config(cfg).unwrap();
        let mut worst = 1.0f64;
        for i in 0..10 {
            for j in 0..10 {
                let target = [0.01 + 0.09 * i as f64, 0.01 + 0.09 * j as f64];
                let inst = instance_for_target(&t, &target);
                let sv = compute_svector(&t, &inst);
                let choice = scr.get_plan(&inst, &sv, &engine);
                let opt = engine.optimize_untracked(&sv);
                worst = worst.max(engine.recost_untracked(&choice.plan, &sv) / opt.cost);
            }
        }
        assert!(
            worst <= 2.0 * 1.001,
            "indexed path broke λ-optimality: {worst}"
        );
    }

    #[test]
    fn candidate_orders_all_preserve_guarantee() {
        let t = fixture();
        for order in [
            CandidateOrder::GlAscending,
            CandidateOrder::UsageDescending,
            CandidateOrder::AreaDescending,
        ] {
            let engine = QueryEngine::new(Arc::clone(&t));
            let mut cfg = ScrConfig::new(1.5).unwrap();
            cfg.candidate_order = order;
            cfg.spatial_index_threshold = usize::MAX; // ordering applies to the linear path
            let mut scr = Scr::with_config(cfg).unwrap();
            let mut worst = 1.0f64;
            for i in 0..8 {
                for j in 0..8 {
                    let target = [0.02 + 0.12 * i as f64, 0.02 + 0.12 * j as f64];
                    let inst = instance_for_target(&t, &target);
                    let sv = compute_svector(&t, &inst);
                    let choice = scr.get_plan(&inst, &sv, &engine);
                    let opt = engine.optimize_untracked(&sv);
                    worst = worst.max(engine.recost_untracked(&choice.plan, &sv) / opt.cost);
                }
            }
            assert!(worst <= 1.5 * 1.001, "{order:?} broke the bound: {worst}");
        }
    }

    #[test]
    fn max_recost_candidates_caps_recosts() {
        let t = fixture();
        let engine = QueryEngine::new(t);
        let mut cfg = ScrConfig::new(1.01).unwrap(); // tight λ forces many cost checks
        cfg.max_recost_candidates = 3;
        let mut scr = Scr::with_config(cfg).unwrap();
        for i in 1..=30 {
            let _ = run_point(&mut scr, &engine, &[(0.03 * i as f64).min(1.0), 0.5]);
        }
        assert!(scr.stats().max_recosts_per_getplan <= 3);
    }
}
