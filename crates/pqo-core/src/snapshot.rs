//! Snapshot-published read path: [`CacheSnapshot`] + [`CacheWriter`].
//!
//! SCR's common case is a cheap cache *read* — a selectivity check plus at
//! most a few Recosts (Sections 5.3, 6.2). Guarding that read path with a
//! `RwLock<Scr>` (the previous serving design) still makes every reader
//! block whenever `manageCache` holds the write lock, and writer-priority
//! `RwLock` implementations stall readers even while a writer merely
//! *waits*. This module removes the reader/writer interaction entirely, in
//! the spirit of treating optimizer state as republished snapshots
//! (Liu & Ives, "Enabling Incremental Query Re-Optimization"):
//!
//! * [`CacheSnapshot`] — an immutable view of everything `getPlan`'s cached
//!   path touches: the configuration knobs, the plan list, the instance
//!   list, the spatial index and the dynamic-λ accumulators. Readers load
//!   the current snapshot (an `Arc` clone) and run the selectivity check,
//!   spatial-index lookup and cost check against it with **no** lock held.
//! * [`CacheWriter`] — the writer side: it owns the canonical [`Scr`] and
//!   applies `manageCache` / evictions against it, then publishes the next
//!   snapshot. Publishing clones the cache *shallowly* (`Arc`-shared plans
//!   and instance entries; the spatial index is a
//!   [`crate::spatial::ShardedLogSelIndex`], so cloning it copies shard
//!   pointers and only the shard the writer touches next is deep-copied
//!   via `Arc::make_mut` — untouched shards stay `Arc::ptr_eq` across
//!   consecutive generations and publish cost is O(n/shards) amortized).
//!   Each publication is timed into the `publishes`/`publish_nanos`
//!   counters of [`crate::scr::ScrStats`].
//! * [`SnapshotCell`] — the `ArcCell`-style publication point: a
//!   `Mutex<Arc<CacheSnapshot>>` whose `load()` clones the `Arc` under a
//!   lock held for a few instructions. It is lock-free in practice: the
//!   cell lock is never held across `manageCache`, an optimizer call or an
//!   index rebuild, so a reader can only ever wait for another pointer
//!   clone/swap. (Std-only; an `arc-swap` dependency would make `load()`
//!   truly wait-free but the workspace builds offline.)
//!
//! # Consistency
//!
//! A snapshot is built complete under the writer lock and published with a
//! single atomic pointer swap, so a reader observes either the cache
//! entirely before or entirely after a mutation — never a half-applied
//! eviction or compaction (the Figure 5 invariants hold in every published
//! generation; `tests/snapshot_stress.rs` asserts this under an 8-thread
//! storm).
//!
//! # Decision equivalence
//!
//! [`CacheSnapshot::try_cached_plan`] executes the *same* [`ReadView`] code
//! as [`Scr::try_cached_plan`] over a structurally identical cache, so the
//! snapshot reader's reuse/optimize decisions are byte-identical to the
//! sequential technique's for any given cache state.
//!
//! # Counter identity
//!
//! Instance entries are `Arc`-shared across generations
//! ([`crate::cache::PlanCache`] clones are shallow), so usage counts bumped
//! through an *old* snapshot remain visible to the writer's LFU eviction,
//! and Appendix G violation flags set by any reader disable the entry in
//! every generation. Technique counters ([`crate::scr::ScrStats`]) live in
//! one shared cell set for the same reason.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use pqo_optimizer::engine::{OptimizedPlan, QueryEngine};
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::svector::SVector;

use crate::cache::PlanCache;
use crate::scr::{GetPlanScratch, ReadView, Scr, ScrConfig, ScrStatCells, ScrStats};
use crate::PlanChoice;

/// How many published generations the writer retains as delta bases for
/// [`crate::replication`]: a subscriber whose acknowledged generation is
/// within this window receives a per-shard delta; older (or unknown)
/// subscribers fall back to a full snapshot record.
pub const GENERATION_LOG_DEPTH: usize = 8;

/// An immutable, `Arc`-published view of one SCR cache generation: plan
/// list, instance list, spatial index, per-entry sub-optimality `S` values
/// and the dynamic-λ accumulators — everything the cached `getPlan` path
/// reads. Each generation carries the monotonic [`CacheSnapshot::generation`]
/// stamp its writer published it under, making the publication stream a
/// replicable log rather than a private pointer swap.
#[derive(Debug)]
pub struct CacheSnapshot {
    config: ScrConfig,
    cache: PlanCache,
    stats: Arc<ScrStatCells>,
    log_cost_sum: f64,
    opt_count: u64,
    generation: u64,
}

impl CacheSnapshot {
    /// Capture the current state of `scr` (shallow cache clone) as
    /// generation 0. Writers stamp real generations via
    /// [`CacheSnapshot::capture_at`].
    pub fn capture(scr: &Scr) -> Self {
        Self::capture_at(scr, 0)
    }

    /// Capture the current state of `scr` under an explicit generation
    /// stamp.
    pub fn capture_at(scr: &Scr, generation: u64) -> Self {
        CacheSnapshot {
            config: scr.config().clone(),
            cache: scr.cache().clone(),
            stats: Arc::clone(scr.stat_cells()),
            log_cost_sum: scr.lambda_accumulators().0,
            opt_count: scr.lambda_accumulators().1,
            generation,
        }
    }

    /// The monotonic generation this snapshot was published under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn view(&self) -> ReadView<'_> {
        ReadView {
            config: &self.config,
            cache: &self.cache,
            stats: &self.stats,
            log_cost_sum: self.log_cost_sum,
            opt_count: self.opt_count,
        }
    }

    /// The cache-only part of `getPlan` against this generation:
    /// selectivity check, then cost check — no lock, no cache mutation, no
    /// optimizer call. Runs the identical code path as
    /// [`Scr::try_cached_plan`]. Allocates a fresh scratch per call; hot
    /// callers should prefer [`CacheSnapshot::try_cached_plan_with`].
    pub fn try_cached_plan(&self, sv: &SVector, engine: &QueryEngine) -> Option<PlanChoice> {
        self.view()
            .try_cached_plan(sv, engine, &mut GetPlanScratch::default())
    }

    /// [`CacheSnapshot::try_cached_plan`] with a caller-owned
    /// [`GetPlanScratch`]: the cost check's memo table and recost base
    /// derivation survive across calls (and across snapshot generations —
    /// the scratch depends only on the template and cost model, not the
    /// cache contents), so the hit path allocates nothing.
    pub fn try_cached_plan_with(
        &self,
        sv: &SVector,
        engine: &QueryEngine,
        scratch: &mut GetPlanScratch,
    ) -> Option<PlanChoice> {
        self.view().try_cached_plan(sv, engine, scratch)
    }

    /// The configuration this generation was published under.
    pub fn config(&self) -> &ScrConfig {
        &self.config
    }

    /// The frozen plan cache of this generation.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Point-in-time technique counters (shared with the writer).
    pub fn stats(&self) -> ScrStats {
        self.stats.snapshot()
    }

    /// Tally one batched serving frame of `len` instances against the
    /// shared counter cells (visible through every generation).
    pub(crate) fn record_batch(&self, len: u64) {
        self.stats.record_batch(len);
    }

    /// Tally one published-generation re-load taken after a batch
    /// miss→publish.
    pub(crate) fn record_snapshot_reload(&self) {
        self.stats.record_snapshot_reload();
    }

    /// The dynamic-λ accumulators `(Σ log C, optimized count)` frozen into
    /// this generation (used by [`crate::persist`]).
    pub fn lambda_accumulators(&self) -> (f64, u64) {
        (self.log_cost_sum, self.opt_count)
    }
}

/// The publication point: readers `load()` the current generation, the
/// writer `store()`s the next one. The mutex is held only for an `Arc`
/// clone or pointer swap — never across cache maintenance — so a reader
/// never blocks behind `manageCache`.
#[derive(Debug)]
pub struct SnapshotCell {
    current: Mutex<Arc<CacheSnapshot>>,
}

impl SnapshotCell {
    /// Cell holding the given initial generation.
    pub fn new(snapshot: Arc<CacheSnapshot>) -> Self {
        SnapshotCell {
            current: Mutex::new(snapshot),
        }
    }

    /// The current generation (an `Arc` clone; a few instructions under the
    /// cell lock).
    pub fn load(&self) -> Arc<CacheSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot cell poisoned"))
    }

    /// Publish the next generation (atomic pointer swap).
    pub fn store(&self, snapshot: Arc<CacheSnapshot>) {
        *self.current.lock().expect("snapshot cell poisoned") = snapshot;
    }
}

/// The writer side of the split: owns the canonical [`Scr`], applies every
/// structural mutation against it, and publishes the next [`CacheSnapshot`]
/// into the paired [`SnapshotCell`]. Callers serialize writers with a
/// `Mutex<CacheWriter>`; readers never take that mutex.
///
/// Every publication stamps a monotonic generation id and is appended to a
/// bounded **generation log** (the last [`GENERATION_LOG_DEPTH`] published
/// `Arc`s), so [`crate::replication`] can encode a publish as a delta
/// against any recently-acknowledged base generation — untouched plans and
/// instance entries ship as references, not bytes.
#[derive(Debug)]
pub struct CacheWriter {
    scr: Scr,
    /// Generation stamp of the most recent publication.
    generation: u64,
    /// Recently published generations, oldest first (delta bases).
    log: VecDeque<Arc<CacheSnapshot>>,
}

impl CacheWriter {
    /// Wrap an SCR state and publish its initial snapshot as generation 0.
    pub fn new(scr: Scr) -> (Self, Arc<CacheSnapshot>) {
        Self::at_generation(scr, 0)
    }

    /// Wrap an SCR state whose initial snapshot continues an existing
    /// generation lineage (e.g. a warm restart from a persisted generation,
    /// so a replica can subscribe with catch-up from where it left off).
    pub fn at_generation(scr: Scr, generation: u64) -> (Self, Arc<CacheSnapshot>) {
        let snapshot = Arc::new(CacheSnapshot::capture_at(&scr, generation));
        let mut log = VecDeque::with_capacity(GENERATION_LOG_DEPTH);
        log.push_back(Arc::clone(&snapshot));
        (
            CacheWriter {
                scr,
                generation,
                log,
            },
            snapshot,
        )
    }

    /// The canonical state (read-only; for stats, persistence, tests).
    pub fn scr(&self) -> &Scr {
        &self.scr
    }

    /// The generation stamp of the most recent publication.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The most recently published generation (head of the log).
    pub fn latest_snapshot(&self) -> Arc<CacheSnapshot> {
        Arc::clone(self.log.back().expect("generation log never empty"))
    }

    /// A recently-published generation still retained as a delta base, if
    /// `generation` is within the log window.
    pub fn logged_snapshot(&self, generation: u64) -> Option<Arc<CacheSnapshot>> {
        self.log
            .iter()
            .find(|s| s.generation() == generation)
            .cloned()
    }

    /// `manageCache` for a fresh optimization, then publish the resulting
    /// generation into `cell`. Returns the plan-count delta
    /// `(before, after)` so callers keep O(1) global-budget totals exact.
    pub fn manage_cache_entry(
        &mut self,
        sv: &SVector,
        opt: OptimizedPlan,
        engine: &QueryEngine,
        cell: &SnapshotCell,
    ) -> (usize, usize) {
        let before = self.scr.cache().num_plans();
        self.scr.manage_cache_entry(sv, opt, engine);
        let after = self.scr.cache().num_plans();
        self.publish(cell);
        (before, after)
    }

    /// Capture + install the next generation (stamping the next monotonic
    /// generation id and appending it to the generation log), timing it
    /// into the shared `publishes`/`publish_nanos` counters.
    fn publish(&mut self, cell: &SnapshotCell) {
        let t0 = std::time::Instant::now();
        self.generation += 1;
        let snapshot = Arc::new(CacheSnapshot::capture_at(&self.scr, self.generation));
        self.log.push_back(Arc::clone(&snapshot));
        while self.log.len() > GENERATION_LOG_DEPTH {
            self.log.pop_front();
        }
        cell.store(snapshot);
        self.scr
            .stat_cells()
            .record_publish(t0.elapsed().as_nanos() as u64);
    }

    /// Replace the canonical state with an externally decoded generation
    /// (the replica apply path of [`crate::replication`]): the incoming
    /// `scr` adopts this writer's shared stat cells (so hit/publish tallies
    /// survive across applied generations), and the snapshot is published
    /// under the *record's* generation stamp rather than a locally minted
    /// one — a replica's published generation always equals the primary
    /// generation it replayed.
    pub fn install_generation(&mut self, mut scr: Scr, generation: u64, cell: &SnapshotCell) {
        let t0 = std::time::Instant::now();
        scr.adopt_stat_cells(Arc::clone(self.scr.stat_cells()));
        self.scr = scr;
        self.generation = generation;
        let snapshot = Arc::new(CacheSnapshot::capture_at(&self.scr, generation));
        self.log.push_back(Arc::clone(&snapshot));
        while self.log.len() > GENERATION_LOG_DEPTH {
            self.log.pop_front();
        }
        cell.store(snapshot);
        self.scr
            .stat_cells()
            .record_publish(t0.elapsed().as_nanos() as u64);
    }

    /// Evict one plan (global-budget victim), then publish the resulting
    /// generation. Returns the `(before, after)` plan-count delta.
    pub fn evict_plan(&mut self, fp: PlanFingerprint, cell: &SnapshotCell) -> (usize, usize) {
        let before = self.scr.cache().num_plans();
        if self.scr.cache().contains_plan(fp) {
            self.scr.evict_plan(fp);
        }
        let after = self.scr.cache().num_plans();
        self.publish(cell);
        (before, after)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_template;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};

    #[test]
    fn snapshot_decisions_match_sequential_scr() {
        // Drive the same seeded sequence through (a) the sequential Scr and
        // (b) a snapshot-published writer whose readers decide from the
        // loaded generation. Decisions must be byte-identical.
        let t = fixture_template("snap_equiv");
        let engine_a = QueryEngine::new(std::sync::Arc::clone(&t));
        let engine_b = QueryEngine::new(std::sync::Arc::clone(&t));
        let mut scr = Scr::new(1.5).unwrap();
        let (mut writer, first) = CacheWriter::new(Scr::new(1.5).unwrap());
        let cell = SnapshotCell::new(first);

        for i in 0..80 {
            let target = [
                0.02 + 0.012 * (i % 73) as f64,
                0.03 + 0.011 * ((i * 7) % 67) as f64,
            ];
            let inst = instance_for_target(&t, &target);
            let sv = compute_svector(&t, &inst);

            let a = match scr.try_cached_plan(&sv, &engine_a) {
                Some(c) => c,
                None => {
                    let opt = engine_a.optimize(&sv);
                    let plan = std::sync::Arc::clone(&opt.plan);
                    scr.manage_cache_entry(&sv, opt, &engine_a);
                    PlanChoice {
                        plan,
                        optimized: true,
                    }
                }
            };

            let snap = cell.load();
            let b = match snap.try_cached_plan(&sv, &engine_b) {
                Some(c) => c,
                None => {
                    let opt = engine_b.optimize(&sv);
                    let plan = std::sync::Arc::clone(&opt.plan);
                    writer.manage_cache_entry(&sv, opt, &engine_b, &cell);
                    PlanChoice {
                        plan,
                        optimized: true,
                    }
                }
            };

            assert_eq!(a.optimized, b.optimized, "instance {i} diverged");
            assert_eq!(
                a.plan.fingerprint(),
                b.plan.fingerprint(),
                "instance {i} served different plans"
            );
        }
        assert_eq!(
            scr.cache().num_plans(),
            cell.load().cache().num_plans(),
            "final caches diverged"
        );
        assert_eq!(
            scr.cache().num_instances(),
            cell.load().cache().num_instances()
        );
    }

    #[test]
    fn old_generations_stay_consistent_after_eviction() {
        let t = fixture_template("snap_evict");
        let engine = QueryEngine::new(std::sync::Arc::clone(&t));
        let mut cfg = ScrConfig::new(1.05).unwrap();
        cfg.lambda_r = 0.0;
        let (mut writer, first) = CacheWriter::new(Scr::with_config(cfg).unwrap());
        let cell = SnapshotCell::new(first);
        let mut generations = vec![cell.load()];
        for i in 1..=12 {
            let target = [0.08 * i as f64, 0.08 * i as f64];
            let inst = instance_for_target(&t, &target);
            let sv = compute_svector(&t, &inst);
            if cell.load().try_cached_plan(&sv, &engine).is_none() {
                let opt = engine.optimize(&sv);
                writer.manage_cache_entry(&sv, opt, &engine, &cell);
            }
            generations.push(cell.load());
        }
        // Evict every plan; previously published generations must remain
        // internally consistent (their instance entries still point at
        // plans frozen in the same generation).
        let fps: Vec<_> = cell
            .load()
            .cache()
            .plans()
            .map(|p| p.fingerprint())
            .collect();
        for fp in fps {
            writer.evict_plan(fp, &cell);
        }
        assert_eq!(cell.load().cache().num_plans(), 0);
        for (gen, snap) in generations.iter().enumerate() {
            assert!(
                snap.cache().check_invariants().is_ok(),
                "generation {gen} became inconsistent after eviction"
            );
        }
    }

    #[test]
    fn consecutive_generations_share_untouched_index_shards() {
        let t = fixture_template("snap_share");
        let engine = QueryEngine::new(std::sync::Arc::clone(&t));
        let mut cfg = ScrConfig::new(1.02).unwrap();
        cfg.lambda_r = 0.0;
        let (mut writer, first) = CacheWriter::new(Scr::with_config(cfg).unwrap());
        let cell = SnapshotCell::new(first);
        // Seed enough instances that several shards hold points.
        for i in 0..60 {
            let target = [
                0.02 + 0.015 * (i % 31) as f64,
                0.03 + 0.013 * ((i * 7) % 29) as f64,
            ];
            let inst = instance_for_target(&t, &target);
            let sv = compute_svector(&t, &inst);
            if cell.load().try_cached_plan(&sv, &engine).is_none() {
                let opt = engine.optimize(&sv);
                writer.manage_cache_entry(&sv, opt, &engine, &cell);
            }
        }
        let publishes_before = cell.load().stats().publishes;

        // A publication with no index mutation (evicting a plan that is no
        // longer cached) must share *every* shard with the previous
        // generation.
        let fp = cell
            .load()
            .cache()
            .plans()
            .map(|p| p.fingerprint())
            .min()
            .expect("seeded cache has plans");
        writer.evict_plan(fp, &cell);
        let gen_a = cell.load();
        writer.evict_plan(fp, &cell); // already gone: publish only
        let gen_b = cell.load();
        let tokens_a = gen_a.cache().spatial_index().unwrap().shard_tokens();
        let tokens_b = gen_b.cache().spatial_index().unwrap().shard_tokens();
        assert_eq!(
            tokens_a, tokens_b,
            "a mutation-free publication must share all shards"
        );

        // One fresh insert must replace exactly the shard that absorbed it.
        let inst = instance_for_target(&t, &[0.91, 0.87]);
        let sv = compute_svector(&t, &inst);
        let opt = engine.optimize(&sv);
        writer.manage_cache_entry(&sv, opt, &engine, &cell);
        let gen_c = cell.load();
        let tokens_c = gen_c.cache().spatial_index().unwrap().shard_tokens();
        let changed = tokens_b
            .iter()
            .zip(&tokens_c)
            .filter(|(b, c)| b != c)
            .count();
        assert_eq!(
            changed, 1,
            "one insert must deep-copy exactly one shard (got {changed})"
        );

        // Publication cost counters advanced with each publish.
        let stats = gen_c.stats();
        assert_eq!(stats.publishes, publishes_before + 3);
        assert!(stats.publishes > 0 && stats.publish_nanos > 0);
    }

    #[test]
    fn usage_bumps_through_old_snapshot_reach_the_writer() {
        let t = fixture_template("snap_usage");
        let engine = QueryEngine::new(std::sync::Arc::clone(&t));
        let (mut writer, first) = CacheWriter::new(Scr::new(2.0).unwrap());
        let cell = SnapshotCell::new(first);
        let inst = instance_for_target(&t, &[0.2, 0.2]);
        let sv = compute_svector(&t, &inst);
        let opt = engine.optimize(&sv);
        writer.manage_cache_entry(&sv, opt, &engine, &cell);
        let old = cell.load();
        // Publish a fresh generation on top (a no-op re-optimize extends
        // the instance list).
        let opt2 = engine.optimize(&sv);
        writer.manage_cache_entry(&sv, opt2, &engine, &cell);
        // Serve through the *old* generation: the usage bump must be
        // visible to the writer's canonical state (shared entry identity).
        let before: u64 = writer.scr().cache().instances()[0].usage();
        assert!(old.try_cached_plan(&sv, &engine).is_some());
        let after: u64 = writer.scr().cache().instances()[0].usage();
        assert_eq!(after, before + 1, "usage bump lost across generations");
    }
}
