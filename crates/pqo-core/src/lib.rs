//! The paper's contribution: online parametric query optimization with
//! guarantees.
//!
//! Given a parameterized query and a tolerable cost sub-optimality bound
//! `λ ≥ 1`, an online PQO technique decides *per query instance* whether to
//! reuse a cached plan or invoke the optimizer. Three metrics matter
//! (Section 2.1):
//!
//! 1. **cost sub-optimality** — `SO(q) = Cost(P(q), q) / Cost(Popt(q), q)`,
//!    summarized as `MSO` (max) and `TotalCostRatio` (cost-weighted mean);
//! 2. **optimization overheads** — `numOpt`, the number of optimizer calls;
//! 3. **number of plans cached** — `numPlans`.
//!
//! [`scr::Scr`] implements the paper's SCR technique (Selectivity check,
//! Cost check, Redundancy check) with the λ-optimality guarantee under the
//! Bounded Cost Growth assumption. [`baselines`] implements every technique
//! the paper compares against (Table 2): Optimize-Always, Optimize-Once,
//! PCM, Ellipse, Density and Ranges. [`runner`] executes a technique over a
//! workload sequence against a ground-truth oracle and produces
//! [`metrics::RunResult`]s.

pub mod baselines;
pub mod cache;
pub mod concurrent;
pub mod manager;
pub mod metrics;
pub mod persist;
pub mod policy;
pub mod replication;
pub mod runner;
pub mod scr;
pub mod service;
pub mod snapshot;
pub mod spatial;

pub use policy::PolicyId;
pub use pqo_optimizer::engine;
pub use pqo_optimizer::error::PqoError;
pub use scr::Scr;
pub use service::PqoService;
pub use snapshot::{CacheSnapshot, CacheWriter, SnapshotCell};

use std::sync::Arc;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::Plan;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

/// The plan an online technique selected for one query instance.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The selected plan.
    pub plan: Arc<Plan>,
    /// Whether a full optimizer call was made for this instance.
    pub optimized: bool,
}

/// An online PQO technique: the `getPlan` interface of Figure 2.
///
/// Implementations receive the instance, its pre-computed selectivity vector
/// and the engine (for optimizer / Recost calls), and must return a plan for
/// every instance. Cache management (`manageCache`) is internal to the
/// implementation.
pub trait OnlinePqo {
    /// Display name, e.g. `"SCR2"` or `"PCM1.1"`.
    fn name(&self) -> String;

    /// Choose a plan for the incoming instance `qc`. The engine is shared
    /// (`&QueryEngine` — its APIs are interior-mutable), so techniques never
    /// require exclusive optimizer access.
    fn get_plan(
        &mut self,
        instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice;

    /// Number of plans currently cached.
    fn plans_cached(&self) -> usize;

    /// Maximum number of plans ever cached simultaneously (the paper's
    /// `numPlans` metric).
    fn max_plans_cached(&self) -> usize;
}

/// Shared test fixtures: the template shapes that the scr / manager /
/// concurrent / persist / service tests all exercise, built once here
/// instead of per-module copies.
#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;

    use pqo_optimizer::engine::QueryEngine;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};
    use pqo_optimizer::template::{QueryInstance, QueryTemplate, RangeOp, TemplateBuilder};

    use crate::{OnlinePqo, PlanChoice};

    /// The canonical two-dimensional join fixture (orders ⋈ lineitem with a
    /// range parameter on each side) used across the crate's tests.
    pub fn fixture_template(name: &str) -> Arc<QueryTemplate> {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new(name);
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        b.build()
    }

    /// Single-relation fixture with two range parameters on `table`, for
    /// multi-template tests that want distinct per-template plan spaces.
    pub fn single_rel_template(
        name: &str,
        table: &str,
        col_a: &str,
        col_b: &str,
    ) -> Arc<QueryTemplate> {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new(name);
        let r = b.relation(cat.expect_table(table), "t");
        b.param(r, col_a, RangeOp::Le);
        b.param(r, col_b, RangeOp::Le);
        b.build()
    }

    /// Instance of `template` placed at the given selectivity target.
    pub fn inst_at(template: &Arc<QueryTemplate>, target: &[f64]) -> QueryInstance {
        instance_for_target(template, target)
    }

    /// Drive one `get_plan` through a technique at a selectivity target.
    pub fn run_point(
        technique: &mut dyn OnlinePqo,
        engine: &QueryEngine,
        target: &[f64],
    ) -> PlanChoice {
        let t = Arc::clone(engine.template());
        let inst = instance_for_target(&t, target);
        let sv = compute_svector(&t, &inst);
        technique.get_plan(&inst, &sv, engine)
    }
}
