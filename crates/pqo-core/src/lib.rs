//! The paper's contribution: online parametric query optimization with
//! guarantees.
//!
//! Given a parameterized query and a tolerable cost sub-optimality bound
//! `λ ≥ 1`, an online PQO technique decides *per query instance* whether to
//! reuse a cached plan or invoke the optimizer. Three metrics matter
//! (Section 2.1):
//!
//! 1. **cost sub-optimality** — `SO(q) = Cost(P(q), q) / Cost(Popt(q), q)`,
//!    summarized as `MSO` (max) and `TotalCostRatio` (cost-weighted mean);
//! 2. **optimization overheads** — `numOpt`, the number of optimizer calls;
//! 3. **number of plans cached** — `numPlans`.
//!
//! [`scr::Scr`] implements the paper's SCR technique (Selectivity check,
//! Cost check, Redundancy check) with the λ-optimality guarantee under the
//! Bounded Cost Growth assumption. [`baselines`] implements every technique
//! the paper compares against (Table 2): Optimize-Always, Optimize-Once,
//! PCM, Ellipse, Density and Ranges. [`runner`] executes a technique over a
//! workload sequence against a ground-truth oracle and produces
//! [`metrics::RunResult`]s.

pub mod baselines;
pub mod cache;
pub mod concurrent;
pub mod manager;
pub mod metrics;
pub mod persist;
pub mod runner;
pub mod scr;
pub mod spatial;

pub use pqo_optimizer::engine;
pub use scr::Scr;

use std::sync::Arc;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::Plan;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

/// The plan an online technique selected for one query instance.
#[derive(Debug, Clone)]
pub struct PlanChoice {
    /// The selected plan.
    pub plan: Arc<Plan>,
    /// Whether a full optimizer call was made for this instance.
    pub optimized: bool,
}

/// An online PQO technique: the `getPlan` interface of Figure 2.
///
/// Implementations receive the instance, its pre-computed selectivity vector
/// and the engine (for optimizer / Recost calls), and must return a plan for
/// every instance. Cache management (`manageCache`) is internal to the
/// implementation.
pub trait OnlinePqo {
    /// Display name, e.g. `"SCR2"` or `"PCM1.1"`.
    fn name(&self) -> String;

    /// Choose a plan for the incoming instance `qc`.
    fn get_plan(
        &mut self,
        instance: &QueryInstance,
        sv: &SVector,
        engine: &mut QueryEngine,
    ) -> PlanChoice;

    /// Number of plans currently cached.
    fn plans_cached(&self) -> usize;

    /// Maximum number of plans ever cached simultaneously (the paper's
    /// `numPlans` metric).
    fn max_plans_cached(&self) -> usize;
}
