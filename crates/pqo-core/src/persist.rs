//! Plan-cache persistence.
//!
//! A production plan cache survives restarts: the paper's engine keeps
//! cached plans (with their `shrunkenMemo`s) in SQL Server's plan cache,
//! which is warm across sessions. This module snapshots an [`Scr`]'s state
//! — plan list (Appendix B compact encoding), instance list and the
//! dynamic-λ accumulators — into a small versioned binary blob and restores
//! it, so a fresh process resumes with the inference regions it had already
//! learned instead of re-optimizing its way back.
//!
//! The format is deliberately dependency-free: a magic header, then
//! length-prefixed sections. Restoring validates the magic, the version and
//! every structural invariant (entries must reference listed plans).

use std::io::{self, Read, Write};
use std::sync::Arc;

use pqo_optimizer::compact::CompactPlan;
use pqo_optimizer::error::PqoError;
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::svector::SVector;

use crate::cache::{InstanceEntry, PlanCache};
use crate::policy::PolicyId;
use crate::scr::{Scr, ScrConfig};
use crate::snapshot::CacheSnapshot;

/// Version 1 header: no generation stamp (read-compatible, written by
/// releases that predate the replication generation log).
const MAGIC_V1: &[u8; 8] = b"PQOCACH1";
/// Version 2 header: a `u64` generation stamp follows the magic, so warm
/// restarts resume the publication lineage (and replicas can subscribe
/// with catch-up from the generation they persisted).
const MAGIC_V2: &[u8; 8] = b"PQOCACH2";
/// Version 3 header: a one-byte [`PolicyId`] tag follows the generation
/// stamp. Cache contents are policy-shaped (which plans get admitted, which
/// entries survive the redundancy check), so a warm restart under a
/// different policy must refuse the blob instead of silently serving from a
/// cache another policy built.
const MAGIC_V3: &[u8; 8] = b"PQOCACH3";
/// Shared prefix of every format version; the trailing byte is the ASCII
/// version digit.
const MAGIC_PREFIX: &[u8; 7] = b"PQOCACH";

/// Errors raised while restoring a snapshot.
#[derive(Debug)]
pub enum RestoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a snapshot at all (unrecognized magic).
    BadHeader,
    /// A snapshot in a recognizably newer (or unknown) format version than
    /// this reader supports — the on-disk/wire format is a cross-process
    /// contract, so version skew gets its own typed error instead of being
    /// folded into [`RestoreError::BadHeader`].
    UnsupportedVersion {
        /// The ASCII version byte found in the header.
        version: u8,
    },
    /// Structurally invalid snapshot (truncated, dangling references, or
    /// non-finite numbers).
    Corrupt(String),
    /// The snapshot was produced under a different plan-selection policy
    /// than the restoring configuration runs (v3 headers carry the policy
    /// tag; v1/v2 blobs predate the policy layer and read as SCR).
    PolicyMismatch {
        /// The policy the caller's [`ScrConfig`] is configured with.
        expected: PolicyId,
        /// The policy tag found in the snapshot header.
        found: PolicyId,
    },
    /// The caller-supplied [`ScrConfig`] is itself invalid.
    Config(PqoError),
}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// Collapse a restore failure into the workspace-wide error type, so
/// serving layers surface one error enum. Configuration errors pass
/// through unchanged; I/O and format errors become [`PqoError::Persist`].
impl From<RestoreError> for PqoError {
    fn from(e: RestoreError) -> Self {
        match e {
            RestoreError::Config(inner) => inner,
            RestoreError::PolicyMismatch { expected, found } => PqoError::PolicyMismatch {
                expected: expected.name().to_string(),
                found: found.name().to_string(),
            },
            other => PqoError::Persist {
                message: other.to_string(),
            },
        }
    }
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "i/o error: {e}"),
            RestoreError::BadHeader => write!(f, "not a pqo cache snapshot (bad magic/version)"),
            RestoreError::UnsupportedVersion { version } => write!(
                f,
                "unsupported snapshot format version {:?} (this reader understands v1/v2/v3)",
                char::from(*version)
            ),
            RestoreError::PolicyMismatch { expected, found } => write!(
                f,
                "snapshot was produced under policy `{found}` but this configuration runs `{expected}`"
            ),
            RestoreError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
            RestoreError::Config(e) => write!(f, "invalid restore configuration: {e}"),
        }
    }
}

impl std::error::Error for RestoreError {}

fn w_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64(w: &mut impl Write, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f64(r: &mut impl Read) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

/// Snapshot `scr`'s cache state into `w`.
///
/// The configuration itself is *not* persisted — the caller restores with
/// an explicit [`ScrConfig`], since λ policy is an operator decision, not
/// cache state. The plan-selection [`PolicyId`] *is* stamped into the
/// header, because cache contents are policy-shaped: restore refuses a
/// blob written under a different policy.
pub fn save(scr: &Scr, w: &mut impl Write) -> io::Result<()> {
    let (log_cost_sum, opt_count) = scr.lambda_accumulators();
    save_parts(
        scr.cache(),
        log_cost_sum,
        opt_count,
        0,
        scr.config().policy,
        w,
    )
}

/// Snapshot a published [`CacheSnapshot`] generation into `w`, carrying its
/// generation stamp (v2 header) so a warm restart resumes the publication
/// lineage.
///
/// Byte-identical to [`save`] on the same cache state at generation 0: a
/// serving layer can persist straight from its current published generation
/// without taking the writer lock (the snapshot is immutable, so the blob
/// is internally consistent even while writers keep publishing).
pub fn save_snapshot(snapshot: &CacheSnapshot, w: &mut impl Write) -> io::Result<()> {
    let (log_cost_sum, opt_count) = snapshot.lambda_accumulators();
    save_parts(
        snapshot.cache(),
        log_cost_sum,
        opt_count,
        snapshot.generation(),
        snapshot.config().policy,
        w,
    )
}

pub(crate) fn save_parts(
    cache: &PlanCache,
    log_cost_sum: f64,
    opt_count: u64,
    generation: u64,
    policy: PolicyId,
    w: &mut impl Write,
) -> io::Result<()> {
    w.write_all(MAGIC_V3)?;
    w_u64(w, generation)?;
    w.write_all(&[policy.as_tag()])?;

    // Plan list, ordered by fingerprint for determinism.
    let mut plans: Vec<_> = cache.plans().collect();
    plans.sort_by_key(|p| p.fingerprint());
    w_u32(w, plans.len() as u32)?;
    let mut fp_order: Vec<PlanFingerprint> = Vec::with_capacity(plans.len());
    for p in &plans {
        let enc = CompactPlan::encode(p);
        w_u32(w, enc.bytes_len() as u32)?;
        w.write_all(enc.as_bytes())?;
        fp_order.push(p.fingerprint());
    }

    // Instance list.
    let entries = cache.instances();
    w_u32(w, entries.len() as u32)?;
    for e in entries {
        let plan_idx = fp_order
            .iter()
            .position(|&fp| fp == e.plan)
            .expect("entry references listed plan") as u32;
        w_u32(w, plan_idx)?;
        w_u32(w, e.svector.len() as u32)?;
        for &s in &e.svector.0 {
            w_f64(w, s)?;
        }
        w_f64(w, e.opt_cost)?;
        w_f64(w, e.sub_opt)?;
        w_u64(w, e.usage())?;
        w.write_all(&[u8::from(e.violation_detected())])?;
    }

    // Dynamic-λ accumulators.
    w_f64(w, log_cost_sum)?;
    w_u64(w, opt_count)?;
    Ok(())
}

/// Restore a snapshot produced by [`save`] into a fresh [`Scr`] with the
/// given configuration, discarding the generation stamp.
pub fn restore(config: ScrConfig, r: &mut impl Read) -> Result<Scr, RestoreError> {
    restore_with_generation(config, r).map(|(scr, _)| scr)
}

/// Restore a snapshot together with the generation it was published under
/// (0 for v1 blobs, which predate generation stamps). Warm restarts feed
/// the generation back into the serving layer so replica subscriptions can
/// catch up from it instead of re-shipping the full cache.
pub fn restore_with_generation(
    config: ScrConfig,
    r: &mut impl Read,
) -> Result<(Scr, u64), RestoreError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let (generation, policy) = if &magic == MAGIC_V3 {
        let generation = r_u64(r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let policy = PolicyId::from_tag(tag[0])
            .ok_or_else(|| RestoreError::Corrupt(format!("unknown policy tag {}", tag[0])))?;
        (generation, policy)
    } else if &magic == MAGIC_V2 {
        // v1/v2 blobs predate the policy layer; every cache back then was
        // SCR-built, so they read as SCR.
        (r_u64(r)?, PolicyId::Scr)
    } else if &magic == MAGIC_V1 {
        (0, PolicyId::Scr)
    } else if magic[..7] == MAGIC_PREFIX[..] && magic[7].is_ascii_digit() {
        return Err(RestoreError::UnsupportedVersion { version: magic[7] });
    } else {
        return Err(RestoreError::BadHeader);
    };
    if policy != config.policy {
        return Err(RestoreError::PolicyMismatch {
            expected: config.policy,
            found: policy,
        });
    }

    let plan_count = r_u32(r)? as usize;
    if plan_count > 1_000_000 {
        return Err(RestoreError::Corrupt(format!(
            "implausible plan count {plan_count}"
        )));
    }
    let mut plans = Vec::with_capacity(plan_count);
    for i in 0..plan_count {
        let len = r_u32(r)? as usize;
        if len == 0 || len > 1 << 20 {
            return Err(RestoreError::Corrupt(format!("plan {i} has length {len}")));
        }
        let mut bytes = vec![0u8; len];
        r.read_exact(&mut bytes)?;
        let plan = CompactPlan::from_bytes(bytes.into_boxed_slice())
            .checked_decode()
            .map_err(|e| RestoreError::Corrupt(format!("plan {i}: {e}")))?;
        plans.push(Arc::new(plan));
    }

    let entry_count = r_u32(r)? as usize;
    if entry_count > 100_000_000 {
        return Err(RestoreError::Corrupt(format!(
            "implausible entry count {entry_count}"
        )));
    }
    let mut entries = Vec::with_capacity(entry_count);
    for i in 0..entry_count {
        let plan_idx = r_u32(r)? as usize;
        if plan_idx >= plans.len() {
            return Err(RestoreError::Corrupt(format!(
                "entry {i} references plan {plan_idx}"
            )));
        }
        let d = r_u32(r)? as usize;
        if d == 0 || d > 64 {
            return Err(RestoreError::Corrupt(format!(
                "entry {i} has dimensionality {d}"
            )));
        }
        let mut sels = Vec::with_capacity(d);
        for _ in 0..d {
            let s = r_f64(r)?;
            if !(s > 0.0 && s <= 1.0) {
                return Err(RestoreError::Corrupt(format!(
                    "entry {i} has selectivity {s}"
                )));
            }
            sels.push(s);
        }
        let opt_cost = r_f64(r)?;
        let sub_opt = r_f64(r)?;
        let usage = r_u64(r)?;
        let mut flag = [0u8; 1];
        r.read_exact(&mut flag)?;
        if !opt_cost.is_finite() || opt_cost <= 0.0 || !sub_opt.is_finite() || sub_opt < 1.0 {
            return Err(RestoreError::Corrupt(format!(
                "entry {i} has C={opt_cost}, S={sub_opt}"
            )));
        }
        entries.push(InstanceEntry::restored(
            SVector(sels),
            plans[plan_idx].fingerprint(),
            opt_cost,
            sub_opt,
            usage,
            flag[0] != 0,
        ));
    }

    let log_cost_sum = r_f64(r)?;
    let opt_count = r_u64(r)?;
    if !log_cost_sum.is_finite() {
        return Err(RestoreError::Corrupt("non-finite λ accumulator".into()));
    }

    let scr = Scr::from_parts(config, plans, entries, log_cost_sum, opt_count)
        .map_err(RestoreError::Config)?;
    Ok((scr, generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fixture_template;
    use crate::OnlinePqo;
    use pqo_optimizer::engine::QueryEngine;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};
    use pqo_optimizer::template::QueryTemplate;

    fn fixture() -> Arc<QueryTemplate> {
        fixture_template("persist_test")
    }

    fn warmed(t: &Arc<QueryTemplate>, n: usize) -> (Scr, QueryEngine) {
        let engine = QueryEngine::new(Arc::clone(t));
        let mut scr = Scr::new(1.5).unwrap();
        for i in 0..n {
            let target = [0.02 + 0.9 * (i as f64 / n as f64), 0.3];
            let inst = instance_for_target(t, &target);
            let sv = compute_svector(t, &inst);
            let _ = scr.get_plan(&inst, &sv, &engine);
        }
        (scr, engine)
    }

    #[test]
    fn roundtrip_preserves_cache_state() {
        let t = fixture();
        let (scr, _) = warmed(&t, 40);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        let restored = restore(ScrConfig::new(1.5).unwrap(), &mut buf.as_slice()).unwrap();
        assert_eq!(restored.cache().num_plans(), scr.cache().num_plans());
        assert_eq!(
            restored.cache().num_instances(),
            scr.cache().num_instances()
        );
        assert!(restored.cache().check_invariants().is_ok());
        for (a, b) in restored
            .cache()
            .instances()
            .iter()
            .zip(scr.cache().instances())
        {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.opt_cost, b.opt_cost);
            assert_eq!(a.sub_opt, b.sub_opt);
            assert_eq!(a.usage(), b.usage());
            assert_eq!(a.svector.0, b.svector.0);
        }
    }

    #[test]
    fn roundtrip_restores_equivalent_spatial_index() {
        // The on-disk format carries no index; restore rebuilds the sharded
        // index by re-insertion. Its query streams (values and tie order)
        // must be bitwise-identical to the original writer's.
        let t = fixture();
        let (scr, _) = warmed(&t, 60);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        let restored = restore(ScrConfig::new(1.5).unwrap(), &mut buf.as_slice()).unwrap();
        let a = scr.cache().spatial_index().expect("warmed index");
        let b = restored.cache().spatial_index().expect("restored index");
        assert_eq!(a.len(), b.len());
        let bits = |v: Vec<(f64, usize)>| -> Vec<(u64, usize)> {
            v.into_iter().map(|(d, i)| (d.to_bits(), i)).collect()
        };
        for i in 0..12 {
            let q = [0.03 + 0.08 * i as f64, 0.3];
            assert_eq!(bits(a.nearest(&q, 5)), bits(b.nearest(&q, 5)));
            assert_eq!(bits(a.within(&q, 1.2)), bits(b.within(&q, 1.2)));
        }
    }

    #[test]
    fn restored_cache_serves_without_reoptimizing() {
        let t = fixture();
        let (scr, _) = warmed(&t, 40);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        let mut restored = restore(ScrConfig::new(1.5).unwrap(), &mut buf.as_slice()).unwrap();
        // A warm-region instance must be served from the restored cache.
        let engine = QueryEngine::new(Arc::clone(&t));
        let inst = instance_for_target(&t, &[0.47, 0.3]);
        let sv = compute_svector(&t, &inst);
        let choice = restored.get_plan(&inst, &sv, &engine);
        assert!(!choice.optimized, "warm cache should serve the instance");
        // And the guarantee still holds for the served plan.
        let opt = engine.optimize_untracked(&sv);
        let so = engine.recost_untracked(&choice.plan, &sv) / opt.cost;
        assert!(so <= 1.5 * 1.001, "restored cache served SO = {so}");
    }

    #[test]
    fn snapshot_save_matches_scr_save() {
        let t = fixture();
        let (scr, _) = warmed(&t, 25);
        let mut from_scr = Vec::new();
        save(&scr, &mut from_scr).unwrap();
        let snap = CacheSnapshot::capture(&scr);
        let mut from_snap = Vec::new();
        save_snapshot(&snap, &mut from_snap).unwrap();
        assert_eq!(
            from_scr, from_snap,
            "snapshot blob must be byte-identical to the Scr blob"
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = restore(ScrConfig::new(1.5).unwrap(), &mut &b"NOTACACHE"[..]).unwrap_err();
        assert!(matches!(err, RestoreError::BadHeader), "{err}");
    }

    #[test]
    fn unknown_version_gets_typed_error() {
        let t = fixture();
        let (scr, _) = warmed(&t, 5);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        for version in [b'4', b'7', b'9', b'0'] {
            let mut evil = buf.clone();
            evil[7] = version;
            let err = restore(ScrConfig::new(1.5).unwrap(), &mut evil.as_slice()).unwrap_err();
            assert!(
                matches!(err, RestoreError::UnsupportedVersion { version: v } if v == version),
                "version {}: {err}",
                char::from(version)
            );
        }
        // A non-digit trailing byte is not a version at all.
        let mut evil = buf.clone();
        evil[7] = b'X';
        let err = restore(ScrConfig::new(1.5).unwrap(), &mut evil.as_slice()).unwrap_err();
        assert!(matches!(err, RestoreError::BadHeader), "{err}");
    }

    #[test]
    fn generation_stamp_roundtrips_and_v1_reads_as_zero() {
        let t = fixture();
        let (scr, _) = warmed(&t, 10);
        let snap = CacheSnapshot::capture_at(&scr, 42);
        let mut buf = Vec::new();
        save_snapshot(&snap, &mut buf).unwrap();
        let (restored, generation) =
            restore_with_generation(ScrConfig::new(1.5).unwrap(), &mut buf.as_slice()).unwrap();
        assert_eq!(generation, 42);
        assert_eq!(restored.cache().num_plans(), scr.cache().num_plans());

        // A v1 blob (magic digit '1', no generation/policy fields) restores
        // with generation 0: splice the v3 header out.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&buf[17..]);
        let (from_v1, generation) =
            restore_with_generation(ScrConfig::new(1.5).unwrap(), &mut v1.as_slice()).unwrap();
        assert_eq!(generation, 0);
        assert_eq!(from_v1.cache().num_plans(), scr.cache().num_plans());
        assert_eq!(from_v1.cache().num_instances(), scr.cache().num_instances());
    }

    #[test]
    fn cross_policy_restore_is_refused_with_typed_error() {
        let t = fixture();
        let (scr, _) = warmed(&t, 10);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        // An SCR-built blob must not restore into an LEC-configured cache.
        let lec = ScrConfig::new(1.5).unwrap().with_policy(PolicyId::Lec);
        let err = restore(lec, &mut buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                RestoreError::PolicyMismatch {
                    expected: PolicyId::Lec,
                    found: PolicyId::Scr,
                }
            ),
            "{err}"
        );
        // The workspace-wide error keeps the mismatch typed (not folded
        // into Persist), naming both policies.
        let wide: PqoError = err.into();
        assert!(
            matches!(
                &wide,
                PqoError::PolicyMismatch { expected, found }
                    if expected == "lec" && found == "scr"
            ),
            "{wide}"
        );

        // A v1 blob reads as SCR, so the same LEC configuration refuses it
        // too — while the matching SCR configuration accepts it.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.extend_from_slice(&buf[17..]);
        let lec = ScrConfig::new(1.5).unwrap().with_policy(PolicyId::Lec);
        let err = restore(lec, &mut v1.as_slice()).unwrap_err();
        assert!(matches!(err, RestoreError::PolicyMismatch { .. }), "{err}");
        assert!(restore(ScrConfig::new(1.5).unwrap(), &mut v1.as_slice()).is_ok());
    }

    #[test]
    fn policy_tag_roundtrips_for_every_policy() {
        for policy in [PolicyId::Scr, PolicyId::Lec, PolicyId::Penalty] {
            let mut scr =
                Scr::with_config(ScrConfig::new(2.0).unwrap().with_policy(policy)).unwrap();
            let t = fixture();
            let engine = QueryEngine::new(Arc::clone(&t));
            for i in 0..6 {
                let inst = instance_for_target(&t, &[0.1 + 0.1 * i as f64, 0.3]);
                let sv = compute_svector(&t, &inst);
                let _ = scr.get_plan(&inst, &sv, &engine);
            }
            let mut buf = Vec::new();
            save(&scr, &mut buf).unwrap();
            assert_eq!(buf[16], policy.as_tag(), "header policy tag");
            let restored = restore(
                ScrConfig::new(2.0).unwrap().with_policy(policy),
                &mut buf.as_slice(),
            )
            .unwrap();
            assert_eq!(restored.config().policy, policy);
            assert_eq!(restored.cache().num_plans(), scr.cache().num_plans());
        }
    }

    #[test]
    fn unknown_policy_tag_is_corrupt() {
        let t = fixture();
        let (scr, _) = warmed(&t, 5);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        let mut evil = buf.clone();
        evil[16] = 0xEE;
        let err = restore(ScrConfig::new(1.5).unwrap(), &mut evil.as_slice()).unwrap_err();
        assert!(matches!(err, RestoreError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("policy tag"), "{err}");
    }

    #[test]
    fn truncation_is_rejected() {
        let t = fixture();
        let (scr, _) = warmed(&t, 10);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        for cut in [9, buf.len() / 2, buf.len() - 1] {
            let err = restore(ScrConfig::new(1.5).unwrap(), &mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, RestoreError::Io(_) | RestoreError::Corrupt(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_selectivity_is_rejected() {
        let t = fixture();
        let (scr, _) = warmed(&t, 5);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        // Flip an instance selectivity to an invalid value: locate the
        // first entry's first selectivity. Layout: 8 magic + 4 count +
        // plans... easier: just corrupt every f64-aligned slot and assert
        // no restore panics (errors are fine).
        for i in (8..buf.len().saturating_sub(8)).step_by(17) {
            let mut evil = buf.clone();
            evil[i] ^= 0xFF;
            let _ = restore(ScrConfig::new(1.5).unwrap(), &mut evil.as_slice());
            // must not panic
        }
    }

    #[test]
    fn roundtrip_preserves_arena_form_and_prepared_recost() {
        // The compact encoding round-trips the *arena* plan representation:
        // decoded plans must match node-for-node (op and subtree extent),
        // and the prepared-recost path over a restored cache must produce
        // bit-identical costs to the original technique's plans.
        let t = fixture();
        let (scr, engine) = warmed(&t, 40);
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        let restored = restore(ScrConfig::new(1.5).unwrap(), &mut buf.as_slice()).unwrap();

        let mut originals: Vec<_> = scr.cache().plans().collect();
        originals.sort_by_key(|p| p.fingerprint());
        let mut restored_plans: Vec<_> = restored.cache().plans().collect();
        restored_plans.sort_by_key(|p| p.fingerprint());
        assert!(!originals.is_empty());
        assert_eq!(originals.len(), restored_plans.len());

        let mut scratch_a = pqo_optimizer::recost::RecostScratch::new();
        let mut scratch_b = pqo_optimizer::recost::RecostScratch::new();
        let probes = [[0.05, 0.3], [0.47, 0.3], [0.9, 0.3], [0.2, 0.8]];
        for (a, b) in originals.iter().zip(&restored_plans) {
            assert_eq!(a.fingerprint(), b.fingerprint());
            assert_eq!(a.nodes(), b.nodes(), "arena layout changed in transit");
            let pa = engine.prepare_recost(a);
            let pb = engine.prepare_recost(b);
            for target in &probes {
                let inst = instance_for_target(&t, target);
                let sv = compute_svector(&t, &inst);
                let ca = engine.recost_prepared_untracked(&pa, &sv, &mut scratch_a);
                let cb = engine.recost_prepared_untracked(&pb, &sv, &mut scratch_b);
                assert_eq!(
                    ca.to_bits(),
                    cb.to_bits(),
                    "prepared recost diverged after round-trip at {target:?}"
                );
            }
        }
    }

    #[test]
    fn empty_cache_roundtrips() {
        let scr = Scr::new(2.0).unwrap();
        let mut buf = Vec::new();
        save(&scr, &mut buf).unwrap();
        let restored = restore(ScrConfig::new(2.0).unwrap(), &mut buf.as_slice()).unwrap();
        assert_eq!(restored.cache().num_plans(), 0);
        assert_eq!(restored.cache().num_instances(), 0);
    }
}
