//! Optimize-Once: plan caching as shipped by commercial engines.

use std::sync::Arc;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::Plan;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use crate::{OnlinePqo, PlanChoice};

/// Optimizes only the first instance and reuses that plan for every
/// subsequent one (`numOpt = 1`, `numPlans = 1`). Sub-optimality is
/// unbounded: the paper's Figure 6 shows MSO and TotalCostRatio can be very
/// large, which is the whole motivation for PQO.
#[derive(Debug, Default)]
pub struct OptimizeOnce {
    plan: Option<Arc<Plan>>,
}

impl OptimizeOnce {
    /// New instance.
    pub fn new() -> Self {
        OptimizeOnce::default()
    }
}

impl OnlinePqo for OptimizeOnce {
    fn name(&self) -> String {
        "OptOnce".into()
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        match &self.plan {
            Some(p) => PlanChoice {
                plan: Arc::clone(p),
                optimized: false,
            },
            None => {
                let opt = engine.optimize(sv);
                self.plan = Some(Arc::clone(&opt.plan));
                PlanChoice {
                    plan: opt.plan,
                    optimized: true,
                }
            }
        }
    }

    fn plans_cached(&self) -> usize {
        usize::from(self.plan.is_some())
    }

    fn max_plans_cached(&self) -> usize {
        self.plans_cached()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn only_first_instance_optimizes() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = OptimizeOnce::new();
        let first = run_point(&mut tech, &engine, &[0.5, 0.5]);
        assert!(first.optimized);
        for target in [[0.001, 0.001], [0.9, 0.9]] {
            let c = run_point(&mut tech, &engine, &target);
            assert!(!c.optimized);
            assert_eq!(c.plan.fingerprint(), first.plan.fingerprint());
        }
        assert_eq!(engine.stats().optimize_calls, 1);
        assert_eq!(tech.max_plans_cached(), 1);
    }
}
