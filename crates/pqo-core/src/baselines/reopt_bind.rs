//! Reopt-Bind: the single-plan re-optimization strategy of DB2's
//! `REOPT(BIND)`-style processing (reference [25] of the paper; Section 8's
//! "Online, SinglePlan" family).
//!
//! The engine keeps exactly one plan, optimized for the instance it is
//! bound to. When a new instance's selectivities deviate from the bound
//! instance's by more than a threshold factor in some dimension, the plan
//! is considered stale: the instance is re-optimized and the binding
//! replaced. Cheap, bounded memory (one plan), no quality guarantee — it
//! re-optimizes on *selectivity* drift, not on *cost* drift, so it can both
//! re-optimize needlessly and reuse disastrously.

use std::sync::Arc;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::Plan;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use crate::{OnlinePqo, PlanChoice};

/// The Reopt-Bind baseline.
#[derive(Debug)]
pub struct ReoptBind {
    /// Re-optimize when any dimension's selectivity ratio against the bound
    /// instance exceeds this factor (in either direction).
    threshold: f64,
    bound: Option<(SVector, Arc<Plan>)>,
    rebinds: u64,
}

impl ReoptBind {
    /// Reopt-Bind with a per-dimension drift `threshold > 1`.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 1.0, "threshold must exceed 1");
        ReoptBind {
            threshold,
            bound: None,
            rebinds: 0,
        }
    }

    /// Number of times the binding was replaced (excludes the first bind).
    pub fn rebinds(&self) -> u64 {
        self.rebinds
    }

    fn drifted(&self, sv: &SVector) -> bool {
        match &self.bound {
            None => true,
            Some((bound_sv, _)) => sv
                .ratios(bound_sv)
                .iter()
                .any(|&a| a > self.threshold || a < 1.0 / self.threshold),
        }
    }
}

impl OnlinePqo for ReoptBind {
    fn name(&self) -> String {
        format!("ReoptBind{}", self.threshold)
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        if self.drifted(sv) {
            let opt = engine.optimize(sv);
            if self.bound.is_some() {
                self.rebinds += 1;
            }
            self.bound = Some((sv.clone(), Arc::clone(&opt.plan)));
            return PlanChoice {
                plan: opt.plan,
                optimized: true,
            };
        }
        let (_, plan) = self.bound.as_ref().expect("bound after first call");
        PlanChoice {
            plan: Arc::clone(plan),
            optimized: false,
        }
    }

    fn plans_cached(&self) -> usize {
        usize::from(self.bound.is_some())
    }

    fn max_plans_cached(&self) -> usize {
        self.plans_cached()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;

    #[test]
    fn rebinds_on_drift_only() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = ReoptBind::new(4.0);
        assert!(run_point(&mut tech, &engine, &[0.2, 0.2]).optimized);
        // Within 4x in both dimensions: reuse.
        assert!(!run_point(&mut tech, &engine, &[0.3, 0.15]).optimized);
        // 0.2 -> 0.9 is a 4.5x drift: rebind.
        assert!(run_point(&mut tech, &engine, &[0.9, 0.2]).optimized);
        assert_eq!(tech.rebinds(), 1);
        assert_eq!(tech.max_plans_cached(), 1, "only ever one plan");
    }

    #[test]
    fn tight_threshold_degenerates_to_optimize_often() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = ReoptBind::new(1.05);
        for i in 1..=10 {
            let _ = run_point(&mut tech, &engine, &[0.08 * i as f64, 0.5]);
        }
        assert!(
            engine.stats().optimize_calls >= 8,
            "tight drift bound ≈ Optimize-Always"
        );
    }

    #[test]
    fn selectivity_drift_is_not_cost_drift() {
        // The structural weakness: within the drift threshold the plan is
        // reused even when its cost behaviour turned bad. Somewhere on the
        // corpus this exceeds any λ bound — here we just verify reuse
        // happens across a region where the optimal plan changes.
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = ReoptBind::new(50.0); // generous: almost never rebinds
        let first = run_point(&mut tech, &engine, &[0.02, 0.02]);
        let later = run_point(&mut tech, &engine, &[0.6, 0.6]);
        assert!(!later.optimized, "generous threshold must reuse");
        assert_eq!(first.plan.fingerprint(), later.plan.fingerprint());
        let sv = pqo_optimizer::svector::compute_svector(
            &t,
            &pqo_optimizer::svector::instance_for_target(&t, &[0.6, 0.6]),
        );
        let opt = engine.optimize_untracked(&sv);
        let so = engine.recost_untracked(&later.plan, &sv) / opt.cost;
        assert!(
            so > 1.0,
            "the stale plan is sub-optimal here (SO = {so:.2})"
        );
    }
}
