//! The competing techniques of the paper's Table 2.
//!
//! | name | behaviour |
//! |---|---|
//! | [`OptimizeAlways`] | optimize every instance (the oracle; numOpt = m) |
//! | [`OptimizeOnce`]   | optimize the first instance, reuse its plan forever |
//! | [`Pcm`]            | bounded PPQO: reuse guaranteed through dominating pairs |
//! | [`Ellipse`]        | PPQO heuristic: elliptical neighbourhoods (Δ = 0.9) |
//! | [`Density`]        | density-based clustering (radius 0.1, confidence 0.5) |
//! | [`Ranges`]         | cursor-sharing style MBRs (± 0.01 selectivity) |
//! | [`ReoptBind`]      | single plan, re-optimized on selectivity drift (related work [25]) |
//!
//! Every heuristic can optionally be augmented with SCR's Recost-based
//! redundancy check (Appendix H.6 / Figure 21) via `with_redundancy`: when
//! a fresh optimization produces a new plan, the store substitutes an
//! existing plan that is within `λr` of optimal at the instance. That
//! shrinks `numPlans` (and often `numOpt`, because the surviving plans get
//! larger inference regions) but lets sub-optimality degrade — exactly the
//! trade-off Figure 21 shows.

mod density;
mod ellipse;
mod opt_always;
mod opt_once;
mod pcm;
mod ranges;
mod reopt_bind;

pub use density::Density;
pub use ellipse::Ellipse;
pub use opt_always::OptimizeAlways;
pub use opt_once::OptimizeOnce;
pub use pcm::Pcm;
pub use ranges::Ranges;
pub use reopt_bind::ReoptBind;

use std::collections::HashMap;
use std::sync::Arc;

use pqo_optimizer::engine::{OptimizedPlan, QueryEngine};
use pqo_optimizer::plan::{Plan, PlanFingerprint};
use pqo_optimizer::svector::SVector;

/// One optimized instance as the heuristic techniques remember it.
#[derive(Debug, Clone)]
pub(crate) struct OptimizedInstance {
    /// Selectivity vector of the optimized instance.
    pub svector: SVector,
    /// Plan recorded for the instance (its optimal plan, unless the
    /// redundancy augmentation substituted a cached one).
    pub plan: PlanFingerprint,
    /// Optimizer-estimated optimal cost at the instance.
    pub opt_cost: f64,
}

/// Shared storage for the baseline techniques: plan list + optimized
/// instance list, with the optional Recost redundancy augmentation.
#[derive(Debug, Default)]
pub(crate) struct BaselineStore {
    plans: HashMap<PlanFingerprint, Arc<Plan>>,
    instances: Vec<OptimizedInstance>,
    max_plans: usize,
    redundancy_lambda_r: Option<f64>,
}

impl BaselineStore {
    pub fn new(redundancy_lambda_r: Option<f64>) -> Self {
        if let Some(lr) = redundancy_lambda_r {
            assert!(lr >= 1.0, "λr must be at least 1 when enabled");
        }
        BaselineStore {
            redundancy_lambda_r,
            ..Default::default()
        }
    }

    pub fn plans_cached(&self) -> usize {
        self.plans.len()
    }

    pub fn max_plans_cached(&self) -> usize {
        self.max_plans
    }

    pub fn instances(&self) -> &[OptimizedInstance] {
        &self.instances
    }

    pub fn plan(&self, fp: PlanFingerprint) -> Arc<Plan> {
        Arc::clone(self.plans.get(&fp).expect("instance points to stored plan"))
    }

    /// Record a fresh optimization. With the redundancy augmentation, a new
    /// plan is discarded when some cached plan is within `λr` of optimal at
    /// the instance, and the instance is recorded under that plan instead.
    pub fn record(&mut self, sv: &SVector, opt: &OptimizedPlan, engine: &QueryEngine) {
        let mut fp = opt.plan.fingerprint();
        if !self.plans.contains_key(&fp) {
            if let Some(lr) = self.redundancy_lambda_r {
                if let Some((min_fp, min_cost)) = self
                    .plans
                    .values()
                    .map(|p| (p.fingerprint(), engine.recost(p, sv)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                {
                    if min_cost / opt.cost <= lr {
                        fp = min_fp;
                    }
                }
            }
        }
        if fp == opt.plan.fingerprint() {
            self.plans
                .entry(fp)
                .or_insert_with(|| Arc::clone(&opt.plan));
            self.max_plans = self.max_plans.max(self.plans.len());
        }
        self.instances.push(OptimizedInstance {
            svector: sv.clone(),
            plan: fp,
            opt_cost: opt.cost,
        });
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::Arc;

    use pqo_optimizer::engine::QueryEngine;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};
    use pqo_optimizer::template::{QueryTemplate, RangeOp, TemplateBuilder};

    use crate::{OnlinePqo, PlanChoice};

    pub fn fixture() -> Arc<QueryTemplate> {
        let cat = pqo_catalog::schemas::tpch_skew();
        let mut b = TemplateBuilder::new("baseline_test");
        let o = b.relation(cat.expect_table("orders"), "o");
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((o, "orders_pk"), (l, "orders_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
        b.param(l, "l_extendedprice", RangeOp::Le);
        b.build()
    }

    pub fn run_point<T: OnlinePqo>(
        tech: &mut T,
        engine: &QueryEngine,
        target: &[f64],
    ) -> PlanChoice {
        let t = Arc::clone(engine.template());
        let inst = instance_for_target(&t, target);
        let sv = compute_svector(&t, &inst);
        tech.get_plan(&inst, &sv, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;
    use pqo_optimizer::svector::{compute_svector, instance_for_target};

    #[test]
    fn store_records_and_interns_plans() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut store = BaselineStore::new(None);
        for target in [[0.1, 0.1], [0.11, 0.11], [0.9, 0.9]] {
            let sv = compute_svector(&t, &instance_for_target(&t, &target));
            let opt = engine.optimize(&sv);
            store.record(&sv, &opt, &engine);
        }
        assert_eq!(store.instances().len(), 3);
        assert!(store.plans_cached() <= 3);
        assert!(store.max_plans_cached() >= store.plans_cached());
    }

    #[test]
    fn redundancy_augmentation_reduces_plans() {
        let t = fixture();
        let engine_a = QueryEngine::new(Arc::clone(&t));
        let engine_b = QueryEngine::new(Arc::clone(&t));
        let mut plain = BaselineStore::new(None);
        let mut lean = BaselineStore::new(Some(4.0));
        for i in 1..=20 {
            let target = [0.048 * i as f64, 0.04 * i as f64];
            let sv = compute_svector(&t, &instance_for_target(&t, &target));
            let oa = engine_a.optimize(&sv);
            plain.record(&sv, &oa, &engine_a);
            let ob = engine_b.optimize(&sv);
            lean.record(&sv, &ob, &engine_b);
        }
        assert!(lean.plans_cached() <= plain.plans_cached());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn redundancy_below_one_rejected() {
        let _ = BaselineStore::new(Some(0.5));
    }
}
