//! Ellipse: the PPQO heuristic of reference [4].
//!
//! Inference criterion (Table 1): the new instance lies in an elliptical
//! neighbourhood whose foci are a pair of previously optimized instances
//! that share the same optimal plan. With `Δ ∈ (0, 1]` (the paper uses
//! `Δ = 0.90`), `qc` is inside the ellipse of foci `(qi, qj)` when
//!
//! ```text
//! d(qc, qi) + d(qc, qj) ≤ d(qi, qj) / Δ
//! ```
//!
//! No guarantee: selectivity distance says nothing about cost behaviour
//! (Appendix A of the paper), so MSO is unbounded.

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use super::BaselineStore;
use crate::{OnlinePqo, PlanChoice};

/// The Ellipse heuristic.
#[derive(Debug)]
pub struct Ellipse {
    delta: f64,
    store: BaselineStore,
}

impl Ellipse {
    /// Ellipse with eccentricity threshold `delta` in `(0, 1]`.
    pub fn new(delta: f64) -> Self {
        assert!(delta > 0.0 && delta <= 1.0);
        Ellipse {
            delta,
            store: BaselineStore::new(None),
        }
    }

    /// Ellipse augmented with the Recost redundancy check (Appendix H.6).
    pub fn with_redundancy(delta: f64, lambda_r: f64) -> Self {
        assert!(delta > 0.0 && delta <= 1.0);
        Ellipse {
            delta,
            store: BaselineStore::new(Some(lambda_r)),
        }
    }
}

impl OnlinePqo for Ellipse {
    fn name(&self) -> String {
        format!("Ellipse{}", self.delta)
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        // Group stored instances by plan, then test qc against every pair of
        // foci within each group.
        let instances = self.store.instances();
        for (i, a) in instances.iter().enumerate() {
            let da = sv.distance(&a.svector);
            for b in &instances[i + 1..] {
                if a.plan != b.plan {
                    continue;
                }
                let db = sv.distance(&b.svector);
                let focal = a.svector.distance(&b.svector);
                if da + db <= focal / self.delta {
                    let fp = a.plan;
                    return PlanChoice {
                        plan: self.store.plan(fp),
                        optimized: false,
                    };
                }
            }
        }
        let opt = engine.optimize(sv);
        self.store.record(sv, &opt, engine);
        PlanChoice {
            plan: opt.plan,
            optimized: true,
        }
    }

    fn plans_cached(&self) -> usize {
        self.store.plans_cached()
    }

    fn max_plans_cached(&self) -> usize {
        self.store.max_plans_cached()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn needs_two_same_plan_foci() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Ellipse::new(0.9);
        assert!(run_point(&mut tech, &engine, &[0.3, 0.3]).optimized);
        // A second instance: even if it shares the plan, no pair existed yet
        // when it arrived, so it optimizes too.
        assert!(run_point(&mut tech, &engine, &[0.34, 0.34]).optimized);
    }

    #[test]
    fn infers_between_close_foci_with_same_plan() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Ellipse::new(0.9);
        let a = run_point(&mut tech, &engine, &[0.30, 0.30]);
        let b = run_point(&mut tech, &engine, &[0.40, 0.40]);
        if a.plan.fingerprint() == b.plan.fingerprint() {
            let c = run_point(&mut tech, &engine, &[0.35, 0.35]);
            assert!(!c.optimized, "midpoint of the foci lies inside any ellipse");
            assert_eq!(c.plan.fingerprint(), a.plan.fingerprint());
        }
    }

    #[test]
    fn point_far_from_all_foci_optimizes() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Ellipse::new(0.9);
        let _ = run_point(&mut tech, &engine, &[0.30, 0.30]);
        let _ = run_point(&mut tech, &engine, &[0.32, 0.32]);
        assert!(run_point(&mut tech, &engine, &[0.95, 0.05]).optimized);
    }
}
