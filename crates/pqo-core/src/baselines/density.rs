//! Density: parametric plan caching with density-based clustering (Aluç,
//! DeHaan, Bowman — reference [2] of the paper).
//!
//! Inference criterion (Table 1): the new instance has a *sufficient number
//! of instances with the same optimal plan choice* in a circular
//! neighbourhood. The paper's parameters (Table 2): radius `0.1`,
//! confidence threshold `0.5`. We additionally require at least two
//! neighbours, consistent with Section 3's observation that every existing
//! technique needs two or more supporting instances before it can reuse.

use std::collections::HashMap;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use super::BaselineStore;
use crate::{OnlinePqo, PlanChoice};

/// Minimum number of in-radius optimized neighbours before inference.
const MIN_NEIGHBOURS: usize = 2;

/// The Density heuristic.
#[derive(Debug)]
pub struct Density {
    radius: f64,
    confidence: f64,
    store: BaselineStore,
}

impl Density {
    /// Density with a neighbourhood `radius` and majority `confidence`
    /// threshold in `(0, 1]`.
    pub fn new(radius: f64, confidence: f64) -> Self {
        assert!(radius > 0.0);
        assert!(confidence > 0.0 && confidence <= 1.0);
        Density {
            radius,
            confidence,
            store: BaselineStore::new(None),
        }
    }

    /// Density augmented with the Recost redundancy check (Appendix H.6).
    pub fn with_redundancy(radius: f64, confidence: f64, lambda_r: f64) -> Self {
        assert!(radius > 0.0);
        assert!(confidence > 0.0 && confidence <= 1.0);
        Density {
            radius,
            confidence,
            store: BaselineStore::new(Some(lambda_r)),
        }
    }
}

impl OnlinePqo for Density {
    fn name(&self) -> String {
        "Density".into()
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        let mut votes: HashMap<PlanFingerprint, usize> = HashMap::new();
        let mut neighbours = 0usize;
        for e in self.store.instances() {
            if sv.distance(&e.svector) <= self.radius {
                neighbours += 1;
                *votes.entry(e.plan).or_insert(0) += 1;
            }
        }
        if neighbours >= MIN_NEIGHBOURS {
            if let Some((&fp, &count)) = votes.iter().max_by_key(|(fp, c)| (**c, **fp)) {
                if count as f64 >= self.confidence * neighbours as f64 {
                    return PlanChoice {
                        plan: self.store.plan(fp),
                        optimized: false,
                    };
                }
            }
        }
        let opt = engine.optimize(sv);
        self.store.record(sv, &opt, engine);
        PlanChoice {
            plan: opt.plan,
            optimized: true,
        }
    }

    fn plans_cached(&self) -> usize {
        self.store.plans_cached()
    }

    fn max_plans_cached(&self) -> usize {
        self.store.max_plans_cached()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn two_confident_neighbours_enable_inference() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Density::new(0.1, 0.5);
        let a = run_point(&mut tech, &engine, &[0.30, 0.30]);
        let b = run_point(&mut tech, &engine, &[0.33, 0.33]);
        assert!(a.optimized && b.optimized);
        let c = run_point(&mut tech, &engine, &[0.31, 0.31]);
        if a.plan.fingerprint() == b.plan.fingerprint() {
            assert!(
                !c.optimized,
                "majority plan in the neighbourhood should be reused"
            );
        }
    }

    #[test]
    fn sparse_region_forces_optimizer() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Density::new(0.1, 0.5);
        let _ = run_point(&mut tech, &engine, &[0.2, 0.2]);
        assert!(run_point(&mut tech, &engine, &[0.8, 0.8]).optimized);
    }

    #[test]
    fn one_neighbour_is_not_enough() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Density::new(0.1, 0.5);
        let _ = run_point(&mut tech, &engine, &[0.30, 0.30]);
        assert!(run_point(&mut tech, &engine, &[0.305, 0.305]).optimized);
    }
}
