//! PCM: Bounded Progressive Parametric Query Optimization (Bizarro, Bruno,
//! DeWitt — reference [4] of the paper).
//!
//! PCM is the only prior online technique with a sub-optimality guarantee.
//! Its inference criterion (Table 1): the new instance `qc` lies in the
//! rectangle spanned by a pair of previously optimized instances
//! `q1 ≤ qc ≤ q2` (component-wise selectivity dominance) whose optimal
//! costs are within a factor λ. Under Plan Cost Monotonicity:
//!
//! ```text
//! Cost(P2, qc) ≤ Cost(P2, q2) = C2 ≤ λ·C1 ≤ λ·Cost(Popt(q1), q1)
//!            ≤ λ·Cost(Popt(qc), qc)
//! ```
//!
//! so reusing the *dominating* instance's plan is λ-optimal. PCM stores
//! every optimized instance and every distinct plan, and needs a pair on
//! both sides of each new instance before it can infer — the reasons for
//! its high `numOpt` and `numPlans` in the paper's evaluation.

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use super::BaselineStore;
use crate::{OnlinePqo, PlanChoice};

/// The PCM technique with bound λ.
#[derive(Debug)]
pub struct Pcm {
    lambda: f64,
    store: BaselineStore,
}

impl Pcm {
    /// PCM with sub-optimality bound `lambda ≥ 1`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda >= 1.0);
        Pcm {
            lambda,
            store: BaselineStore::new(None),
        }
    }

    /// PCM augmented with the Recost redundancy check (Appendix H.6).
    pub fn with_redundancy(lambda: f64, lambda_r: f64) -> Self {
        assert!(lambda >= 1.0);
        Pcm {
            lambda,
            store: BaselineStore::new(Some(lambda_r)),
        }
    }
}

impl OnlinePqo for Pcm {
    fn name(&self) -> String {
        format!("PCM{}", self.lambda)
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        // Cheapest dominating instance (q2 candidate) and most expensive
        // dominated instance (q1 candidate) give the tightest pair.
        let mut best_upper: Option<(f64, usize)> = None;
        let mut best_lower: Option<f64> = None;
        for (idx, e) in self.store.instances().iter().enumerate() {
            if e.svector.dominates(sv) && best_upper.is_none_or(|(c, _)| e.opt_cost < c) {
                best_upper = Some((e.opt_cost, idx));
            }
            if sv.dominates(&e.svector) && best_lower.is_none_or(|c| e.opt_cost > c) {
                best_lower = Some(e.opt_cost);
            }
        }
        if let (Some((c2, idx)), Some(c1)) = (best_upper, best_lower) {
            if c2 <= self.lambda * c1 {
                let fp = self.store.instances()[idx].plan;
                return PlanChoice {
                    plan: self.store.plan(fp),
                    optimized: false,
                };
            }
        }
        let opt = engine.optimize(sv);
        self.store.record(sv, &opt, engine);
        PlanChoice {
            plan: opt.plan,
            optimized: true,
        }
    }

    fn plans_cached(&self) -> usize {
        self.store.plans_cached()
    }

    fn max_plans_cached(&self) -> usize {
        self.store.max_plans_cached()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn needs_a_dominating_pair_before_inferring() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Pcm::new(2.0);
        assert!(run_point(&mut tech, &engine, &[0.3, 0.3]).optimized);
        // Dominated on one axis, dominating on the other: no pair exists.
        assert!(run_point(&mut tech, &engine, &[0.2, 0.4]).optimized);
    }

    #[test]
    fn infers_inside_a_cost_close_rectangle() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Pcm::new(2.0);
        assert!(run_point(&mut tech, &engine, &[0.30, 0.30]).optimized);
        assert!(run_point(&mut tech, &engine, &[0.40, 0.40]).optimized);
        // Inside [0.3,0.4]² and the corner costs are within 2x here.
        let c = run_point(&mut tech, &engine, &[0.35, 0.35]);
        assert!(!c.optimized, "PCM should infer inside the rectangle");
        assert_eq!(engine.stats().optimize_calls, 2);
    }

    #[test]
    fn refuses_when_corner_costs_differ_too_much() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Pcm::new(1.05);
        assert!(run_point(&mut tech, &engine, &[0.01, 0.01]).optimized);
        assert!(run_point(&mut tech, &engine, &[0.95, 0.95]).optimized);
        // Rectangle spans nearly the whole space: corner costs differ far
        // beyond 1.05x, so PCM must optimize.
        assert!(run_point(&mut tech, &engine, &[0.5, 0.5]).optimized);
    }

    #[test]
    fn guarantee_holds_on_grid() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let lambda = 2.0;
        let mut tech = Pcm::new(lambda);
        let mut worst = 1.0f64;
        for i in 0..10 {
            for j in 0..10 {
                let target = [0.01 + 0.1 * i as f64, 0.01 + 0.1 * j as f64];
                let inst = pqo_optimizer::svector::instance_for_target(&t, &target);
                let sv = pqo_optimizer::svector::compute_svector(&t, &inst);
                let choice = tech.get_plan(&inst, &sv, &engine);
                let opt = engine.optimize_untracked(&sv);
                worst = worst.max(engine.recost_untracked(&choice.plan, &sv) / opt.cost);
            }
        }
        assert!(
            worst <= lambda * 1.001,
            "PCM MSO {worst} exceeded λ (PCM assumption held here)"
        );
    }
}
