//! Optimize-Always: the quality oracle.

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use crate::{OnlinePqo, PlanChoice};

/// Optimizes every query instance. Perfect plan quality (`SO = 1`
/// everywhere), maximal optimization overhead (`numOpt = m`). Not a PQO
/// technique, but both the upper baseline of the paper's comparisons and the
/// ground-truth oracle the metrics are computed against.
#[derive(Debug, Default)]
pub struct OptimizeAlways {
    distinct_plans: std::collections::BTreeSet<pqo_optimizer::plan::PlanFingerprint>,
}

impl OptimizeAlways {
    /// New instance.
    pub fn new() -> Self {
        OptimizeAlways::default()
    }
}

impl OnlinePqo for OptimizeAlways {
    fn name(&self) -> String {
        "OptAlways".into()
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        let opt = engine.optimize(sv);
        self.distinct_plans.insert(opt.plan.fingerprint());
        PlanChoice {
            plan: opt.plan,
            optimized: true,
        }
    }

    fn plans_cached(&self) -> usize {
        // Optimize-Always stores no plans; it reports the number of distinct
        // optimal plans seen (the paper's `n = |P|`), useful as a reference.
        self.distinct_plans.len()
    }

    fn max_plans_cached(&self) -> usize {
        self.distinct_plans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn optimizes_every_instance() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = OptimizeAlways::new();
        for i in 1..=5 {
            let c = run_point(&mut tech, &engine, &[0.1 * i as f64, 0.1]);
            assert!(c.optimized);
        }
        assert_eq!(engine.stats().optimize_calls, 5);
        assert!(tech.plans_cached() >= 1);
    }
}
