//! Ranges: cursor-sharing style selectivity ranges (Lee, Zait, "Closing the
//! query processing loop in Oracle 11g" — reference [17] of the paper).
//!
//! Inference criterion (Table 1): the new instance lies inside a rectangular
//! neighbourhood enclosing the minimum bounding rectangle of all previously
//! optimized instances that share the same optimal plan, expanded by a
//! near-selectivity margin on each side (the paper uses `0.01`). As with
//! the other heuristics, at least two supporting instances are required.

use std::collections::HashMap;

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::PlanFingerprint;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;

use super::BaselineStore;
use crate::{OnlinePqo, PlanChoice};

/// Per-plan minimum bounding rectangle over selectivity vectors.
#[derive(Debug, Clone)]
struct Mbr {
    lo: Vec<f64>,
    hi: Vec<f64>,
    count: usize,
}

impl Mbr {
    fn of(sv: &SVector) -> Self {
        Mbr {
            lo: sv.0.clone(),
            hi: sv.0.clone(),
            count: 1,
        }
    }

    fn extend(&mut self, sv: &SVector) {
        for (i, &v) in sv.0.iter().enumerate() {
            self.lo[i] = self.lo[i].min(v);
            self.hi[i] = self.hi[i].max(v);
        }
        self.count += 1;
    }

    fn contains(&self, sv: &SVector, margin: f64) -> bool {
        sv.0.iter()
            .enumerate()
            .all(|(i, &v)| v >= self.lo[i] - margin && v <= self.hi[i] + margin)
    }
}

/// The Ranges heuristic.
#[derive(Debug)]
pub struct Ranges {
    margin: f64,
    mbrs: HashMap<PlanFingerprint, Mbr>,
    store: BaselineStore,
}

impl Ranges {
    /// Ranges with the given near-selectivity `margin` (paper: 0.01).
    pub fn new(margin: f64) -> Self {
        assert!(margin >= 0.0);
        Ranges {
            margin,
            mbrs: HashMap::new(),
            store: BaselineStore::new(None),
        }
    }

    /// Ranges augmented with the Recost redundancy check (Appendix H.6).
    pub fn with_redundancy(margin: f64, lambda_r: f64) -> Self {
        assert!(margin >= 0.0);
        Ranges {
            margin,
            mbrs: HashMap::new(),
            store: BaselineStore::new(Some(lambda_r)),
        }
    }
}

impl OnlinePqo for Ranges {
    fn name(&self) -> String {
        format!("Ranges{}", self.margin)
    }

    fn get_plan(
        &mut self,
        _instance: &QueryInstance,
        sv: &SVector,
        engine: &QueryEngine,
    ) -> PlanChoice {
        // Deterministic tie-break: smallest fingerprint wins among matching
        // rectangles.
        let mut hit: Option<PlanFingerprint> = None;
        for (&fp, mbr) in &self.mbrs {
            if mbr.count >= 2 && mbr.contains(sv, self.margin) && hit.is_none_or(|h| fp < h) {
                hit = Some(fp);
            }
        }
        if let Some(fp) = hit {
            return PlanChoice {
                plan: self.store.plan(fp),
                optimized: false,
            };
        }
        let opt = engine.optimize(sv);
        self.store.record(sv, &opt, engine);
        // The recorded plan may have been substituted by the redundancy
        // augmentation: extend the MBR of whatever the store recorded.
        let recorded = self
            .store
            .instances()
            .last()
            .expect("record just pushed")
            .plan;
        self.mbrs
            .entry(recorded)
            .and_modify(|m| m.extend(sv))
            .or_insert_with(|| Mbr::of(sv));
        PlanChoice {
            plan: opt.plan,
            optimized: true,
        }
    }

    fn plans_cached(&self) -> usize {
        self.store.plans_cached()
    }

    fn max_plans_cached(&self) -> usize {
        self.store.max_plans_cached()
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mbr_geometry() {
        let mut m = Mbr::of(&SVector(vec![0.2, 0.5]));
        m.extend(&SVector(vec![0.4, 0.3]));
        assert!(m.contains(&SVector(vec![0.3, 0.4]), 0.0));
        assert!(m.contains(&SVector(vec![0.41, 0.29]), 0.01));
        assert!(!m.contains(&SVector(vec![0.45, 0.4]), 0.01));
        assert_eq!(m.count, 2);
    }

    #[test]
    fn infers_inside_grown_rectangle() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Ranges::new(0.01);
        let a = run_point(&mut tech, &engine, &[0.30, 0.30]);
        let b = run_point(&mut tech, &engine, &[0.40, 0.40]);
        if a.plan.fingerprint() == b.plan.fingerprint() {
            let c = run_point(&mut tech, &engine, &[0.35, 0.35]);
            assert!(!c.optimized);
        }
    }

    #[test]
    fn single_instance_rectangle_does_not_infer() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Ranges::new(0.01);
        let _ = run_point(&mut tech, &engine, &[0.30, 0.30]);
        assert!(run_point(&mut tech, &engine, &[0.301, 0.301]).optimized);
    }

    #[test]
    fn outside_all_rectangles_optimizes() {
        let t = fixture();
        let engine = QueryEngine::new(Arc::clone(&t));
        let mut tech = Ranges::new(0.01);
        let _ = run_point(&mut tech, &engine, &[0.30, 0.30]);
        let _ = run_point(&mut tech, &engine, &[0.32, 0.32]);
        assert!(run_point(&mut tech, &engine, &[0.9, 0.1]).optimized);
    }
}
