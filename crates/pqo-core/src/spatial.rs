//! Spatial index over the instance list (paper Section 6.2).
//!
//! *"...the overheads can also be improved by exploiting [the] idea of
//! checking instances with smaller GL values first. This can be achieved by
//! using a spatial index that can provide such instances without scanning
//! the entire list."*
//!
//! The key observation: for selectivity vectors `a`, `b` with per-dimension
//! ratios `αi = ai/bi`,
//!
//! ```text
//! G·L = ∏_{αi>1} αi · ∏_{αi<1} 1/αi = exp( Σi |ln ai − ln bi| )
//! ```
//!
//! so **G·L is the exponential of the L1 distance in log-selectivity
//! space**. "Smallest G·L first" is exactly a nearest-neighbour walk under
//! the L1 metric, and "selectivity check can pass" is an L1 ball of radius
//! `ln(λ/S)`.
//!
//! Two layers live here:
//!
//! * [`KdArena`]/[`LogSelIndex`] — a k-d tree flattened into a postorder
//!   arena (same style as the plan arena in `pqo-optimizer::plan`): one
//!   `Vec` of fixed-size nodes, coordinates in a flat stride-`dims` buffer,
//!   iterative build and traversal with explicit stacks, so a degenerate
//!   point distribution can never blow the thread stack. Insertions are
//!   buffered and the tree is rebuilt (perfectly balanced, via
//!   `select_nth_unstable_by` median partitioning) when the buffer outgrows
//!   the tree — amortized O(log n) structure without incremental
//!   rebalancing.
//! * [`ShardedLogSelIndex`] — partitions points over log-selectivity
//!   subregions (bands of the coordinate sum `Σi ln si`), each shard behind
//!   an `Arc`. `Clone` is O(shards) pointer bumps; a writer's insert uses
//!   `Arc::make_mut`, so only the shard that absorbed a point since the
//!   last publication is deep-copied — published `CacheSnapshot`
//!   generations share every untouched shard (`Arc::ptr_eq` across
//!   generations), dropping publish cost from O(n) to O(n/shards)
//!   amortized.
//!
//! **Canonical-output invariant.** `within` returns every point inside the
//! ball sorted by `(distance, item)`; `nearest` returns exactly the k
//! smallest under the same lexicographic order (its far-side prune uses
//! `<=` against the current worst, so boundary ties are always visited).
//! Both outputs are pure functions of the point *multiset* — independent of
//! tree shape, shard partitioning, or visit order — which is what lets the
//! sharded index stay byte-identical to the unsharded oracle and keeps the
//! SCR decision stream unchanged.
//!
//! Comparisons use `f64::total_cmp` throughout: a pathological selectivity
//! (NaN/∞ from a hostile client or a histogram bug) degrades gracefully
//! instead of panicking the writer, matching the wire decoder's
//! never-panic discipline. (`to_log` additionally clamps into
//! `[MIN_POSITIVE, MAX]`, so stored coordinates are always finite and L1
//! distances can never be NaN.)

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Default shard count for [`ShardedLogSelIndex`].
const SHARD_COUNT: usize = 8;

/// Width (in log-selectivity units) of one router band: points are
/// assigned to shards by `floor(Σi ln si / BAND_WIDTH) mod shards`, so
/// nearby instances (small G·L) tend to land in the same shard.
const BAND_WIDTH: f64 = 2.0;

/// A point in log-selectivity space with its instance-list index.
#[derive(Debug, Clone)]
struct Point {
    coords: Vec<f64>,
    item: usize,
}

/// Insert buffer in flat stride-`dims` storage: cloning it (on the
/// publication path, via shard copy-on-write) is three memcpys, never a
/// per-point allocation.
#[derive(Debug, Default, Clone)]
struct FlatPending {
    dims: usize,
    coords: Vec<f64>,
    items: Vec<usize>,
}

impl FlatPending {
    fn new(dims: usize) -> Self {
        FlatPending {
            dims,
            coords: Vec::new(),
            items: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn push(&mut self, coords: &[f64], item: usize) {
        self.coords.extend_from_slice(coords);
        self.items.push(item);
    }

    fn coords_of(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// Move every buffered point out (for rebuilds), clearing the buffer.
    fn drain_into(&mut self, out: &mut Vec<Point>) {
        if self.dims == 0 {
            for &item in &self.items {
                out.push(Point {
                    coords: Vec::new(),
                    item,
                });
            }
        } else {
            for (chunk, &item) in self.coords.chunks(self.dims).zip(&self.items) {
                out.push(Point {
                    coords: chunk.to_vec(),
                    item,
                });
            }
        }
        self.coords.clear();
        self.items.clear();
    }
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Map a selectivity vector to (finite) log space.
// Not `clamp`: `NaN.clamp(..)` is NaN, while `max` drops NaN
// (NaN.max(x) == x) and `min` drops +∞, so every stored coordinate is
// finite and distances are never NaN.
#[allow(clippy::manual_clamp)]
fn to_log_coords(selectivities: &[f64]) -> Vec<f64> {
    selectivities
        .iter()
        .map(|&s| s.max(f64::MIN_POSITIVE).min(f64::MAX).ln())
        .collect()
}

/// Total order on points along `axis`: coordinate first (`total_cmp`),
/// instance index as tie-break. Items are unique within an index, so this
/// order has no ties — `select_nth_unstable_by` under it picks the exact
/// element a full sort would place at the median, making arena builds
/// structurally deterministic.
fn cmp_on_axis(a: &Point, b: &Point, axis: usize) -> Ordering {
    let ca = a.coords.get(axis).copied().unwrap_or(0.0);
    let cb = b.coords.get(axis).copied().unwrap_or(0.0);
    ca.total_cmp(&cb).then(a.item.cmp(&b.item))
}

/// One k-d node in postorder position: children (when present) precede the
/// parent, the right subtree ends at `i - 1` and the left subtree ends at
/// `i - 1 - right_len`. The root is the last node.
#[derive(Debug, Clone, Copy)]
struct KdNode {
    axis: u32,
    left_len: u32,
    right_len: u32,
}

/// Flat postorder k-d tree arena. Coordinates live in one stride-`dims`
/// buffer parallel to `nodes`/`items`.
#[derive(Debug, Default, Clone)]
struct KdArena {
    dims: usize,
    nodes: Vec<KdNode>,
    coords: Vec<f64>,
    items: Vec<usize>,
}

enum BuildTask {
    /// Partition `points[lo..hi]` at `depth` and schedule its subtrees.
    Build { lo: usize, hi: usize, depth: usize },
    /// Append the (already partitioned) median at `at` to the arena.
    Emit {
        at: usize,
        axis: u32,
        left_len: u32,
        right_len: u32,
    },
}

impl KdArena {
    fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Build a balanced arena from `points` without recursion: an explicit
    /// task stack interleaves `Build` (median partition via
    /// `select_nth_unstable_by`) and `Emit` (postorder append) steps.
    fn build(dims: usize, mut points: Vec<Point>) -> KdArena {
        let n = points.len();
        let mut arena = KdArena {
            dims,
            nodes: Vec::with_capacity(n),
            coords: Vec::with_capacity(n * dims),
            items: Vec::with_capacity(n),
        };
        if n == 0 {
            return arena;
        }
        let mut stack = vec![BuildTask::Build {
            lo: 0,
            hi: n,
            depth: 0,
        }];
        while let Some(task) = stack.pop() {
            match task {
                BuildTask::Build { lo, hi, depth } => {
                    if lo >= hi {
                        continue;
                    }
                    let axis = if dims == 0 { 0 } else { depth % dims };
                    let mid = (hi - lo) / 2;
                    points[lo..hi].select_nth_unstable_by(mid, |a, b| cmp_on_axis(a, b, axis));
                    let at = lo + mid;
                    // LIFO order: left expands fully, then right, then the
                    // parent's Emit — exactly postorder. The median at `at`
                    // is outside both child ranges, so it survives their
                    // partitions untouched until Emit reads it.
                    stack.push(BuildTask::Emit {
                        at,
                        axis: axis as u32,
                        left_len: mid as u32,
                        right_len: (hi - at - 1) as u32,
                    });
                    stack.push(BuildTask::Build {
                        lo: at + 1,
                        hi,
                        depth: depth + 1,
                    });
                    stack.push(BuildTask::Build {
                        lo,
                        hi: at,
                        depth: depth + 1,
                    });
                }
                BuildTask::Emit {
                    at,
                    axis,
                    left_len,
                    right_len,
                } => {
                    arena.coords.append(&mut points[at].coords);
                    arena.items.push(points[at].item);
                    arena.nodes.push(KdNode {
                        axis,
                        left_len,
                        right_len,
                    });
                }
            }
        }
        arena
    }

    fn root(&self) -> Option<usize> {
        self.nodes.len().checked_sub(1)
    }

    fn left_of(&self, i: usize) -> Option<usize> {
        let n = self.nodes[i];
        (n.left_len > 0).then(|| i - 1 - n.right_len as usize)
    }

    fn right_of(&self, i: usize) -> Option<usize> {
        (self.nodes[i].right_len > 0).then(|| i - 1)
    }

    fn coords_of(&self, i: usize) -> &[f64] {
        &self.coords[i * self.dims..(i + 1) * self.dims]
    }

    /// Move every stored point back out (for rebuilds), clearing the arena.
    fn drain_points(&mut self, out: &mut Vec<Point>) {
        if self.dims == 0 {
            for &item in &self.items {
                out.push(Point {
                    coords: Vec::new(),
                    item,
                });
            }
        } else {
            for (chunk, &item) in self.coords.chunks(self.dims).zip(&self.items) {
                out.push(Point {
                    coords: chunk.to_vec(),
                    item,
                });
            }
        }
        self.nodes.clear();
        self.coords.clear();
        self.items.clear();
    }

    /// Append every `(distance, item)` within `radius` of `q` (unsorted).
    /// `stack` is caller-provided scratch (left empty on return) so one
    /// query over many shards allocates one stack, not one per shard.
    fn within_into(
        &self,
        q: &[f64],
        radius: f64,
        out: &mut Vec<(f64, usize)>,
        stack: &mut Vec<usize>,
    ) {
        let Some(root) = self.root() else { return };
        stack.push(root);
        while let Some(i) = stack.pop() {
            let c = self.coords_of(i);
            let d = l1(c, q);
            if d <= radius {
                out.push((d, self.items[i]));
            }
            let axis = self.nodes[i].axis as usize;
            let diff = q.get(axis).copied().unwrap_or(0.0) - c.get(axis).copied().unwrap_or(0.0);
            let (near, far) = if diff <= 0.0 {
                (self.left_of(i), self.right_of(i))
            } else {
                (self.right_of(i), self.left_of(i))
            };
            // The splitting plane's L1 contribution alone bounds the far side.
            if diff.abs() <= radius {
                if let Some(f) = far {
                    stack.push(f);
                }
            }
            if let Some(near) = near {
                stack.push(near);
            }
        }
    }

    /// Feed candidates into `best`, near side first, pruning far subtrees
    /// whose splitting-plane bound already exceeds the current worst.
    /// `stack` is caller-provided scratch (left empty on return).
    fn nearest_into(&self, q: &[f64], best: &mut BoundedNearest, stack: &mut Vec<(f64, usize)>) {
        let Some(root) = self.root() else { return };
        // (plane-distance lower bound, node); a deferred far subtree is
        // re-checked against the (possibly improved) worst when popped.
        stack.push((0.0, root));
        while let Some((bound, i)) = stack.pop() {
            if bound > best.worst() {
                continue;
            }
            let c = self.coords_of(i);
            best.push(l1(c, q), self.items[i]);
            let axis = self.nodes[i].axis as usize;
            let diff = q.get(axis).copied().unwrap_or(0.0) - c.get(axis).copied().unwrap_or(0.0);
            let (near, far) = if diff <= 0.0 {
                (self.left_of(i), self.right_of(i))
            } else {
                (self.right_of(i), self.left_of(i))
            };
            if let Some(f) = far {
                // `<=`: boundary ties must be visited so item-order
                // tie-breaks stay canonical.
                if diff.abs() <= best.worst() {
                    stack.push((diff.abs(), f));
                }
            }
            if let Some(near) = near {
                stack.push((0.0, near));
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NearEntry {
    dist: f64,
    item: usize,
}

impl PartialEq for NearEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for NearEntry {}
impl PartialOrd for NearEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NearEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.item.cmp(&other.item))
    }
}

/// Bounded best-k collector: a real max-heap over `(distance, item)` (the
/// heap top is the current worst), so each candidate costs O(log k) instead
/// of the O(k log k) full re-sort the old sorted-`Vec` emulation paid per
/// visited node.
#[derive(Debug)]
struct BoundedNearest {
    k: usize,
    heap: BinaryHeap<NearEntry>,
}

impl BoundedNearest {
    fn new(k: usize) -> Self {
        BoundedNearest {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
        }
    }

    /// Distance of the current k-th best (`∞` while underfull).
    fn worst(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().map_or(f64::INFINITY, |e| e.dist)
        }
    }

    fn push(&mut self, dist: f64, item: usize) {
        if self.k == 0 {
            return;
        }
        let entry = NearEntry { dist, item };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(top) = self.heap.peek() {
            if entry < *top {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// The collected candidates, ascending by `(distance, item)`.
    fn into_sorted(self) -> Vec<(f64, usize)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.dist, e.item))
            .collect()
    }
}

/// Arena-backed k-d index over log-selectivity vectors, mapping to
/// instance-list indices. Unsharded: this is the reference oracle the
/// sharded index must match byte-for-byte, and remains useful where a
/// single self-contained index is wanted (benchmarks, tests).
#[derive(Debug, Default, Clone)]
pub struct LogSelIndex {
    dims: usize,
    arena: KdArena,
    pending: FlatPending,
}

impl LogSelIndex {
    /// Empty index over `dims`-dimensional selectivity vectors.
    pub fn new(dims: usize) -> Self {
        LogSelIndex {
            dims,
            arena: KdArena::default(),
            pending: FlatPending::new(dims),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.arena.len() + self.pending.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a selectivity vector to log space.
    pub fn to_log(selectivities: &[f64]) -> Vec<f64> {
        to_log_coords(selectivities)
    }

    /// Insert an instance-list index at the given selectivities.
    pub fn insert(&mut self, selectivities: &[f64], item: usize) {
        assert_eq!(selectivities.len(), self.dims, "dimension mismatch");
        let coords = to_log_coords(selectivities);
        self.pending.push(&coords, item);
        if self.pending.len() > self.arena.len().max(16) {
            self.rebuild();
        }
    }

    /// Remove every point whose item index fails `keep`, remapping the
    /// survivors with `remap` (the instance list compacts on plan drops).
    pub fn retain_remap(&mut self, keep: impl Fn(usize) -> bool, remap: impl Fn(usize) -> usize) {
        let mut points = Vec::with_capacity(self.len());
        self.arena.drain_points(&mut points);
        self.pending.drain_into(&mut points);
        points.retain(|p| keep(p.item));
        for p in &mut points {
            p.item = remap(p.item);
        }
        self.arena = KdArena::build(self.dims, points);
    }

    fn rebuild(&mut self) {
        let mut points = Vec::with_capacity(self.len());
        self.arena.drain_points(&mut points);
        self.pending.drain_into(&mut points);
        self.arena = KdArena::build(self.dims, points);
    }

    /// All items within L1 distance `radius` of `query` (log-space), as
    /// `(distance, item)` sorted ascending by `(distance, item)`.
    pub fn within(&self, query: &[f64], radius: f64) -> Vec<(f64, usize)> {
        let q = to_log_coords(query);
        let mut out = Vec::new();
        let mut stack = Vec::new();
        self.arena.within_into(&q, radius, &mut out, &mut stack);
        for i in 0..self.pending.len() {
            let d = l1(self.pending.coords_of(i), &q);
            if d <= radius {
                out.push((d, self.pending.items[i]));
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// The `k` nearest items to `query` under L1 distance, ascending.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(f64, usize)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let q = to_log_coords(query);
        let mut best = BoundedNearest::new(k);
        let mut stack = Vec::new();
        self.arena.nearest_into(&q, &mut best, &mut stack);
        for i in 0..self.pending.len() {
            best.push(l1(self.pending.coords_of(i), &q), self.pending.items[i]);
        }
        best.into_sorted()
    }
}

/// One shard: an arena + pending buffer over a log-selectivity subregion,
/// plus the bounding box of every held point (for query-time pruning).
#[derive(Debug, Clone, Default)]
struct IndexShard {
    arena: KdArena,
    pending: FlatPending,
    /// Per-dimension bounds over arena + pending; `lo > hi` while empty.
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl IndexShard {
    fn new(dims: usize) -> Self {
        IndexShard {
            arena: KdArena {
                dims,
                ..KdArena::default()
            },
            pending: FlatPending::new(dims),
            lo: vec![f64::INFINITY; dims],
            hi: vec![f64::NEG_INFINITY; dims],
        }
    }

    fn len(&self) -> usize {
        self.arena.len() + self.pending.len()
    }

    /// Buffer a point; rebuild when the buffer outgrows the tree. Returns
    /// the number of points rebuilt (0 when only buffered).
    fn absorb(&mut self, coords: &[f64], item: usize) -> usize {
        for (axis, &c) in coords.iter().enumerate() {
            self.lo[axis] = self.lo[axis].min(c);
            self.hi[axis] = self.hi[axis].max(c);
        }
        self.pending.push(coords, item);
        if self.pending.len() > self.arena.len().max(16) {
            self.rebuild()
        } else {
            0
        }
    }

    fn rebuild(&mut self) -> usize {
        let dims = self.arena.dims;
        let mut points = Vec::with_capacity(self.len());
        self.arena.drain_points(&mut points);
        self.pending.drain_into(&mut points);
        let n = points.len();
        self.arena = KdArena::build(dims, points);
        n
    }

    /// True iff `keep`/`remap` would leave every held item untouched —
    /// checked read-only so clean shards keep their `Arc` identity.
    fn untouched_by(&self, keep: &impl Fn(usize) -> bool, remap: &impl Fn(usize) -> usize) -> bool {
        self.arena
            .items
            .iter()
            .chain(self.pending.items.iter())
            .all(|&it| keep(it) && remap(it) == it)
    }

    /// Apply `keep`/`remap` and rebuild; returns points rebuilt.
    fn retain_remap(
        &mut self,
        keep: &impl Fn(usize) -> bool,
        remap: &impl Fn(usize) -> usize,
    ) -> usize {
        let dims = self.arena.dims;
        let mut points = Vec::with_capacity(self.len());
        self.arena.drain_points(&mut points);
        self.pending.drain_into(&mut points);
        points.retain(|p| keep(p.item));
        for p in &mut points {
            p.item = remap(p.item);
        }
        let n = points.len();
        self.recompute_bounds(&points);
        self.arena = KdArena::build(dims, points);
        n
    }

    fn recompute_bounds(&mut self, points: &[Point]) {
        self.lo.fill(f64::INFINITY);
        self.hi.fill(f64::NEG_INFINITY);
        for p in points {
            for (axis, &c) in p.coords.iter().enumerate() {
                self.lo[axis] = self.lo[axis].min(c);
                self.hi[axis] = self.hi[axis].max(c);
            }
        }
    }

    /// L1 lower bound from `q` to the shard's bounding box (`∞` if empty).
    fn box_bound(&self, q: &[f64]) -> f64 {
        if self.len() == 0 {
            return f64::INFINITY;
        }
        let mut bound = 0.0;
        for (axis, &qa) in q.iter().enumerate() {
            if qa < self.lo[axis] {
                bound += self.lo[axis] - qa;
            } else if qa > self.hi[axis] {
                bound += qa - self.hi[axis];
            }
        }
        bound
    }

    fn within_into(
        &self,
        q: &[f64],
        radius: f64,
        out: &mut Vec<(f64, usize)>,
        stack: &mut Vec<usize>,
    ) {
        self.arena.within_into(q, radius, out, stack);
        for i in 0..self.pending.len() {
            let d = l1(self.pending.coords_of(i), q);
            if d <= radius {
                out.push((d, self.pending.items[i]));
            }
        }
    }

    fn nearest_into(&self, q: &[f64], best: &mut BoundedNearest, stack: &mut Vec<(f64, usize)>) {
        self.arena.nearest_into(q, best, stack);
        for i in 0..self.pending.len() {
            best.push(l1(self.pending.coords_of(i), q), self.pending.items[i]);
        }
    }
}

/// Sharded log-selectivity index: points are partitioned over subregions
/// (bands of `Σi ln si`), each shard behind an `Arc`.
///
/// `Clone` — the snapshot-publication path — is O(shards) pointer bumps.
/// Mutation goes through `Arc::make_mut`, deep-copying only a shard still
/// shared with a published generation, so consecutive `CacheSnapshot`
/// generations share every untouched shard (`Arc::ptr_eq`) and the
/// writer's publish cost is O(n/shards) amortized instead of O(n).
///
/// Query results (including tie order) are byte-identical to the unsharded
/// [`LogSelIndex`] — see the module docs for why the outputs are canonical
/// in the point multiset.
#[derive(Debug, Clone)]
pub struct ShardedLogSelIndex {
    dims: usize,
    shards: Vec<Arc<IndexShard>>,
    len: usize,
    shard_rebuilds: u64,
    points_rebuilt: u64,
}

impl ShardedLogSelIndex {
    /// Empty index over `dims`-dimensional selectivity vectors with the
    /// default shard count.
    pub fn new(dims: usize) -> Self {
        Self::with_shards(dims, SHARD_COUNT)
    }

    /// Empty index with an explicit shard count (min 1).
    pub fn with_shards(dims: usize, shards: usize) -> Self {
        let n = shards.max(1);
        ShardedLogSelIndex {
            dims,
            shards: (0..n).map(|_| Arc::new(IndexShard::new(dims))).collect(),
            len: 0,
            shard_rebuilds: 0,
            points_rebuilt: 0,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards (fixed at construction).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cumulative `(shard rebuilds, points rebuilt)` over this index's
    /// lifetime — the writer's incremental-maintenance cost, surfaced
    /// through `ScrStats`.
    pub fn rebuild_stats(&self) -> (u64, u64) {
        (self.shard_rebuilds, self.points_rebuilt)
    }

    /// Per-shard storage identity tokens: two clones that share a shard's
    /// storage report equal tokens at that position. Test hook for the
    /// generation-sharing invariant.
    #[doc(hidden)]
    pub fn shard_tokens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| Arc::as_ptr(s) as usize)
            .collect()
    }

    /// Map a selectivity vector to log space.
    pub fn to_log(selectivities: &[f64]) -> Vec<f64> {
        to_log_coords(selectivities)
    }

    /// Deterministic shard router: band of the coordinate sum, folded over
    /// the shard count. A pure function of the coordinates, so an item's
    /// shard never depends on insertion order or index history.
    fn shard_of(&self, coords: &[f64]) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        let total: f64 = coords.iter().sum();
        // Coordinates are finite (clamped in `to_log`), so the band fits
        // comfortably in i64; a hostile NaN would saturate-cast to 0.
        let band = (total / BAND_WIDTH).floor() as i64;
        band.rem_euclid(self.shards.len() as i64) as usize
    }

    /// Insert an instance-list index at the given selectivities. Only the
    /// owning shard is copied (if still shared with a snapshot) and
    /// possibly rebuilt.
    pub fn insert(&mut self, selectivities: &[f64], item: usize) {
        assert_eq!(selectivities.len(), self.dims, "dimension mismatch");
        let coords = to_log_coords(selectivities);
        let s = self.shard_of(&coords);
        let shard = Arc::make_mut(&mut self.shards[s]);
        let rebuilt = shard.absorb(&coords, item);
        self.len += 1;
        if rebuilt > 0 {
            self.shard_rebuilds += 1;
            self.points_rebuilt += rebuilt as u64;
        }
    }

    /// Remove every point whose item index fails `keep`, remapping the
    /// survivors with `remap`. Shards whose items are all kept and
    /// identity-mapped are left untouched (and keep their `Arc` identity);
    /// only dirty shards are copied and rebuilt.
    pub fn retain_remap(&mut self, keep: impl Fn(usize) -> bool, remap: impl Fn(usize) -> usize) {
        self.len = 0;
        for slot in &mut self.shards {
            if slot.untouched_by(&keep, &remap) {
                self.len += slot.len();
                continue;
            }
            let shard = Arc::make_mut(slot);
            let n = shard.retain_remap(&keep, &remap);
            self.shard_rebuilds += 1;
            self.points_rebuilt += n as u64;
            self.len += shard.len();
        }
    }

    /// All items within L1 distance `radius` of `query` (log-space), as
    /// `(distance, item)` sorted ascending by `(distance, item)`.
    /// Byte-identical to [`LogSelIndex::within`] on the same points.
    pub fn within(&self, query: &[f64], radius: f64) -> Vec<(f64, usize)> {
        let q = to_log_coords(query);
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for shard in &self.shards {
            if shard.box_bound(&q) <= radius {
                shard.within_into(&q, radius, &mut out, &mut stack);
            }
        }
        out.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        out
    }

    /// The `k` nearest items to `query` under L1 distance, ascending.
    /// Byte-identical to [`LogSelIndex::nearest`] on the same points.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(f64, usize)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }
        let q = to_log_coords(query);
        // Visit shards in ascending box-distance order; once the next
        // shard's lower bound exceeds the current worst, no remaining
        // shard can contribute (strict `>`: boundary ties still visited).
        let mut order: Vec<(f64, usize)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| (s.box_bound(&q), i))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut best = BoundedNearest::new(k);
        let mut stack = Vec::new();
        for &(bound, i) in &order {
            if bound > best.worst() {
                break;
            }
            self.shards[i].nearest_into(&q, &mut best, &mut stack);
        }
        best.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_rand::rngs::StdRng;
    use pqo_rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[Vec<f64>], q: &[f64], k: usize) -> Vec<(f64, usize)> {
        let ql = LogSelIndex::to_log(q);
        let mut d: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (l1(&LogSelIndex::to_log(p), &ql), i))
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        d.truncate(k);
        d
    }

    #[test]
    fn insert_and_count() {
        let mut idx = LogSelIndex::new(2);
        assert!(idx.is_empty());
        for i in 0..100 {
            idx.insert(&[0.01 + i as f64 * 0.009, 0.5], i);
        }
        assert_eq!(idx.len(), 100);
        let mut sharded = ShardedLogSelIndex::new(2);
        assert!(sharded.is_empty());
        for i in 0..100 {
            sharded.insert(&[0.01 + i as f64 * 0.009, 0.5], i);
        }
        assert_eq!(sharded.len(), 100);
    }

    #[test]
    fn within_radius_matches_gl_bound() {
        // within(q, ln λ) must return exactly the entries with G·L ≤ λ.
        let mut idx = LogSelIndex::new(2);
        let points = [
            [0.1, 0.1],
            [0.12, 0.1],
            [0.4, 0.1],
            [0.1, 0.45],
            [0.105, 0.098],
        ];
        for (i, p) in points.iter().enumerate() {
            idx.insert(p, i);
        }
        let q = [0.1, 0.1];
        let lambda: f64 = 1.5;
        let hits = idx.within(&q, lambda.ln());
        let expect: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let gl: f64 = p
                    .iter()
                    .zip(&q)
                    .map(|(a, b)| if a > b { a / b } else { b / a })
                    .product();
                gl <= lambda
            })
            .map(|(i, _)| i)
            .collect();
        let got: Vec<usize> = hits.iter().map(|&(_, i)| i).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        assert_eq!(got_sorted, expect);
        // Ascending distance = ascending G·L.
        for w in hits.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn nearest_returns_k_ascending() {
        let mut idx = LogSelIndex::new(3);
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![0.01 * (i + 1) as f64, 0.3, 0.02 * (i + 1) as f64])
            .collect();
        for (i, p) in pts.iter().enumerate() {
            idx.insert(p, i);
        }
        let got = idx.nearest(&[0.25, 0.3, 0.5], 5);
        assert_eq!(got.len(), 5);
        let want = brute_nearest(&pts, &[0.25, 0.3, 0.5], 5);
        assert_eq!(got, want);
    }

    #[test]
    fn retain_remap_compacts_items() {
        let mut idx = LogSelIndex::new(1);
        let mut sharded = ShardedLogSelIndex::new(1);
        for i in 0..10 {
            idx.insert(&[0.05 * (i + 1) as f64], i);
            sharded.insert(&[0.05 * (i + 1) as f64], i);
        }
        // Drop even items; odd item j becomes (j-1)/2.
        idx.retain_remap(|i| i % 2 == 1, |i| (i - 1) / 2);
        sharded.retain_remap(|i| i % 2 == 1, |i| (i - 1) / 2);
        assert_eq!(idx.len(), 5);
        assert_eq!(sharded.len(), 5);
        let all = idx.nearest(&[0.5], 10);
        let mut items: Vec<usize> = all.iter().map(|&(_, i)| i).collect();
        items.sort();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
        assert_eq!(sharded.nearest(&[0.5], 10), all);
    }

    #[test]
    fn zero_k_and_empty_index() {
        let idx = LogSelIndex::new(2);
        assert!(idx.nearest(&[0.1, 0.1], 3).is_empty());
        let mut idx = LogSelIndex::new(2);
        idx.insert(&[0.1, 0.1], 0);
        assert!(idx.nearest(&[0.1, 0.1], 0).is_empty());
        let sharded = ShardedLogSelIndex::new(2);
        assert!(sharded.nearest(&[0.1, 0.1], 3).is_empty());
        assert!(sharded.within(&[0.1, 0.1], 10.0).is_empty());
    }

    #[test]
    fn pathological_selectivities_never_panic() {
        // NaN/∞/0 selectivities degrade (clamped coords) but must not
        // panic any query or rebuild path.
        let mut idx = LogSelIndex::new(2);
        let mut sharded = ShardedLogSelIndex::new(2);
        let weird = [
            [f64::NAN, 0.5],
            [f64::INFINITY, 1e-300],
            [0.0, f64::NAN],
            [-1.0, f64::INFINITY],
        ];
        for round in 0..10 {
            for (i, p) in weird.iter().enumerate() {
                idx.insert(p, round * weird.len() + i);
                sharded.insert(p, round * weird.len() + i);
            }
        }
        let q = [f64::NAN, f64::INFINITY];
        assert_eq!(idx.nearest(&q, 7), sharded.nearest(&q, 7));
        assert_eq!(idx.within(&q, 5.0), sharded.within(&q, 5.0));
        idx.retain_remap(|i| i < 20, |i| i);
        sharded.retain_remap(|i| i < 20, |i| i);
        assert_eq!(idx.len(), 20);
        assert_eq!(sharded.len(), 20);
    }

    fn random_points(rng: &mut StdRng, dims: usize, max_n: usize) -> Vec<Vec<f64>> {
        let n = rng.gen_range(1..max_n);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.gen_range(0.001..1.0)).collect())
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force_randomized() {
        let mut rng = StdRng::seed_from_u64(0x5eed_5917);
        for _ in 0..256 {
            let pts = random_points(&mut rng, 3, 120);
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(0.001..1.0)).collect();
            let k = rng.gen_range(1..8usize);
            let mut idx = LogSelIndex::new(3);
            for (i, p) in pts.iter().enumerate() {
                idx.insert(p, i);
            }
            let got = idx.nearest(&q, k);
            let want = brute_nearest(&pts, &q, k);
            assert_eq!(got, want);
        }
    }

    #[test]
    fn within_matches_brute_force_randomized() {
        let mut rng = StdRng::seed_from_u64(0x5eed_3417);
        for _ in 0..256 {
            let pts = random_points(&mut rng, 2, 120);
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(0.001..1.0)).collect();
            let radius = rng.gen_range(0.0..3.0);
            let mut idx = LogSelIndex::new(2);
            for (i, p) in pts.iter().enumerate() {
                idx.insert(p, i);
            }
            let got: Vec<usize> = {
                let mut v: Vec<usize> = idx.within(&q, radius).iter().map(|&(_, i)| i).collect();
                v.sort();
                v
            };
            let ql = LogSelIndex::to_log(&q);
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| l1(&LogSelIndex::to_log(p), &ql) <= radius)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }

    /// Reference recursive builder with the same `(coord, item)` total
    /// order but a full sort per level — `select_nth_unstable_by` must
    /// produce a structurally identical arena (same postorder node,
    /// coordinate, and item sequences).
    fn reference_build(dims: usize, points: Vec<Point>) -> KdArena {
        fn rec(mut points: Vec<Point>, depth: usize, dims: usize, arena: &mut KdArena) {
            if points.is_empty() {
                return;
            }
            let axis = if dims == 0 { 0 } else { depth % dims };
            points.sort_by(|a, b| cmp_on_axis(a, b, axis));
            let mid = points.len() / 2;
            let right: Vec<Point> = points.split_off(mid + 1);
            let mut median = points.pop().expect("mid element");
            let left_len = points.len() as u32;
            let right_len = right.len() as u32;
            rec(points, depth + 1, dims, arena);
            rec(right, depth + 1, dims, arena);
            arena.coords.append(&mut median.coords);
            arena.items.push(median.item);
            arena.nodes.push(KdNode {
                axis: axis as u32,
                left_len,
                right_len,
            });
        }
        let mut arena = KdArena {
            dims,
            ..KdArena::default()
        };
        rec(points, 0, dims, &mut arena);
        arena
    }

    #[test]
    fn select_nth_build_structurally_identical_to_sorted_build() {
        let mut rng = StdRng::seed_from_u64(0x5eed_a12e);
        for _ in 0..64 {
            let dims = rng.gen_range(1..4usize);
            let pts = random_points(&mut rng, dims, 200);
            // Duplicate some coordinates to exercise the item tie-break.
            let points: Vec<Point> = pts
                .iter()
                .chain(pts.iter().take(pts.len() / 2))
                .enumerate()
                .map(|(i, p)| Point {
                    coords: to_log_coords(p),
                    item: i,
                })
                .collect();
            let fast = KdArena::build(dims, points.clone());
            let slow = reference_build(dims, points);
            assert_eq!(fast.items, slow.items);
            assert_eq!(
                fast.coords.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                slow.coords.iter().map(|c| c.to_bits()).collect::<Vec<_>>()
            );
            let fast_nodes: Vec<(u32, u32, u32)> = fast
                .nodes
                .iter()
                .map(|n| (n.axis, n.left_len, n.right_len))
                .collect();
            let slow_nodes: Vec<(u32, u32, u32)> = slow
                .nodes
                .iter()
                .map(|n| (n.axis, n.left_len, n.right_len))
                .collect();
            assert_eq!(fast_nodes, slow_nodes);
        }
    }

    #[test]
    fn sharded_streams_bitwise_match_unsharded_oracle() {
        let mut rng = StdRng::seed_from_u64(0x5eed_54a2);
        for round in 0..64 {
            let dims = rng.gen_range(1..5usize);
            let shards = rng.gen_range(1..6usize);
            let pts = random_points(&mut rng, dims, 250);
            let mut oracle = LogSelIndex::new(dims);
            let mut sharded = ShardedLogSelIndex::with_shards(dims, shards);
            for (i, p) in pts.iter().enumerate() {
                oracle.insert(p, i);
                sharded.insert(p, i);
            }
            for _ in 0..8 {
                let q: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.001..1.0)).collect();
                let k = rng.gen_range(1..10usize);
                let radius = rng.gen_range(0.0..4.0);
                let (a, b) = (oracle.nearest(&q, k), sharded.nearest(&q, k));
                assert_eq!(bits(&a), bits(&b), "nearest diverged round {round}");
                let (a, b) = (oracle.within(&q, radius), sharded.within(&q, radius));
                assert_eq!(bits(&a), bits(&b), "within diverged round {round}");
            }
        }
    }

    fn bits(v: &[(f64, usize)]) -> Vec<(u64, usize)> {
        v.iter().map(|&(d, i)| (d.to_bits(), i)).collect()
    }

    #[test]
    fn clone_shares_shards_until_touched() {
        let mut writer = ShardedLogSelIndex::new(3);
        let mut rng = StdRng::seed_from_u64(0x5eed_c0f7);
        for i in 0..500 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.001..1.0)).collect();
            writer.insert(&p, i);
        }
        let published = writer.clone();
        assert_eq!(published.shard_tokens(), writer.shard_tokens());
        // One more insert must replace exactly the owning shard.
        let p: Vec<f64> = (0..3).map(|_| rng.gen_range(0.001..1.0)).collect();
        writer.insert(&p, 500);
        let before = published.shard_tokens();
        let after = writer.shard_tokens();
        let changed = before.iter().zip(&after).filter(|(a, b)| a != b).count();
        assert_eq!(changed, 1, "exactly one shard may be copied per insert");
        // The published generation still answers from its own storage.
        assert_eq!(published.len(), 500);
        assert_eq!(writer.len(), 501);
    }
}
