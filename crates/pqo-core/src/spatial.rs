//! Spatial index over the instance list (paper Section 6.2).
//!
//! *"...the overheads can also be improved by exploiting [the] idea of
//! checking instances with smaller GL values first. This can be achieved by
//! using a spatial index that can provide such instances without scanning
//! the entire list."*
//!
//! The key observation: for selectivity vectors `a`, `b` with per-dimension
//! ratios `αi = ai/bi`,
//!
//! ```text
//! G·L = ∏_{αi>1} αi · ∏_{αi<1} 1/αi = exp( Σi |ln ai − ln bi| )
//! ```
//!
//! so **G·L is the exponential of the L1 distance in log-selectivity
//! space**. "Smallest G·L first" is exactly a nearest-neighbour walk under
//! the L1 metric, and "selectivity check can pass" is an L1 ball of radius
//! `ln(λ/S)`. This module provides a k-d tree over log-selectivity points
//! with incremental insertion (amortized by rebuilding when the pending
//! buffer outgrows the tree) and best-first nearest-neighbour traversal.

/// A point in log-selectivity space with its instance-list index.
#[derive(Debug, Clone)]
struct Point {
    coords: Vec<f64>,
    item: usize,
}

#[derive(Debug, Clone)]
struct Node {
    point: Point,
    axis: usize,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

/// k-d tree over log-selectivity vectors, mapping to instance-list indices.
///
/// Insertions are buffered; the tree is rebuilt (perfectly balanced) when
/// the buffer exceeds the tree size, giving amortized O(log n) structure
/// without incremental rebalancing. Queries merge the tree walk with a
/// linear scan of the buffer.
///
/// `Clone` is deliberate: the snapshot-published read path
/// ([`crate::snapshot::CacheSnapshot`]) carries a private copy of the index
/// so queries never race a writer's rebuild. The clone is O(n) and runs on
/// the (optimizer-call) write path, never on a reader.
#[derive(Debug, Default, Clone)]
pub struct LogSelIndex {
    dims: usize,
    root: Option<Box<Node>>,
    tree_size: usize,
    pending: Vec<Point>,
}

impl LogSelIndex {
    /// Empty index over `dims`-dimensional selectivity vectors.
    pub fn new(dims: usize) -> Self {
        LogSelIndex {
            dims,
            root: None,
            tree_size: 0,
            pending: Vec::new(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.tree_size + self.pending.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map a selectivity vector to log space.
    pub fn to_log(selectivities: &[f64]) -> Vec<f64> {
        selectivities
            .iter()
            .map(|&s| s.max(f64::MIN_POSITIVE).ln())
            .collect()
    }

    /// Insert an instance-list index at the given selectivities.
    pub fn insert(&mut self, selectivities: &[f64], item: usize) {
        assert_eq!(selectivities.len(), self.dims, "dimension mismatch");
        self.pending.push(Point {
            coords: Self::to_log(selectivities),
            item,
        });
        if self.pending.len() > self.tree_size.max(16) {
            self.rebuild();
        }
    }

    /// Remove every point whose item index fails `keep`, remapping the
    /// survivors with `remap` (the instance list compacts on plan drops).
    pub fn retain_remap(&mut self, keep: impl Fn(usize) -> bool, remap: impl Fn(usize) -> usize) {
        let mut points = Vec::with_capacity(self.len());
        collect(self.root.take(), &mut points);
        points.append(&mut self.pending);
        points.retain(|p| keep(p.item));
        for p in &mut points {
            p.item = remap(p.item);
        }
        self.tree_size = points.len();
        self.root = build(points, 0, self.dims);
    }

    fn rebuild(&mut self) {
        let mut points = Vec::with_capacity(self.len());
        collect(self.root.take(), &mut points);
        points.append(&mut self.pending);
        self.tree_size = points.len();
        self.root = build(points, 0, self.dims);
    }

    /// All items within L1 distance `radius` of `query` (log-space), as
    /// `(distance, item)` sorted by ascending distance.
    pub fn within(&self, query: &[f64], radius: f64) -> Vec<(f64, usize)> {
        let q = Self::to_log(query);
        let mut out = Vec::new();
        range_walk(self.root.as_deref(), &q, radius, &mut out);
        for p in &self.pending {
            let d = l1(&p.coords, &q);
            if d <= radius {
                out.push((d, p.item));
            }
        }
        out.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        out
    }

    /// The `k` nearest items to `query` under L1 distance, ascending.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(f64, usize)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let q = Self::to_log(query);
        // Bounded max-heap of the best k.
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        let mut push = |d: f64, item: usize, heap: &mut Vec<(f64, usize)>| {
            heap.push((d, item));
            heap.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            heap.truncate(k);
        };
        nn_walk(self.root.as_deref(), &q, k, &mut heap, &mut push);
        for p in &self.pending {
            push(l1(&p.coords, &q), p.item, &mut heap);
        }
        heap
    }
}

fn l1(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

fn collect(node: Option<Box<Node>>, out: &mut Vec<Point>) {
    if let Some(n) = node {
        out.push(n.point);
        collect(n.left, out);
        collect(n.right, out);
    }
}

fn build(mut points: Vec<Point>, depth: usize, dims: usize) -> Option<Box<Node>> {
    if points.is_empty() {
        return None;
    }
    let axis = if dims == 0 { 0 } else { depth % dims };
    points.sort_by(|a, b| a.coords[axis].partial_cmp(&b.coords[axis]).unwrap());
    let mid = points.len() / 2;
    let right: Vec<Point> = points.split_off(mid + 1);
    let point = points.pop().expect("mid element");
    Some(Box::new(Node {
        point,
        axis,
        left: build(points, depth + 1, dims),
        right: build(right, depth + 1, dims),
    }))
}

fn range_walk(node: Option<&Node>, q: &[f64], radius: f64, out: &mut Vec<(f64, usize)>) {
    let Some(n) = node else { return };
    let d = l1(&n.point.coords, q);
    if d <= radius {
        out.push((d, n.point.item));
    }
    let diff = q[n.axis] - n.point.coords[n.axis];
    let (near, far) = if diff <= 0.0 {
        (n.left.as_deref(), n.right.as_deref())
    } else {
        (n.right.as_deref(), n.left.as_deref())
    };
    range_walk(near, q, radius, out);
    // The splitting plane's L1 contribution alone bounds the far side.
    if diff.abs() <= radius {
        range_walk(far, q, radius, out);
    }
}

fn nn_walk(
    node: Option<&Node>,
    q: &[f64],
    k: usize,
    heap: &mut Vec<(f64, usize)>,
    push: &mut impl FnMut(f64, usize, &mut Vec<(f64, usize)>),
) {
    let Some(n) = node else { return };
    push(l1(&n.point.coords, q), n.point.item, heap);
    let diff = q[n.axis] - n.point.coords[n.axis];
    let (near, far) = if diff <= 0.0 {
        (n.left.as_deref(), n.right.as_deref())
    } else {
        (n.right.as_deref(), n.left.as_deref())
    };
    nn_walk(near, q, k, heap, push);
    let worst = if heap.len() < k {
        f64::INFINITY
    } else {
        heap[heap.len() - 1].0
    };
    if diff.abs() <= worst {
        nn_walk(far, q, k, heap, push);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_rand::rngs::StdRng;
    use pqo_rand::{Rng, SeedableRng};

    fn brute_nearest(points: &[Vec<f64>], q: &[f64], k: usize) -> Vec<(f64, usize)> {
        let ql = LogSelIndex::to_log(q);
        let mut d: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (l1(&LogSelIndex::to_log(p), &ql), i))
            .collect();
        d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        d.truncate(k);
        d
    }

    #[test]
    fn insert_and_count() {
        let mut idx = LogSelIndex::new(2);
        assert!(idx.is_empty());
        for i in 0..100 {
            idx.insert(&[0.01 + i as f64 * 0.009, 0.5], i);
        }
        assert_eq!(idx.len(), 100);
    }

    #[test]
    fn within_radius_matches_gl_bound() {
        // within(q, ln λ) must return exactly the entries with G·L ≤ λ.
        let mut idx = LogSelIndex::new(2);
        let points = [
            [0.1, 0.1],
            [0.12, 0.1],
            [0.4, 0.1],
            [0.1, 0.45],
            [0.105, 0.098],
        ];
        for (i, p) in points.iter().enumerate() {
            idx.insert(p, i);
        }
        let q = [0.1, 0.1];
        let lambda: f64 = 1.5;
        let hits = idx.within(&q, lambda.ln());
        let expect: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let gl: f64 = p
                    .iter()
                    .zip(&q)
                    .map(|(a, b)| if a > b { a / b } else { b / a })
                    .product();
                gl <= lambda
            })
            .map(|(i, _)| i)
            .collect();
        let got: Vec<usize> = hits.iter().map(|&(_, i)| i).collect();
        let mut got_sorted = got.clone();
        got_sorted.sort();
        assert_eq!(got_sorted, expect);
        // Ascending distance = ascending G·L.
        for w in hits.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn nearest_returns_k_ascending() {
        let mut idx = LogSelIndex::new(3);
        let pts: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![0.01 * (i + 1) as f64, 0.3, 0.02 * (i + 1) as f64])
            .collect();
        for (i, p) in pts.iter().enumerate() {
            idx.insert(p, i);
        }
        let got = idx.nearest(&[0.25, 0.3, 0.5], 5);
        assert_eq!(got.len(), 5);
        let want = brute_nearest(&pts, &[0.25, 0.3, 0.5], 5);
        assert_eq!(got, want);
    }

    #[test]
    fn retain_remap_compacts_items() {
        let mut idx = LogSelIndex::new(1);
        for i in 0..10 {
            idx.insert(&[0.05 * (i + 1) as f64], i);
        }
        // Drop even items; odd item j becomes (j-1)/2.
        idx.retain_remap(|i| i % 2 == 1, |i| (i - 1) / 2);
        assert_eq!(idx.len(), 5);
        let all = idx.nearest(&[0.5], 10);
        let mut items: Vec<usize> = all.iter().map(|&(_, i)| i).collect();
        items.sort();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_k_and_empty_index() {
        let idx = LogSelIndex::new(2);
        assert!(idx.nearest(&[0.1, 0.1], 3).is_empty());
        let mut idx = LogSelIndex::new(2);
        idx.insert(&[0.1, 0.1], 0);
        assert!(idx.nearest(&[0.1, 0.1], 0).is_empty());
    }

    fn random_points(rng: &mut StdRng, dims: usize, max_n: usize) -> Vec<Vec<f64>> {
        let n = rng.gen_range(1..max_n);
        (0..n)
            .map(|_| (0..dims).map(|_| rng.gen_range(0.001..1.0)).collect())
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force_randomized() {
        let mut rng = StdRng::seed_from_u64(0x5eed_5917);
        for _ in 0..256 {
            let pts = random_points(&mut rng, 3, 120);
            let q: Vec<f64> = (0..3).map(|_| rng.gen_range(0.001..1.0)).collect();
            let k = rng.gen_range(1..8usize);
            let mut idx = LogSelIndex::new(3);
            for (i, p) in pts.iter().enumerate() {
                idx.insert(p, i);
            }
            let got = idx.nearest(&q, k);
            let want = brute_nearest(&pts, &q, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                // Items may differ on exact ties; distances must agree.
                assert!((g.0 - w.0).abs() < 1e-9, "tree {} vs brute {}", g.0, w.0);
            }
        }
    }

    #[test]
    fn within_matches_brute_force_randomized() {
        let mut rng = StdRng::seed_from_u64(0x5eed_3417);
        for _ in 0..256 {
            let pts = random_points(&mut rng, 2, 120);
            let q: Vec<f64> = (0..2).map(|_| rng.gen_range(0.001..1.0)).collect();
            let radius = rng.gen_range(0.0..3.0);
            let mut idx = LogSelIndex::new(2);
            for (i, p) in pts.iter().enumerate() {
                idx.insert(p, i);
            }
            let got: Vec<usize> = {
                let mut v: Vec<usize> = idx.within(&q, radius).iter().map(|&(_, i)| i).collect();
                v.sort();
                v
            };
            let ql = LogSelIndex::to_log(&q);
            let want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| l1(&LogSelIndex::to_log(p), &ql) <= radius)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, want);
        }
    }
}
