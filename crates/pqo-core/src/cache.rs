//! The plan cache data structure (paper Section 6.1, Figure 5).
//!
//! The cache holds a **plan list** (the distinct plans, keyed by structural
//! fingerprint) and an **instance list** of 5-tuples
//! `I = <V, PP, C, S, U>` — one per optimized query instance:
//!
//! * `V` — the instance's selectivity vector;
//! * `PP` — pointer to the plan the instance uses (it may differ from the
//!   instance's optimal plan when the redundancy check discarded that plan);
//! * `C` — the optimizer-estimated *optimal* cost at the instance;
//! * `S` — sub-optimality of the pointed-to plan at the instance;
//! * `U` — running count of instances served through this entry.
//!
//! Many instance entries typically point to the same stored plan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::plan::{Plan, PlanFingerprint};
use pqo_optimizer::recost::PreparedRecost;
use pqo_optimizer::svector::SVector;

use crate::spatial::ShardedLogSelIndex;

/// One entry of the instance list — the paper's 5-tuple.
///
/// The two mutable counters (`U` and the Appendix G violation flag) are
/// atomics: `getPlan`'s read path bumps usage and marks violations while
/// holding only a *read* lock on the cache, so concurrent servers never
/// serialize on bookkeeping.
#[derive(Debug)]
pub struct InstanceEntry {
    /// `V`: selectivity vector of the optimized instance.
    pub svector: SVector,
    /// `PP`: fingerprint of the plan this entry points to.
    pub plan: PlanFingerprint,
    /// `C`: optimizer-estimated optimal cost at this instance.
    pub opt_cost: f64,
    /// `S`: sub-optimality of the pointed-to plan at this instance (1.0 when
    /// the pointed-to plan is the instance's optimal plan).
    pub sub_opt: f64,
    /// `U`: number of instances served through this entry.
    usage: AtomicU64,
    /// Appendix G: set when a BCG/PCM violation was detected through this
    /// entry, disabling it for future cost checks.
    violation_detected: AtomicBool,
}

impl InstanceEntry {
    /// Fresh entry with an initial usage count and no violation recorded.
    pub fn new(
        svector: SVector,
        plan: PlanFingerprint,
        opt_cost: f64,
        sub_opt: f64,
        usage: u64,
    ) -> Self {
        InstanceEntry {
            svector,
            plan,
            opt_cost,
            sub_opt,
            usage: AtomicU64::new(usage),
            violation_detected: AtomicBool::new(false),
        }
    }

    /// Entry rebuilt from a persisted snapshot, including its flags.
    pub fn restored(
        svector: SVector,
        plan: PlanFingerprint,
        opt_cost: f64,
        sub_opt: f64,
        usage: u64,
        violation_detected: bool,
    ) -> Self {
        InstanceEntry {
            svector,
            plan,
            opt_cost,
            sub_opt,
            usage: AtomicU64::new(usage),
            violation_detected: AtomicBool::new(violation_detected),
        }
    }

    /// Current usage count `U`.
    pub fn usage(&self) -> u64 {
        self.usage.load(Ordering::Relaxed)
    }

    /// Count one instance served through this entry (lock-free).
    pub fn record_use(&self) {
        self.usage.fetch_add(1, Ordering::Relaxed);
    }

    /// Overwrite the usage count (tests and snapshot tooling).
    pub fn set_usage(&self, usage: u64) {
        self.usage.store(usage, Ordering::Relaxed);
    }

    /// Whether a BCG/PCM violation disabled this entry for cost checks.
    pub fn violation_detected(&self) -> bool {
        self.violation_detected.load(Ordering::Relaxed)
    }

    /// Disable this entry for future cost checks (Appendix G, lock-free).
    pub fn mark_violation(&self) {
        self.violation_detected.store(true, Ordering::Relaxed);
    }
}

impl Clone for InstanceEntry {
    fn clone(&self) -> Self {
        InstanceEntry {
            svector: self.svector.clone(),
            plan: self.plan,
            opt_cost: self.opt_cost,
            sub_opt: self.sub_opt,
            usage: AtomicU64::new(self.usage()),
            violation_detected: AtomicBool::new(self.violation_detected()),
        }
    }
}

/// A plan as stored in the plan list: the arena [`Plan`] plus its
/// [`PreparedRecost`] compilation, initialized once and shared (via the
/// owning `Arc`) by every snapshot generation that holds the plan.
///
/// The prepared form is behind a [`OnceLock`] rather than built in the
/// constructor because one construction path has no engine at hand:
/// [`crate::persist::restore`] rebuilds caches from bytes alone. Serving
/// paths populate it on first use; [`crate::scr::Scr`] populates it eagerly
/// at insert time.
#[derive(Debug)]
pub struct CachedPlan {
    plan: Arc<Plan>,
    prepared: OnceLock<PreparedRecost>,
}

impl CachedPlan {
    /// Wrap a plan, leaving the prepared form to be built on first use.
    pub fn new(plan: Arc<Plan>) -> Self {
        CachedPlan {
            plan,
            prepared: OnceLock::new(),
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// Structural fingerprint.
    pub fn fingerprint(&self) -> PlanFingerprint {
        self.plan.fingerprint()
    }

    /// The prepared-recost compilation, building it through `engine` on
    /// first access (thread-safe; later callers share the same value).
    pub fn prepared(&self, engine: &QueryEngine) -> &PreparedRecost {
        self.prepared
            .get_or_init(|| engine.prepare_recost(&self.plan))
    }

    /// Bytes held by the prepared form, if it has been built yet.
    pub fn prepared_bytes(&self) -> Option<usize> {
        self.prepared.get().map(|p| p.estimated_bytes())
    }
}

/// Estimated plan-cache memory footprint (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Bytes held by the instance list (5-tuples + selectivity vectors).
    pub instance_list_bytes: usize,
    /// Bytes held by the plan list under the tree representation.
    pub plan_list_bytes: usize,
    /// Bytes the plan list would occupy under the Appendix B compact
    /// encoding.
    pub plan_list_compact_bytes: usize,
}

/// The plan cache: plan list + instance list, with a spatial index over the
/// instances' log-selectivity vectors (Section 6.2) kept in sync with every
/// mutation.
///
/// Instance entries are `Arc`-shared: a `Clone` of the cache (how
/// [`crate::snapshot::CacheSnapshot`]s are published) copies the plan map
/// and the entry *pointers*, so the interior-mutable counters (`U`, the
/// violation flag) keep a single identity across every published snapshot —
/// a reader bumping usage through an old snapshot is still visible to the
/// writer's LFU policy. The spatial index is sharded behind `Arc`s
/// ([`ShardedLogSelIndex`]): cloning copies shard *pointers*, and the
/// writer's next mutation deep-copies only the shard it touches — so
/// consecutive snapshot generations share every untouched shard.
#[derive(Debug, Default, Clone)]
pub struct PlanCache {
    plans: HashMap<PlanFingerprint, Arc<CachedPlan>>,
    instances: Vec<Arc<InstanceEntry>>,
    max_plans: usize,
    index: Option<ShardedLogSelIndex>,
}

impl PlanCache {
    /// Empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Number of plans currently stored.
    pub fn num_plans(&self) -> usize {
        self.plans.len()
    }

    /// Maximum number of plans stored at any point in time.
    pub fn max_plans(&self) -> usize {
        self.max_plans
    }

    /// Number of instance entries.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Whether a plan with this fingerprint is cached.
    pub fn contains_plan(&self, fp: PlanFingerprint) -> bool {
        self.plans.contains_key(&fp)
    }

    /// Fetch a cached plan by fingerprint.
    pub fn plan(&self, fp: PlanFingerprint) -> Option<&Arc<Plan>> {
        self.plans.get(&fp).map(|c| c.plan())
    }

    /// Fetch a plan together with its prepared-recost slot.
    pub fn cached(&self, fp: PlanFingerprint) -> Option<&Arc<CachedPlan>> {
        self.plans.get(&fp)
    }

    /// Iterate over cached plans.
    pub fn plans(&self) -> impl Iterator<Item = &Arc<Plan>> {
        self.plans.values().map(|c| c.plan())
    }

    /// Iterate over cached plans with their prepared-recost slots.
    pub fn cached_plans(&self) -> impl Iterator<Item = &Arc<CachedPlan>> {
        self.plans.values()
    }

    /// The instance list. Entries expose their own interior-mutable
    /// counters ([`InstanceEntry::record_use`], `mark_violation`), so no
    /// `&mut` accessor is needed.
    pub fn instances(&self) -> &[Arc<InstanceEntry>] {
        &self.instances
    }

    /// Insert a plan (idempotent) and return its fingerprint.
    pub fn insert_plan(&mut self, plan: Arc<Plan>) -> PlanFingerprint {
        let fp = plan.fingerprint();
        self.plans
            .entry(fp)
            .or_insert_with(|| Arc::new(CachedPlan::new(plan)));
        self.max_plans = self.max_plans.max(self.plans.len());
        fp
    }

    /// Append an instance entry.
    ///
    /// # Panics
    /// Panics (debug) if the entry points to a plan not in the plan list —
    /// the structural invariant of Figure 5.
    pub fn push_instance(&mut self, entry: InstanceEntry) {
        self.push_instance_arc(Arc::new(entry));
    }

    /// Append an already-shared instance entry (the Appendix F sweep and the
    /// snapshot writer re-insert entries without resetting their counters).
    ///
    /// # Panics
    /// Panics (debug) if the entry points to a plan not in the plan list —
    /// the structural invariant of Figure 5.
    pub fn push_instance_arc(&mut self, entry: Arc<InstanceEntry>) {
        debug_assert!(
            self.plans.contains_key(&entry.plan),
            "instance entry points to missing plan"
        );
        let idx = self.instances.len();
        self.index
            .get_or_insert_with(|| ShardedLogSelIndex::new(entry.svector.len()))
            .insert(&entry.svector.0, idx);
        self.instances.push(entry);
    }

    /// The spatial index, if any instance has been inserted. Exposes the
    /// writer's cumulative rebuild counters and (for tests) the per-shard
    /// storage identity tokens.
    pub fn spatial_index(&self) -> Option<&ShardedLogSelIndex> {
        self.index.as_ref()
    }

    /// Instance entries within L1 log-selectivity distance `radius` of
    /// `sv`, i.e. entries whose `G·L` relative to `sv` is at most
    /// `exp(radius)`, in ascending G·L order (spatial index, Section 6.2).
    pub fn instances_within(&self, sv: &SVector, radius: f64) -> Vec<(f64, usize)> {
        match &self.index {
            Some(ix) => ix.within(&sv.0, radius),
            None => Vec::new(),
        }
    }

    /// The `k` instance entries nearest to `sv` in log-selectivity L1
    /// distance (ascending G·L).
    pub fn nearest_instances(&self, sv: &SVector, k: usize) -> Vec<(f64, usize)> {
        match &self.index {
            Some(ix) => ix.nearest(&sv.0, k),
            None => Vec::new(),
        }
    }

    /// Aggregate usage count per plan: the sum of `U` over entries pointing
    /// at it. Used by the plan-budget eviction policy (Section 6.3.1).
    pub fn plan_usage(&self, fp: PlanFingerprint) -> u64 {
        self.instances
            .iter()
            .filter(|e| e.plan == fp)
            .map(|e| e.usage())
            .sum()
    }

    /// The cached plan with minimum aggregate usage (LFU victim).
    pub fn min_usage_plan(&self) -> Option<PlanFingerprint> {
        self.plans
            .keys()
            .map(|&fp| (self.plan_usage(fp), fp))
            .min_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, fp)| fp)
    }

    /// Drop a plan and every instance entry pointing at it (required so
    /// dropping can never violate the sub-optimality guarantee —
    /// Section 6.3.1).
    pub fn drop_plan(&mut self, fp: PlanFingerprint) {
        self.plans.remove(&fp);
        self.remove_instances_of(fp);
    }

    /// Remove and return all instance entries pointing at `fp`, keeping the
    /// plan itself. Used by the existing-plan redundancy sweep (Appendix F).
    pub fn take_instances_of(&mut self, fp: PlanFingerprint) -> Vec<Arc<InstanceEntry>> {
        self.remove_instances_of(fp)
    }

    fn remove_instances_of(&mut self, fp: PlanFingerprint) -> Vec<Arc<InstanceEntry>> {
        // Compute the compaction map before mutating, then keep the spatial
        // index aligned with the compacted instance list.
        let mut remap = vec![usize::MAX; self.instances.len()];
        let mut next = 0usize;
        for (i, e) in self.instances.iter().enumerate() {
            if e.plan != fp {
                remap[i] = next;
                next += 1;
            }
        }
        let (taken, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.instances)
            .into_iter()
            .partition(|e| e.plan == fp);
        self.instances = kept;
        if let Some(ix) = &mut self.index {
            ix.retain_remap(|i| remap[i] != usize::MAX, |i| remap[i]);
        }
        taken
    }

    /// Remove a plan from the plan list only (Appendix F temporarily removes
    /// a plan while probing redundancy).
    pub fn remove_plan_only(&mut self, fp: PlanFingerprint) -> Option<Arc<Plan>> {
        self.plans.remove(&fp).map(|c| c.plan().clone())
    }

    /// Estimated memory footprint (Section 6.1's overheads discussion: the
    /// instance list costs ~100 bytes per optimized instance; the plan list
    /// dominates because each plan must stay executable and re-costable).
    /// `plan_list_compact_bytes` is what the Appendix B byte encoding would
    /// pay instead of the tree representation.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let instance_list_bytes = self
            .instances
            .iter()
            .map(|e| std::mem::size_of::<InstanceEntry>() + e.svector.0.capacity() * 8)
            .sum();
        let plan_list_bytes = self
            .plans
            .values()
            .map(|c| {
                pqo_optimizer::compact::estimated_plan_bytes(c.plan())
                    + c.prepared_bytes().unwrap_or(0)
            })
            .sum();
        let plan_list_compact_bytes = self
            .plans
            .values()
            .map(|c| pqo_optimizer::compact::CompactPlan::encode(c.plan()).bytes_len())
            .sum();
        MemoryBreakdown {
            instance_list_bytes,
            plan_list_bytes,
            plan_list_compact_bytes,
        }
    }

    /// Check the Figure 5 invariant: every instance entry points to a live
    /// plan. Exposed for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for (i, e) in self.instances.iter().enumerate() {
            if !self.plans.contains_key(&e.plan) {
                return Err(format!("instance {i} points to evicted plan {}", e.plan));
            }
            if e.sub_opt.is_nan() || e.sub_opt < 1.0 {
                return Err(format!("instance {i} has S = {} < 1", e.sub_opt));
            }
            if e.opt_cost.is_nan() || e.opt_cost <= 0.0 {
                return Err(format!("instance {i} has non-positive C = {}", e.opt_cost));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pqo_optimizer::plan::{PlanNode, PlanOp};

    fn plan(r: usize) -> Arc<Plan> {
        Arc::new(Plan::new(PlanNode::leaf(PlanOp::SeqScan { relation: r })))
    }

    fn entry(fp: PlanFingerprint, usage: u64) -> InstanceEntry {
        InstanceEntry::new(SVector(vec![0.1]), fp, 100.0, 1.0, usage)
    }

    #[test]
    fn insert_is_idempotent_and_tracks_max() {
        let mut c = PlanCache::new();
        let p = plan(0);
        let fp = c.insert_plan(p.clone());
        assert_eq!(c.insert_plan(p), fp);
        assert_eq!(c.num_plans(), 1);
        let fp2 = c.insert_plan(plan(1));
        assert_eq!(c.num_plans(), 2);
        assert_eq!(c.max_plans(), 2);
        c.drop_plan(fp2);
        assert_eq!(c.num_plans(), 1);
        assert_eq!(c.max_plans(), 2, "max is monotone");
    }

    #[test]
    fn drop_plan_removes_its_instances() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        let fp1 = c.insert_plan(plan(1));
        c.push_instance(entry(fp0, 1));
        c.push_instance(entry(fp1, 2));
        c.push_instance(entry(fp0, 3));
        c.drop_plan(fp0);
        assert_eq!(c.num_instances(), 1);
        assert_eq!(c.instances()[0].plan, fp1);
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn min_usage_plan_is_lfu_victim() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        let fp1 = c.insert_plan(plan(1));
        c.push_instance(entry(fp0, 5));
        c.push_instance(entry(fp1, 1));
        c.push_instance(entry(fp1, 2));
        assert_eq!(c.min_usage_plan(), Some(fp1)); // usage 3 < 5
        c.instances()[1].set_usage(10);
        assert_eq!(c.min_usage_plan(), Some(fp0));
    }

    #[test]
    fn plan_with_no_instances_is_first_victim() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        let fp1 = c.insert_plan(plan(1));
        c.push_instance(entry(fp0, 5));
        assert_eq!(c.min_usage_plan(), Some(fp1));
    }

    #[test]
    fn take_instances_partitions_correctly() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        let fp1 = c.insert_plan(plan(1));
        c.push_instance(entry(fp0, 1));
        c.push_instance(entry(fp1, 2));
        c.push_instance(entry(fp0, 3));
        let taken = c.take_instances_of(fp0);
        assert_eq!(taken.len(), 2);
        assert_eq!(c.num_instances(), 1);
        assert!(c.contains_plan(fp0), "plan itself is kept");
    }

    #[test]
    fn memory_breakdown_reports_all_parts() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        c.push_instance(entry(fp0, 1));
        c.push_instance(entry(fp0, 2));
        let m = c.memory_breakdown();
        assert!(m.instance_list_bytes >= 2 * std::mem::size_of::<InstanceEntry>());
        assert!(m.plan_list_bytes > 0);
        assert!(m.plan_list_compact_bytes > 0);
        assert!(
            m.plan_list_compact_bytes < m.plan_list_bytes,
            "compact encoding must be smaller: {} vs {}",
            m.plan_list_compact_bytes,
            m.plan_list_bytes
        );
    }

    #[test]
    fn spatial_queries_follow_mutations() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        let fp1 = c.insert_plan(plan(1));
        for (i, s) in [0.1, 0.2, 0.4, 0.8].iter().enumerate() {
            c.push_instance(InstanceEntry::new(
                SVector(vec![*s]),
                if i % 2 == 0 { fp0 } else { fp1 },
                10.0,
                1.0,
                1,
            ));
        }
        let near = c.nearest_instances(&SVector(vec![0.1]), 2);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].1, 0, "closest entry is the 0.1 one");
        // Dropping fp0 removes entries 0 and 2; indices compact to 0..2.
        c.drop_plan(fp0);
        assert_eq!(c.num_instances(), 2);
        let all = c.nearest_instances(&SVector(vec![0.1]), 10);
        assert_eq!(all.len(), 2);
        for &(_, idx) in &all {
            assert!(idx < 2, "index must be remapped after compaction");
            assert_eq!(c.instances()[idx].plan, fp1);
        }
    }

    #[test]
    fn invariant_detects_bad_entries() {
        let mut c = PlanCache::new();
        let fp0 = c.insert_plan(plan(0));
        c.push_instance(entry(fp0, 1));
        c.remove_plan_only(fp0);
        assert!(c.check_invariants().is_err());
    }
}
