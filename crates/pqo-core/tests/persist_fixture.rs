//! On-disk format compatibility: a *committed* v2 snapshot fixture.
//!
//! The inline `persist` tests prove save/restore roundtrips within one
//! build; this suite pins the format across builds. The fixture under
//! `tests/fixtures/` was produced by the `regenerate_fixture` test below
//! and is checked into the repository — today's reader must load those
//! exact bytes, reproduce them bit-for-bit on re-save, and reject a
//! bumped version digit with the typed
//! [`RestoreError::UnsupportedVersion`] error rather than a decode crash.
//!
//! If the wire format ever changes intentionally, bump the magic to a new
//! version, keep this fixture loading via a compat path, and commit an
//! additional fixture for the new version — never overwrite this one
//! silently.

use std::sync::Arc;

use pqo_core::persist::{restore_with_generation, save_snapshot, RestoreError};
use pqo_core::scr::{Scr, ScrConfig};
use pqo_core::{CacheSnapshot, OnlinePqo};
use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::svector::{compute_svector, instance_for_target};
use pqo_optimizer::template::{QueryTemplate, RangeOp, TemplateBuilder};

/// Bytes as committed; regenerated only by `regenerate_fixture`.
const FIXTURE: &[u8] = include_bytes!("fixtures/scr_cache_v2.pqo-cache");

/// λ the fixture was warmed under (part of the fixture's contract).
const LAMBDA: f64 = 1.5;
/// Generation stamp the fixture was captured at.
const GENERATION: u64 = 7;

/// The canonical orders ⋈ lineitem fixture template (mirrors the crate's
/// internal test fixture, rebuilt here because integration tests cannot
/// see `#[cfg(test)]` helpers).
fn fixture_template() -> Arc<QueryTemplate> {
    let cat = pqo_catalog::schemas::tpch_skew();
    let mut b = TemplateBuilder::new("persist_fixture");
    let o = b.relation(cat.expect_table("orders"), "o");
    let l = b.relation(cat.expect_table("lineitem"), "l");
    b.join((o, "orders_pk"), (l, "orders_fk"));
    b.param(o, "o_totalprice", RangeOp::Le);
    b.param(l, "l_extendedprice", RangeOp::Le);
    b.build()
}

/// Deterministically warm an SCR with the fixed workload the fixture was
/// built from: 24 instances swept across the first selectivity axis.
fn warmed_scr() -> Scr {
    let t = fixture_template();
    let engine = QueryEngine::new(Arc::clone(&t));
    let mut scr = Scr::new(LAMBDA).expect("valid λ");
    for i in 0..24 {
        let target = [0.03 + 0.85 * (i as f64 / 24.0), 0.35];
        let inst = instance_for_target(&t, &target);
        let sv = compute_svector(&t, &inst);
        let _ = scr.get_plan(&inst, &sv, &engine);
    }
    scr
}

#[test]
fn committed_fixture_restores_and_resaves_bit_identically() {
    let (scr, generation) =
        restore_with_generation(ScrConfig::new(LAMBDA).expect("valid λ"), &mut &FIXTURE[..])
            .expect("committed v2 fixture must keep loading");
    assert_eq!(generation, GENERATION, "generation stamp drifted");
    assert!(scr.cache().num_plans() > 0, "fixture carries no plans");
    assert!(
        scr.cache().num_instances() > 0,
        "fixture carries no entries"
    );
    scr.cache()
        .check_invariants()
        .expect("restored cache invariants");

    // Round the restored state back through the writer: the bytes must be
    // identical to what is committed, proving the format is stable in both
    // directions (no silent field reordering, renumbering, or re-encoding).
    let snap = CacheSnapshot::capture_at(&scr, generation);
    let mut resaved = Vec::new();
    save_snapshot(&snap, &mut resaved).expect("re-save");
    assert_eq!(
        resaved, FIXTURE,
        "re-saving the restored fixture changed its bytes: the on-disk \
         format drifted — add a new version instead"
    );
}

#[test]
fn restored_fixture_serves_its_warm_region() {
    let mut scr =
        restore_with_generation(ScrConfig::new(LAMBDA).expect("valid λ"), &mut &FIXTURE[..])
            .expect("fixture loads")
            .0;
    let t = fixture_template();
    let engine = QueryEngine::new(Arc::clone(&t));
    let inst = instance_for_target(&t, &[0.45, 0.35]);
    let sv = compute_svector(&t, &inst);
    let choice = scr.get_plan(&inst, &sv, &engine);
    assert!(
        !choice.optimized,
        "an instance inside the fixture's warm region re-optimized: the \
         restored entries are not being consulted"
    );
}

#[test]
fn bumped_version_digit_is_rejected_with_typed_error() {
    let mut bumped = FIXTURE.to_vec();
    assert_eq!(&bumped[..8], b"PQOCACH2", "fixture header moved");
    bumped[7] = b'3';
    let err = restore_with_generation(
        ScrConfig::new(LAMBDA).expect("valid λ"),
        &mut bumped.as_slice(),
    )
    .expect_err("a future version must not decode");
    assert!(
        matches!(err, RestoreError::UnsupportedVersion { version: b'3' }),
        "expected UnsupportedVersion, got: {err}"
    );
    // The error message names the version so operators can tell a
    // too-new snapshot from corruption.
    assert!(err.to_string().contains('3'), "undiagnosable error: {err}");
}

/// Regenerates `tests/fixtures/scr_cache_v2.pqo-cache`. Run explicitly via
/// `cargo test -p pqo-core --test persist_fixture regenerate -- --ignored`
/// *only* when intentionally re-baselining, then commit the new bytes.
#[test]
#[ignore = "writes the committed fixture; run only to re-baseline"]
fn regenerate_fixture() {
    let scr = warmed_scr();
    let snap = CacheSnapshot::capture_at(&scr, GENERATION);
    let mut bytes = Vec::new();
    save_snapshot(&snap, &mut bytes).expect("serialize");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/scr_cache_v2.pqo-cache");
    std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
    std::fs::write(&path, &bytes).expect("write fixture");
    println!("wrote {} bytes to {}", bytes.len(), path.display());
}
