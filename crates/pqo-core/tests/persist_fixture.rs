//! On-disk format compatibility: *committed* snapshot fixtures.
//!
//! The inline `persist` tests prove save/restore roundtrips within one
//! build; this suite pins the format across builds. The fixtures under
//! `tests/fixtures/` were produced by the `regenerate_fixture` test below
//! and are checked into the repository — today's reader must load the
//! current-version (v3) bytes exactly, reproduce them bit-for-bit on
//! re-save, keep loading the older v2 fixture through the compat path, and
//! reject a bumped version digit with the typed
//! [`RestoreError::UnsupportedVersion`] error rather than a decode crash.
//!
//! If the wire format ever changes intentionally, bump the magic to a new
//! version, keep these fixtures loading via compat paths, and commit an
//! additional fixture for the new version — never overwrite these ones
//! silently.

use std::sync::Arc;

use pqo_core::persist::{restore_with_generation, save_snapshot, RestoreError};
use pqo_core::scr::{Scr, ScrConfig};
use pqo_core::{CacheSnapshot, OnlinePqo, PolicyId};
use pqo_optimizer::engine::QueryEngine;
use pqo_optimizer::svector::{compute_svector, instance_for_target};
use pqo_optimizer::template::{QueryTemplate, RangeOp, TemplateBuilder};

/// v3 bytes as committed; regenerated only by `regenerate_fixture`.
const FIXTURE_V3: &[u8] = include_bytes!("fixtures/scr_cache_v3.pqo-cache");
/// v2 bytes as committed by the release that wrote them (no policy tag);
/// pinned forever as the compat-path fixture.
const FIXTURE_V2: &[u8] = include_bytes!("fixtures/scr_cache_v2.pqo-cache");

/// λ the fixtures were warmed under (part of the fixture contract).
const LAMBDA: f64 = 1.5;
/// Generation stamp the fixtures were captured at.
const GENERATION: u64 = 7;

/// The canonical orders ⋈ lineitem fixture template (mirrors the crate's
/// internal test fixture, rebuilt here because integration tests cannot
/// see `#[cfg(test)]` helpers).
fn fixture_template() -> Arc<QueryTemplate> {
    let cat = pqo_catalog::schemas::tpch_skew();
    let mut b = TemplateBuilder::new("persist_fixture");
    let o = b.relation(cat.expect_table("orders"), "o");
    let l = b.relation(cat.expect_table("lineitem"), "l");
    b.join((o, "orders_pk"), (l, "orders_fk"));
    b.param(o, "o_totalprice", RangeOp::Le);
    b.param(l, "l_extendedprice", RangeOp::Le);
    b.build()
}

/// Deterministically warm an SCR with the fixed workload the fixtures were
/// built from: 24 instances swept across the first selectivity axis.
fn warmed_scr() -> Scr {
    let t = fixture_template();
    let engine = QueryEngine::new(Arc::clone(&t));
    let mut scr = Scr::new(LAMBDA).expect("valid λ");
    for i in 0..24 {
        let target = [0.03 + 0.85 * (i as f64 / 24.0), 0.35];
        let inst = instance_for_target(&t, &target);
        let sv = compute_svector(&t, &inst);
        let _ = scr.get_plan(&inst, &sv, &engine);
    }
    scr
}

#[test]
fn committed_fixture_restores_and_resaves_bit_identically() {
    let (scr, generation) = restore_with_generation(
        ScrConfig::new(LAMBDA).expect("valid λ"),
        &mut &FIXTURE_V3[..],
    )
    .expect("committed v3 fixture must keep loading");
    assert_eq!(generation, GENERATION, "generation stamp drifted");
    assert!(scr.cache().num_plans() > 0, "fixture carries no plans");
    assert!(
        scr.cache().num_instances() > 0,
        "fixture carries no entries"
    );
    scr.cache()
        .check_invariants()
        .expect("restored cache invariants");

    // Round the restored state back through the writer: the bytes must be
    // identical to what is committed, proving the format is stable in both
    // directions (no silent field reordering, renumbering, or re-encoding).
    let snap = CacheSnapshot::capture_at(&scr, generation);
    let mut resaved = Vec::new();
    save_snapshot(&snap, &mut resaved).expect("re-save");
    assert_eq!(
        resaved, FIXTURE_V3,
        "re-saving the restored fixture changed its bytes: the on-disk \
         format drifted — add a new version instead"
    );
}

#[test]
fn committed_v2_fixture_keeps_loading_through_compat_path() {
    // The v2 fixture predates the policy tag: it must restore as SCR with
    // the same generation and the same cache shape as the v3 fixture (both
    // were built from the identical warm workload).
    let (scr, generation) = restore_with_generation(
        ScrConfig::new(LAMBDA).expect("valid λ"),
        &mut &FIXTURE_V2[..],
    )
    .expect("committed v2 fixture must keep loading");
    assert_eq!(generation, GENERATION, "generation stamp drifted");
    scr.cache()
        .check_invariants()
        .expect("restored cache invariants");

    let (v3, _) = restore_with_generation(
        ScrConfig::new(LAMBDA).expect("valid λ"),
        &mut &FIXTURE_V3[..],
    )
    .expect("v3 fixture loads");
    assert_eq!(scr.cache().num_plans(), v3.cache().num_plans());
    assert_eq!(scr.cache().num_instances(), v3.cache().num_instances());

    // And the policy check applies to v2 blobs too: a non-SCR configuration
    // refuses them with the typed error.
    let err = restore_with_generation(
        ScrConfig::new(LAMBDA)
            .expect("valid λ")
            .with_policy(PolicyId::Lec),
        &mut &FIXTURE_V2[..],
    )
    .expect_err("an SCR-era blob must not restore into an LEC service");
    assert!(
        matches!(
            err,
            RestoreError::PolicyMismatch {
                expected: PolicyId::Lec,
                found: PolicyId::Scr,
            }
        ),
        "{err}"
    );
}

#[test]
fn restored_fixture_serves_its_warm_region() {
    let mut scr = restore_with_generation(
        ScrConfig::new(LAMBDA).expect("valid λ"),
        &mut &FIXTURE_V3[..],
    )
    .expect("fixture loads")
    .0;
    let t = fixture_template();
    let engine = QueryEngine::new(Arc::clone(&t));
    let inst = instance_for_target(&t, &[0.45, 0.35]);
    let sv = compute_svector(&t, &inst);
    let choice = scr.get_plan(&inst, &sv, &engine);
    assert!(
        !choice.optimized,
        "an instance inside the fixture's warm region re-optimized: the \
         restored entries are not being consulted"
    );
}

#[test]
fn bumped_version_digit_is_rejected_with_typed_error() {
    let mut bumped = FIXTURE_V3.to_vec();
    assert_eq!(&bumped[..8], b"PQOCACH3", "fixture header moved");
    bumped[7] = b'4';
    let err = restore_with_generation(
        ScrConfig::new(LAMBDA).expect("valid λ"),
        &mut bumped.as_slice(),
    )
    .expect_err("a future version must not decode");
    assert!(
        matches!(err, RestoreError::UnsupportedVersion { version: b'4' }),
        "expected UnsupportedVersion, got: {err}"
    );
    // The error message names the version so operators can tell a
    // too-new snapshot from corruption.
    assert!(err.to_string().contains('4'), "undiagnosable error: {err}");
}

/// Regenerates `tests/fixtures/scr_cache_v3.pqo-cache`. Run explicitly via
/// `cargo test -p pqo-core --test persist_fixture regenerate -- --ignored`
/// *only* when intentionally re-baselining, then commit the new bytes. The
/// v2 fixture is never rewritten — it pins the historical format.
#[test]
#[ignore = "writes the committed fixture; run only to re-baseline"]
fn regenerate_fixture() {
    let scr = warmed_scr();
    let snap = CacheSnapshot::capture_at(&scr, GENERATION);
    let mut bytes = Vec::new();
    save_snapshot(&snap, &mut bytes).expect("serialize");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/scr_cache_v3.pqo-cache");
    std::fs::create_dir_all(path.parent().unwrap()).expect("fixtures dir");
    std::fs::write(&path, &bytes).expect("write fixture");
    println!("wrote {} bytes to {}", bytes.len(), path.display());
}
