//! Satellite: persist v1 blobs must restore through the *full* service
//! warm-restart path — `pqo serve --snapshot-dir` over a v1 file — not
//! just through the unit-level fixture tests. The v1 format predates both
//! the generation stamp (v2) and the policy tag (v3), so a successful
//! warm restart proves the whole compat chain: v1 header → generation 0 →
//! implied SCR policy → registered service → snapshot re-flushed as the
//! current version on graceful shutdown.
//!
//! A second leg pins the policy gate at the same level: serving the v1
//! blob under `--policy lec` must refuse startup with the typed mismatch
//! diagnostic rather than silently adopting SCR-era cache contents.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const TEMPLATE: &str = "tpch_skew_A_d2";
const MAGIC_V1: &[u8; 8] = b"PQOCACH1";
const MAGIC_V3: &[u8; 8] = b"PQOCACH3";
/// v3 header: 8 magic + 8 generation + 1 policy tag.
const V3_HEADER_LEN: usize = 17;

fn pqo() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pqo"))
}

fn unique_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "pqo-warm-restart-v1-{label}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Build a v1 cache blob the way an old release would have written it:
/// warm a cache through `pqo run --save-cache` (current format), then
/// splice the v1 magic onto the body. The body layout is unchanged across
/// versions — v2 added the generation stamp and v3 the policy tag, both
/// strictly inside the header — so this reproduces genuine v1 bytes.
fn write_v1_blob(dir: &Path) -> PathBuf {
    let current = dir.join("current.pqo-cache");
    let out = pqo()
        .args([
            "run",
            "--template",
            TEMPLATE,
            "--m",
            "40",
            "--seed",
            "7",
            "--save-cache",
        ])
        .arg(&current)
        .output()
        .expect("run pqo run");
    assert!(
        out.status.success(),
        "warming run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&current).expect("read saved cache");
    assert_eq!(&bytes[..8], MAGIC_V3, "save no longer writes v3");
    let mut v1 = MAGIC_V1.to_vec();
    v1.extend_from_slice(&bytes[V3_HEADER_LEN..]);
    let path = dir.join(format!("{TEMPLATE}.pqo-cache"));
    std::fs::write(&path, &v1).expect("write v1 blob");
    path
}

/// Spawn `pqo serve` over `dir` and wait for the startup banner, returning
/// the child, its ephemeral address, every banner line seen, and the live
/// stdout reader (which must stay open until exit — closing it would kill
/// the server's exit summary with a broken pipe).
fn spawn_serve(
    dir: &Path,
    extra: &[&str],
) -> (
    Child,
    String,
    Vec<String>,
    BufReader<std::process::ChildStdout>,
) {
    let mut child = pqo()
        .args(["serve", "--listen", "127.0.0.1:0", "--template", TEMPLATE])
        .arg("--snapshot-dir")
        .arg(dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pqo serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut lines = Vec::new();
    let mut addr = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).expect("read server banner") == 0 {
            break;
        }
        let line = line.trim_end().to_string();
        if let Some(a) = line.strip_prefix("listening on ") {
            addr = a.to_string();
        }
        let done = line.starts_with("serving ");
        lines.push(line);
        if done {
            break;
        }
    }
    assert!(!addr.is_empty(), "no listen line in banner: {lines:?}");
    (child, addr, lines, reader)
}

fn wait_exit(child: &mut Child) -> std::process::ExitStatus {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some(status) = child.try_wait().expect("poll child") {
            return status;
        }
        assert!(Instant::now() < deadline, "server did not exit in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn v1_blob_warm_restarts_through_pqo_serve_and_reflushes_as_v3() {
    let dir = unique_dir("restore");
    write_v1_blob(&dir);

    let (mut child, addr, banner, mut server_out) = spawn_serve(&dir, &[]);
    assert!(
        banner.iter().any(|l| l.starts_with("restored ")),
        "server did not report restoring the v1 blob: {banner:?}"
    );

    // The restored cache must actually serve: a STATS round trip through a
    // real client shows plans and the SCR policy id.
    let out = pqo()
        .args(["client", "--connect", &addr, "--template", TEMPLATE])
        .output()
        .expect("run pqo client stats");
    assert!(
        out.status.success(),
        "stats against warm server failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stats = String::from_utf8_lossy(&out.stdout).to_string();
    let field = |name: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(name))
            .unwrap_or_else(|| panic!("no `{name}` in stats:\n{stats}"))
            .trim_start()
            .trim_start_matches(':')
            .trim()
            .parse()
            .expect("numeric stat")
    };
    assert!(field("num_plans") > 0, "restored cache serves no plans");
    assert_eq!(field("policy_id"), 0, "v1 blob must restore as SCR");

    let out = pqo()
        .args(["client", "--connect", &addr, "--op", "shutdown"])
        .output()
        .expect("run pqo client shutdown");
    assert!(out.status.success(), "shutdown failed");
    // Drain the exit summary so the server never sees a broken pipe.
    let mut summary = String::new();
    std::io::Read::read_to_string(&mut server_out, &mut summary).expect("drain exit summary");
    assert!(wait_exit(&mut child).success(), "server exited non-zero");
    assert!(
        summary.contains("policy              : scr"),
        "exit summary does not name the policy:\n{summary}"
    );

    // Graceful shutdown re-flushes the snapshot in the current format: the
    // v1 file on disk has been upgraded to v3 with an SCR policy tag.
    let bytes = std::fs::read(dir.join(format!("{TEMPLATE}.pqo-cache"))).expect("flushed blob");
    assert_eq!(&bytes[..8], MAGIC_V3, "flush did not upgrade v1 to v3");
    assert_eq!(bytes[16], 0, "flushed policy tag is not SCR");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn v1_blob_is_refused_by_a_non_scr_service() {
    let dir = unique_dir("mismatch");
    write_v1_blob(&dir);

    let out = pqo()
        .args(["serve", "--listen", "127.0.0.1:0", "--template", TEMPLATE])
        .arg("--snapshot-dir")
        .arg(&dir)
        .args(["--policy", "lec"])
        .output()
        .expect("run pqo serve --policy lec");
    assert!(
        !out.status.success(),
        "an LEC service must refuse an SCR-era snapshot"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("policy mismatch") && stderr.contains("lec") && stderr.contains("scr"),
        "undiagnosable refusal: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
