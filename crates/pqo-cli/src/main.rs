//! `pqo` — command-line explorer for the PQO reproduction.
//!
//! ```text
//! pqo templates [--catalog NAME]
//! pqo explain  --template ID --sel S1,S2,...
//! pqo recost   --template ID --plan-at S1,... --at S1,...
//! pqo run      --template ID [--tech scr|pcm|ellipse|density|ranges|once]
//!              [--lambda X] [--m N] [--seed N] [--spatial-threshold N]
//!              [--recost-fetch-factor N]
//!              [--save-cache FILE] [--load-cache FILE]   (scr only)
//! pqo cache    --template ID [--lambda X] [--m N] [--spatial-threshold N]
//!              [--recost-fetch-factor N]
//! pqo serve    --template ID [--lambda X] [--m N] [--seed N] [--batch N]
//!              [--spatial-threshold N] [--recost-fetch-factor N]
//! pqo serve    --listen ADDR --template ID[,ID...] [--templates-dir DIR]
//!              [--lambda X] [--policy scr|lec|penalty] [--snapshot-dir DIR]
//!              [--max-conns N] [--workers N]
//!              [--primary | --replica-of ADDR]
//! pqo client   --connect ADDR
//!              [--op plan|run|stats|explain|follow-lag|shutdown|idle]
//!              [--template ID | --sql-file PATH] [--sel S1,...]
//!              [--dialect postgres|mysql|duckdb] [--m N] [--seed N]
//!              [--batch N] [--check BOOL] [--policy scr|lec|penalty]
//!              [--conns N] [--hold-ms T] [--count N] [--interval-ms T]
//! ```

use std::process::exit;
use std::sync::Arc;

use pqo_core::baselines::{Density, Ellipse, OptimizeOnce, Pcm, Ranges};
use pqo_core::engine::QueryEngine;
use pqo_core::runner::{run_sequence, GroundTruth};
use pqo_core::scr::Scr;
use pqo_core::OnlinePqo;
use pqo_optimizer::svector::{compute_svector, instance_for_target, SVector};
use pqo_workload::corpus::{corpus, TemplateSpec};

mod args;
mod net;
use args::Args;

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        usage();
        exit(2);
    }
    let cmd = argv.remove(0);
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
            exit(2);
        }
    };
    let result = match cmd.as_str() {
        "templates" => templates(&args),
        "explain" => explain(&args),
        "recost" => recost_cmd(&args),
        "run" => run_cmd(&args),
        "cache" => cache_cmd(&args),
        "serve" => serve_cmd(&args),
        "client" => net::client_cmd(&args),
        other => {
            eprintln!("error: unknown command `{other}`");
            usage();
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

fn usage() {
    eprintln!(
        "usage:\n  pqo templates [--catalog NAME]\n  pqo explain --template ID --sel S1,S2,...\n  \
         pqo recost --template ID --plan-at S1,... --at S1,...\n  \
         pqo run --template ID [--tech scr|pcm|ellipse|density|ranges|once] [--lambda X] [--m N] [--seed N]\n  \
                 [--spatial-threshold N] [--recost-fetch-factor N] [--save-cache FILE] [--load-cache FILE]\n  \
         pqo cache --template ID [--lambda X] [--m N] [--spatial-threshold N] [--recost-fetch-factor N]\n  \
         pqo serve --template ID [--lambda X] [--m N] [--seed N] [--batch N] [--spatial-threshold N]\n  \
                 [--recost-fetch-factor N]\n  \
         pqo serve --listen ADDR --template ID[,ID...] [--templates-dir DIR] [--lambda X] [--policy scr|lec|penalty]\n  \
                 [--snapshot-dir DIR] [--max-conns N] [--workers N] [--primary | --replica-of ADDR]\n  \
         pqo client --connect ADDR [--op plan|run|stats|explain|follow-lag|shutdown|idle]\n  \
                 [--template ID | --sql-file PATH] [--sel S1,...] [--dialect postgres|mysql|duckdb]\n  \
                 [--m N] [--seed N] [--batch N] [--check BOOL] [--policy scr|lec|penalty] [--conns N] [--hold-ms T]\n  \
                 [--count N] [--interval-ms T]"
    );
}

pub(crate) fn spec(args: &Args) -> Result<&'static TemplateSpec, String> {
    let id = args.get("template")?;
    corpus()
        .iter()
        .find(|s| s.id == id)
        .ok_or_else(|| format!("unknown template `{id}` (try `pqo templates`)"))
}

pub(crate) fn sels(args: &Args, key: &str, d: usize) -> Result<Vec<f64>, String> {
    let raw = args.get(key)?;
    let v: Result<Vec<f64>, _> = raw
        .split(',')
        .map(str::trim)
        .map(str::parse::<f64>)
        .collect();
    let v = v.map_err(|e| format!("--{key}: {e}"))?;
    if v.len() != d {
        return Err(format!(
            "--{key}: expected {d} selectivities, got {}",
            v.len()
        ));
    }
    if v.iter().any(|s| !(*s > 0.0 && *s <= 1.0)) {
        return Err(format!("--{key}: selectivities must lie in (0, 1]"));
    }
    Ok(v)
}

/// SCR configuration from CLI flags: λ plus the optional
/// `--policy scr|lec|penalty` serving-policy selector, the optional
/// `--spatial-threshold N` crossover knob (`0` = always use the spatial
/// index, large values = linear scan only) and the optional
/// `--recost-fetch-factor N` over-fetch multiplier for the indexed cost
/// check's candidate query.
pub(crate) fn scr_config(args: &Args, lambda: f64) -> Result<pqo_core::scr::ScrConfig, String> {
    let mut cfg = pqo_core::scr::ScrConfig::new(lambda).map_err(|e| e.to_string())?;
    if let Some(raw) = args.opt("policy") {
        let policy = pqo_core::PolicyId::parse(&raw)
            .ok_or_else(|| format!("--policy: unknown policy `{raw}` (scr|lec|penalty)"))?;
        cfg = cfg.with_policy(policy);
    }
    if let Some(raw) = args.opt("spatial-threshold") {
        let threshold: usize = raw
            .parse()
            .map_err(|e| format!("--spatial-threshold: {e}"))?;
        cfg = cfg.with_spatial_index_threshold(threshold);
    }
    if let Some(raw) = args.opt("recost-fetch-factor") {
        let factor: usize = raw
            .parse()
            .map_err(|e| format!("--recost-fetch-factor: {e}"))?;
        cfg = cfg.with_recost_fetch_factor(factor);
    }
    Ok(cfg)
}

fn templates(args: &Args) -> Result<(), String> {
    let filter = args.opt("catalog");
    println!(
        "{:<20} {:<10} {:>2} {:>5} {:>6}  relations",
        "id", "catalog", "d", "rels", "edges"
    );
    for s in corpus() {
        if let Some(c) = &filter {
            if s.catalog != *c {
                continue;
            }
        }
        let rels: Vec<&str> = s
            .template
            .relations
            .iter()
            .map(|r| r.alias.as_str())
            .collect();
        println!(
            "{:<20} {:<10} {:>2} {:>5} {:>6}  {}",
            s.id,
            s.catalog,
            s.dimensions,
            s.template.num_relations(),
            s.template.join_edges.len(),
            rels.join(", ")
        );
    }
    Ok(())
}

fn explain(args: &Args) -> Result<(), String> {
    let spec = spec(args)?;
    let target = sels(args, "sel", spec.dimensions)?;
    let inst = instance_for_target(&spec.template, &target);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let sv = engine.compute_svector(&inst);
    let opt = engine.optimize(&sv);
    println!("template : {} (d = {})", spec.id, spec.dimensions);
    println!(
        "sVector  : {:?}",
        sv.0.iter().map(|s| format!("{s:.4}")).collect::<Vec<_>>()
    );
    println!("cost     : {:.2}", opt.cost);
    println!("{}", opt.plan.display(&spec.template));
    Ok(())
}

fn recost_cmd(args: &Args) -> Result<(), String> {
    let spec = spec(args)?;
    let d = spec.dimensions;
    let at_e = sels(args, "plan-at", d)?;
    let at_c = sels(args, "at", d)?;
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let sv_e = compute_svector(&spec.template, &instance_for_target(&spec.template, &at_e));
    let sv_c = compute_svector(&spec.template, &instance_for_target(&spec.template, &at_c));
    let opt_e = engine.optimize(&sv_e);
    let opt_c = engine.optimize_untracked(&sv_c);
    let recost = engine.recost(&opt_e.plan, &sv_c);
    let (g, l) = sv_c.g_and_l(&sv_e);
    let r = recost / opt_e.cost;
    println!("plan optimized at {:?}  (cost {:.2})", at_e, opt_e.cost);
    println!(
        "re-costed at      {:?}  -> Cost(Pe, qc) = {:.2}",
        at_c, recost
    );
    println!(
        "optimal at qc                 -> Cost(Pc, qc) = {:.2}",
        opt_c.cost
    );
    println!();
    println!("G = {g:.4}  L = {l:.4}  R = {r:.4}");
    println!("selectivity bound  G*L = {:.4}", g * l);
    println!("recost bound       R*L = {:.4}", r * l);
    println!("true sub-optimality     = {:.4}", recost / opt_c.cost);
    Ok(())
}

fn run_cmd(args: &Args) -> Result<(), String> {
    let spec = spec(args)?;
    let lambda: f64 = args
        .opt("lambda")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--lambda: {e}"))?
        .unwrap_or(2.0);
    let m: usize = args
        .opt("m")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--m: {e}"))?
        .unwrap_or(1000);
    let seed: u64 = args
        .opt("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(42);
    let tech_name = args.opt("tech").unwrap_or_else(|| "scr".into());
    let load_cache = args.opt("load-cache");
    let save_cache = args.opt("save-cache");
    if (load_cache.is_some() || save_cache.is_some()) && tech_name != "scr" {
        return Err("--load-cache/--save-cache only apply to --tech scr".into());
    }

    let instances = spec.generate(m, seed);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let gt = GroundTruth::compute(&engine, &instances);

    let print_result = |r: &pqo_core::metrics::RunResult| {
        println!(
            "template            : {} (d = {})",
            spec.id, spec.dimensions
        );
        println!("technique           : {}", r.technique);
        println!("instances           : {}", r.num_instances);
        println!("distinct opt. plans : {}", r.distinct_optimal_plans);
        println!(
            "optimizer calls     : {} ({:.1}%)",
            r.num_opt,
            r.num_opt_pct()
        );
        println!("plans cached        : {}", r.num_plans);
        println!("MSO                 : {:.4}", r.mso());
        println!("TotalCostRatio      : {:.4}", r.total_cost_ratio());
        println!("recost calls        : {}", r.recost_calls);
        println!("getPlan time        : {:?}", r.getplan_time);
    };

    if tech_name == "scr" {
        let cfg = scr_config(args, lambda)?;
        let mut scr = match &load_cache {
            Some(path) => {
                let mut f = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
                let scr =
                    pqo_core::persist::restore(cfg, &mut f).map_err(|e| format!("{path}: {e}"))?;
                println!(
                    "loaded cache from {path}: {} plans, {} instance entries",
                    scr.cache().num_plans(),
                    scr.cache().num_instances()
                );
                scr
            }
            None => Scr::with_config(cfg).map_err(|e| e.to_string())?,
        };
        let r = run_sequence(&mut scr, &engine, &instances, &gt);
        print_result(&r);
        if let Some(path) = save_cache {
            let mut f = std::fs::File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            pqo_core::persist::save(&scr, &mut f).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "saved cache to {path}: {} plans, {} instance entries",
                scr.cache().num_plans(),
                scr.cache().num_instances()
            );
        }
        return Ok(());
    }

    let mut tech: Box<dyn OnlinePqo> = match tech_name.as_str() {
        "pcm" => Box::new(Pcm::new(lambda)),
        "ellipse" => Box::new(Ellipse::new(0.9)),
        "density" => Box::new(Density::new(0.1, 0.5)),
        "ranges" => Box::new(Ranges::new(0.01)),
        "once" => Box::new(OptimizeOnce::new()),
        other => return Err(format!("unknown technique `{other}`")),
    };
    let r = run_sequence(tech.as_mut(), &engine, &instances, &gt);
    print_result(&r);
    Ok(())
}

fn cache_cmd(args: &Args) -> Result<(), String> {
    let spec = spec(args)?;
    let lambda: f64 = args
        .opt("lambda")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--lambda: {e}"))?
        .unwrap_or(2.0);
    let m: usize = args
        .opt("m")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--m: {e}"))?
        .unwrap_or(500);
    let instances = spec.generate(m, 42);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let mut scr = Scr::with_config(scr_config(args, lambda)?).map_err(|e| e.to_string())?;
    for inst in &instances {
        let sv = engine.compute_svector(inst);
        let _ = scr.get_plan(inst, &sv, &engine);
    }
    let cache = scr.cache();
    let mem = cache.memory_breakdown();
    println!("after {m} instances at λ = {lambda}:");
    println!("plans cached        : {}", cache.num_plans());
    println!("instance entries    : {}", cache.num_instances());
    println!("selectivity hits    : {}", scr.stats().selectivity_hits);
    println!("cost-check hits     : {}", scr.stats().cost_hits);
    println!("optimizer calls     : {}", scr.stats().optimizer_calls);
    println!(
        "redundant discards  : {}",
        scr.stats().redundant_plans_discarded
    );
    println!();
    println!("memory — instance list : {:>8} B", mem.instance_list_bytes);
    println!(
        "memory — plan list     : {:>8} B (tree)",
        mem.plan_list_bytes
    );
    println!(
        "memory — plan list     : {:>8} B (Appendix B compact encoding)",
        mem.plan_list_compact_bytes
    );
    println!();
    println!("{:<10} {:>10} {:>8} {:>8}", "plan", "usage", "entries", "");
    for plan in cache.plans() {
        let fp = plan.fingerprint();
        let entries = cache.instances().iter().filter(|e| e.plan == fp).count();
        println!(
            "{:<10} {:>10} {:>8}",
            fp.to_string(),
            cache.plan_usage(fp),
            entries
        );
    }
    Ok(())
}

/// Drive the snapshot-published serving layer over a generated workload:
/// instances flow through [`pqo_core::PqoService::get_plan_batch`] in
/// `--batch N` chunks (default 1 = per-instance `get_plan`), then the
/// published snapshot's counters are reported. This is the CLI surface for
/// the concurrent deployment path — same decisions as `pqo run --tech scr`,
/// different machinery. With `--listen ADDR` the workload loop is replaced
/// by the TCP server from `pqo-server` (see [`net::serve_listen`]).
fn serve_cmd(args: &Args) -> Result<(), String> {
    if let Some(listen) = args.opt("listen") {
        return net::serve_listen(args, &listen);
    }
    let spec = spec(args)?;
    let lambda: f64 = args
        .opt("lambda")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--lambda: {e}"))?
        .unwrap_or(2.0);
    let m: usize = args
        .opt("m")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--m: {e}"))?
        .unwrap_or(1000);
    let seed: u64 = args
        .opt("seed")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--seed: {e}"))?
        .unwrap_or(42);
    let batch: usize = args
        .opt("batch")
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--batch: {e}"))?
        .unwrap_or(1);
    if batch == 0 {
        return Err("--batch must be >= 1".into());
    }

    let service = pqo_core::PqoService::new();
    service
        .register(Arc::clone(&spec.template), scr_config(args, lambda)?)
        .map_err(|e| e.to_string())?;

    let instances = spec.generate(m, seed);
    let start = std::time::Instant::now();
    let mut optimized = 0usize;
    if batch == 1 {
        for inst in &instances {
            let choice = service
                .get_plan(&spec.id, inst)
                .map_err(|e| e.to_string())?;
            optimized += usize::from(choice.optimized);
        }
    } else {
        for chunk in instances.chunks(batch) {
            let choices = service
                .get_plan_batch(&spec.id, chunk)
                .map_err(|e| e.to_string())?;
            optimized += choices.iter().filter(|c| c.optimized).count();
        }
    }
    let elapsed = start.elapsed();

    let stats = service.scr_stats(&spec.id).map_err(|e| e.to_string())?;
    let snapshot = service.snapshot(&spec.id).map_err(|e| e.to_string())?;
    println!(
        "template            : {} (d = {})",
        spec.id, spec.dimensions
    );
    println!("instances           : {m} (batch size {batch})");
    println!(
        "optimizer calls     : {optimized} ({:.1}%)",
        100.0 * optimized as f64 / m.max(1) as f64
    );
    println!("plans cached        : {}", snapshot.cache().num_plans());
    println!("instance entries    : {}", snapshot.cache().num_instances());
    println!("selectivity hits    : {}", stats.selectivity_hits);
    println!("cost-check hits     : {}", stats.cost_hits);
    println!("recost calls        : {}", stats.getplan_recost_calls);
    println!(
        "recost time         : {:?}",
        std::time::Duration::from_nanos(stats.recost_nanos)
    );
    println!(
        "optimize time       : {:?}",
        std::time::Duration::from_nanos(stats.optimize_nanos)
    );
    println!("serve time          : {elapsed:?}");
    println!(
        "per instance        : {:?}",
        elapsed.checked_div(m.max(1) as u32).unwrap_or_default()
    );
    Ok(())
}

/// Example selectivity vector formatting used in help/debug output.
#[allow(dead_code)]
fn fmt_sv(sv: &SVector) -> String {
    sv.0.iter()
        .map(|s| format!("{s:.4}"))
        .collect::<Vec<_>>()
        .join(",")
}
