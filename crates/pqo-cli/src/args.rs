//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
}

/// Flags that are booleans: bare (`--primary`) or with an explicit
/// `true`/`false`. Any other following token belongs to the *next* flag,
/// never to these — without this list, `--primary` placed before a stray
/// token would silently swallow it as its value.
const BOOLEAN_FLAGS: &[&str] = &["primary", "check"];

impl Args {
    /// Parse a flat `--key [value]` list. A key followed by another
    /// `--key` (or by nothing) is a bare boolean flag and takes the value
    /// `"true"`, so `--primary` and `--check true` both work. Keys in
    /// [`BOOLEAN_FLAGS`] only ever consume a literal `true`/`false` as
    /// their value, so they can be interleaved with valued flags in any
    /// order without misbinding the token after them.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut values = BTreeMap::new();
        let mut i = 0;
        while i < argv.len() {
            let key = argv[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected `--key`, got `{}`", argv[i]))?;
            let boolean = BOOLEAN_FLAGS.contains(&key);
            let value = match argv.get(i + 1) {
                Some(v) if boolean && (v == "true" || v == "false") => {
                    i += 2;
                    v.clone()
                }
                Some(v) if !boolean && !v.starts_with("--") => {
                    i += 2;
                    v.clone()
                }
                _ => {
                    i += 1;
                    "true".to_string()
                }
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(format!("--{key} given twice"));
            }
        }
        Ok(Args { values })
    }

    /// Required argument.
    pub fn get(&self, key: &str) -> Result<String, String> {
        self.values
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Optional argument.
    pub fn opt(&self, key: &str) -> Option<String> {
        self.values.get(key).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&s(&["--template", "x", "--m", "100"])).unwrap();
        assert_eq!(a.get("template").unwrap(), "x");
        assert_eq!(a.opt("m"), Some("100".into()));
        assert_eq!(a.opt("missing"), None);
        assert!(a.get("missing").is_err());
    }

    #[test]
    fn rejects_bare_values_and_duplicate_keys() {
        assert!(Args::parse(&s(&["template", "x"])).is_err());
        assert!(Args::parse(&s(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn bare_flags_read_as_true() {
        let a = Args::parse(&s(&["--primary", "--check", "--m", "10"])).unwrap();
        assert_eq!(a.get("primary").unwrap(), "true");
        assert_eq!(a.get("check").unwrap(), "true");
        assert_eq!(a.get("m").unwrap(), "10");
        // Trailing bare flag.
        let a = Args::parse(&s(&["--m", "10", "--primary"])).unwrap();
        assert_eq!(a.get("primary").unwrap(), "true");
    }

    #[test]
    fn boolean_flags_interleave_with_valued_flags_in_any_order() {
        // Regression: every ordering of a bare boolean among valued flags
        // must bind the same way.
        for argv in [
            &["--primary", "--listen", "127.0.0.1:0", "--m", "10"][..],
            &["--listen", "127.0.0.1:0", "--primary", "--m", "10"][..],
            &["--listen", "127.0.0.1:0", "--m", "10", "--primary"][..],
        ] {
            let a = Args::parse(&s(argv)).unwrap();
            assert_eq!(a.get("primary").unwrap(), "true", "argv {argv:?}");
            assert_eq!(a.get("listen").unwrap(), "127.0.0.1:0", "argv {argv:?}");
            assert_eq!(a.get("m").unwrap(), "10", "argv {argv:?}");
        }
        // Explicit boolean values still bind.
        let a = Args::parse(&s(&["--check", "false", "--m", "10", "--primary", "true"])).unwrap();
        assert_eq!(a.get("check").unwrap(), "false");
        assert_eq!(a.get("primary").unwrap(), "true");
        assert_eq!(a.get("m").unwrap(), "10");
    }

    #[test]
    fn boolean_flags_never_swallow_a_stray_token() {
        // Regression: `--primary` used to misbind a following non-boolean
        // token as its value; now the token is left over and diagnosed.
        let err = Args::parse(&s(&["--primary", "oops", "--m", "10"])).unwrap_err();
        assert!(err.contains("oops"), "undiagnosable error: {err}");
    }
}
