//! Network mode: `pqo serve --listen ADDR` runs the TCP server from
//! `pqo-server` over a [`pqo_core::PqoService`]; `pqo client` drives it
//! from another process.
//!
//! The serve side registers one plan cache per `--template` id (comma
//! separated) and one per `.sql` file under `--templates-dir` (compiled by
//! `pqo-sql`, named by file stem, bound against the catalog its
//! `-- pqo:catalog` directive declares) under the serving policy selected
//! by `--policy` (SCR by default), warm-restarts each from
//! `--snapshot-dir` when a prior snapshot exists (refusing snapshots
//! written under a different policy), and prints a per-template counter
//! summary after a graceful shutdown (triggered by a client's `SHUTDOWN`
//! frame). With `--replica-of ADDR` the server runs as a read replica: it
//! subscribes to the primary's generation stream, serves hits from the
//! applied snapshots and forwards misses (`--primary` names the default
//! role explicitly). The client side offers ops — `plan`, `run`, `stats`,
//! `explain`, `follow-lag`, `shutdown`, `idle` — inferred from the flags
//! or forced with `--op`; targets come from the corpus (`--template ID`)
//! or from a local SQL file (`--sql-file PATH`, compiled exactly as the
//! server compiles it); `run --check true` replays the same generated
//! workload through an in-process oracle and fails on the first decision
//! divergence, reporting the diverging instance index and both decisions;
//! `explain` fetches the chosen plan rendered as dialect-specific hinted
//! SQL; `follow-lag` polls a replica's generation lag.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pqo_catalog::{schemas, Catalog};
use pqo_core::PqoService;
use pqo_optimizer::svector::instance_for_target;
use pqo_optimizer::template::{QueryInstance, QueryTemplate};
use pqo_server::{PqoClient, PqoServer, ServerConfig};
use pqo_sql::DialectKind;
use pqo_workload::corpus::{corpus, TemplateSpec};
use pqo_workload::regions;

use crate::args::Args;
use crate::{scr_config, sels, spec};

fn parse_opt<T: std::str::FromStr>(args: &Args, key: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    args.opt(key)
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("--{key}: {e}"))
        .map(|v| v.unwrap_or(default))
}

fn spec_by_id(id: &str) -> Result<&'static TemplateSpec, String> {
    corpus()
        .iter()
        .find(|s| s.id == id)
        .ok_or_else(|| format!("unknown template `{id}` (try `pqo templates`)"))
}

/// Build a catalog by its directive name, memoizing across template files
/// (construction samples tens of thousands of rows per column).
fn cached_catalog<'a>(cache: &'a mut Vec<Catalog>, name: &str) -> Result<&'a Catalog, String> {
    if let Some(i) = cache.iter().position(|c| c.name() == name) {
        return Ok(&cache[i]);
    }
    let built = match name {
        "tpch_skew" => schemas::tpch_skew(),
        "tpcds" => schemas::tpcds(),
        "rd1" => schemas::rd1(),
        "rd2" => schemas::rd2(),
        other => {
            return Err(format!(
                "unknown catalog `{other}` (tpch_skew|tpcds|rd1|rd2)"
            ))
        }
    };
    cache.push(built);
    Ok(cache.last().expect("just pushed"))
}

/// Compile one `.sql` template file: read, resolve the catalog its
/// `-- pqo:catalog` directive names, and bind. The template is named by
/// the file stem. Errors carry the file path plus the caret-rendered span.
fn compile_sql_file(
    path: &Path,
    catalogs: &mut Vec<Catalog>,
) -> Result<(String, pqo_sql::Compiled), String> {
    let stem = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .filter(|s| !s.is_empty())
        .ok_or_else(|| format!("{}: cannot derive a template name", path.display()))?;
    let src = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let dirs =
        pqo_sql::directives(&src).map_err(|e| format!("{}: {}", path.display(), e.render(&src)))?;
    let catalog_name = dirs.catalog.ok_or_else(|| {
        format!(
            "{}: missing `-- pqo:catalog <name>` directive (tpch_skew|tpcds|rd1|rd2)",
            path.display()
        )
    })?;
    let catalog =
        cached_catalog(catalogs, &catalog_name).map_err(|e| format!("{}: {e}", path.display()))?;
    let compiled = pqo_sql::compile(&stem, &src, catalog)
        .map_err(|e| format!("{}: {}", path.display(), e.render(&src)))?;
    Ok((stem, compiled))
}

/// The `.sql` files under `--templates-dir`, sorted by name so the
/// registration order (and the `HELLO` template list) is deterministic.
fn sql_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "sql"))
        .collect();
    files.sort();
    Ok(files)
}

/// `pqo serve --listen ADDR --template ID[,ID...] | --templates-dir DIR`:
/// serve registered templates over TCP until a client requests shutdown.
pub fn serve_listen(args: &Args, listen: &str) -> Result<(), String> {
    let ids = args.opt("template");
    let templates_dir = args.opt("templates-dir").map(PathBuf::from);
    if ids.is_none() && templates_dir.is_none() {
        return Err("pass --template ID[,ID...] and/or --templates-dir DIR".into());
    }
    let lambda: f64 = parse_opt(args, "lambda", 2.0)?;
    let snapshot_dir = args.opt("snapshot-dir").map(PathBuf::from);

    let mut config = ServerConfig {
        snapshot_dir: snapshot_dir.clone(),
        ..ServerConfig::default()
    };
    config.max_connections = parse_opt(args, "max-conns", config.max_connections)?;
    config.workers = parse_opt(args, "workers", config.workers)?;
    if config.workers == 0 {
        return Err("--workers must be >= 1".into());
    }
    let primary_flag: bool = parse_opt(args, "primary", false)?;
    config.replica_of = args.opt("replica-of");
    if primary_flag && config.replica_of.is_some() {
        return Err("--primary and --replica-of are mutually exclusive".into());
    }

    let service = Arc::new(PqoService::new());
    let mut names = Vec::new();
    let mut register = |id: &str, template: &Arc<QueryTemplate>| -> Result<(), String> {
        let cfg = scr_config(args, lambda)?;
        let warm = snapshot_dir
            .as_ref()
            .map(|d| d.join(format!("{id}.pqo-cache")))
            .filter(|p| p.exists());
        match warm {
            Some(path) => {
                let mut f =
                    std::fs::File::open(&path).map_err(|e| format!("{}: {e}", path.display()))?;
                service
                    .register_restored(Arc::clone(template), cfg, &mut f)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let plans = service
                    .snapshot(id)
                    .map_err(|e| e.to_string())?
                    .cache()
                    .num_plans();
                println!("restored {id} from {} ({plans} plans)", path.display());
            }
            None => {
                service
                    .register(Arc::clone(template), cfg)
                    .map_err(|e| e.to_string())?;
            }
        }
        names.push(id.to_string());
        Ok(())
    };
    for id in ids
        .as_deref()
        .unwrap_or("")
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let spec = spec_by_id(id)?;
        register(id, &spec.template)?;
    }
    if let Some(dir) = &templates_dir {
        let files = sql_files(dir)?;
        if files.is_empty() {
            return Err(format!("{}: no .sql template files", dir.display()));
        }
        let mut catalogs = Vec::new();
        for path in &files {
            let (stem, compiled) = compile_sql_file(path, &mut catalogs)?;
            register(&stem, &compiled.template)?;
            // Smoke scripts parse these lines to learn the registered set.
            println!(
                "compiled {stem} from {} ({} dialect, d = {})",
                path.display(),
                compiled.dialect,
                compiled.template.dimensions()
            );
        }
    }
    if names.is_empty() {
        return Err("--template: no template ids given".into());
    }

    let workers = config.workers;
    let policy = scr_config(args, lambda)?.policy;
    let role = match &config.replica_of {
        Some(primary) => format!("replica of {primary}"),
        None => "primary".to_string(),
    };
    let server = PqoServer::bind(Arc::clone(&service), listen, config)
        .map_err(|e| format!("bind {listen}: {e}"))?;
    // Smoke scripts parse this exact line to learn the ephemeral port.
    println!("listening on {}", server.local_addr());
    // Smoke scripts also grep the `role:` prefix — keep the policy suffix
    // after the role text.
    println!("role: {role} (policy: {policy})");
    println!(
        "serving {} template(s) at λ = {lambda} ({workers} workers); stop with `pqo client --connect {} --op shutdown`",
        names.len(),
        server.local_addr()
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let stats = server.join();
    println!();
    println!("server exit summary");
    println!("policy              : {policy}");
    println!("connections accepted: {}", stats.connections_accepted);
    println!("rejected (busy)     : {}", stats.connections_rejected_busy);
    println!("frames served       : {}", stats.frames_served);
    println!("plans served        : {}", stats.plans_served);
    println!("batch frames        : {}", stats.batch_frames);
    println!("malformed frames    : {}", stats.malformed_frames);
    println!("error frames        : {}", stats.error_frames);
    println!("snapshots flushed   : {}", stats.snapshots_flushed);
    println!("poll wakeups        : {}", stats.poll_wakeups);
    println!("timeouts            : {}", stats.timeouts);
    println!("peak connections    : {}", stats.peak_connections);
    println!("peak queue depth    : {}", stats.peak_queue_depth);
    println!("generations pushed  : {}", stats.gens_pushed);
    println!("generations applied : {}", stats.gens_applied);
    println!("replication out     : {} B", stats.replication_bytes_out);
    println!("replication in      : {} B", stats.replication_bytes_in);
    for id in &names {
        let s = service.scr_stats(id).map_err(|e| e.to_string())?;
        let plans = service
            .snapshot(id)
            .map_err(|e| e.to_string())?
            .cache()
            .num_plans();
        println!();
        println!("[{id}]");
        println!("plans cached        : {plans}");
        println!("selectivity hits    : {}", s.selectivity_hits);
        println!("cost-check hits     : {}", s.cost_hits);
        println!("optimizer calls     : {}", s.optimizer_calls);
        println!("policy hits         : {}", s.policy_hits);
        println!("policy rejects      : {}", s.policy_rejects);
        println!("batches served      : {}", s.batches_served);
        println!("batch instances     : {}", s.batch_instances);
        println!("max batch size      : {}", s.max_batch_size);
        println!("snapshot re-loads   : {}", s.snapshot_reloads);
        println!("snapshot publishes  : {}", s.publishes);
        println!("publish nanos       : {}", s.publish_nanos);
        println!("index shard rebuilds: {}", s.index_shard_rebuilds);
        println!("index points rebuilt: {}", s.index_points_rebuilt);
    }
    Ok(())
}

/// What a client op drives: a corpus template (`--template ID`) or a local
/// SQL file (`--sql-file PATH`) compiled exactly as `serve --templates-dir`
/// compiles it — so the client-side oracle and the server agree on the
/// template down to the name.
enum Target {
    Corpus(&'static TemplateSpec),
    Sql {
        id: String,
        compiled: pqo_sql::Compiled,
    },
}

impl Target {
    fn id(&self) -> &str {
        match self {
            Target::Corpus(s) => &s.id,
            Target::Sql { id, .. } => id,
        }
    }

    fn template(&self) -> &Arc<QueryTemplate> {
        match self {
            Target::Corpus(s) => &s.template,
            Target::Sql { compiled, .. } => &compiled.template,
        }
    }

    fn dimensions(&self) -> usize {
        self.template().dimensions()
    }

    /// The dialect to render `explain` output in when `--dialect` is not
    /// given: the file's declared dialect, postgres for corpus templates.
    fn default_dialect(&self) -> DialectKind {
        match self {
            Target::Corpus(_) => DialectKind::Postgres,
            Target::Sql { compiled, .. } => compiled.dialect,
        }
    }

    /// The same region-bucketized workload `pqo run` uses; corpus targets
    /// keep their per-template seed mixing.
    fn generate(&self, m: usize, seed: u64) -> Vec<QueryInstance> {
        match self {
            Target::Corpus(s) => s.generate(m, seed),
            Target::Sql { compiled, .. } => regions::generate(&compiled.template, m, seed),
        }
    }
}

fn target(args: &Args) -> Result<Target, String> {
    match args.opt("sql-file") {
        Some(path) => {
            let path = PathBuf::from(path);
            let mut catalogs = Vec::new();
            let (id, compiled) = compile_sql_file(&path, &mut catalogs)?;
            Ok(Target::Sql { id, compiled })
        }
        None => Ok(Target::Corpus(spec(args)?)),
    }
}

/// `pqo client --connect ADDR [...]`: one op per invocation.
pub fn client_cmd(args: &Args) -> Result<(), String> {
    let addr = args.get("connect")?;
    let op = match args.opt("op") {
        Some(op) => op,
        None if args.opt("sel").is_some() => "plan".into(),
        None if args.opt("m").is_some() => "run".into(),
        None if args.opt("template").is_some() || args.opt("sql-file").is_some() => "stats".into(),
        None => {
            return Err(
                "cannot infer op; pass --op plan|run|stats|explain|follow-lag|shutdown|idle".into(),
            )
        }
    };
    // The idle op never speaks the protocol (raw sockets, no handshake),
    // so handle it before a PqoClient is built.
    if op == "idle" {
        return client_idle(args, &addr);
    }
    let mut client =
        PqoClient::connect(&addr as &str).map_err(|e| format!("connect {addr}: {e}"))?;
    match op.as_str() {
        "plan" => {
            let t = target(args)?;
            let sel = sels(args, "sel", t.dimensions())?;
            let inst = instance_for_target(t.template(), &sel);
            let choice = client
                .get_plan(t.id(), &inst.values)
                .map_err(|e| e.to_string())?;
            println!("template  : {}", t.id());
            println!("plan      : {}", choice.fingerprint);
            println!("optimized : {}", choice.optimized);
            Ok(())
        }
        "explain" => client_explain(args, &mut client),
        "run" => client_run(args, &mut client),
        "stats" => {
            let id = match args.opt("template") {
                Some(id) => id,
                None => target(args)?.id().to_string(),
            };
            let s = client.stats(&id).map_err(|e| e.to_string())?;
            println!("[{id}]");
            // Driven by the wire field table: a field added to the STATS
            // payload shows up here with no printer change.
            for (name, value) in s.named_fields() {
                println!("{name:<22}: {value}");
            }
            Ok(())
        }
        "follow-lag" => client_follow_lag(args, &mut client),
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server acknowledged shutdown");
            Ok(())
        }
        other => Err(format!(
            "unknown op `{other}` (plan|run|stats|explain|follow-lag|shutdown|idle)"
        )),
    }
}

/// `pqo client --connect ADDR --op explain --sel S1,... [--dialect NAME]`:
/// serve one instance and print the chosen plan as the server renders it —
/// dialect-specific hinted SQL with the parameter values inlined.
fn client_explain(args: &Args, client: &mut PqoClient) -> Result<(), String> {
    let t = target(args)?;
    let sel = sels(args, "sel", t.dimensions())?;
    let inst = instance_for_target(t.template(), &sel);
    let dialect = match args.opt("dialect") {
        Some(raw) => DialectKind::parse(&raw).map_err(|e| format!("--dialect: {e}"))?,
        None => t.default_dialect(),
    };
    let explain = client
        .explain(t.id(), &inst.values, dialect.as_tag())
        .map_err(|e| e.to_string())?;
    println!("template  : {}", t.id());
    println!("dialect   : {dialect}");
    println!("plan      : {}", explain.choice.fingerprint);
    println!("optimized : {}", explain.choice.optimized);
    println!();
    println!("{}", explain.sql);
    Ok(())
}

/// `pqo client --connect ADDR --op follow-lag --template ID [--count N]
/// [--interval-ms T]`: poll a replica's generation lag. Each sample prints
/// the published generation, the lag behind the primary, and the apply
/// counters; the final sample's lag is also the exit criterion smoke
/// scripts grep for.
fn client_follow_lag(args: &Args, client: &mut PqoClient) -> Result<(), String> {
    let id = args.get("template")?;
    let count: usize = parse_opt(args, "count", 10)?;
    let interval_ms: u64 = parse_opt(args, "interval-ms", 200)?;
    if count == 0 {
        return Err("--count must be >= 1".into());
    }
    for i in 0..count {
        let s = client.stats(&id).map_err(|e| e.to_string())?;
        println!(
            "[{i}] {id}: generation {} lag {} (applied {}, pushed {}, in {} B, out {} B)",
            s.generation,
            s.replica_lag,
            s.gens_applied,
            s.gens_pushed,
            s.replication_bytes_in,
            s.replication_bytes_out,
        );
        use std::io::Write as _;
        std::io::stdout().flush().ok();
        if i + 1 < count {
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    Ok(())
}

/// `pqo client --connect ADDR --op idle --conns N --hold-ms T`: open N raw
/// TCP connections that never speak, hold them for T milliseconds, then
/// release. Exercises the server's idle-connection capacity (each held
/// socket costs the event loop one poll-set slot).
fn client_idle(args: &Args, addr: &str) -> Result<(), String> {
    let conns: usize = parse_opt(args, "conns", 256)?;
    let hold_ms: u64 = parse_opt(args, "hold-ms", 5_000)?;
    let mut held = Vec::with_capacity(conns);
    for i in 0..conns {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => return Err(format!("idle connect {i}/{conns}: {e}")),
        }
    }
    // Smoke scripts wait for this exact line before starting active work.
    println!("holding {} idle connections for {hold_ms} ms", held.len());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    std::thread::sleep(std::time::Duration::from_millis(hold_ms));
    let n = held.len();
    drop(held);
    println!("released {n} idle connections");
    Ok(())
}

/// Drive a generated workload over the wire; with `--check true`, replay
/// it through a fresh in-process service and require identical decisions.
///
/// The oracle assumes the server holds a *cold* cache with the same SCR
/// configuration (λ, thresholds) this invocation was given.
fn client_run(args: &Args, client: &mut PqoClient) -> Result<(), String> {
    let t = target(args)?;
    let m: usize = parse_opt(args, "m", 1000)?;
    let seed: u64 = parse_opt(args, "seed", 42)?;
    let batch: usize = parse_opt(args, "batch", 1)?;
    let check: bool = parse_opt(args, "check", false)?;
    if batch == 0 {
        return Err("--batch must be >= 1".into());
    }

    let instances = t.generate(m, seed);
    let start = std::time::Instant::now();
    let mut decisions: Vec<(u64, bool)> = Vec::with_capacity(m);
    if batch == 1 {
        for inst in &instances {
            let c = client
                .get_plan(t.id(), &inst.values)
                .map_err(|e| e.to_string())?;
            decisions.push((c.fingerprint.0, c.optimized));
        }
    } else {
        for chunk in instances.chunks(batch) {
            let values: Vec<Vec<f64>> = chunk.iter().map(|q| q.values.clone()).collect();
            let cs = client
                .get_plan_batch(t.id(), &values)
                .map_err(|e| e.to_string())?;
            decisions.extend(cs.iter().map(|c| (c.fingerprint.0, c.optimized)));
        }
    }
    let elapsed = start.elapsed();
    let optimized = decisions.iter().filter(|(_, o)| *o).count();

    println!("template            : {} (d = {})", t.id(), t.dimensions());
    println!("instances           : {m} (batch size {batch}, over TCP)");
    println!(
        "optimizer calls     : {optimized} ({:.1}%)",
        100.0 * optimized as f64 / m.max(1) as f64
    );
    println!("wall time           : {elapsed:?}");
    println!(
        "per instance        : {:?}",
        elapsed.checked_div(m.max(1) as u32).unwrap_or_default()
    );

    if check {
        let lambda: f64 = parse_opt(args, "lambda", 2.0)?;
        let oracle = PqoService::new();
        oracle
            .register(Arc::clone(t.template()), scr_config(args, lambda)?)
            .map_err(|e| e.to_string())?;
        for (i, (inst, &(fp, optimized))) in instances.iter().zip(&decisions).enumerate() {
            let expect = oracle.get_plan(t.id(), inst).map_err(|e| e.to_string())?;
            if fp != expect.plan.fingerprint().0 || optimized != expect.optimized {
                return Err(format!(
                    "oracle divergence at instance {i}: wire served plan {fp:#018x} \
                     (optimized: {optimized}), oracle chose {:#018x} (optimized: {})",
                    expect.plan.fingerprint().0,
                    expect.optimized
                ));
            }
        }
        println!(
            "oracle check        : OK ({} decisions identical to in-process SCR)",
            decisions.len()
        );
    }
    Ok(())
}
