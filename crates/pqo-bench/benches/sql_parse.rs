//! SQL frontend throughput: tokenizing + parsing the committed fixture
//! corpus, and the full `pqo_sql::compile` pipeline (directives, parse,
//! catalog-backed bind) that the server runs per `--templates-dir` file
//! at startup. Catalogs are built once outside the timed region — the
//! bench measures the frontend, not histogram construction.

use std::hint::black_box;
use std::path::PathBuf;

use pqo_bench::microbench::Runner;
use pqo_catalog::{schemas, Catalog};

/// The committed `.sql` fixture corpus at `templates/`.
fn fixtures() -> Vec<(String, String)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../templates");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("templates/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) == Some("sql") {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .expect("utf-8 stem")
                .to_string();
            let src = std::fs::read_to_string(&path).expect("readable fixture");
            out.push((stem, src));
        }
    }
    out.sort();
    assert!(out.len() >= 10, "fixture corpus is committed");
    out
}

fn main() {
    let runner = Runner::from_args();
    let fixtures = fixtures();
    let n = fixtures.len() as u64;

    // One catalog instance per distinct `pqo:catalog` directive.
    let mut catalogs: Vec<Catalog> = Vec::new();
    let bound: Vec<(&str, &str, usize)> = fixtures
        .iter()
        .map(|(stem, src)| {
            let name = pqo_sql::directives(src)
                .expect("fixture directives parse")
                .catalog
                .expect("fixture names its catalog");
            let idx = match catalogs.iter().position(|c| c.name() == name) {
                Some(i) => i,
                None => {
                    catalogs.push(match name.as_str() {
                        "tpch_skew" => schemas::tpch_skew(),
                        "tpcds" => schemas::tpcds(),
                        "rd1" => schemas::rd1(),
                        "rd2" => schemas::rd2(),
                        other => panic!("fixture names unknown catalog {other}"),
                    });
                    catalogs.len() - 1
                }
            };
            (stem.as_str(), src.as_str(), idx)
        })
        .collect();

    runner.bench_throughput("sql_parse/parse/corpus", n, || {
        for (_, src, _) in &bound {
            black_box(pqo_sql::parse(src).expect("fixture parses"));
        }
    });

    runner.bench_throughput("sql_parse/compile/corpus", n, || {
        for (stem, src, idx) in &bound {
            black_box(pqo_sql::compile(stem, src, &catalogs[*idx]).expect("fixture compiles"));
        }
    });
}
