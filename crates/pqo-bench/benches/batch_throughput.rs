//! Batched serving throughput: [`PqoService::get_plan_batch`] vs
//! per-instance `get_plan` on a 99%-hit read-mostly workload at 1, 8 and
//! 16 threads. The batched path loads one `CacheSnapshot` generation and
//! makes one selectivity-vector pass for the whole chunk, so its win over
//! the per-instance loop is the amortized snapshot load plus better cache
//! locality across the shared candidate pass — while returning exactly the
//! decisions the sequential technique would make.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::scr::ScrConfig;
use pqo_core::service::PqoService;
use pqo_optimizer::template::QueryInstance;
use pqo_workload::corpus::corpus;

const BATCH: usize = 32;

fn main() {
    let runner = Runner::from_args();
    let ids = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3"];
    let per_thread = if runner.quick() { 64usize } else { 512usize };

    let service = Arc::new(PqoService::new());
    let mut streams: Vec<(String, Vec<QueryInstance>)> = Vec::new();
    for id in ids {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        service
            .register(
                Arc::clone(&spec.template),
                ScrConfig::new(2.0).expect("valid bench λ"),
            )
            .expect("fresh template registers");
        let warm = spec.generate(200, 7);
        for inst in &warm {
            service
                .get_plan(&spec.template.name, inst)
                .expect("warmup get_plan");
        }
        // 99%-hit stream: exact warm revisits with one unseen instance per
        // hundred (the same read-mostly mix as `service_throughput`).
        let fresh = spec.generate(per_thread, 31);
        let stream: Vec<QueryInstance> = (0..per_thread)
            .map(|i| {
                if i % 100 == 99 {
                    fresh[i].clone()
                } else {
                    warm[i % warm.len()].clone()
                }
            })
            .collect();
        streams.push((spec.template.name.clone(), stream));
    }
    let streams = Arc::new(streams);

    for threads in [1usize, 8, 16] {
        let total = (threads * per_thread) as u64;
        runner.bench_throughput(
            &format!("batch_throughput/get_plan/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let service = Arc::clone(&service);
                        let streams = Arc::clone(&streams);
                        scope.spawn(move || {
                            let (name, insts) = &streams[t % streams.len()];
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    service.get_plan(name, inst).expect("serving get_plan");
                                hits += u32::from(!choice.optimized);
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
        runner.bench_throughput(
            &format!("batch_throughput/get_plan_batch{BATCH}/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let service = Arc::clone(&service);
                        let streams = Arc::clone(&streams);
                        scope.spawn(move || {
                            let (name, insts) = &streams[t % streams.len()];
                            let mut hits = 0u32;
                            for chunk in insts.chunks(BATCH) {
                                let choices = service
                                    .get_plan_batch(name, chunk)
                                    .expect("serving get_plan_batch");
                                hits += choices.iter().filter(|c| !c.optimized).count() as u32;
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
    }
}
