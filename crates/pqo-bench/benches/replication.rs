//! Generation-log replication costs: what the primary pays to encode a
//! publication into the replication stream, what a replica pays to apply
//! it, and how much smaller the delta encoding is than re-shipping the
//! full snapshot.
//!
//! Setup mirrors production: a primary [`PqoService`] is warmed, then a
//! fresh instance stream drives it while every published generation is
//! captured as a delta record against its predecessor (exactly what the
//! server's subscription pump ships). The headline `replica_apply_eps`
//! metric — generations applied per second through
//! [`PqoService::apply_generation`], including decode, copy-on-write
//! install, and snapshot publication — is gated by
//! `scripts/bench_gate.sh`, since replica lag is bounded by ack-gating
//! only if a replica can apply generations faster than the primary
//! publishes them.

use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::scr::ScrConfig;
use pqo_core::service::PqoService;
use pqo_workload::corpus::corpus;

const ID: &str = "tpch_skew_A_d2";
const LAMBDA: f64 = 2.0;

fn service_with(id: &str) -> Arc<PqoService> {
    let spec = corpus()
        .iter()
        .find(|s| s.id == id)
        .expect("corpus template");
    let service = Arc::new(PqoService::new());
    service
        .register(
            Arc::clone(&spec.template),
            ScrConfig::new(LAMBDA).expect("valid bench λ"),
        )
        .expect("fresh template registers");
    service
}

fn main() {
    let runner = Runner::from_args();
    let spec = corpus()
        .iter()
        .find(|s| s.id == ID)
        .expect("corpus template");
    let primary = service_with(ID);
    // Partial warmup only: the drive stream below must keep finding cold
    // selectivity regions so it publishes a dense generation chain.
    for inst in &spec.generate(10, 7) {
        primary.get_plan(ID, inst).expect("warmup get_plan");
    }

    // Drive a fresh stream through the primary and capture every published
    // generation as a delta record against its predecessor — the exact
    // per-subscription byte stream the server pushes to an in-sync replica.
    let base_gen = primary.generation(ID).expect("warm generation");
    let (full_base, _) = primary
        .generation_record(ID, None)
        .expect("full base record");
    let drive = spec.generate(if runner.quick() { 64 } else { 256 }, 11);
    let mut deltas: Vec<Vec<u8>> = Vec::new();
    let mut prev = base_gen;
    for inst in &drive {
        primary.get_plan(ID, inst).expect("drive get_plan");
        let gen = primary.generation(ID).expect("generation");
        if gen > prev {
            // Captured immediately after the publish, so `prev` is still
            // inside the primary's generation log and encodes as a delta.
            let (record, at) = primary
                .generation_record(ID, Some(prev))
                .expect("delta record");
            assert_eq!(at, gen, "record lagged the publication");
            deltas.push(record);
            prev = gen;
        }
    }
    assert!(!deltas.is_empty(), "drive stream published no generations");
    let (full_now, _) = primary
        .generation_record(ID, None)
        .expect("full record of final state");
    let delta_avg = deltas.iter().map(Vec::len).sum::<usize>() / deltas.len();
    println!(
        "replication/bytes: {} generations, avg delta {} B, full snapshot {} B ({}x)",
        deltas.len(),
        delta_avg,
        full_now.len(),
        full_now.len() / delta_avg.max(1),
    );

    // Primary-side encode cost per publication, delta vs full.
    runner.bench_throughput("replication/encode/delta", 1, || {
        primary
            .generation_record(ID, Some(prev - 1))
            .expect("delta encode")
            .0
            .len()
    });
    runner.bench_throughput("replication/encode/full", 1, || {
        primary
            .generation_record(ID, None)
            .expect("full encode")
            .0
            .len()
    });

    // Replica-side apply: reset onto the chain base with the full record
    // (a FULL record installs unconditionally, so the delta chain replays
    // from a clean base every iteration), then apply every delta in
    // publication order. Elements = generations applied.
    let replica = service_with(ID);
    runner.bench_throughput(
        "replication/replica_apply/delta_chain",
        deltas.len() as u64,
        || {
            replica
                .apply_generation(ID, &full_base)
                .expect("base record applies");
            let mut gen = base_gen;
            for record in &deltas {
                gen = replica.apply_generation(ID, record).expect("delta applies");
            }
            gen
        },
    );

    // Catch-up path: one full-snapshot apply of the final (largest) state,
    // what a cold or log-lapsed replica pays before joining the delta flow.
    runner.bench_throughput("replication/replica_apply/full_snapshot", 1, || {
        replica
            .apply_generation(ID, &full_now)
            .expect("full record applies")
    });
}
