//! Multi-threaded serving throughput of [`PqoService`]: N threads share one
//! service and call `get_plan` concurrently over warmed per-template caches.
//! Scaling beyond one thread is the point of the snapshot-published read
//! path — a reader loads the current `CacheSnapshot` generation and decides
//! with no lock held, so same-template and cross-template traffic both
//! parallelize, and (the `writer_held` variant) cache hits keep flowing
//! even while a thread sits inside the shard's writer lock.

use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::scr::ScrConfig;
use pqo_core::service::PqoService;
use pqo_optimizer::template::QueryInstance;
use pqo_workload::corpus::corpus;

fn main() {
    let runner = Runner::from_args();
    let ids = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3"];
    let per_thread = if runner.quick() { 64usize } else { 512usize };

    let service = Arc::new(PqoService::new());
    let mut streams: Vec<(String, Vec<QueryInstance>)> = Vec::new();
    let mut read_mostly: Vec<(String, Vec<QueryInstance>)> = Vec::new();
    for id in ids {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        service
            .register(
                Arc::clone(&spec.template),
                ScrConfig::new(2.0).expect("valid bench λ"),
            )
            .expect("fresh template registers");
        let warm = spec.generate(200, 7);
        for inst in &warm {
            service
                .get_plan(&spec.template.name, inst)
                .expect("warmup get_plan");
        }
        // The measured stream revisits the warmed region: the steady-state
        // serving mix (mostly cache hits, occasional re-optimize).
        streams.push((spec.template.name.clone(), spec.generate(per_thread, 7)));
        // 99%-hit stream: exact revisits of warmed instances (guaranteed
        // selectivity-check hits) with one unseen instance per hundred.
        let fresh = spec.generate(per_thread, 31);
        let stream: Vec<QueryInstance> = (0..per_thread)
            .map(|i| {
                if i % 100 == 99 {
                    fresh[i].clone()
                } else {
                    warm[i % warm.len()].clone()
                }
            })
            .collect();
        read_mostly.push((spec.template.name.clone(), stream));
    }
    let streams = Arc::new(streams);
    let read_mostly = Arc::new(read_mostly);

    for threads in [1usize, 2, 4, 8] {
        let total = (threads * per_thread) as u64;
        runner.bench_throughput(
            &format!("service_throughput/get_plan/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let service = Arc::clone(&service);
                        let streams = Arc::clone(&streams);
                        scope.spawn(move || {
                            // Interleave templates across threads so the mix
                            // exercises both same-shard and cross-shard reads.
                            let (name, insts) = &streams[t % streams.len()];
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    service.get_plan(name, inst).expect("serving get_plan");
                                if !choice.optimized {
                                    hits += 1;
                                }
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
    }

    // Read-mostly steady state: ~99% of the stream revisits warmed
    // instances exactly, so almost every call is a snapshot-load plus a
    // selectivity check — the path the snapshot split is built for.
    for threads in [1usize, 2, 4, 8] {
        let total = (threads * per_thread) as u64;
        runner.bench_throughput(
            &format!("service_throughput/get_plan_readmostly/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let service = Arc::clone(&service);
                        let read_mostly = Arc::clone(&read_mostly);
                        scope.spawn(move || {
                            let (name, insts) = &read_mostly[t % read_mostly.len()];
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    service.get_plan(name, inst).expect("serving get_plan");
                                if !choice.optimized {
                                    hits += 1;
                                }
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
    }

    // Cache hits while a writer holds the writer lock: a holder thread
    // parks inside `with_scr` (owning the first template's writer mutex)
    // for the whole measurement; 8 reader threads stream guaranteed hits
    // against that same template. Under the previous RwLock design this
    // collapsed to zero concurrency; with snapshot publication the numbers
    // should match the free-running hit path.
    {
        let (hit_name, _) = &read_mostly[0];
        // Guaranteed-hit stream: exact revisits only (a miss here would
        // block on the held writer lock and wedge the measurement).
        let warm_only: Vec<QueryInstance> = {
            let spec = corpus()
                .iter()
                .find(|s| s.id == ids[0])
                .expect("corpus template");
            let warm = spec.generate(200, 7);
            (0..per_thread)
                .map(|i| warm[i % warm.len()].clone())
                .collect()
        };
        for inst in &warm_only {
            let choice = service.get_plan(hit_name, inst).expect("prepass get_plan");
            assert!(!choice.optimized, "writer_held stream must be all hits");
        }
        let release = Arc::new(AtomicBool::new(false));
        let holder = {
            let service = Arc::clone(&service);
            let release = Arc::clone(&release);
            let name = hit_name.clone();
            std::thread::spawn(move || {
                service
                    .with_scr(&name, |_scr| {
                        while !release.load(Ordering::Relaxed) {
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                    })
                    .expect("registered template");
            })
        };
        let threads = 8usize;
        runner.bench_throughput(
            &format!("service_throughput/get_plan_hit_writer_held/{threads}_threads"),
            (threads * per_thread) as u64,
            || {
                std::thread::scope(|scope| {
                    for _ in 0..threads {
                        let service = Arc::clone(&service);
                        let insts = &warm_only;
                        scope.spawn(move || {
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    service.get_plan(hit_name, inst).expect("serving get_plan");
                                hits += u32::from(!choice.optimized);
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
        release.store(true, Ordering::Relaxed);
        holder.join().expect("holder thread");
    }
}
