//! Multi-threaded serving throughput of [`PqoService`]: N threads share one
//! service and call `get_plan` concurrently over warmed per-template caches.
//! Scaling beyond one thread is the point of the shard-per-template locking
//! design — the read path takes only a registry read lock plus a shard read
//! lock, so same-template and cross-template traffic both parallelize.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::scr::ScrConfig;
use pqo_core::service::PqoService;
use pqo_optimizer::template::QueryInstance;
use pqo_workload::corpus::corpus;

fn main() {
    let runner = Runner::from_args();
    let ids = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3"];
    let per_thread = if runner.quick() { 64usize } else { 512usize };

    let service = Arc::new(PqoService::new());
    let mut streams: Vec<(String, Vec<QueryInstance>)> = Vec::new();
    for id in ids {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        service
            .register(
                Arc::clone(&spec.template),
                ScrConfig::new(2.0).expect("valid bench λ"),
            )
            .expect("fresh template registers");
        let warm = spec.generate(200, 7);
        for inst in &warm {
            service
                .get_plan(&spec.template.name, inst)
                .expect("warmup get_plan");
        }
        // The measured stream revisits the warmed region: the steady-state
        // serving mix (mostly cache hits, occasional re-optimize).
        streams.push((spec.template.name.clone(), spec.generate(per_thread, 7)));
    }
    let streams = Arc::new(streams);

    for threads in [1usize, 2, 4, 8] {
        let total = (threads * per_thread) as u64;
        runner.bench_throughput(
            &format!("service_throughput/get_plan/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let service = Arc::clone(&service);
                        let streams = Arc::clone(&streams);
                        scope.spawn(move || {
                            // Interleave templates across threads so the mix
                            // exercises both same-shard and cross-shard reads.
                            let (name, insts) = &streams[t % streams.len()];
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    service.get_plan(name, inst).expect("serving get_plan");
                                if !choice.optimized {
                                    hits += 1;
                                }
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
    }
}
