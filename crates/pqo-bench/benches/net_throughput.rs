//! Loopback wire throughput: the `pqo-server` TCP front end vs the
//! in-process [`PqoService`] it wraps, on the same 99%-hit read-mostly
//! workload as `batch_throughput`. Clients are pre-connected (one per
//! thread, handshake outside the timed region), so the measured gap over
//! the in-process numbers is pure wire overhead: framing, two syscalls
//! per exchange and the request/response round trip. `GET_PLAN_BATCH`
//! amortizes all three across 32 instances per frame.
//!
//! The high-connection variant parks a large population of *idle*
//! connections (1k by default in full mode, `PQO_NET_IDLE_CONNS` to
//! override, e.g. for a 10k run) alongside one active client and reports
//! the marginal RSS cost per idle connection plus the active client's
//! p50/p99 request latency — the axis where an event-driven core beats a
//! thread per connection.

use std::hint::black_box;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pqo_bench::microbench::Runner;
use pqo_core::scr::ScrConfig;
use pqo_core::service::PqoService;
use pqo_optimizer::template::QueryInstance;
use pqo_server::{PqoClient, PqoServer, ServerConfig};
use pqo_workload::corpus::corpus;

const BATCH: usize = 32;

fn main() {
    let runner = Runner::from_args();
    let ids = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3"];
    let per_thread = if runner.quick() { 64usize } else { 512usize };

    let service = Arc::new(PqoService::new());
    let mut streams: Vec<(String, Vec<QueryInstance>)> = Vec::new();
    for id in ids {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        service
            .register(
                Arc::clone(&spec.template),
                ScrConfig::new(2.0).expect("valid bench λ"),
            )
            .expect("fresh template registers");
        let warm = spec.generate(200, 7);
        for inst in &warm {
            service
                .get_plan(&spec.template.name, inst)
                .expect("warmup get_plan");
        }
        let fresh = spec.generate(per_thread, 31);
        let stream: Vec<QueryInstance> = (0..per_thread)
            .map(|i| {
                if i % 100 == 99 {
                    fresh[i].clone()
                } else {
                    warm[i % warm.len()].clone()
                }
            })
            .collect();
        streams.push((spec.template.name.clone(), stream));
    }
    let streams = Arc::new(streams);

    let server = PqoServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Pre-batched value vectors so encoding input prep stays out of the
    // timed region for the batch variant.
    let batched: Vec<(String, Vec<Vec<Vec<f64>>>)> = streams
        .iter()
        .map(|(name, insts)| {
            let chunks = insts
                .chunks(BATCH)
                .map(|c| c.iter().map(|q| q.values.clone()).collect())
                .collect();
            (name.clone(), chunks)
        })
        .collect();
    let batched = Arc::new(batched);

    for threads in [1usize, 8] {
        // One pre-connected client per thread; the Mutex is uncontended
        // (each thread locks only its own client) and exists to share the
        // pool across `bench_throughput`'s repeated closure calls.
        let clients: Vec<Mutex<PqoClient>> = (0..threads)
            .map(|_| Mutex::new(PqoClient::connect(addr).expect("bench client connects")))
            .collect();
        let clients = Arc::new(clients);
        let total = (threads * per_thread) as u64;

        runner.bench_throughput(
            &format!("net_throughput/get_plan/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let clients = Arc::clone(&clients);
                        let streams = Arc::clone(&streams);
                        scope.spawn(move || {
                            let mut client = clients[t].lock().expect("client pool");
                            let (name, insts) = &streams[t % streams.len()];
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    client.get_plan(name, &inst.values).expect("wire get_plan");
                                hits += u32::from(!choice.optimized);
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
        runner.bench_throughput(
            &format!("net_throughput/get_plan_batch{BATCH}/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let clients = Arc::clone(&clients);
                        let batched = Arc::clone(&batched);
                        scope.spawn(move || {
                            let mut client = clients[t].lock().expect("client pool");
                            let (name, chunks) = &batched[t % batched.len()];
                            let mut hits = 0u32;
                            for chunk in chunks {
                                let choices = client
                                    .get_plan_batch(name, chunk)
                                    .expect("wire get_plan_batch");
                                hits += choices.iter().filter(|c| !c.optimized).count() as u32;
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
    }

    server.shutdown();
    server.join();

    high_connection_mix(&runner, &service, &streams);
}

/// Current resident set size in bytes (Linux; 0 where /proc is absent).
fn vm_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<u64>().ok())
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Park a population of idle connections next to one active client and
/// measure (a) the marginal RSS per idle connection and (b) the active
/// client's request-latency distribution while the idle population is
/// held open. Results go to stdout as `net_throughput/highconn/...` lines
/// (plus one Runner throughput row) for `results/net_server.md`.
fn high_connection_mix(
    runner: &Runner,
    service: &Arc<PqoService>,
    streams: &Arc<Vec<(String, Vec<QueryInstance>)>>,
) {
    let idle_target: usize = std::env::var("PQO_NET_IDLE_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if runner.quick() { 64 } else { 1000 });
    let samples = if runner.quick() { 500usize } else { 5000 };

    let server = PqoServer::bind(
        Arc::clone(service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: idle_target + 16,
            read_timeout: Duration::from_secs(600),
            ..ServerConfig::default()
        },
    )
    .expect("bind high-connection loopback");
    let addr = server.local_addr();

    // Idle population: raw TCP connects that never speak. Each one costs
    // the server whatever its concurrency substrate charges for a parked
    // connection (a thread stack, or a poll-set slot + buffers).
    let rss_before = vm_rss_bytes();
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_target);
    for _ in 0..idle_target {
        match TcpStream::connect(addr) {
            Ok(s) => idle.push(s),
            Err(_) => break, // fd limit — report what we actually held
        }
    }
    // Let the server finish absorbing the accept burst before sampling.
    std::thread::sleep(Duration::from_millis(300));
    let rss_after = vm_rss_bytes();
    let held = idle.len();
    let per_conn = rss_after.saturating_sub(rss_before) / held.max(1) as u64;

    // Active client: per-request latency while the idle population parks.
    let mut client = PqoClient::connect(addr).expect("active client connects");
    let (name, insts) = &streams[0];
    let mut lat_ns: Vec<u64> = Vec::with_capacity(samples);
    for i in 0..samples {
        let inst = &insts[i % insts.len()];
        let t0 = Instant::now();
        let choice = client.get_plan(name, &inst.values).expect("idle-mix serve");
        lat_ns.push(t0.elapsed().as_nanos() as u64);
        black_box(choice);
    }
    lat_ns.sort_unstable();
    let pct = |p: f64| lat_ns[((lat_ns.len() - 1) as f64 * p) as usize];

    println!("net_throughput/highconn/idle_conns           {held:>14}");
    println!(
        "net_throughput/highconn/rss_per_idle_conn    {:>12} B  ({} -> {} B total)",
        per_conn, rss_before, rss_after
    );
    println!(
        "net_throughput/highconn/active_p50           {:>12.1} µs",
        pct(0.50) as f64 / 1e3
    );
    println!(
        "net_throughput/highconn/active_p99           {:>12.1} µs",
        pct(0.99) as f64 / 1e3
    );

    // Throughput of the active client with the idle population still held.
    runner.bench_throughput(
        &format!("net_throughput/get_plan_idlemix{held}/1_threads"),
        insts.len() as u64,
        || {
            let mut hits = 0u32;
            for inst in insts.iter() {
                let choice = client.get_plan(name, &inst.values).expect("idle-mix serve");
                hits += u32::from(!choice.optimized);
            }
            black_box(hits)
        },
    );

    drop(idle);
    drop(client);
    server.shutdown();
    server.join();
}
