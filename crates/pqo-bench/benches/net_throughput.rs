//! Loopback wire throughput: the `pqo-server` TCP front end vs the
//! in-process [`PqoService`] it wraps, on the same 99%-hit read-mostly
//! workload as `batch_throughput`. Clients are pre-connected (one per
//! thread, handshake outside the timed region), so the measured gap over
//! the in-process numbers is pure wire overhead: framing, two syscalls
//! per exchange and the request/response round trip. `GET_PLAN_BATCH`
//! amortizes all three across 32 instances per frame.

use std::hint::black_box;
use std::sync::{Arc, Mutex};

use pqo_bench::microbench::Runner;
use pqo_core::scr::ScrConfig;
use pqo_core::service::PqoService;
use pqo_optimizer::template::QueryInstance;
use pqo_server::{PqoClient, PqoServer, ServerConfig};
use pqo_workload::corpus::corpus;

const BATCH: usize = 32;

fn main() {
    let runner = Runner::from_args();
    let ids = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3"];
    let per_thread = if runner.quick() { 64usize } else { 512usize };

    let service = Arc::new(PqoService::new());
    let mut streams: Vec<(String, Vec<QueryInstance>)> = Vec::new();
    for id in ids {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        service
            .register(
                Arc::clone(&spec.template),
                ScrConfig::new(2.0).expect("valid bench λ"),
            )
            .expect("fresh template registers");
        let warm = spec.generate(200, 7);
        for inst in &warm {
            service
                .get_plan(&spec.template.name, inst)
                .expect("warmup get_plan");
        }
        let fresh = spec.generate(per_thread, 31);
        let stream: Vec<QueryInstance> = (0..per_thread)
            .map(|i| {
                if i % 100 == 99 {
                    fresh[i].clone()
                } else {
                    warm[i % warm.len()].clone()
                }
            })
            .collect();
        streams.push((spec.template.name.clone(), stream));
    }
    let streams = Arc::new(streams);

    let server = PqoServer::bind(
        Arc::clone(&service),
        "127.0.0.1:0",
        ServerConfig {
            max_connections: 64,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = server.local_addr();

    // Pre-batched value vectors so encoding input prep stays out of the
    // timed region for the batch variant.
    let batched: Vec<(String, Vec<Vec<Vec<f64>>>)> = streams
        .iter()
        .map(|(name, insts)| {
            let chunks = insts
                .chunks(BATCH)
                .map(|c| c.iter().map(|q| q.values.clone()).collect())
                .collect();
            (name.clone(), chunks)
        })
        .collect();
    let batched = Arc::new(batched);

    for threads in [1usize, 8] {
        // One pre-connected client per thread; the Mutex is uncontended
        // (each thread locks only its own client) and exists to share the
        // pool across `bench_throughput`'s repeated closure calls.
        let clients: Vec<Mutex<PqoClient>> = (0..threads)
            .map(|_| Mutex::new(PqoClient::connect(addr).expect("bench client connects")))
            .collect();
        let clients = Arc::new(clients);
        let total = (threads * per_thread) as u64;

        runner.bench_throughput(
            &format!("net_throughput/get_plan/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let clients = Arc::clone(&clients);
                        let streams = Arc::clone(&streams);
                        scope.spawn(move || {
                            let mut client = clients[t].lock().expect("client pool");
                            let (name, insts) = &streams[t % streams.len()];
                            let mut hits = 0u32;
                            for inst in insts {
                                let choice =
                                    client.get_plan(name, &inst.values).expect("wire get_plan");
                                hits += u32::from(!choice.optimized);
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
        runner.bench_throughput(
            &format!("net_throughput/get_plan_batch{BATCH}/{threads}_threads"),
            total,
            || {
                std::thread::scope(|scope| {
                    for t in 0..threads {
                        let clients = Arc::clone(&clients);
                        let batched = Arc::clone(&batched);
                        scope.spawn(move || {
                            let mut client = clients[t].lock().expect("client pool");
                            let (name, chunks) = &batched[t % batched.len()];
                            let mut hits = 0u32;
                            for chunk in chunks {
                                let choices = client
                                    .get_plan_batch(name, chunk)
                                    .expect("wire get_plan_batch");
                                hits += choices.iter().filter(|c| !c.optimized).count() as u32;
                            }
                            black_box(hits)
                        });
                    }
                });
            },
        );
    }

    server.shutdown();
    server.join();
}
