//! Hot-path serving throughput per policy: instances served per second
//! from a *warm* cache, for each serving policy over the shared SCR
//! substrate. The SCR number is the regression gate for the policy-layer
//! refactor — SCR decisions now go through the enum-dispatched
//! [`pqo_core::PlanPolicy`] seam, and this bench pins that seam's cost on
//! the pure-reuse path (every measured `get_plan` is a cache hit).

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_bench::techniques::TechSpec;
use pqo_core::engine::QueryEngine;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;
use pqo_workload::corpus::corpus;

fn main() {
    let runner = Runner::from_args();
    let spec = corpus().iter().find(|s| s.id == "tpch_skew_B_d2").unwrap();
    let m = if runner.quick() { 100usize } else { 500usize };
    let instances: Vec<QueryInstance> = spec.generate(m, 99);
    let template = Arc::clone(&spec.template);
    let svs: Vec<SVector> = instances
        .iter()
        .map(|i| pqo_optimizer::svector::compute_svector(&template, i))
        .collect();

    for tech in [
        TechSpec::Scr {
            lambda: 2.0,
            budget: None,
        },
        TechSpec::Lec { lambda: 2.0 },
        TechSpec::Penalty { lambda: 2.0 },
    ] {
        let engine = QueryEngine::new(Arc::clone(&template));
        let mut t = tech.build();
        // Warm outside the measured region: the first pass takes every
        // optimizer call the policy will ever need for this sequence.
        for (inst, sv) in instances.iter().zip(&svs) {
            let _ = t.get_plan(inst, sv, &engine);
        }
        let label = format!("policy_throughput/{}", tech.label());
        runner.bench_throughput(&label, m as u64, || {
            let mut reused = 0u32;
            for (inst, sv) in instances.iter().zip(&svs) {
                if !t.get_plan(inst, sv, &engine).optimized {
                    reused += 1;
                }
            }
            black_box(reused)
        });
    }
}
