//! The paper's headline engine claim (Sections 1, 4.2, Appendix B): the
//! Recost API is much cheaper than a full optimizer call — "up to two
//! orders of magnitude" in their SQL Server implementation. This bench
//! measures all three engine APIs (optimize, recost, sVector) on templates
//! of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use pqo_core::engine::QueryEngine;
use pqo_optimizer::svector::compute_svector;
use pqo_workload::corpus::corpus;

fn bench_engine_apis(c: &mut Criterion) {
    // One representative template per join-graph size.
    let picks = ["tpch_skew_A_d2", "tpch_skew_B_d2", "tpcds_G_d3", "rd2_T_d10"];
    let mut group = c.benchmark_group("engine_api");
    for id in picks {
        let spec = corpus().iter().find(|s| s.id == id).expect("corpus template");
        let mut engine = QueryEngine::new(Arc::clone(&spec.template));
        let inst = spec.generate(1, 5).pop().unwrap();
        let sv = compute_svector(&spec.template, &inst);
        let plan = engine.optimize(&sv).plan;

        group.bench_with_input(BenchmarkId::new("optimize", id), &sv, |b, sv| {
            b.iter(|| black_box(engine.optimize_untracked(black_box(sv)).cost))
        });
        group.bench_with_input(BenchmarkId::new("recost", id), &sv, |b, sv| {
            b.iter(|| black_box(engine.recost_untracked(black_box(&plan), black_box(sv))))
        });
        group.bench_with_input(BenchmarkId::new("svector", id), &inst, |b, inst| {
            b.iter(|| black_box(compute_svector(&spec.template, black_box(inst))))
        });

        // Appendix B trade-off: the compact byte-encoded plan re-costs via
        // a stack machine — less memory per cached plan, more time per call.
        let compact = pqo_optimizer::compact::CompactPlan::encode(&plan);
        let model = engine.cost_model().clone();
        group.bench_with_input(BenchmarkId::new("recost_compact", id), &sv, |b, sv| {
            b.iter(|| {
                black_box(pqo_optimizer::compact::recost_compact(
                    &spec.template,
                    &model,
                    black_box(&compact),
                    black_box(sv),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_apis);
criterion_main!(benches);
