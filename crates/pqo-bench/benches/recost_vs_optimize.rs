//! The paper's headline engine claim (Sections 1, 4.2, Appendix B): the
//! Recost API is much cheaper than a full optimizer call — "up to two
//! orders of magnitude" in their SQL Server implementation. This bench
//! measures all three engine APIs (optimize, recost, sVector) on templates
//! of increasing size.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::engine::QueryEngine;
use pqo_optimizer::svector::compute_svector;
use pqo_workload::corpus::corpus;

fn main() {
    let runner = Runner::from_args();
    // One representative template per join-graph size.
    let picks = [
        "tpch_skew_A_d2",
        "tpch_skew_B_d2",
        "tpcds_G_d3",
        "rd2_T_d10",
    ];
    for id in picks {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        let engine = QueryEngine::new(Arc::clone(&spec.template));
        let inst = spec.generate(1, 5).pop().unwrap();
        let sv = compute_svector(&spec.template, &inst);
        let plan = engine.optimize(&sv).plan;

        runner.bench(&format!("engine_api/optimize/{id}"), || {
            black_box(engine.optimize_untracked(black_box(&sv)).cost)
        });
        runner.bench(&format!("engine_api/recost/{id}"), || {
            black_box(engine.recost_untracked(black_box(&plan), black_box(&sv)))
        });
        runner.bench(&format!("engine_api/svector/{id}"), || {
            black_box(compute_svector(&spec.template, black_box(&inst)))
        });

        // Appendix B trade-off: the compact byte-encoded plan re-costs via
        // a stack machine — less memory per cached plan, more time per call.
        let compact = pqo_optimizer::compact::CompactPlan::encode(&plan);
        let model = engine.cost_model().clone();
        runner.bench(&format!("engine_api/recost_compact/{id}"), || {
            black_box(pqo_optimizer::compact::recost_compact(
                &spec.template,
                &model,
                black_box(&compact),
                black_box(&sv),
            ))
        });
    }
}
