//! The paper's headline engine claim (Sections 1, 4.2, Appendix B): the
//! Recost API is much cheaper than a full optimizer call — "up to two
//! orders of magnitude" in their SQL Server implementation. This bench
//! measures all three engine APIs (optimize, recost, sVector) on templates
//! of increasing size, plus the arena/prepared Recost variants:
//!
//! * `recost_tree` — the legacy recursive tree walk (reference).
//! * `recost` — the arena stack machine (one linear pass, fresh base
//!   derivation per call).
//! * `recost_prepared` — prepared constants + caller scratch, alternating
//!   sVectors that differ in *every* dimension (full base re-derivation
//!   each call).
//! * `recost_delta` — same, but the alternating sVectors differ in one
//!   dimension: only that relation's base row count is re-derived.
//! * `recost_hot` — same sVector every call (zero dirty dimensions): the
//!   cost-check candidate-loop case, where one base derivation is shared
//!   across every candidate plan.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::engine::QueryEngine;
use pqo_optimizer::recost::RecostScratch;
use pqo_optimizer::svector::{compute_svector, SVector};
use pqo_workload::corpus::corpus;

fn main() {
    let runner = Runner::from_args();
    // One representative template per join-graph size.
    let picks = [
        "tpch_skew_A_d2",
        "tpch_skew_B_d2",
        "tpcds_G_d3",
        "rd2_T_d10",
    ];
    for id in picks {
        let spec = corpus()
            .iter()
            .find(|s| s.id == id)
            .expect("corpus template");
        let engine = QueryEngine::new(Arc::clone(&spec.template));
        let inst = spec.generate(1, 5).pop().unwrap();
        let sv = compute_svector(&spec.template, &inst);
        let plan = engine.optimize(&sv).plan;

        runner.bench(&format!("engine_api/optimize/{id}"), || {
            black_box(engine.optimize_untracked(black_box(&sv)).cost)
        });
        runner.bench(&format!("engine_api/recost/{id}"), || {
            black_box(engine.recost_untracked(black_box(&plan), black_box(&sv)))
        });
        runner.bench(&format!("engine_api/svector/{id}"), || {
            black_box(compute_svector(&spec.template, black_box(&inst)))
        });

        // Legacy recursive tree walk over the rebuilt PlanNode tree — the
        // pre-arena representation's Recost cost.
        let model = engine.cost_model().clone();
        let root = plan.to_tree();
        runner.bench(&format!("engine_api/recost_tree/{id}"), || {
            black_box(pqo_optimizer::recost::recost_tree(
                &spec.template,
                &model,
                black_box(&root),
                black_box(&sv),
            ))
        });

        // Prepared variants: selectivity-independent constants are folded
        // once; each call is a base-derivation update plus one linear pass.
        let prepared = engine.prepare_recost(&plan);
        let sv_all = SVector(sv.0.iter().map(|s| (s * 0.5).max(1e-6)).collect());
        let mut sv_one = sv.clone();
        sv_one.0[0] = (sv_one.0[0] * 0.5).max(1e-6);

        let mut scratch = RecostScratch::new();
        let mut flip = false;
        runner.bench(&format!("engine_api/recost_prepared/{id}"), || {
            flip = !flip;
            let q = if flip { &sv_all } else { &sv };
            black_box(engine.recost_prepared_untracked(&prepared, black_box(q), &mut scratch))
        });

        let mut scratch = RecostScratch::new();
        let mut flip = false;
        runner.bench(&format!("engine_api/recost_delta/{id}"), || {
            flip = !flip;
            let q = if flip { &sv_one } else { &sv };
            black_box(engine.recost_prepared_untracked(&prepared, black_box(q), &mut scratch))
        });

        let mut scratch = RecostScratch::new();
        runner.bench(&format!("engine_api/recost_hot/{id}"), || {
            black_box(engine.recost_prepared_untracked(&prepared, black_box(&sv), &mut scratch))
        });

        // Appendix B trade-off: the compact byte-encoded plan re-costs via
        // a stack machine — less memory per cached plan, more time per call.
        let compact = pqo_optimizer::compact::CompactPlan::encode(&plan);
        runner.bench(&format!("engine_api/recost_compact/{id}"), || {
            black_box(pqo_optimizer::compact::recost_compact(
                &spec.template,
                &model,
                black_box(&compact),
                black_box(&sv),
            ))
        });
    }
}
