//! Latency anatomy of SCR's `getPlan` (Section 6.2): the selectivity check
//! is pure arithmetic over the instance list, the cost check adds a bounded
//! number of Recost calls, and only a miss pays the optimizer. This bench
//! measures each stage against a warmed cache.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_core::engine::QueryEngine;
use pqo_core::scr::Scr;
use pqo_core::OnlinePqo;
use pqo_optimizer::svector::{compute_svector, SVector};
use pqo_workload::corpus::corpus;

fn warmed(lambda: f64, m: usize) -> (Scr, QueryEngine, Vec<SVector>) {
    warmed_with(lambda, m, None)
}

fn warmed_with(
    lambda: f64,
    m: usize,
    index_threshold: Option<usize>,
) -> (Scr, QueryEngine, Vec<SVector>) {
    let spec = corpus().iter().find(|s| s.id == "tpcds_G_d3").unwrap();
    let instances = spec.generate(m, 77);
    let engine = QueryEngine::new(Arc::clone(&spec.template));
    let mut cfg = pqo_core::scr::ScrConfig::new(lambda).expect("valid bench λ");
    if let Some(t) = index_threshold {
        cfg.spatial_index_threshold = t;
    }
    let mut scr = Scr::with_config(cfg).expect("valid bench config");
    let mut svs = Vec::with_capacity(m);
    for inst in &instances {
        let sv = engine.compute_svector(inst);
        let _ = scr.get_plan(inst, &sv, &engine);
        svs.push(sv);
    }
    (scr, engine, svs)
}

fn main() {
    let runner = Runner::from_args();
    // Smoke runs (`cargo test`) shrink the warmed caches so setup stays
    // cheap; full `cargo bench` runs use the paper-scale cache sizes.
    let (warm_m, big_m) = if runner.quick() {
        (50, 200)
    } else {
        (500, 2000)
    };

    // Selectivity-check hit: re-presenting a seen instance always passes
    // the first check (G = L = 1).
    {
        let (mut scr, engine, svs) = warmed(2.0, warm_m);
        let spec = corpus().iter().find(|s| s.id == "tpcds_G_d3").unwrap();
        let inst = spec.generate(1, 77).pop().unwrap();
        runner.bench("getplan/selectivity_check_hit", || {
            black_box(scr.get_plan(&inst, black_box(&svs[0]), &engine).optimized)
        });
    }

    // Raw G/L computation — the per-entry cost of scanning the instance
    // list during the selectivity check.
    {
        let a = SVector(vec![0.013, 0.021, 0.34]);
        let b = SVector(vec![0.017, 0.019, 0.41]);
        runner.bench("getplan/g_and_l", || {
            black_box(black_box(&a).g_and_l(black_box(&b)))
        });
    }

    // A full getPlan on an unseen instance (may land in any of the three
    // outcomes — this is the realistic per-instance overhead).
    {
        let (mut scr, engine, _) = warmed(2.0, warm_m);
        let spec = corpus().iter().find(|s| s.id == "tpcds_G_d3").unwrap();
        let fresh = spec.generate(256, 1234);
        let fresh_svs: Vec<SVector> = fresh
            .iter()
            .map(|i| compute_svector(&spec.template, i))
            .collect();
        let mut k = 0usize;
        runner.bench("getplan/getplan_unseen", || {
            k = (k + 1) % fresh.len();
            black_box(scr.get_plan(&fresh[k], &fresh_svs[k], &engine).optimized)
        });
    }

    // Scratch reuse ablation: the cached `getPlan` path with a fresh
    // GetPlanScratch per call (allocates the memo table and re-derives the
    // recost base every call) vs a caller-owned scratch threaded across
    // calls (zero-alloc hit path, delta base updates). Indexed selectivity
    // check so the cost check's Recost work dominates; unseen instances so
    // a realistic share of calls reach it.
    {
        let (scr, engine, _) = warmed_with(1.2, warm_m, Some(0));
        let spec = corpus().iter().find(|s| s.id == "tpcds_G_d3").unwrap();
        let fresh = spec.generate(256, 9999);
        let fresh_svs: Vec<SVector> = fresh
            .iter()
            .map(|i| compute_svector(&spec.template, i))
            .collect();
        let mut k = 0usize;
        runner.bench("getplan/try_cached_fresh_scratch", || {
            k = (k + 1) % fresh_svs.len();
            black_box(
                scr.try_cached_plan(black_box(&fresh_svs[k]), &engine)
                    .is_some(),
            )
        });
        let mut scratch = pqo_core::scr::GetPlanScratch::new();
        let mut k = 0usize;
        runner.bench("getplan/try_cached_reused_scratch", || {
            k = (k + 1) % fresh_svs.len();
            black_box(
                scr.try_cached_plan_with(black_box(&fresh_svs[k]), &engine, &mut scratch)
                    .is_some(),
            )
        });
    }

    // Section 6.2 ablation: the spatial index vs the linear scan over a
    // large instance list, measured on unseen instances.
    for (label, threshold) in [
        ("getplan/linear_scan", usize::MAX),
        ("getplan/spatial_index", 0),
    ] {
        let (mut scr, engine, _) = warmed_with(1.2, big_m, Some(threshold));
        let spec = corpus().iter().find(|s| s.id == "tpcds_G_d3").unwrap();
        let fresh = spec.generate(256, 4321);
        let fresh_svs: Vec<SVector> = fresh
            .iter()
            .map(|i| compute_svector(&spec.template, i))
            .collect();
        let mut k = 0usize;
        runner.bench(label, || {
            k = (k + 1) % fresh.len();
            black_box(scr.get_plan(&fresh[k], &fresh_svs[k], &engine).optimized)
        });
    }
}
