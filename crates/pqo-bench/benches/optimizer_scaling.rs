//! Optimizer and Recost scaling with join-graph size. The DP explores
//! O(3^n) subset splits while Recost walks O(n) plan nodes, so the gap
//! between the two — the reason SCR's cost check is affordable — widens
//! with query complexity.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_catalog::schemas;
use pqo_core::engine::QueryEngine;
use pqo_optimizer::svector::{compute_svector, instance_for_target};
use pqo_optimizer::template::{QueryTemplate, RangeOp, TemplateBuilder};

/// Chain join over TPC-H of the given length:
/// region - nation - customer - orders - lineitem (- supplier via nation).
fn chain(n: usize) -> Arc<QueryTemplate> {
    let cat = schemas::tpch_skew();
    let mut b = TemplateBuilder::new(&format!("chain{n}"));
    let c = b.relation(cat.expect_table("customer"), "c");
    b.param(c, "c_acctbal", RangeOp::Le);
    if n >= 2 {
        let o = b.relation(cat.expect_table("orders"), "o");
        b.join((c, "customer_pk"), (o, "customer_fk"));
        b.param(o, "o_totalprice", RangeOp::Le);
    }
    if n >= 3 {
        let l = b.relation(cat.expect_table("lineitem"), "l");
        b.join((1, "orders_pk"), (l, "orders_fk"));
        b.param(l, "l_shipdate", RangeOp::Le);
    }
    if n >= 4 {
        let nt = b.relation(cat.expect_table("nation"), "n");
        b.join((c, "nation_fk"), (nt, "nation_pk"));
    }
    if n >= 5 {
        let r = b.relation(cat.expect_table("region"), "r");
        b.join((3, "region_fk"), (r, "region_pk"));
    }
    if n >= 6 {
        let s = b.relation(cat.expect_table("supplier"), "s");
        b.join((2, "supplier_fk"), (s, "supplier_pk"));
    }
    b.build()
}

fn main() {
    let runner = Runner::from_args();
    for n in [1usize, 2, 3, 4, 5, 6] {
        let template = chain(n);
        let d = template.dimensions();
        let inst = instance_for_target(&template, &vec![0.02; d]);
        let sv = compute_svector(&template, &inst);
        let engine = QueryEngine::new(Arc::clone(&template));
        let plan = engine.optimize(&sv).plan;

        runner.bench(&format!("optimizer_scaling/optimize/{n}"), || {
            black_box(engine.optimize_untracked(black_box(&sv)).cost)
        });
        runner.bench(&format!("optimizer_scaling/recost/{n}"), || {
            black_box(engine.recost_untracked(black_box(&plan), black_box(&sv)))
        });
    }
}
