//! Snapshot-publication latency: what one writer publish cycle (insert one
//! instance into the spatial index, then clone the index for the next
//! `CacheSnapshot` generation) costs on the unsharded arena index versus
//! the Arc-copy-on-write [`ShardedLogSelIndex`].
//!
//! The unsharded clone deep-copies every point — O(n) per publication; the
//! sharded clone bumps shard pointers and the following insert deep-copies
//! only the one shard still shared with the published generation —
//! O(n/shards) amortized. `spatial_publish/*` lines are the numbers quoted
//! in `results/spatial_shard.md` and gated by `scripts/bench_gate.sh`.
//!
//! Also measured here: the bounded-nearest push delta (real max-heap vs the
//! old sort-the-whole-`Vec`-per-push emulation) and read-path parity
//! between the two index layouts.

use std::collections::BinaryHeap;

use pqo_bench::microbench::Runner;
use pqo_core::spatial::{LogSelIndex, ShardedLogSelIndex};
use pqo_rand::rngs::StdRng;
use pqo_rand::{Rng, SeedableRng};

const DIMS: usize = 4;

fn random_svs(rng: &mut StdRng, n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..DIMS).map(|_| rng.gen_range(0.001..1.0)).collect())
        .collect()
}

/// Faithful replica of the pre-refactor index layout: one heap allocation
/// per tree node, recursive `Clone`. This is the "before" every
/// `spatial_publish` comparison in `results/spatial_shard.md` is against.
mod boxed_baseline {
    #[derive(Clone)]
    struct Node {
        coords: Vec<f64>,
        item: usize,
        left: Option<Box<Node>>,
        right: Option<Box<Node>>,
    }

    #[derive(Clone, Default)]
    pub struct BoxedIndex {
        root: Option<Box<Node>>,
        tree_len: usize,
        pending: Vec<(Vec<f64>, usize)>,
    }

    impl BoxedIndex {
        pub fn len(&self) -> usize {
            self.tree_len + self.pending.len()
        }

        // Same NaN-dropping clamp as the real index (`clamp` would keep NaN).
        #[allow(clippy::manual_clamp)]
        pub fn insert(&mut self, selectivities: &[f64], item: usize) {
            let coords: Vec<f64> = selectivities
                .iter()
                .map(|&s| s.max(f64::MIN_POSITIVE).min(f64::MAX).ln())
                .collect();
            self.pending.push((coords, item));
            if self.pending.len() > self.tree_len.max(16) {
                self.rebuild();
            }
        }

        fn rebuild(&mut self) {
            let mut pts = Vec::with_capacity(self.len());
            Self::drain(self.root.take(), &mut pts);
            pts.append(&mut self.pending);
            self.tree_len = pts.len();
            self.root = Self::build(pts, 0);
        }

        fn drain(node: Option<Box<Node>>, out: &mut Vec<(Vec<f64>, usize)>) {
            if let Some(n) = node {
                out.push((n.coords, n.item));
                Self::drain(n.left, out);
                Self::drain(n.right, out);
            }
        }

        fn build(mut pts: Vec<(Vec<f64>, usize)>, depth: usize) -> Option<Box<Node>> {
            if pts.is_empty() {
                return None;
            }
            let dims = pts[0].0.len().max(1);
            let axis = depth % dims;
            pts.sort_by(|a, b| a.0[axis].total_cmp(&b.0[axis]).then(a.1.cmp(&b.1)));
            let mid = pts.len() / 2;
            let right: Vec<_> = pts.split_off(mid + 1);
            let (coords, item) = pts.pop().expect("mid < len");
            Some(Box::new(Node {
                coords,
                item,
                left: Self::build(pts, depth + 1),
                right: Self::build(right, depth + 1),
            }))
        }
    }
}

fn main() {
    let runner = Runner::from_args();
    let mut rng = StdRng::seed_from_u64(0x5eed_b07b);
    let sizes: &[(usize, &str)] = &[(1_000, "1k"), (10_000, "10k"), (100_000, "100k")];

    for &(n, tag) in sizes {
        if runner.quick() && n > 10_000 {
            continue; // smoke pass: skip the slow setup, full `--bench` runs it
        }
        let pts = random_svs(&mut rng, n);
        let extra = random_svs(&mut rng, 1024);

        // Pre-refactor baseline: Box-per-node tree, recursive deep clone.
        let mut boxed_base = boxed_baseline::BoxedIndex::default();
        for (i, p) in pts.iter().enumerate() {
            boxed_base.insert(p, i);
        }
        {
            let mut idx = boxed_base.clone();
            let mut published = idx.clone();
            let mut i = 0usize;
            runner.bench_throughput(&format!("spatial_publish/boxed/{tag}"), 1, || {
                idx.insert(&extra[i % extra.len()], n + i);
                published = idx.clone();
                i += 1;
                if idx.len() > n + n / 10 {
                    idx = boxed_base.clone();
                    published = idx.clone();
                }
                published.len()
            });
        }

        // Unsharded oracle: every publication deep-copies the whole index.
        let mut base = LogSelIndex::new(DIMS);
        for (i, p) in pts.iter().enumerate() {
            base.insert(p, i);
        }
        {
            let mut idx = base.clone();
            let mut published = idx.clone();
            let mut i = 0usize;
            runner.bench_throughput(&format!("spatial_publish/unsharded/{tag}"), 1, || {
                idx.insert(&extra[i % extra.len()], n + i);
                published = idx.clone();
                i += 1;
                if idx.len() > n + n / 10 {
                    // Bound drift so the measured size stays ~n.
                    idx = base.clone();
                    published = idx.clone();
                }
                published.len()
            });
        }

        // Sharded: publish is shard-pointer bumps; the insert pays one
        // copy-on-write shard clone because `published` still shares it.
        let mut sharded_base = ShardedLogSelIndex::new(DIMS);
        for (i, p) in pts.iter().enumerate() {
            sharded_base.insert(p, i);
        }
        {
            let mut idx = sharded_base.clone();
            let mut published = idx.clone();
            let mut i = 0usize;
            runner.bench_throughput(&format!("spatial_publish/sharded/{tag}"), 1, || {
                idx.insert(&extra[i % extra.len()], n + i);
                published = idx.clone();
                i += 1;
                if idx.len() > n + n / 10 {
                    idx = sharded_base.clone();
                    published = idx.clone();
                }
                published.len()
            });
        }

        // Read-path cost of sharding: probing several small trees does
        // more frontier work than one big tree, so this is expected to be
        // slower at bulk sizes; service-level read throughput (the
        // `read_mostly` gate metric) is what must hold, since production
        // per-template indexes are orders of magnitude smaller than 10k.
        if n == 10_000 {
            let queries = random_svs(&mut rng, 256);
            let mut qi = 0usize;
            runner.bench_throughput(&format!("spatial_nearest8/unsharded/{tag}"), 1, || {
                qi += 1;
                base.nearest(&queries[qi % queries.len()], 8).len()
            });
            let mut qi = 0usize;
            runner.bench_throughput(&format!("spatial_nearest8/sharded/{tag}"), 1, || {
                qi += 1;
                sharded_base.nearest(&queries[qi % queries.len()], 8).len()
            });
        }
    }

    // Bounded-nearest push delta: real max-heap vs the old emulation that
    // re-sorted the whole candidate Vec on every push. All distances are
    // positive, so the bit pattern is order-preserving.
    let k = 8usize;
    let cands: Vec<(f64, usize)> = (0..10_000)
        .map(|i| (rng.gen_range(0.0f64..10.0), i))
        .collect();
    runner.bench_throughput("nearest_push/heap/k8", cands.len() as u64, || {
        let mut heap: BinaryHeap<(u64, usize)> = BinaryHeap::with_capacity(k + 1);
        for &(d, it) in &cands {
            let e = (d.to_bits(), it);
            if heap.len() < k {
                heap.push(e);
            } else if e < *heap.peek().expect("k > 0") {
                heap.pop();
                heap.push(e);
            }
        }
        heap.len()
    });
    runner.bench_throughput("nearest_push/sortvec/k8", cands.len() as u64, || {
        let mut v: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for &(d, it) in &cands {
            v.push((d, it));
            v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));
            v.truncate(k);
        }
        v.len()
    });
}
