//! End-to-end throughput of each online PQO technique: instances processed
//! per second over a fixed 200-instance sequence (Table 2's competitors +
//! SCR). This is the "average overhead for picking a plan from the cache"
//! dimension of the paper's Section 2.1 metrics.

use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::microbench::Runner;
use pqo_bench::techniques::TechSpec;
use pqo_core::engine::QueryEngine;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;
use pqo_workload::corpus::corpus;

fn main() {
    let runner = Runner::from_args();
    let spec = corpus().iter().find(|s| s.id == "tpch_skew_B_d2").unwrap();
    let m = if runner.quick() { 50usize } else { 200usize };
    let instances: Vec<QueryInstance> = spec.generate(m, 99);
    let template = Arc::clone(&spec.template);
    let svs: Vec<SVector> = instances
        .iter()
        .map(|i| pqo_optimizer::svector::compute_svector(&template, i))
        .collect();

    for tech in [
        TechSpec::OptAlways,
        TechSpec::OptOnce,
        TechSpec::Pcm { lambda: 2.0 },
        TechSpec::Ellipse { delta: 0.9 },
        TechSpec::Density,
        TechSpec::Ranges { margin: 0.01 },
        TechSpec::Scr {
            lambda: 2.0,
            budget: None,
        },
    ] {
        let label = format!("technique_throughput/{}", tech.label());
        runner.bench_throughput(&label, m as u64, || {
            // Fresh technique + engine per iteration: the measured unit
            // is "process the whole sequence online".
            let mut t = tech.build();
            let engine = QueryEngine::new(Arc::clone(&template));
            let mut reused = 0u32;
            for (inst, sv) in instances.iter().zip(&svs) {
                if !t.get_plan(inst, sv, &engine).optimized {
                    reused += 1;
                }
            }
            black_box(reused)
        });
    }
}
