//! End-to-end throughput of each online PQO technique: instances processed
//! per second over a fixed 200-instance sequence (Table 2's competitors +
//! SCR). This is the "average overhead for picking a plan from the cache"
//! dimension of the paper's Section 2.1 metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use pqo_bench::techniques::TechSpec;
use pqo_core::engine::QueryEngine;
use pqo_optimizer::svector::SVector;
use pqo_optimizer::template::QueryInstance;
use pqo_workload::corpus::corpus;

fn bench_techniques(c: &mut Criterion) {
    let spec = corpus().iter().find(|s| s.id == "tpch_skew_B_d2").unwrap();
    let m = 200usize;
    let instances: Vec<QueryInstance> = spec.generate(m, 99);
    let template = Arc::clone(&spec.template);
    let svs: Vec<SVector> = instances
        .iter()
        .map(|i| pqo_optimizer::svector::compute_svector(&template, i))
        .collect();

    let mut group = c.benchmark_group("technique_throughput");
    group.throughput(Throughput::Elements(m as u64));
    for tech in [
        TechSpec::OptAlways,
        TechSpec::OptOnce,
        TechSpec::Pcm { lambda: 2.0 },
        TechSpec::Ellipse { delta: 0.9 },
        TechSpec::Density,
        TechSpec::Ranges { margin: 0.01 },
        TechSpec::Scr { lambda: 2.0, budget: None },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(tech.label()), &tech, |b, tech| {
            b.iter(|| {
                // Fresh technique + engine per iteration: the measured unit
                // is "process the whole sequence online".
                let mut t = tech.build();
                let mut engine = QueryEngine::new(Arc::clone(&template));
                let mut reused = 0u32;
                for (inst, sv) in instances.iter().zip(&svs) {
                    if !t.get_plan(inst, sv, &mut engine).optimized {
                        reused += 1;
                    }
                }
                black_box(reused)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_techniques);
criterion_main!(benches);
